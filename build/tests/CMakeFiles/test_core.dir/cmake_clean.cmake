file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_experiment.cc.o"
  "CMakeFiles/test_core.dir/core/test_experiment.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_json.cc.o"
  "CMakeFiles/test_core.dir/core/test_json.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_placement.cc.o"
  "CMakeFiles/test_core.dir/core/test_placement.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_sensitivity.cc.o"
  "CMakeFiles/test_core.dir/core/test_sensitivity.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
