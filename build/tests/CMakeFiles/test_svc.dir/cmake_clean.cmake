file(REMOVE_RECURSE
  "CMakeFiles/test_svc.dir/svc/test_service.cc.o"
  "CMakeFiles/test_svc.dir/svc/test_service.cc.o.d"
  "test_svc"
  "test_svc.pdb"
  "test_svc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
