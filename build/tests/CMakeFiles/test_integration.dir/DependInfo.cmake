
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/microscale_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/microscale_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/microscale_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/teastore/CMakeFiles/microscale_teastore.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/microscale_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/microscale_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/microscale_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/microscale_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/microscale_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/microscale_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/microscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/microscale_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
