# Empty dependencies file for test_teastore.
# This may be replaced when dependencies are built.
