file(REMOVE_RECURSE
  "CMakeFiles/test_teastore.dir/teastore/test_app.cc.o"
  "CMakeFiles/test_teastore.dir/teastore/test_app.cc.o.d"
  "CMakeFiles/test_teastore.dir/teastore/test_app2.cc.o"
  "CMakeFiles/test_teastore.dir/teastore/test_app2.cc.o.d"
  "test_teastore"
  "test_teastore.pdb"
  "test_teastore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_teastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
