file(REMOVE_RECURSE
  "CMakeFiles/utilization_timeline.dir/utilization_timeline.cpp.o"
  "CMakeFiles/utilization_timeline.dir/utilization_timeline.cpp.o.d"
  "utilization_timeline"
  "utilization_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilization_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
