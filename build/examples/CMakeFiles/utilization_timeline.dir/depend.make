# Empty dependencies file for utilization_timeline.
# This may be replaced when dependencies are built.
