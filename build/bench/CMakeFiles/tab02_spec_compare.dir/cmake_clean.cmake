file(REMOVE_RECURSE
  "CMakeFiles/tab02_spec_compare.dir/tab02_spec_compare.cpp.o"
  "CMakeFiles/tab02_spec_compare.dir/tab02_spec_compare.cpp.o.d"
  "tab02_spec_compare"
  "tab02_spec_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_spec_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
