# Empty compiler generated dependencies file for tab02_spec_compare.
# This may be replaced when dependencies are built.
