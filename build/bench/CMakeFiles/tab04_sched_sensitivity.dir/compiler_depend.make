# Empty compiler generated dependencies file for tab04_sched_sensitivity.
# This may be replaced when dependencies are built.
