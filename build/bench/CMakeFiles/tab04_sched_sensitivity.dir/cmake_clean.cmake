file(REMOVE_RECURSE
  "CMakeFiles/tab04_sched_sensitivity.dir/tab04_sched_sensitivity.cpp.o"
  "CMakeFiles/tab04_sched_sensitivity.dir/tab04_sched_sensitivity.cpp.o.d"
  "tab04_sched_sensitivity"
  "tab04_sched_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_sched_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
