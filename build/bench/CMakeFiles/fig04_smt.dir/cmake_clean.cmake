file(REMOVE_RECURSE
  "CMakeFiles/fig04_smt.dir/fig04_smt.cpp.o"
  "CMakeFiles/fig04_smt.dir/fig04_smt.cpp.o.d"
  "fig04_smt"
  "fig04_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
