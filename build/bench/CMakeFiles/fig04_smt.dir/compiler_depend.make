# Empty compiler generated dependencies file for fig04_smt.
# This may be replaced when dependencies are built.
