file(REMOVE_RECURSE
  "CMakeFiles/fig07_replica_tuning.dir/fig07_replica_tuning.cpp.o"
  "CMakeFiles/fig07_replica_tuning.dir/fig07_replica_tuning.cpp.o.d"
  "fig07_replica_tuning"
  "fig07_replica_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_replica_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
