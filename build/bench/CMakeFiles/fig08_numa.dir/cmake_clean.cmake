file(REMOVE_RECURSE
  "CMakeFiles/fig08_numa.dir/fig08_numa.cpp.o"
  "CMakeFiles/fig08_numa.dir/fig08_numa.cpp.o.d"
  "fig08_numa"
  "fig08_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
