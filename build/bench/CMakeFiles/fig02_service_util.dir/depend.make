# Empty dependencies file for fig02_service_util.
# This may be replaced when dependencies are built.
