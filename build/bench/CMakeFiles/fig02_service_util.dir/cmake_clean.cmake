file(REMOVE_RECURSE
  "CMakeFiles/fig02_service_util.dir/fig02_service_util.cpp.o"
  "CMakeFiles/fig02_service_util.dir/fig02_service_util.cpp.o.d"
  "fig02_service_util"
  "fig02_service_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_service_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
