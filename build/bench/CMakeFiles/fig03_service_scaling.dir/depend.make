# Empty dependencies file for fig03_service_scaling.
# This may be replaced when dependencies are built.
