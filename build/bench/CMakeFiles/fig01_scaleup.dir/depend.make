# Empty dependencies file for fig01_scaleup.
# This may be replaced when dependencies are built.
