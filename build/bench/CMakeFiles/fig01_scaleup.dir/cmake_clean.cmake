file(REMOVE_RECURSE
  "CMakeFiles/fig01_scaleup.dir/fig01_scaleup.cpp.o"
  "CMakeFiles/fig01_scaleup.dir/fig01_scaleup.cpp.o.d"
  "fig01_scaleup"
  "fig01_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
