# Empty dependencies file for tab05_mix_sensitivity.
# This may be replaced when dependencies are built.
