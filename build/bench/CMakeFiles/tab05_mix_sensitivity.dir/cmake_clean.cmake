file(REMOVE_RECURSE
  "CMakeFiles/tab05_mix_sensitivity.dir/tab05_mix_sensitivity.cpp.o"
  "CMakeFiles/tab05_mix_sensitivity.dir/tab05_mix_sensitivity.cpp.o.d"
  "tab05_mix_sensitivity"
  "tab05_mix_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_mix_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
