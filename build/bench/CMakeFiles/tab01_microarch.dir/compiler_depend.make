# Empty compiler generated dependencies file for tab01_microarch.
# This may be replaced when dependencies are built.
