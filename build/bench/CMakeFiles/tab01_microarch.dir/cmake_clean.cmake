file(REMOVE_RECURSE
  "CMakeFiles/tab01_microarch.dir/tab01_microarch.cpp.o"
  "CMakeFiles/tab01_microarch.dir/tab01_microarch.cpp.o.d"
  "tab01_microarch"
  "tab01_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
