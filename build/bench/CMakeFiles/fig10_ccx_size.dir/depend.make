# Empty dependencies file for fig10_ccx_size.
# This may be replaced when dependencies are built.
