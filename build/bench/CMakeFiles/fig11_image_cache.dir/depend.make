# Empty dependencies file for fig11_image_cache.
# This may be replaced when dependencies are built.
