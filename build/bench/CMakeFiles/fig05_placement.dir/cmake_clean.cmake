file(REMOVE_RECURSE
  "CMakeFiles/fig05_placement.dir/fig05_placement.cpp.o"
  "CMakeFiles/fig05_placement.dir/fig05_placement.cpp.o.d"
  "fig05_placement"
  "fig05_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
