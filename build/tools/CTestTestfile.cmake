# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(msim_smoke "/root/repo/build/tools/msim" "--machine" "small8" "--users" "20" "--warmup-s" "0.1" "--measure-s" "0.2")
set_tests_properties(msim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(msim_rejects_bad_flag "/root/repo/build/tools/msim" "--bogus")
set_tests_properties(msim_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
