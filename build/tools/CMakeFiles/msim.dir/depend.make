# Empty dependencies file for msim.
# This may be replaced when dependencies are built.
