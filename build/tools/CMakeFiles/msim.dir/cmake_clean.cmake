file(REMOVE_RECURSE
  "CMakeFiles/msim.dir/msim.cpp.o"
  "CMakeFiles/msim.dir/msim.cpp.o.d"
  "msim"
  "msim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
