file(REMOVE_RECURSE
  "libmicroscale_db.a"
)
