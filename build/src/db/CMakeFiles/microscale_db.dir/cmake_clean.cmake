file(REMOVE_RECURSE
  "CMakeFiles/microscale_db.dir/store.cc.o"
  "CMakeFiles/microscale_db.dir/store.cc.o.d"
  "libmicroscale_db.a"
  "libmicroscale_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
