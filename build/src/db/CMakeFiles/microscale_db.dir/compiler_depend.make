# Empty compiler generated dependencies file for microscale_db.
# This may be replaced when dependencies are built.
