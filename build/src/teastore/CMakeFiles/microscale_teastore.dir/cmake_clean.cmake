file(REMOVE_RECURSE
  "CMakeFiles/microscale_teastore.dir/app.cc.o"
  "CMakeFiles/microscale_teastore.dir/app.cc.o.d"
  "CMakeFiles/microscale_teastore.dir/profiles.cc.o"
  "CMakeFiles/microscale_teastore.dir/profiles.cc.o.d"
  "libmicroscale_teastore.a"
  "libmicroscale_teastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_teastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
