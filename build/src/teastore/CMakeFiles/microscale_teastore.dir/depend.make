# Empty dependencies file for microscale_teastore.
# This may be replaced when dependencies are built.
