file(REMOVE_RECURSE
  "libmicroscale_teastore.a"
)
