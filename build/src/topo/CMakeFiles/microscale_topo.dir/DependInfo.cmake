
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/machine.cc" "src/topo/CMakeFiles/microscale_topo.dir/machine.cc.o" "gcc" "src/topo/CMakeFiles/microscale_topo.dir/machine.cc.o.d"
  "/root/repo/src/topo/params.cc" "src/topo/CMakeFiles/microscale_topo.dir/params.cc.o" "gcc" "src/topo/CMakeFiles/microscale_topo.dir/params.cc.o.d"
  "/root/repo/src/topo/presets.cc" "src/topo/CMakeFiles/microscale_topo.dir/presets.cc.o" "gcc" "src/topo/CMakeFiles/microscale_topo.dir/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/microscale_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
