file(REMOVE_RECURSE
  "libmicroscale_topo.a"
)
