# Empty compiler generated dependencies file for microscale_topo.
# This may be replaced when dependencies are built.
