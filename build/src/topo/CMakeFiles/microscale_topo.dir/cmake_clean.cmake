file(REMOVE_RECURSE
  "CMakeFiles/microscale_topo.dir/machine.cc.o"
  "CMakeFiles/microscale_topo.dir/machine.cc.o.d"
  "CMakeFiles/microscale_topo.dir/params.cc.o"
  "CMakeFiles/microscale_topo.dir/params.cc.o.d"
  "CMakeFiles/microscale_topo.dir/presets.cc.o"
  "CMakeFiles/microscale_topo.dir/presets.cc.o.d"
  "libmicroscale_topo.a"
  "libmicroscale_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
