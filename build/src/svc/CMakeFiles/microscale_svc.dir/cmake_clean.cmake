file(REMOVE_RECURSE
  "CMakeFiles/microscale_svc.dir/mesh.cc.o"
  "CMakeFiles/microscale_svc.dir/mesh.cc.o.d"
  "CMakeFiles/microscale_svc.dir/service.cc.o"
  "CMakeFiles/microscale_svc.dir/service.cc.o.d"
  "libmicroscale_svc.a"
  "libmicroscale_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
