# Empty dependencies file for microscale_svc.
# This may be replaced when dependencies are built.
