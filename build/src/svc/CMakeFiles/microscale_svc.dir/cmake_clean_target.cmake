file(REMOVE_RECURSE
  "libmicroscale_svc.a"
)
