file(REMOVE_RECURSE
  "CMakeFiles/microscale_net.dir/network.cc.o"
  "CMakeFiles/microscale_net.dir/network.cc.o.d"
  "libmicroscale_net.a"
  "libmicroscale_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
