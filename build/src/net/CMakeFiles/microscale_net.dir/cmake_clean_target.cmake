file(REMOVE_RECURSE
  "libmicroscale_net.a"
)
