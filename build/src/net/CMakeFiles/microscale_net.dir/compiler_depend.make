# Empty compiler generated dependencies file for microscale_net.
# This may be replaced when dependencies are built.
