file(REMOVE_RECURSE
  "CMakeFiles/microscale_loadgen.dir/driver.cc.o"
  "CMakeFiles/microscale_loadgen.dir/driver.cc.o.d"
  "CMakeFiles/microscale_loadgen.dir/mix.cc.o"
  "CMakeFiles/microscale_loadgen.dir/mix.cc.o.d"
  "libmicroscale_loadgen.a"
  "libmicroscale_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
