file(REMOVE_RECURSE
  "libmicroscale_loadgen.a"
)
