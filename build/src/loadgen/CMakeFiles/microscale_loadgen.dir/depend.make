# Empty dependencies file for microscale_loadgen.
# This may be replaced when dependencies are built.
