file(REMOVE_RECURSE
  "libmicroscale_perf.a"
)
