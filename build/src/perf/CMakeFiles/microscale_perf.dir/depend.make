# Empty dependencies file for microscale_perf.
# This may be replaced when dependencies are built.
