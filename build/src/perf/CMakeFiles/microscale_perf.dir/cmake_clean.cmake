file(REMOVE_RECURSE
  "CMakeFiles/microscale_perf.dir/report.cc.o"
  "CMakeFiles/microscale_perf.dir/report.cc.o.d"
  "CMakeFiles/microscale_perf.dir/sampler.cc.o"
  "CMakeFiles/microscale_perf.dir/sampler.cc.o.d"
  "CMakeFiles/microscale_perf.dir/synth.cc.o"
  "CMakeFiles/microscale_perf.dir/synth.cc.o.d"
  "libmicroscale_perf.a"
  "libmicroscale_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
