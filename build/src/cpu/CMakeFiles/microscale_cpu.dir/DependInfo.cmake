
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/counters.cc" "src/cpu/CMakeFiles/microscale_cpu.dir/counters.cc.o" "gcc" "src/cpu/CMakeFiles/microscale_cpu.dir/counters.cc.o.d"
  "/root/repo/src/cpu/exec.cc" "src/cpu/CMakeFiles/microscale_cpu.dir/exec.cc.o" "gcc" "src/cpu/CMakeFiles/microscale_cpu.dir/exec.cc.o.d"
  "/root/repo/src/cpu/work.cc" "src/cpu/CMakeFiles/microscale_cpu.dir/work.cc.o" "gcc" "src/cpu/CMakeFiles/microscale_cpu.dir/work.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/microscale_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/microscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/microscale_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
