# Empty compiler generated dependencies file for microscale_cpu.
# This may be replaced when dependencies are built.
