file(REMOVE_RECURSE
  "CMakeFiles/microscale_cpu.dir/counters.cc.o"
  "CMakeFiles/microscale_cpu.dir/counters.cc.o.d"
  "CMakeFiles/microscale_cpu.dir/exec.cc.o"
  "CMakeFiles/microscale_cpu.dir/exec.cc.o.d"
  "CMakeFiles/microscale_cpu.dir/work.cc.o"
  "CMakeFiles/microscale_cpu.dir/work.cc.o.d"
  "libmicroscale_cpu.a"
  "libmicroscale_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
