file(REMOVE_RECURSE
  "libmicroscale_cpu.a"
)
