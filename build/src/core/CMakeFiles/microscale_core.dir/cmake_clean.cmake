file(REMOVE_RECURSE
  "CMakeFiles/microscale_core.dir/experiment.cc.o"
  "CMakeFiles/microscale_core.dir/experiment.cc.o.d"
  "CMakeFiles/microscale_core.dir/json.cc.o"
  "CMakeFiles/microscale_core.dir/json.cc.o.d"
  "CMakeFiles/microscale_core.dir/placement.cc.o"
  "CMakeFiles/microscale_core.dir/placement.cc.o.d"
  "CMakeFiles/microscale_core.dir/tuner.cc.o"
  "CMakeFiles/microscale_core.dir/tuner.cc.o.d"
  "libmicroscale_core.a"
  "libmicroscale_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
