# Empty dependencies file for microscale_core.
# This may be replaced when dependencies are built.
