file(REMOVE_RECURSE
  "libmicroscale_core.a"
)
