# Empty dependencies file for microscale_sim.
# This may be replaced when dependencies are built.
