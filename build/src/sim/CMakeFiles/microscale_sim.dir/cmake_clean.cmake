file(REMOVE_RECURSE
  "CMakeFiles/microscale_sim.dir/simulation.cc.o"
  "CMakeFiles/microscale_sim.dir/simulation.cc.o.d"
  "libmicroscale_sim.a"
  "libmicroscale_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
