file(REMOVE_RECURSE
  "libmicroscale_sim.a"
)
