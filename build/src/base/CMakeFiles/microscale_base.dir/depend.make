# Empty dependencies file for microscale_base.
# This may be replaced when dependencies are built.
