file(REMOVE_RECURSE
  "libmicroscale_base.a"
)
