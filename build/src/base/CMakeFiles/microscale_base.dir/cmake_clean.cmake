file(REMOVE_RECURSE
  "CMakeFiles/microscale_base.dir/args.cc.o"
  "CMakeFiles/microscale_base.dir/args.cc.o.d"
  "CMakeFiles/microscale_base.dir/cpumask.cc.o"
  "CMakeFiles/microscale_base.dir/cpumask.cc.o.d"
  "CMakeFiles/microscale_base.dir/logging.cc.o"
  "CMakeFiles/microscale_base.dir/logging.cc.o.d"
  "CMakeFiles/microscale_base.dir/random.cc.o"
  "CMakeFiles/microscale_base.dir/random.cc.o.d"
  "CMakeFiles/microscale_base.dir/stats.cc.o"
  "CMakeFiles/microscale_base.dir/stats.cc.o.d"
  "CMakeFiles/microscale_base.dir/table.cc.o"
  "CMakeFiles/microscale_base.dir/table.cc.o.d"
  "libmicroscale_base.a"
  "libmicroscale_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
