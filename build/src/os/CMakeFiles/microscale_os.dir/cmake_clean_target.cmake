file(REMOVE_RECURSE
  "libmicroscale_os.a"
)
