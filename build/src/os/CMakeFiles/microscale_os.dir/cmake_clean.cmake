file(REMOVE_RECURSE
  "CMakeFiles/microscale_os.dir/kernel.cc.o"
  "CMakeFiles/microscale_os.dir/kernel.cc.o.d"
  "CMakeFiles/microscale_os.dir/thread.cc.o"
  "CMakeFiles/microscale_os.dir/thread.cc.o.d"
  "libmicroscale_os.a"
  "libmicroscale_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microscale_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
