# Empty compiler generated dependencies file for microscale_os.
# This may be replaced when dependencies are built.
