/**
 * @file
 * FIG-7: per-service replica tuning - the greedy search that produces
 * the "performance-tuned baseline" the paper compares against.
 * Starting from one replica per service, capacity is added where it
 * helps most; the trace shows which services need scale-out. The
 * tuner evaluates each round's candidates in parallel on the sweep
 * runner.
 */

#include "common.hh"
#include "core/tuner.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig c = benchx::paperConfig();
    // Tune at half scale to keep the search affordable; the result
    // transfers (replica ratios follow demand shares).
    c.cores = 32;
    c.smt = true;
    c.load.users = 1500;
    c.warmup = benchx::fastMode() ? 150 * kMillisecond
                                  : 300 * kMillisecond;
    c.measure = benchx::fastMode() ? 300 * kMillisecond
                                   : 600 * kMillisecond;
    c.sizing.webui = {1, 64};
    c.sizing.auth = {1, 32};
    c.sizing.persistence = {1, 48};
    c.sizing.recommender = {1, 24};
    c.sizing.image = {1, 64};
    benchx::SeriesReporter rep(
        "FIG-7", "fig07_replica_tuning",
        "greedy replica tuning toward the baseline", c);

    core::TunerParams tp;
    tp.maxRounds = benchx::fastMode() ? 2 : 4;
    tp.maxReplicasPerService = 4;
    tp.jobs = benchx::jobs();
    const core::TunerResult result = core::tuneReplicas(c, tp);

    TextTable t({"step", "service", "replicas", "tput (req/s)",
                 "accepted"});
    unsigned step = 0;
    for (const core::TunerStep &s : result.steps) {
        t.row()
            .cell(step++)
            .cell(s.changedService.empty() ? "(initial)"
                                           : s.changedService)
            .cell(s.replicas)
            .cell(s.throughputRps, 0)
            .cell(s.accepted ? "yes" : "no");
    }
    rep.table(t, "FIG-7 | Replica-tuning trace");

    TextTable best({"service", "tuned replicas"});
    best.row().cell("webui").cell(result.best.webui.replicas);
    best.row().cell("auth").cell(result.best.auth.replicas);
    best.row().cell("persistence").cell(result.best.persistence.replicas);
    best.row().cell("recommender").cell(result.best.recommender.replicas);
    best.row().cell("image").cell(result.best.image.replicas);
    rep.table(best, "FIG-7 | Tuned sizing (final tput = " +
                        formatDouble(result.throughputRps, 0) +
                        " req/s)");
    rep.finish();
    return 0;
}
