/**
 * @file
 * FIG-17: scale-up vs scale-out. Sweeps cluster size 1 -> 16 server32
 * machines joined by a LAN fabric, with the persistence tier sharded
 * behind a consistent-hash cache tier, under two open-loop schedules
 * (flash-crowd spike, diurnal sine) whose peak is far beyond what one
 * machine sustains. Two more arms replay the spike against a 4-node
 * pool that starts on one machine and relies on the NodeScaler (warm
 * pool vs cold boots) to bring peers up. The figure reports goodput,
 * tail latency, fabric share, cache hit rate and shard balance per
 * cell, and asserts the headline claims: the 1-node deployment
 * saturates while >= 4 nodes sustain >= 3x its goodput with bounded
 * p99, and the cache tier absorbs reads so shard traffic stays below
 * the lookup rate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "autoscale/elastic.hh"
#include "base/logging.hh"
#include "cluster/cluster.hh"
#include "common.hh"
#include "teastore/chaos.hh"
#include "topo/presets.hh"

using namespace microscale;

namespace
{

const core::RunResult &
byLabel(const std::vector<core::SweepOutcome> &runs,
        const std::string &label)
{
    for (const core::SweepOutcome &o : runs) {
        if (o.label == label)
            return o.result;
    }
    fatal("fig17: no sweep point labeled '", label, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);
    const bool fast = benchx::fastMode();

    const Tick warmup = fast ? 500 * kMillisecond : 1 * kSecond;
    const Tick measure = fast ? 2 * kSecond : 5 * kSecond;

    // One server32 machine saturates around 1.4k req/s on this
    // per-node deployment, so even the schedules' floor is beyond it:
    // the 1-node arm sheds around the clock (its goodput IS the
    // single-machine ceiling) while 4 nodes ride the whole waveform.
    const double base_rps = 2000.0;
    const double peak_rps = 12000.0;

    loadgen::LoadSchedule spike = autoscale::makeSchedule(
        "spike", base_rps, peak_rps, warmup, measure);
    loadgen::LoadSchedule diurnal = autoscale::makeSchedule(
        "diurnal", base_rps, peak_rps, warmup, measure);

    // Per-node world: a server32 machine (4 CCX x 4 cores x SMT2)
    // with a sizing scaled to it. The resilient policy is on so
    // saturation shows up as goodput loss, not unbounded queues.
    core::ExperimentConfig base;
    base.machine = topo::server32();
    base.demand = benchx::calibratedDemand();
    base.placement = core::PlacementKind::CcxAware;
    base.sizing.webui = {1, 16};
    base.sizing.auth = {1, 8};
    base.sizing.persistence = {1, 12};
    base.sizing.recommender = {1, 8};
    base.sizing.image = {1, 16};
    base.sizing.registry = {1, 1};
    base.resilience = teastore::resilientPolicy();
    base.warmup = warmup;
    base.measure = measure;
    base.openLoopRps = peak_rps;

    cluster::ClusterParams proto;
    proto.nodeMachine = topo::server32();
    cluster::applyFabricPreset(proto, "lan");
    proto.shards = 2;
    proto.cacheNodes = 2;
    proto.cacheCapacity = 4096;

    const std::vector<unsigned> node_counts =
        fast ? std::vector<unsigned>{1, 2, 4}
             : std::vector<unsigned>{1, 2, 4, 8, 16};
    const std::vector<const loadgen::LoadSchedule *> schedules = {
        &spike, &diurnal};

    benchx::SeriesReporter rep(
        "FIG-17", "fig17_scaleout",
        "goodput ceiling, fabric share and cache/shard behavior when "
        "scaling out 1 -> 16 server32 nodes over a LAN fabric under "
        "spike and diurnal open-loop schedules, plus node-level "
        "autoscaling from a one-node start (warm pool vs cold boots)",
        base);

    std::vector<core::SweepPoint> points;
    for (const loadgen::LoadSchedule *sched : schedules) {
        for (unsigned nodes : node_counts) {
            cluster::ClusterParams params = proto;
            params.nodes = nodes;

            core::SweepPoint p;
            p.label =
                sched->name() + "/n" + std::to_string(nodes);
            p.config = base;
            p.config.loadSchedule = *sched;
            p.runner = [params](const core::ExperimentConfig &c) {
                return cluster::runScaleout(c, params);
            };
            points.push_back(std::move(p));
        }
    }
    // Node-scaler arms: a 4-node pool serving the spike from a 1-node
    // start. "warm" holds every spare node booted; "cold" boots them
    // on demand and eats the full provisioning lag.
    struct ScalerArm
    {
        const char *name;
        unsigned warmPool;
    };
    const std::vector<ScalerArm> scaler_arms = {{"warm", 3},
                                                {"cold", 0}};
    for (const ScalerArm &arm : scaler_arms) {
        cluster::ClusterParams params = proto;
        params.nodes = 4;
        params.initialNodes = 1;
        params.scaler.enabled = true;
        params.scaler.period = 250 * kMillisecond;
        params.scaler.hiUtilization = 0.60;
        params.scaler.consecutive = 2;
        params.scaler.warmPool = arm.warmPool;
        params.scaler.warmBootDelay = 250 * kMillisecond;
        params.scaler.coldBootDelay = 1500 * kMillisecond;
        params.scaler.cooldown = 500 * kMillisecond;

        core::SweepPoint p;
        p.label = std::string("spike/scaler-") + arm.name;
        p.config = base;
        p.config.loadSchedule = spike;
        p.runner = [params](const core::ExperimentConfig &c) {
            return cluster::runScaleout(c, params);
        };
        points.push_back(std::move(p));
    }

    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"schedule", "nodes", "goodput (req/s)", "p99 (ms)",
                 "fabric %", "hit rate", "shard reqs", "shard cv",
                 "provisioned", "active@end"});
    for (const core::SweepOutcome &o : runs) {
        const core::RunResult &r = o.result;
        const core::ScaleoutSummary &so = r.scaleout;
        t.row()
            .cell(o.label)
            .cell(so.nodes)
            .cell(r.resilience.goodputRps, 0)
            .cell(r.latency.p99Ms, 1)
            .cell(formatDouble(so.fabricShare * 100.0, 1) + "%")
            .cell(so.cacheHitRate, 2)
            .cell(so.shardRequests)
            .cell(so.shardLoadCv, 2)
            .cell(so.nodesProvisioned)
            .cell(so.activeNodesEnd);
    }
    rep.table(t, "FIG-17 | Scale-out sweep (schedule x cluster size) "
                 "and node-scaler arms (goodput over the open-loop "
                 "window)");
    rep.finish();

    // Headline claims.
    bool ok = true;
    // (a) Crossover: on at least one schedule the single machine
    // saturates (sheds a large share of the offered peak) while the
    // 4-node cluster sustains >= 3x its goodput at a bounded p99.
    const double p99_bound_ms = 500.0;
    bool crossover = false;
    for (const loadgen::LoadSchedule *sched : schedules) {
        const core::RunResult &one = byLabel(runs, sched->name() + "/n1");
        const core::RunResult &four =
            byLabel(runs, sched->name() + "/n4");
        const bool pass =
            four.resilience.goodputRps >=
                3.0 * one.resilience.goodputRps &&
            four.latency.p99Ms < p99_bound_ms;
        std::printf("check (a) %-8s 1-node %6.0f req/s -> 4-node %6.0f "
                    "req/s (x%.2f), 4-node p99 %6.1f ms  [%s]\n",
                    sched->name().c_str(), one.resilience.goodputRps,
                    four.resilience.goodputRps,
                    four.resilience.goodputRps /
                        std::max(1.0, one.resilience.goodputRps),
                    four.latency.p99Ms, pass ? "PASS" : "FAIL");
        crossover = crossover || pass;
    }
    ok = ok && crossover;
    // (b) Cache offload: at the 4-node spike point the cache tier
    // absorbs a real share of reads, so the shard tier sees less
    // traffic than the lookup stream it fronts.
    {
        const core::ScaleoutSummary &so =
            byLabel(runs, "spike/n4").scaleout;
        const std::uint64_t lookups = so.cacheHits + so.cacheMisses;
        const bool pass = so.cacheHitRate > 0.2 &&
                          so.shardRequests < lookups;
        std::printf("check (b) spike/n4 hit rate %.2f, shard reqs "
                    "%llu vs %llu lookups  [%s]\n",
                    so.cacheHitRate,
                    static_cast<unsigned long long>(so.shardRequests),
                    static_cast<unsigned long long>(lookups),
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }
    // (c) Elasticity: both scaler arms grow past one machine, and the
    // warm pool provisions strictly faster than cold boots.
    {
        const core::ScaleoutSummary &warm =
            byLabel(runs, "spike/scaler-warm").scaleout;
        const core::ScaleoutSummary &cold =
            byLabel(runs, "spike/scaler-cold").scaleout;
        const bool pass = warm.activeNodesEnd > 1 &&
                          cold.activeNodesEnd > 1 &&
                          warm.provisionLagMeanMs <
                              cold.provisionLagMeanMs;
        std::printf("check (c) scaler warm %u nodes (lag %.0f ms) vs "
                    "cold %u nodes (lag %.0f ms)  [%s]\n",
                    warm.activeNodesEnd, warm.provisionLagMeanMs,
                    cold.activeNodesEnd, cold.provisionLagMeanMs,
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }
    if (!ok)
        fatal("FIG-17 headline claims not met (see checks above)");
    return 0;
}
