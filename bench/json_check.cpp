/**
 * @file
 * json_check: CI validator for emitted BENCH_*.json artifacts.
 *
 *   json_check [--elastic] [--overload] [--trace] [--grayfail]
 *              [--scaleout] [--replication] [--fanout]
 *              FILE MIN_POINTS [LABEL...]
 *
 * Parses FILE with core::parseJson and requires the sweep-harness
 * schema: artifact/caption/machine strings, the expected
 * schema_version, the v3 speed stamps (finite non-negative
 * wall_seconds and events_processed), a points array of at least
 * MIN_POINTS entries each carrying a label and a result with a
 * numeric throughput_rps, and a non-empty tables array. Any LABEL arguments must appear among the
 * point labels. Points carrying an "elastic" block (FIG-13) have it
 * validated - non-empty schedule/policy/placer names, finite
 * non-negative SLO-violation seconds, core-seconds and steady-state
 * CPUs - and --elastic additionally requires every point to carry
 * one. Points carrying an "overload" block (FIG-14) have its shed
 * counts, limiter trajectory and brownout duty cycle validated
 * (finite, non-negative, duty cycle and dimmer within [0, 1]);
 * --overload requires at least one point to carry the block (the
 * unprotected baseline arms legitimately lack it). Points carrying a
 * "trace" block (FIG-15) have its attribution validated - every
 * component finite and non-negative, and the per-service components
 * plus the unattributed residue summing to the mean end-to-end
 * latency within 0.1% - and --trace requires every point to carry
 * one. Points carrying a "grayfail" block (FIG-16) have its ejection
 * and transport counters validated (numeric, finite, non-negative,
 * ejection_enabled a 0/1 flag, ejected_at_end never exceeding the
 * ejection count) and --grayfail requires every point to carry one.
 * Points carrying a "scaleout" block (FIG-17) have its fabric, cache,
 * shard and node-scaler counters validated (numeric, finite,
 * non-negative, at least one node, active_nodes_end and the
 * share/hit-rate ratios within range) and --scaleout requires every
 * point to carry one. Points carrying a "replication" block (FIG-18)
 * have its quorum, hinted-handoff and rebalance counters validated
 * (numeric, finite, non-negative, quorums within [1, factor],
 * replayed hints never exceeding queued ones, completed rebalances
 * never exceeding started ones) plus the correctness invariants: the
 * lost-acked-write and stale-quorum-read counters must be zero, and
 * when the post-drain sweep ran (consistency_checked = 1) the block
 * is a proof the run kept every acknowledged write quorum-readable.
 * --replication requires at least one point to carry the block and
 * every carried block to have consistency_checked = 1 (the R=1
 * baseline arms legitimately lack the block entirely). Points
 * carrying a "fanout" block (FIG-19) have its graph shape, hedge
 * configuration and hedge counters validated (numeric, finite,
 * non-negative, hedged a 0/1 flag, wins/cancellations never exceeding
 * launched hedges, no hedges on unhedged points) and --fanout
 * requires every point to carry one.
 * Independently of any flag, every number in the document must
 * be finite: the writer emits null for NaN/Inf, so a raw non-finite
 * literal (or a null where a metric belongs) fails the check. Exits
 * non-zero with a diagnostic on the first violation.
 */

#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common.hh"
#include "core/json.hh"

using namespace microscale;

namespace
{

[[noreturn]] void
die(const std::string &what)
{
    std::cerr << "json_check: " << what << "\n";
    std::exit(1);
}

/**
 * Validate one point's "elastic" block: the FIG-13 metrics must be
 * present, the right type, and finite (a NaN means an accounting
 * window never saw a sample - a broken run, not a quiet one).
 */
void
checkElastic(const std::string &path, const std::string &label,
             const core::JsonValue &elastic)
{
    const std::string where = path + ": point '" + label + "' elastic: ";
    for (const char *key : {"schedule", "policy", "placer"}) {
        const core::JsonValue *s = elastic.find(key);
        if (!s || !s->isString() || s->stringValue.empty())
            die(where + "missing or empty '" + key + "'");
    }
    for (const char *key :
         {"offered_mean_rps", "offered_peak_rps", "slo_p99_ms",
          "slo_violation_seconds", "core_seconds_granted",
          "steady_state_cpus", "scale_out_lag_mean_ms", "scale_outs",
          "scale_ins"}) {
        const core::JsonValue *n = elastic.find(key);
        if (!n || !n->isNumber())
            die(where + "missing or non-numeric '" + key + "'");
        if (!std::isfinite(n->numberValue))
            die(where + "'" + key + "' is not finite");
        if (n->numberValue < 0)
            die(where + "'" + key + "' is negative");
    }
}

/**
 * Validate one point's "overload" block (FIG-14): the admission name,
 * the per-tier shed counters, the concurrency-limit trajectory and
 * the brownout telemetry must be present, numeric, finite and
 * non-negative, with the duty cycle and dimmers inside [0, 1].
 */
void
checkOverload(const std::string &path, const std::string &label,
              const core::JsonValue &overload)
{
    const std::string where = path + ": point '" + label + "' overload: ";
    const core::JsonValue *adm = overload.find("admission");
    if (!adm || !adm->isString() || adm->stringValue.empty())
        die(where + "missing or empty 'admission'");
    for (const char *key :
         {"codel", "adaptive_lifo", "criticality_aware", "brownout",
          "shed_critical", "shed_normal", "shed_sheddable",
          "codel_drops", "lifo_dequeues", "rejected_total",
          "limit_initial", "limit_min", "limit_max", "limit_final",
          "brownout_duty_cycle", "dimmer_min", "dimmer_final",
          "brownout_skips"}) {
        const core::JsonValue *n = overload.find(key);
        if (!n || !n->isNumber())
            die(where + "missing or non-numeric '" + key + "'");
        if (!std::isfinite(n->numberValue))
            die(where + "'" + key + "' is not finite");
        if (n->numberValue < 0)
            die(where + "'" + key + "' is negative");
    }
    for (const char *key :
         {"brownout_duty_cycle", "dimmer_min", "dimmer_final"}) {
        if (overload.at(key).numberValue > 1.0)
            die(where + "'" + std::string(key) + "' exceeds 1");
    }
}

/**
 * Validate one point's "trace" block (FIG-15): counters and the
 * per-service attribution must be numeric, finite and non-negative,
 * and the attribution must account for the end-to-end latency: the
 * sum of every service component plus unattributed_ms must equal
 * mean_e2e_ms within 0.1% (the partition is exact by construction;
 * the tolerance only absorbs double rounding).
 */
void
checkTrace(const std::string &path, const std::string &label,
           const core::JsonValue &trace)
{
    const std::string where = path + ": point '" + label + "' trace: ";
    for (const char *key :
         {"sample_rate", "roots_seen", "traces_sampled",
          "traces_analyzed", "spans", "mean_e2e_ms"}) {
        const core::JsonValue *n = trace.find(key);
        if (!n || !n->isNumber())
            die(where + "missing or non-numeric '" + key + "'");
        if (!std::isfinite(n->numberValue) || n->numberValue < 0)
            die(where + "'" + key + "' is not finite/non-negative");
    }
    const core::JsonValue *un = trace.find("unattributed_ms");
    if (!un || !un->isNumber() || !std::isfinite(un->numberValue))
        die(where + "missing or non-finite 'unattributed_ms'");
    const core::JsonValue *att = trace.find("attribution");
    if (!att || !att->isObject())
        die(where + "missing 'attribution' object");
    if (trace.at("traces_analyzed").numberValue == 0)
        return; // nothing completed in the window; sums are vacuous
    double total = un->numberValue;
    for (const auto &[svc_name, a] : att->members) {
        for (const char *key :
             {"queue_ms", "compute_ms", "stall_ms", "fanout_wait_ms",
              "retry_backoff_ms", "shed_ms", "network_ms", "total_ms"}) {
            const core::JsonValue *n = a.find(key);
            if (!n || !n->isNumber())
                die(where + "service '" + svc_name +
                    "' missing or non-numeric '" + key + "'");
            if (!std::isfinite(n->numberValue) || n->numberValue < 0)
                die(where + "service '" + svc_name + "' '" + key +
                    "' is not finite/non-negative");
        }
        total += a.at("queue_ms").numberValue +
                 a.at("compute_ms").numberValue +
                 a.at("stall_ms").numberValue +
                 a.at("fanout_wait_ms").numberValue +
                 a.at("retry_backoff_ms").numberValue +
                 a.at("shed_ms").numberValue +
                 a.at("network_ms").numberValue;
    }
    const double e2e = trace.at("mean_e2e_ms").numberValue;
    const double tol = std::max(1e-6, e2e * 1e-3);
    if (std::abs(total - e2e) > tol) {
        die(where + "attribution sums to " + std::to_string(total) +
            " ms but mean_e2e_ms is " + std::to_string(e2e));
    }
}

/**
 * Validate one point's "grayfail" block (FIG-16): the ejection and
 * transport counters must be numeric, finite and non-negative,
 * ejection_enabled must be a 0/1 flag, and replicas still ejected at
 * the end can never exceed the ejections that happened.
 */
void
checkGrayFail(const std::string &path, const std::string &label,
              const core::JsonValue &grayfail)
{
    const std::string where = path + ": point '" + label + "' grayfail: ";
    for (const char *key :
         {"ejection_enabled", "ejections", "unejections",
          "ejections_denied", "ejected_at_end", "packets_dropped",
          "packets_duplicated", "packets_blackholed", "faults_applied",
          "faults_skipped"}) {
        const core::JsonValue *n = grayfail.find(key);
        if (!n || !n->isNumber())
            die(where + "missing or non-numeric '" + key + "'");
        if (!std::isfinite(n->numberValue))
            die(where + "'" + key + "' is not finite");
        if (n->numberValue < 0)
            die(where + "'" + key + "' is negative");
    }
    const double enabled = grayfail.at("ejection_enabled").numberValue;
    if (enabled != 0.0 && enabled != 1.0)
        die(where + "'ejection_enabled' is not 0/1");
    if (grayfail.at("ejected_at_end").numberValue >
        grayfail.at("ejections").numberValue)
        die(where + "'ejected_at_end' exceeds 'ejections'");
}

/**
 * Validate one point's "scaleout" block (FIG-17): cluster shape,
 * fabric accounting, cache-tier counters and node-scaler telemetry
 * must be numeric, finite and non-negative, with the ratio metrics
 * (fabric_share, cache_hit_rate) inside [0, 1] and the active node
 * count inside the provisioned pool.
 */
void
checkScaleout(const std::string &path, const std::string &label,
              const core::JsonValue &scaleout)
{
    const std::string where = path + ": point '" + label + "' scaleout: ";
    for (const char *key :
         {"nodes", "active_nodes_end", "shards", "cache_nodes",
          "fabric_messages", "fabric_bytes", "fabric_share",
          "cache_hits", "cache_misses", "cache_invalidations",
          "cache_evictions", "cache_hit_rate", "shard_requests",
          "shard_load_cv", "nodes_provisioned", "warm_provisions",
          "cold_provisions", "provision_lag_mean_ms"}) {
        const core::JsonValue *n = scaleout.find(key);
        if (!n || !n->isNumber())
            die(where + "missing or non-numeric '" + key + "'");
        if (!std::isfinite(n->numberValue))
            die(where + "'" + key + "' is not finite");
        if (n->numberValue < 0)
            die(where + "'" + key + "' is negative");
    }
    if (scaleout.at("nodes").numberValue < 1)
        die(where + "cluster reports no nodes");
    if (scaleout.at("active_nodes_end").numberValue < 1 ||
        scaleout.at("active_nodes_end").numberValue >
            scaleout.at("nodes").numberValue)
        die(where + "'active_nodes_end' outside [1, nodes]");
    for (const char *key : {"fabric_share", "cache_hit_rate"}) {
        if (scaleout.at(key).numberValue > 1.0)
            die(where + "'" + std::string(key) + "' exceeds 1");
    }
    // Warm and cold provisions partition the provision count.
    if (scaleout.at("warm_provisions").numberValue +
            scaleout.at("cold_provisions").numberValue !=
        scaleout.at("nodes_provisioned").numberValue)
        die(where + "warm+cold provisions != nodes_provisioned");
}

/**
 * Validate one point's "replication" block (FIG-18): the quorum
 * write/read, hinted-handoff and rebalance counters must be numeric,
 * finite and non-negative with the internal orderings intact, and the
 * two violation counters must be zero — a run that lost an
 * acknowledged write or served a stale quorum read must never pass
 * CI. With `require_checked` (--replication) the post-drain
 * consistency sweep must actually have run.
 */
void
checkReplication(const std::string &path, const std::string &label,
                 const core::JsonValue &replication, bool require_checked)
{
    const std::string where =
        path + ": point '" + label + "' replication: ";
    for (const char *key :
         {"factor", "write_quorum", "read_quorum", "quorum_writes",
          "write_failures", "write_ack_p50_ms", "write_ack_p99_ms",
          "quorum_reads", "read_failures", "read_repairs",
          "read_refetches", "read_p50_ms", "read_p99_ms",
          "hints_queued", "hints_replayed", "hints_dropped",
          "hint_depth_peak", "rebalances_started",
          "rebalances_completed", "rebalance_batches",
          "rebalance_bytes", "dual_reads", "rebalance_ms_total",
          "consistency_checked", "acked_writes", "lost_acked_writes",
          "stale_quorum_reads"}) {
        const core::JsonValue *n = replication.find(key);
        if (!n || !n->isNumber())
            die(where + "missing or non-numeric '" + key + "'");
        if (!std::isfinite(n->numberValue))
            die(where + "'" + key + "' is not finite");
        if (n->numberValue < 0)
            die(where + "'" + key + "' is negative");
    }
    const double factor = replication.at("factor").numberValue;
    if (factor < 2)
        die(where + "block present but factor < 2");
    for (const char *key : {"write_quorum", "read_quorum"}) {
        const double q = replication.at(key).numberValue;
        if (q < 1 || q > factor)
            die(where + "'" + std::string(key) +
                "' outside [1, factor]");
    }
    if (replication.at("hints_replayed").numberValue >
        replication.at("hints_queued").numberValue)
        die(where + "'hints_replayed' exceeds 'hints_queued'");
    if (replication.at("rebalances_completed").numberValue >
        replication.at("rebalances_started").numberValue)
        die(where + "'rebalances_completed' exceeds "
                    "'rebalances_started'");
    const double checked =
        replication.at("consistency_checked").numberValue;
    if (checked != 0.0 && checked != 1.0)
        die(where + "'consistency_checked' is not 0/1");
    if (require_checked && checked != 1.0)
        die(where + "consistency sweep did not run (--replication)");
    // The invariants themselves: no acknowledged write may be lost
    // and no quorum read may have returned stale data.
    if (replication.at("lost_acked_writes").numberValue != 0.0)
        die(where + "lost acked writes reported");
    if (replication.at("stale_quorum_reads").numberValue != 0.0)
        die(where + "stale quorum reads reported");
}

/**
 * Validate one point's "fanout" block (FIG-19): the graph shape, the
 * hedge configuration and the hedge counters must be numeric, finite
 * and non-negative, the graph non-trivial (depth and services at
 * least 1), hedged a 0/1 flag, and the counter orderings intact: wins
 * and cancellations can never exceed the hedges actually launched,
 * and the hedge share must stay within [0, 1] relative slack of
 * launched/first_attempts.
 */
void
checkFanout(const std::string &path, const std::string &label,
            const core::JsonValue &fanout)
{
    const std::string where = path + ": point '" + label + "' fanout: ";
    const core::JsonValue *app = fanout.find("app");
    if (!app || !app->isString() || app->stringValue.empty())
        die(where + "missing or empty 'app'");
    for (const char *key :
         {"depth", "services", "fan_width", "hedged", "hedge_delay_ms",
          "hedge_quantile", "hedge_budget_ratio", "first_attempts",
          "hedges_launched", "hedge_wins", "hedges_denied",
          "hedges_cancelled", "hedge_share", "p50_ms", "p99_ms",
          "amplification"}) {
        const core::JsonValue *n = fanout.find(key);
        if (!n || !n->isNumber())
            die(where + "missing or non-numeric '" + key + "'");
        if (!std::isfinite(n->numberValue))
            die(where + "'" + key + "' is not finite");
        if (n->numberValue < 0)
            die(where + "'" + key + "' is negative");
    }
    if (fanout.at("depth").numberValue < 1)
        die(where + "'depth' is below 1");
    if (fanout.at("services").numberValue < 1)
        die(where + "'services' is below 1");
    const double hedged = fanout.at("hedged").numberValue;
    if (hedged != 0.0 && hedged != 1.0)
        die(where + "'hedged' is not 0/1");
    const double launched = fanout.at("hedges_launched").numberValue;
    if (hedged == 0.0 && launched != 0.0)
        die(where + "hedges launched on an unhedged point");
    if (fanout.at("hedge_wins").numberValue > launched)
        die(where + "'hedge_wins' exceeds 'hedges_launched'");
    if (fanout.at("hedges_cancelled").numberValue > launched)
        die(where + "'hedges_cancelled' exceeds 'hedges_launched'");
}

/**
 * Reject any non-finite number anywhere in the document. The writer
 * turns NaN/Inf into null, and the parser accepts 1e999 as infinity;
 * either way a non-finite value means a metric pipeline is broken.
 */
void
rejectNonFinite(const std::string &path, const core::JsonValue &v)
{
    switch (v.kind) {
    case core::JsonValue::Kind::Number:
        if (!std::isfinite(v.numberValue))
            die(path + ": non-finite number in document");
        break;
    case core::JsonValue::Kind::Object:
        for (const auto &[key, member] : v.members)
            rejectNonFinite(path, member);
        break;
    case core::JsonValue::Kind::Array:
        for (const core::JsonValue &e : v.elements)
            rejectNonFinite(path, e);
        break;
    default:
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int arg = 1;
    bool require_elastic = false;
    bool require_overload = false;
    bool require_trace = false;
    bool require_grayfail = false;
    bool require_scaleout = false;
    bool require_replication = false;
    bool require_fanout = false;
    while (arg < argc) {
        const std::string flag = argv[arg];
        if (flag == "--elastic")
            require_elastic = true;
        else if (flag == "--overload")
            require_overload = true;
        else if (flag == "--trace")
            require_trace = true;
        else if (flag == "--grayfail")
            require_grayfail = true;
        else if (flag == "--scaleout")
            require_scaleout = true;
        else if (flag == "--replication")
            require_replication = true;
        else if (flag == "--fanout")
            require_fanout = true;
        else
            break;
        ++arg;
    }
    if (argc - arg < 2)
        die("usage: json_check [--elastic] [--overload] [--trace] "
            "[--grayfail] [--scaleout] [--replication] [--fanout] "
            "FILE MIN_POINTS [LABEL...]");
    const std::string path = argv[arg++];
    const unsigned long min_points = std::stoul(argv[arg++]);

    std::ifstream is(path);
    if (!is)
        die("cannot open " + path);
    std::ostringstream buf;
    buf << is.rdbuf();

    core::JsonValue v;
    try {
        v = core::parseJson(buf.str());
    } catch (const std::exception &e) {
        die(path + ": " + e.what());
    }

    if (!v.isObject())
        die(path + ": top level is not an object");
    for (const char *key : {"artifact", "caption", "machine"}) {
        const core::JsonValue *s = v.find(key);
        if (!s || !s->isString() || s->stringValue.empty())
            die(path + ": missing or empty '" + key + "'");
    }
    const core::JsonValue *schema = v.find("schema_version");
    if (!schema || !schema->isNumber())
        die(path + ": missing 'schema_version'");
    if (schema->numberValue != benchx::kBenchSchemaVersion) {
        die(path + ": schema_version " +
            std::to_string(schema->numberValue) + " != expected " +
            std::to_string(benchx::kBenchSchemaVersion));
    }
    const core::JsonValue *jobs = v.find("jobs");
    if (!jobs || !jobs->isNumber() || jobs->numberValue < 1)
        die(path + ": missing or bad 'jobs'");
    // Schema v3 speed stamps: every artifact reports how long it took
    // and how many engine events it processed.
    const core::JsonValue *wall = v.find("wall_seconds");
    if (!wall || !wall->isNumber() || !std::isfinite(wall->numberValue) ||
        wall->numberValue < 0)
        die(path + ": missing or bad 'wall_seconds'");
    const core::JsonValue *events = v.find("events_processed");
    if (!events || !events->isNumber() ||
        !std::isfinite(events->numberValue) || events->numberValue < 0)
        die(path + ": missing or bad 'events_processed'");

    const core::JsonValue *points = v.find("points");
    if (!points || !points->isArray())
        die(path + ": missing 'points' array");
    if (points->elements.size() < min_points) {
        die(path + ": expected >= " + std::to_string(min_points) +
            " points, got " + std::to_string(points->elements.size()));
    }
    bool saw_overload = false;
    bool saw_replication = false;
    for (const core::JsonValue &p : points->elements) {
        const core::JsonValue *label = p.find("label");
        if (!label || !label->isString() || label->stringValue.empty())
            die(path + ": point without a label");
        // A failed sweep point carries an "error" instead of a result;
        // an artifact with one is never valid.
        if (const core::JsonValue *err = p.find("error"))
            die(path + ": point '" + label->stringValue + "' failed: " +
                (err->isString() ? err->stringValue : "unknown error"));
        const core::JsonValue *result = p.find("result");
        if (!result || !result->isObject())
            die(path + ": point '" + label->stringValue +
                "' without a result");
        const core::JsonValue *tput = result->find("throughput_rps");
        if (!tput || !tput->isNumber() || !(tput->numberValue > 0))
            die(path + ": point '" + label->stringValue +
                "' without a positive throughput_rps");
        const core::JsonValue *elastic = result->find("elastic");
        if (elastic)
            checkElastic(path, label->stringValue, *elastic);
        else if (require_elastic)
            die(path + ": point '" + label->stringValue +
                "' without an elastic block (--elastic)");
        if (const core::JsonValue *ov = result->find("overload")) {
            checkOverload(path, label->stringValue, *ov);
            saw_overload = true;
        }
        const core::JsonValue *trace = result->find("trace");
        if (trace)
            checkTrace(path, label->stringValue, *trace);
        else if (require_trace)
            die(path + ": point '" + label->stringValue +
                "' without a trace block (--trace)");
        const core::JsonValue *grayfail = result->find("grayfail");
        if (grayfail)
            checkGrayFail(path, label->stringValue, *grayfail);
        else if (require_grayfail)
            die(path + ": point '" + label->stringValue +
                "' without a grayfail block (--grayfail)");
        const core::JsonValue *scaleout = result->find("scaleout");
        if (scaleout)
            checkScaleout(path, label->stringValue, *scaleout);
        else if (require_scaleout)
            die(path + ": point '" + label->stringValue +
                "' without a scaleout block (--scaleout)");
        if (const core::JsonValue *rp = result->find("replication")) {
            checkReplication(path, label->stringValue, *rp,
                             require_replication);
            saw_replication = true;
        }
        const core::JsonValue *fanout = result->find("fanout");
        if (fanout)
            checkFanout(path, label->stringValue, *fanout);
        else if (require_fanout)
            die(path + ": point '" + label->stringValue +
                "' without a fanout block (--fanout)");
    }
    if (require_overload && !saw_overload)
        die(path + ": no point carries an overload block (--overload)");
    if (require_replication && !saw_replication)
        die(path +
            ": no point carries a replication block (--replication)");

    rejectNonFinite(path, v);

    const core::JsonValue *tables = v.find("tables");
    if (!tables || !tables->isArray() || tables->elements.empty())
        die(path + ": missing or empty 'tables' array");

    for (int i = arg; i < argc; ++i) {
        const std::string want = argv[i];
        bool found = false;
        for (const core::JsonValue &p : points->elements) {
            if (p.at("label").stringValue == want) {
                found = true;
                break;
            }
        }
        if (!found)
            die(path + ": no point labeled '" + want + "'");
    }

    std::cout << "json_check: " << path << " ok ("
              << points->elements.size() << " points, "
              << tables->elements.size() << " tables)\n";
    return 0;
}
