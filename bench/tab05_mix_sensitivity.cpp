/**
 * @file
 * TAB-5: request-mix sensitivity. The placement gains are a property
 * of the topology, not of one particular user-behaviour mix: the
 * browse-heavy default, a buy-heavy mix, and a read-only mix all see
 * a CCX-aware benefit (with magnitude following how cache-bound the
 * dominant services are).
 */

#include <array>
#include <vector>

#include "common.hh"
#include "loadgen/mix.hh"

using namespace microscale;

namespace
{

using Matrix = std::array<std::array<double, teastore::kNumOps>,
                          teastore::kNumOps>;

/** Shoppers that actually buy: carts and checkouts dominate. */
Matrix
buyHeavy()
{
    // Order: Home, Login, Category, Product, AddToCart, Checkout,
    // Profile.
    return {{
        /* Home      */ {{0.00, 0.60, 0.40, 0.00, 0.00, 0.00, 0.00}},
        /* Login     */ {{0.00, 0.00, 0.80, 0.20, 0.00, 0.00, 0.00}},
        /* Category  */ {{0.05, 0.00, 0.15, 0.80, 0.00, 0.00, 0.00}},
        /* Product   */ {{0.00, 0.00, 0.20, 0.00, 0.80, 0.00, 0.00}},
        /* AddToCart */ {{0.00, 0.00, 0.15, 0.15, 0.00, 0.70, 0.00}},
        /* Checkout  */ {{0.70, 0.00, 0.20, 0.00, 0.00, 0.00, 0.10}},
        /* Profile   */ {{0.50, 0.00, 0.50, 0.00, 0.00, 0.00, 0.00}},
    }};
}

/** Anonymous browsing: no login, cart or checkout traffic. */
Matrix
readOnly()
{
    return {{
        /* Home      */ {{0.10, 0.00, 0.90, 0.00, 0.00, 0.00, 0.00}},
        /* Login     */ {{0.50, 0.00, 0.50, 0.00, 0.00, 0.00, 0.00}},
        /* Category  */ {{0.10, 0.00, 0.30, 0.60, 0.00, 0.00, 0.00}},
        /* Product   */ {{0.10, 0.00, 0.55, 0.35, 0.00, 0.00, 0.00}},
        /* AddToCart */ {{1.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00}},
        /* Checkout  */ {{1.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00}},
        /* Profile   */ {{1.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00}},
    }};
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "TAB-5", "tab05_mix_sensitivity",
        "placement gains across request mixes", base);

    struct MixCase
    {
        const char *name;
        loadgen::BrowseMix mix;
    };
    const MixCase cases[] = {
        {"browse (default)", loadgen::BrowseMix{}},
        {"buy-heavy", loadgen::BrowseMix{buyHeavy()}},
        {"read-only", loadgen::BrowseMix{readOnly()}},
    };
    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware};

    std::vector<core::SweepPoint> points;
    for (const MixCase &mc : cases) {
        for (core::PlacementKind kind : kinds) {
            core::SweepPoint p;
            p.label = std::string(mc.name) + "/" +
                      core::placementName(kind);
            p.config = base;
            p.config.mix = mc.mix;
            p.config.placement = kind;
            // Each mix shifts demand; refine the pinned partition.
            p.refineRounds =
                kind == core::PlacementKind::CcxAware ? 1 : 0;
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"mix", "placement", "tput (req/s)", "p99 (ms)",
                 "gain"});
    std::size_t i = 0;
    for (const MixCase &mc : cases) {
        double base_tput = 0.0;
        for (core::PlacementKind kind : kinds) {
            const core::RunResult &r = runs[i++].result;
            if (kind == core::PlacementKind::OsDefault)
                base_tput = r.throughputRps;
            t.row()
                .cell(mc.name)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(kind == core::PlacementKind::CcxAware
                          ? formatPercent(r.throughputRps / base_tput -
                                          1.0)
                          : std::string("-"));
        }
    }
    rep.table(t,
              "TAB-5 | CCX-aware gains hold across user-behaviour mixes");
    rep.finish();
    return 0;
}
