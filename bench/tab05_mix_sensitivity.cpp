/**
 * @file
 * TAB-5: request-mix sensitivity. The placement gains are a property
 * of the topology, not of one particular user-behaviour mix: the
 * browse-heavy default, a buy-heavy mix, and a read-only mix all see
 * a CCX-aware benefit (with magnitude following how cache-bound the
 * dominant services are).
 */

#include <array>
#include <iostream>

#include "base/table.hh"
#include "common.hh"
#include "loadgen/mix.hh"

using namespace microscale;

namespace
{

using Matrix = std::array<std::array<double, teastore::kNumOps>,
                          teastore::kNumOps>;

/** Shoppers that actually buy: carts and checkouts dominate. */
Matrix
buyHeavy()
{
    // Order: Home, Login, Category, Product, AddToCart, Checkout,
    // Profile.
    return {{
        /* Home      */ {{0.00, 0.60, 0.40, 0.00, 0.00, 0.00, 0.00}},
        /* Login     */ {{0.00, 0.00, 0.80, 0.20, 0.00, 0.00, 0.00}},
        /* Category  */ {{0.05, 0.00, 0.15, 0.80, 0.00, 0.00, 0.00}},
        /* Product   */ {{0.00, 0.00, 0.20, 0.00, 0.80, 0.00, 0.00}},
        /* AddToCart */ {{0.00, 0.00, 0.15, 0.15, 0.00, 0.70, 0.00}},
        /* Checkout  */ {{0.70, 0.00, 0.20, 0.00, 0.00, 0.00, 0.10}},
        /* Profile   */ {{0.50, 0.00, 0.50, 0.00, 0.00, 0.00, 0.00}},
    }};
}

/** Anonymous browsing: no login, cart or checkout traffic. */
Matrix
readOnly()
{
    return {{
        /* Home      */ {{0.10, 0.00, 0.90, 0.00, 0.00, 0.00, 0.00}},
        /* Login     */ {{0.50, 0.00, 0.50, 0.00, 0.00, 0.00, 0.00}},
        /* Category  */ {{0.10, 0.00, 0.30, 0.60, 0.00, 0.00, 0.00}},
        /* Product   */ {{0.10, 0.00, 0.55, 0.35, 0.00, 0.00, 0.00}},
        /* AddToCart */ {{1.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00}},
        /* Checkout  */ {{1.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00}},
        /* Profile   */ {{1.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00}},
    }};
}

} // namespace

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader("TAB-5",
                        "placement gains across request mixes", base);

    struct MixCase
    {
        const char *name;
        loadgen::BrowseMix mix;
    };
    const MixCase cases[] = {
        {"browse (default)", loadgen::BrowseMix{}},
        {"buy-heavy", loadgen::BrowseMix{buyHeavy()}},
        {"read-only", loadgen::BrowseMix{readOnly()}},
    };

    TextTable t({"mix", "placement", "tput (req/s)", "p99 (ms)",
                 "gain"});
    for (const MixCase &mc : cases) {
        double base_tput = 0.0;
        for (core::PlacementKind kind :
             {core::PlacementKind::OsDefault,
              core::PlacementKind::CcxAware}) {
            core::ExperimentConfig c = base;
            c.mix = mc.mix;
            c.placement = kind;
            // Each mix shifts demand; refine the pinned partition.
            const core::RunResult r =
                kind == core::PlacementKind::CcxAware
                    ? core::runRefined(c, 1)
                    : core::runExperiment(c);
            if (kind == core::PlacementKind::OsDefault)
                base_tput = r.throughputRps;
            t.row()
                .cell(mc.name)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(kind == core::PlacementKind::CcxAware
                          ? formatPercent(r.throughputRps / base_tput -
                                          1.0)
                          : std::string("-"));
            std::cout << "  " << mc.name << " "
                      << core::placementName(kind) << ": "
                      << core::summarize(r) << "\n";
        }
    }
    t.printWithCaption(
        "TAB-5 | CCX-aware gains hold across user-behaviour mixes");
    return 0;
}
