#include "common.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "base/args.hh"
#include "base/logging.hh"
#include "core/json.hh"
#include "topo/machine.hh"

namespace microscale::benchx
{

namespace
{

unsigned gJobs = 0;        // 0 until init(); resolved lazily
std::string gOutDir;       // --out-dir override

void
printHeader(const std::string &artifact, const std::string &caption,
            const std::string &machine,
            const core::ExperimentConfig *config)
{
    std::cout << "==============================================\n"
              << artifact << ": " << caption << "\n";
    if (config) {
        std::cout << "machine: " << machine << "\n";
        if (config->openLoopRps > 0.0) {
            std::cout << "load: open-loop " << config->openLoopRps
                      << " req/s, "
                      << ticksToSeconds(config->measure)
                      << "s window\n";
        } else {
            std::cout << "load: " << config->load.users
                      << " closed-loop users, "
                      << ticksToMillis(config->load.meanThink)
                      << "ms think, " << ticksToSeconds(config->measure)
                      << "s window\n";
        }
    }
    std::cout << "==============================================\n";
}

} // namespace

bool
fastMode()
{
    const char *v = std::getenv("MICROSCALE_BENCH_FAST");
    return v && v[0] == '1';
}

core::DemandShares
calibratedDemand()
{
    core::DemandShares d;
    d.webui = 0.45;
    d.auth = 0.03;
    d.persistence = 0.065;
    d.recommender = 0.045;
    d.image = 0.41;
    return d;
}

core::ExperimentConfig
paperConfig(unsigned users)
{
    core::ExperimentConfig c;
    c.machine = topo::rome128();
    c.load.users = users;
    c.demand = calibratedDemand();
    if (fastMode()) {
        c.warmup = 300 * kMillisecond;
        c.measure = 500 * kMillisecond;
    } else {
        c.warmup = 600 * kMillisecond;
        c.measure = 1500 * kMillisecond;
    }
    return c;
}

void
init(int argc, char **argv)
{
    ArgParser args("microscale benchmark (paper artifact reproduction)");
    args.addInt("jobs", 0,
                "sweep worker threads (0 = MICROSCALE_BENCH_JOBS or all "
                "hardware threads)");
    args.addString("out-dir", "",
                   "directory for BENCH_*.json results (default: "
                   "MICROSCALE_BENCH_OUT_DIR or the current directory)");
    if (!args.parse(argc, argv))
        std::exit(1);
    gJobs = static_cast<unsigned>(args.getInt("jobs"));
    gOutDir = args.getString("out-dir");
}

unsigned
jobs()
{
    return core::resolveJobs(gJobs);
}

std::string
outDir()
{
    if (!gOutDir.empty())
        return gOutDir;
    if (const char *env = std::getenv("MICROSCALE_BENCH_OUT_DIR")) {
        if (env[0] != '\0')
            return env;
    }
    return ".";
}

SeriesReporter::SeriesReporter(std::string artifact, std::string stem,
                               std::string caption,
                               const core::ExperimentConfig &reference)
    : artifact_(std::move(artifact)), stem_(std::move(stem)),
      caption_(std::move(caption))
{
    machine_ = topo::Machine(reference.machine).describe();
    printHeader(artifact_, caption_, machine_, &reference);
}

SeriesReporter::SeriesReporter(std::string artifact, std::string stem,
                               std::string caption)
    : artifact_(std::move(artifact)), stem_(std::move(stem)),
      caption_(std::move(caption))
{
    printHeader(artifact_, caption_, machine_, nullptr);
}

void
SeriesReporter::add(const std::string &label,
                    const core::RunResult &result)
{
    events_processed_ += result.eventsProcessed;
    points_.push_back(StoredPoint{label, result, ""});
}

void
SeriesReporter::addError(const std::string &label,
                         const std::string &message)
{
    points_.push_back(StoredPoint{
        label, core::RunResult{},
        message.empty() ? std::string("unknown error") : message});
}

void
SeriesReporter::printSummaries() const
{
    for (const StoredPoint &p : points_) {
        if (p.error.empty())
            std::cout << "  " << p.label << ": " << core::summarize(p.result)
                      << "\n";
        else
            std::cout << "  " << p.label << ": ERROR: " << p.error << "\n";
    }
}

void
SeriesReporter::table(const TextTable &t, const std::string &caption)
{
    t.printWithCaption(caption);
    tables_.push_back(StoredTable{caption, t.headers(), t.rows()});
}

double
SeriesReporter::wallSeconds() const
{
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count();
}

void
SeriesReporter::finish()
{
    const std::string path =
        outDir() + "/BENCH_" + stem_ + ".json";
    std::ofstream os(path);
    if (!os) {
        warn("cannot write ", path, "; skipping JSON emission");
        return;
    }

    os << "{\"artifact\":\"" << core::jsonEscape(artifact_) << "\"";
    os << ",\"schema_version\":" << kBenchSchemaVersion;
    os << ",\"caption\":\"" << core::jsonEscape(caption_) << "\"";
    os << ",\"machine\":\"" << core::jsonEscape(machine_) << "\"";
    os << ",\"fast_mode\":" << (fastMode() ? "true" : "false");
    os << ",\"jobs\":" << jobs();
    // Speed stamps (schema v3): elapsed wall clock over the whole
    // artifact run and engine events summed across successful points,
    // so regressions in sim throughput show up in every artifact.
    os << ",\"wall_seconds\":" << wallSeconds();
    os << ",\"events_processed\":" << events_processed_;

    os << ",\"points\":[";
    bool first = true;
    for (const StoredPoint &p : points_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"label\":\"" << core::jsonEscape(p.label) << "\"";
        if (!p.error.empty()) {
            os << ",\"error\":\"" << core::jsonEscape(p.error) << "\"}";
            continue;
        }
        os << ",\"result\":";
        std::ostringstream buf;
        core::writeJson(buf, p.result);
        std::string body = buf.str();
        // writeJson appends a newline; strip it for embedding.
        while (!body.empty() && body.back() == '\n')
            body.pop_back();
        os << body << "}";
    }
    os << "]";

    os << ",\"tables\":[";
    first = true;
    for (const StoredTable &t : tables_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"caption\":\"" << core::jsonEscape(t.caption)
           << "\",\"headers\":[";
        for (std::size_t i = 0; i < t.headers.size(); ++i) {
            os << (i ? "," : "") << "\"" << core::jsonEscape(t.headers[i])
               << "\"";
        }
        os << "],\"rows\":[";
        for (std::size_t r = 0; r < t.rows.size(); ++r) {
            os << (r ? "," : "") << "[";
            for (std::size_t i = 0; i < t.rows[r].size(); ++i) {
                os << (i ? "," : "") << "\""
                   << core::jsonEscape(t.rows[r][i]) << "\"";
            }
            os << "]";
        }
        os << "]}";
    }
    os << "]}\n";
    os.close();
    inform("wrote ", path);
}

std::vector<core::SweepOutcome>
runSweep(const std::vector<core::SweepPoint> &points,
         SeriesReporter &reporter)
{
    core::SweepOptions so;
    so.jobs = jobs();
    const core::SweepRunner runner(so);
    std::vector<core::SweepOutcome> outcomes = runner.run(points);
    std::string first_failure;
    for (const core::SweepOutcome &o : outcomes) {
        if (o.ok) {
            reporter.add(o.label, o.result);
            continue;
        }
        reporter.addError(o.label, o.error);
        if (first_failure.empty())
            first_failure = "'" + o.label + "': " + o.error;
    }
    reporter.printSummaries();
    if (!first_failure.empty()) {
        // Persist what we have (failed points carry "error" fields, so
        // json_check still flags the artifact) before bailing out.
        reporter.finish();
        fatal("sweep point ", first_failure);
    }
    return outcomes;
}

} // namespace microscale::benchx
