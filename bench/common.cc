#include "common.hh"

#include <cstdlib>
#include <iostream>

#include "topo/machine.hh"

namespace microscale::benchx
{

bool
fastMode()
{
    const char *v = std::getenv("MICROSCALE_BENCH_FAST");
    return v && v[0] == '1';
}

core::DemandShares
calibratedDemand()
{
    core::DemandShares d;
    d.webui = 0.45;
    d.auth = 0.03;
    d.persistence = 0.065;
    d.recommender = 0.045;
    d.image = 0.41;
    return d;
}

core::ExperimentConfig
paperConfig(unsigned users)
{
    core::ExperimentConfig c;
    c.machine = topo::rome128();
    c.load.users = users;
    c.demand = calibratedDemand();
    if (fastMode()) {
        c.warmup = 300 * kMillisecond;
        c.measure = 500 * kMillisecond;
    } else {
        c.warmup = 600 * kMillisecond;
        c.measure = 1500 * kMillisecond;
    }
    return c;
}

void
printHeader(const std::string &artifact, const std::string &caption,
            const core::ExperimentConfig &config)
{
    topo::Machine machine(config.machine);
    std::cout << "==============================================\n"
              << artifact << ": " << caption << "\n"
              << "machine: " << machine.describe() << "\n"
              << "load: " << config.load.users << " closed-loop users, "
              << ticksToMillis(config.load.meanThink) << "ms think, "
              << ticksToSeconds(config.measure) << "s window\n"
              << "==============================================\n";
}

} // namespace microscale::benchx
