/**
 * @file
 * FIG-6: throughput-latency curves under open-loop (Poisson) load for
 * the baseline and the CCX-aware placement. The optimized placement
 * sustains higher arrival rates before the latency knee.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader("FIG-6",
                        "latency vs offered load (open-loop arrivals)",
                        base);

    const std::vector<double> rates = {1000, 2500, 4000, 5500, 7000};

    TextTable t({"offered (req/s)", "placement", "completed (req/s)",
                 "p50 (ms)", "p95 (ms)", "p99 (ms)", "util"});
    for (core::PlacementKind kind :
         {core::PlacementKind::OsDefault, core::PlacementKind::CcxAware}) {
        for (double rate : rates) {
            core::ExperimentConfig c = base;
            c.placement = kind;
            c.openLoopRps = rate;
            const core::RunResult r = core::runExperiment(c);
            t.row()
                .cell(rate, 0)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p50Ms, 1)
                .cell(r.latency.p95Ms, 1)
                .cell(r.latency.p99Ms, 1)
                .cell(r.cpuUtilization, 2);
            std::cout << "  " << core::placementName(kind) << " @"
                      << rate << " req/s: " << core::summarize(r) << "\n";
        }
    }
    t.printWithCaption(
        "FIG-6 | Throughput-latency behaviour; the optimized placement "
        "moves the knee right");
    return 0;
}
