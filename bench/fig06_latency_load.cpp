/**
 * @file
 * FIG-6: throughput-latency curves under open-loop (Poisson) load for
 * the baseline and the CCX-aware placement. The optimized placement
 * sustains higher arrival rates before the latency knee.
 */

#include <string>
#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "FIG-6", "fig06_latency_load",
        "latency vs offered load (open-loop arrivals)", base);

    const std::vector<double> rates = {1000, 2500, 4000, 5500, 7000};
    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware};

    std::vector<core::SweepPoint> points;
    for (core::PlacementKind kind : kinds) {
        for (double rate : rates) {
            core::SweepPoint p;
            p.label = std::string(core::placementName(kind)) + "@" +
                      formatDouble(rate, 0) + "rps";
            p.config = base;
            p.config.placement = kind;
            p.config.openLoopRps = rate;
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"offered (req/s)", "placement", "completed (req/s)",
                 "p50 (ms)", "p95 (ms)", "p99 (ms)", "util"});
    std::size_t i = 0;
    for (core::PlacementKind kind : kinds) {
        for (double rate : rates) {
            const core::RunResult &r = runs[i++].result;
            t.row()
                .cell(rate, 0)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p50Ms, 1)
                .cell(r.latency.p95Ms, 1)
                .cell(r.latency.p99Ms, 1)
                .cell(r.cpuUtilization, 2);
        }
    }
    rep.table(t, "FIG-6 | Throughput-latency behaviour; the optimized "
                 "placement moves the knee right");
    rep.finish();
    return 0;
}
