/**
 * @file
 * FIG-1: end-to-end throughput scale-up vs logical CPU count, for the
 * tuned OS-default baseline and the CCX-aware placement. Reproduces
 * the paper's headline scaling curve on the 128-logical-CPU machine.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

namespace
{

struct Budget
{
    unsigned logical;
    unsigned cores;
    bool smt;
};

} // namespace

int
main()
{
    // Logical-CPU budgets: cores first (SMT off), then SMT pairs.
    const std::vector<Budget> budgets = {
        {8, 8, false},   {16, 16, false}, {32, 32, false},
        {64, 64, false}, {96, 48, true},  {128, 64, true},
    };

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader(
        "FIG-1",
        "throughput and p50 latency vs logical CPUs (scale-up curve)",
        base);

    TextTable t({"logical CPUs", "placement", "tput (req/s)", "p50 (ms)",
                 "p99 (ms)", "util", "GHz", "speedup vs 8"});
    for (core::PlacementKind kind :
         {core::PlacementKind::OsDefault, core::PlacementKind::CcxAware}) {
        double tput_at_8 = 0.0;
        for (const Budget &b : budgets) {
            core::ExperimentConfig c = base;
            c.placement = kind;
            c.cores = b.cores;
            c.smt = b.smt;
            // Offered load scales with the budget so every point is
            // at (or past) saturation.
            c.load.users = 30 * b.logical;
            const core::RunResult r = core::runExperiment(c);
            if (tput_at_8 == 0.0)
                tput_at_8 = r.throughputRps;
            t.row()
                .cell(b.logical)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p50Ms, 1)
                .cell(r.latency.p99Ms, 1)
                .cell(r.cpuUtilization, 2)
                .cell(r.avgFreqGhz, 2)
                .cell(r.throughputRps / tput_at_8, 2);
            std::cout << "  " << b.logical << " cpus "
                      << core::placementName(kind) << ": "
                      << core::summarize(r) << "\n";
        }
    }
    t.printWithCaption(
        "FIG-1 | Scale-up of the microservice application "
        "(throughput normalized to 8 logical CPUs)");
    return 0;
}
