/**
 * @file
 * FIG-1: end-to-end throughput scale-up vs logical CPU count, for the
 * tuned OS-default baseline and the CCX-aware placement. Reproduces
 * the paper's headline scaling curve on the 128-logical-CPU machine.
 */

#include <string>
#include <vector>

#include "common.hh"

using namespace microscale;

namespace
{

struct Budget
{
    unsigned logical;
    unsigned cores;
    bool smt;
};

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    // Logical-CPU budgets: cores first (SMT off), then SMT pairs.
    const std::vector<Budget> budgets = {
        {8, 8, false},   {16, 16, false}, {32, 32, false},
        {64, 64, false}, {96, 48, true},  {128, 64, true},
    };
    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware};

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "FIG-1", "fig01_scaleup",
        "throughput and p50 latency vs logical CPUs (scale-up curve)",
        base);

    std::vector<core::SweepPoint> points;
    for (core::PlacementKind kind : kinds) {
        for (const Budget &b : budgets) {
            core::SweepPoint p;
            p.label = std::string(core::placementName(kind)) + "/" +
                      std::to_string(b.logical) + "cpu";
            p.config = base;
            p.config.placement = kind;
            p.config.cores = b.cores;
            p.config.smt = b.smt;
            // Offered load scales with the budget so every point is
            // at (or past) saturation.
            p.config.load.users = 30 * b.logical;
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"logical CPUs", "placement", "tput (req/s)", "p50 (ms)",
                 "p99 (ms)", "util", "GHz", "speedup vs 8"});
    std::size_t i = 0;
    for (core::PlacementKind kind : kinds) {
        double tput_at_8 = 0.0;
        for (const Budget &b : budgets) {
            const core::RunResult &r = runs[i++].result;
            if (tput_at_8 == 0.0)
                tput_at_8 = r.throughputRps;
            t.row()
                .cell(b.logical)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p50Ms, 1)
                .cell(r.latency.p99Ms, 1)
                .cell(r.cpuUtilization, 2)
                .cell(r.avgFreqGhz, 2)
                .cell(r.throughputRps / tput_at_8, 2);
        }
    }
    rep.table(t, "FIG-1 | Scale-up of the microservice application "
                 "(throughput normalized to 8 logical CPUs)");
    rep.finish();
    return 0;
}
