/**
 * @file
 * FIG-8: NUMA sensitivity. Compares first-touch (baseline), CCX
 * pinning with local memory homes, and CCX pinning with striped
 * (mostly remote) memory - under the default NUMA factor and under a
 * stressed factor, showing when memory homing matters.
 */

#include <string>
#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "FIG-8", "fig08_numa",
        "NUMA locality sensitivity (memory homing ablation)", base);

    const std::vector<double> factors = {1.35, 2.2};
    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware,
        core::PlacementKind::CcxStripedMem};

    std::vector<core::SweepPoint> points;
    for (double factor : factors) {
        for (core::PlacementKind kind : kinds) {
            core::SweepPoint p;
            p.label = "numa" + formatDouble(factor, 2) + "/" +
                      core::placementName(kind);
            p.config = base;
            p.config.machine.mem.intraSocketFactor = factor;
            p.config.placement = kind;
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"NUMA factor", "placement", "tput (req/s)", "p99 (ms)",
                 "L3 miss%", "IPC"});
    std::size_t i = 0;
    for (double factor : factors) {
        for (core::PlacementKind kind : kinds) {
            const core::RunResult &r = runs[i++].result;
            t.row()
                .cell(factor, 2)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.total.l3MissRatio * 100.0, 1)
                .cell(r.total.ipc, 2);
        }
    }
    rep.table(t, "FIG-8 | Memory homing matters most when misses are "
                 "frequent (baseline) or remote latency is high");
    rep.finish();
    return 0;
}
