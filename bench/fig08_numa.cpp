/**
 * @file
 * FIG-8: NUMA sensitivity. Compares first-touch (baseline), CCX
 * pinning with local memory homes, and CCX pinning with striped
 * (mostly remote) memory - under the default NUMA factor and under a
 * stressed factor, showing when memory homing matters.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader(
        "FIG-8", "NUMA locality sensitivity (memory homing ablation)",
        base);

    TextTable t({"NUMA factor", "placement", "tput (req/s)", "p99 (ms)",
                 "L3 miss%", "IPC"});
    for (double factor : {1.35, 2.2}) {
        for (core::PlacementKind kind :
             {core::PlacementKind::OsDefault,
              core::PlacementKind::CcxAware,
              core::PlacementKind::CcxStripedMem}) {
            core::ExperimentConfig c = base;
            c.machine.mem.intraSocketFactor = factor;
            c.placement = kind;
            const core::RunResult r = core::runExperiment(c);
            t.row()
                .cell(factor, 2)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.total.l3MissRatio * 100.0, 1)
                .cell(r.total.ipc, 2);
            std::cout << "  factor " << factor << " "
                      << core::placementName(kind) << ": "
                      << core::summarize(r) << "\n";
        }
    }
    t.printWithCaption(
        "FIG-8 | Memory homing matters most when misses are frequent "
        "(baseline) or remote latency is high");
    return 0;
}
