/**
 * @file
 * FIG-19: tail-latency amplification vs fan-out depth, with and
 * without hedged requests. The socialnet graph (DeathStarBench-style,
 * 21 services, depth-5 read path with a wide post-storage mget
 * fan-out) runs under open-loop load with a gray straggler planted in
 * the storage tier; the depth knob truncates the graph while keeping
 * total work roughly flat, so the sweep isolates the synchronization
 * cost of deep fan-out. The hedged arms enable fixed-delay hedging
 * on the timeline -> post-storage edges. The figure asserts the
 * tail-at-scale story end to end: amplification (p99/p50) grows with
 * depth, hedging cuts p99 at the depths that actually reach the
 * fan-out (>= 4) without inflating the median, the hedge volume stays
 * inside the configured budget, and the critical-path attribution
 * still partitions mean end-to-end latency exactly despite cancelled
 * hedge legs in the traces.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/socialnet/runner.hh"
#include "base/logging.hh"
#include "common.hh"

using namespace microscale;

namespace
{

/** Attribution component sum (ns, summed over traces) vs e2e. */
double
componentSumNs(const core::TraceSummary &tr)
{
    double sum = tr.attribution.unattributedNs;
    for (const auto &[name, a] : tr.attribution.services)
        sum += a.totalNs();
    return sum;
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    const bool fast = benchx::fastMode();

    core::ExperimentConfig base;
    base.trace.enabled = true;
    base.trace.sampleRate = 1.0;
    base.warmup = fast ? 300 * kMillisecond : kSecond;
    base.measure = fast ? 1500 * kMillisecond : 4 * kSecond;
    base.openLoopRps = fast ? 300.0 : 600.0;

    socialnet::RunOptions nohedge;
    // A decisively gray replica: at the full depth the mget leg also
    // carries cache/db hops, so a mild slowdown would drown in the
    // path's own variability and under-sell the hedging comparison.
    nohedge.stragglerFactor = 10.0;
    socialnet::RunOptions hedge = nohedge;
    hedge.hedge = true;
    // Fixed trigger between the healthy mget mode (<= ~1.1ms with a
    // miss) and the straggler mode (>= ~2ms): healthy legs finish
    // before it, so hedges arm almost exclusively on straggler legs.
    // A quantile trigger is self-defeating here: it learns from
    // winner latencies, which hedging itself shrinks, so it fires
    // ever earlier and fast legs drain the token budget before the
    // straggler legs can hedge.
    hedge.hedgeQuantile = 0.0;
    hedge.hedgeDelay = 1200 * kMicrosecond;
    // With round-robin leg placement every read has a leg on the
    // straggler, so the hedge demand is ~1 per fan-out group (1/width
    // of first attempts on the hedged edge); 0.5 leaves headroom
    // without letting hedges run unbounded.
    hedge.hedgeBudget = 0.5;
    hedge.maxHedges = 1;

    const std::vector<unsigned> depths =
        fast ? std::vector<unsigned>{2, 5}
             : std::vector<unsigned>{2, 3, 4, 5};

    benchx::SeriesReporter rep(
        "FIG-19", "fig19_fanout",
        "tail-latency amplification (p99/p50) vs fan-out depth on the "
        "socialnet graph with a gray storage straggler, without and "
        "with hedged requests on the timeline mget edges",
        base);

    std::vector<core::SweepPoint> points;
    for (unsigned depth : depths) {
        for (const bool hedged : {false, true}) {
            socialnet::RunOptions opts = hedged ? hedge : nohedge;
            opts.app.depth = depth;
            core::SweepPoint p;
            p.label = "depth" + std::to_string(depth) + "/" +
                      (hedged ? "hedge" : "nohedge");
            p.config = base;
            p.runner = [opts](const core::ExperimentConfig &c) {
                return socialnet::runSocialnet(c, opts);
            };
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"depth", "policy", "throughput (req/s)",
                 "read p50 (ms)", "read p99 (ms)", "amplification",
                 "hedges", "wins", "denied", "hedge share"});
    for (const core::SweepOutcome &o : runs) {
        const core::RunResult &r = o.result;
        const core::FanoutSummary &fo = r.fanout;
        t.row()
            .cell(fo.depth)
            .cell(fo.hedged ? "hedge" : "nohedge")
            .cell(r.throughputRps, 1)
            .cell(fo.p50Ms, 3)
            .cell(fo.p99Ms, 3)
            .cell(fo.amplification, 2)
            .cell(fo.hedgesLaunched)
            .cell(fo.hedgeWins)
            .cell(fo.hedgesDenied)
            .cell(fo.hedgeShare, 3);
    }
    rep.table(t, "FIG-19 | Fan-out depth vs tail amplification, "
                 "unhedged and hedged");
    rep.finish();

    // Index outcomes as [depth index][hedged].
    auto at = [&](std::size_t di, bool hedged) -> const core::RunResult & {
        return runs[di * 2 + (hedged ? 1 : 0)].result;
    };

    bool ok = true;

    // (a) Deep fan-out amplifies the tail: the unhedged p99/p50 ratio
    // grows from the shallowest to the deepest graph.
    {
        const core::FanoutSummary &lo = at(0, false).fanout;
        const core::FanoutSummary &hi =
            at(depths.size() - 1, false).fanout;
        const bool pass = hi.amplification > lo.amplification;
        std::printf("check (a) amplification depth%u %.2f -> depth%u "
                    "%.2f  [%s]\n",
                    lo.depth, lo.amplification, hi.depth,
                    hi.amplification, pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    // (b) Hedging cuts p99 at the depths that reach the fan-out tier,
    // and (c) the median stays flat (within 10%): the hedge budget
    // keeps the duplicate load from feeding back into baseline
    // latency.
    for (std::size_t di = 0; di < depths.size(); ++di) {
        if (depths[di] < 4)
            continue;
        const core::FanoutSummary &nh = at(di, false).fanout;
        const core::FanoutSummary &h = at(di, true).fanout;
        const bool pass_p99 = h.p99Ms < nh.p99Ms;
        std::printf("check (b) depth%u p99 hedged %.3f ms vs unhedged "
                    "%.3f ms  [%s]\n",
                    nh.depth, h.p99Ms, nh.p99Ms,
                    pass_p99 ? "PASS" : "FAIL");
        const bool pass_p50 = h.p50Ms <= 1.10 * nh.p50Ms;
        std::printf("check (c) depth%u p50 hedged %.3f ms vs unhedged "
                    "%.3f ms (<= 1.10x)  [%s]\n",
                    nh.depth, h.p50Ms, nh.p50Ms,
                    pass_p50 ? "PASS" : "FAIL");
        ok = ok && pass_p99 && pass_p50;
    }

    // (d) The hedge volume respects the budget: launched legs never
    // exceed the token accrual (ratio per first attempt, plus the
    // 50-token bucket cap as slack), and hedging actually happened at
    // the deepest point.
    for (std::size_t di = 0; di < depths.size(); ++di) {
        const core::FanoutSummary &fo = at(di, true).fanout;
        const double allowance =
            fo.hedgeBudgetRatio * static_cast<double>(fo.firstAttempts) +
            50.0;
        bool pass = static_cast<double>(fo.hedgesLaunched) <= allowance;
        if (depths[di] >= 4)
            pass = pass && fo.hedgesLaunched > 0;
        std::printf("check (d) depth%u hedges %llu within budget "
                    "allowance %.0f  [%s]\n",
                    fo.depth,
                    static_cast<unsigned long long>(fo.hedgesLaunched),
                    allowance, pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    // (e) Attribution stays exact with cancelled hedge legs in the
    // traces: components + residue reproduce mean e2e within 1% on
    // every arm.
    for (const core::SweepOutcome &o : runs) {
        const core::TraceSummary &tr = o.result.trace;
        if (tr.tracesAnalyzed == 0)
            fatal("fig19: arm '", o.label, "' analyzed no traces");
        const double sum = componentSumNs(tr);
        const double e2e = tr.attribution.e2eNs;
        const bool pass =
            e2e > 0.0 && std::abs(sum - e2e) <= 0.01 * e2e;
        std::printf("check (e) %-16s attribution sum %.3f ms vs e2e "
                    "%.3f ms over %llu traces  [%s]\n",
                    o.label.c_str(), sum / 1e6, e2e / 1e6,
                    static_cast<unsigned long long>(tr.tracesAnalyzed),
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    if (!ok)
        fatal("FIG-19 fan-out invariants not met (see checks above)");
    return 0;
}
