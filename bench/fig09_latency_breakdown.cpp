/**
 * @file
 * FIG-9: where request time goes. For each WebUI operation at
 * saturation, splits mean service time into queue wait (waiting for a
 * worker), compute (CPU) and stall (blocked on downstream calls or
 * preempted) - for the baseline and the CCX-aware placement. The
 * optimized placement cuts both compute (better IPC) and stall
 * (faster downstream services).
 */

#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "FIG-9", "fig09_latency_breakdown",
        "per-op latency breakdown (queue / compute / stall)", base);

    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware};
    std::vector<core::SweepPoint> points;
    for (core::PlacementKind kind : kinds) {
        core::SweepPoint p;
        p.label = core::placementName(kind);
        p.config = base;
        p.config.placement = kind;
        points.push_back(std::move(p));
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"op", "placement", "requests", "mean (ms)",
                 "queue (ms)", "compute (ms)", "stall (ms)",
                 "p99 (ms)"});
    for (const core::SweepOutcome &o : runs) {
        const auto &webui = o.result.breakdown.at(teastore::names::kWebui);
        for (teastore::OpType op : teastore::allOps()) {
            auto it = webui.find(teastore::opName(op));
            if (it == webui.end())
                continue;
            const core::OpBreakdown &b = it->second;
            t.row()
                .cell(teastore::opName(op))
                .cell(o.label)
                .cell(b.count)
                .cell(b.serviceTimeMeanMs, 1)
                .cell(b.queueWaitMeanMs, 1)
                .cell(b.computeMeanMs, 2)
                .cell(b.stallMeanMs, 1)
                .cell(b.serviceTimeP99Ms, 1);
        }
    }
    rep.table(t, "FIG-9 | WebUI op time breakdown at saturation");

    // Downstream view: request-weighted means per internal service.
    TextTable q({"service", "placement", "queue wait (ms)",
                 "compute (ms)", "stall (ms)"});
    for (const core::SweepOutcome &o : runs) {
        for (const auto &[svc_name, ops] : o.result.breakdown) {
            if (svc_name == teastore::names::kWebui ||
                svc_name == teastore::names::kRegistry) {
                continue;
            }
            double wait = 0.0, comp = 0.0, stall = 0.0;
            std::uint64_t n = 0;
            for (const auto &[op, b] : ops) {
                wait += b.queueWaitMeanMs * b.count;
                comp += b.computeMeanMs * b.count;
                stall += b.stallMeanMs * b.count;
                n += b.count;
            }
            if (n == 0)
                continue;
            q.row()
                .cell(svc_name)
                .cell(o.label)
                .cell(wait / n, 2)
                .cell(comp / n, 2)
                .cell(stall / n, 2);
        }
    }
    rep.table(q, "FIG-9 (cont.) | Internal services: request-weighted "
                 "means");
    rep.finish();
    return 0;
}
