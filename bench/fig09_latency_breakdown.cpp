/**
 * @file
 * FIG-9: where request time goes. For each WebUI operation at
 * saturation, splits mean service time into queue wait (waiting for a
 * worker), compute (CPU) and stall (blocked on downstream calls or
 * preempted) - for the baseline and the CCX-aware placement. The
 * optimized placement cuts both compute (better IPC) and stall
 * (faster downstream services).
 */

#include <iostream>
#include <utility>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader(
        "FIG-9", "per-op latency breakdown (queue / compute / stall)",
        base);

    std::vector<std::pair<core::PlacementKind, core::RunResult>> runs;
    for (core::PlacementKind kind :
         {core::PlacementKind::OsDefault, core::PlacementKind::CcxAware}) {
        core::ExperimentConfig c = base;
        c.placement = kind;
        runs.emplace_back(kind, core::runExperiment(c));
        std::cout << "  " << core::placementName(kind) << ": "
                  << core::summarize(runs.back().second) << "\n";
    }

    TextTable t({"op", "placement", "requests", "mean (ms)",
                 "queue (ms)", "compute (ms)", "stall (ms)",
                 "p99 (ms)"});
    for (const auto &[kind, r] : runs) {
        const auto &webui = r.breakdown.at(teastore::names::kWebui);
        for (teastore::OpType op : teastore::allOps()) {
            auto it = webui.find(teastore::opName(op));
            if (it == webui.end())
                continue;
            const core::OpBreakdown &b = it->second;
            t.row()
                .cell(teastore::opName(op))
                .cell(core::placementName(kind))
                .cell(b.count)
                .cell(b.serviceTimeMeanMs, 1)
                .cell(b.queueWaitMeanMs, 1)
                .cell(b.computeMeanMs, 2)
                .cell(b.stallMeanMs, 1)
                .cell(b.serviceTimeP99Ms, 1);
        }
    }
    t.printWithCaption("FIG-9 | WebUI op time breakdown at saturation");

    // Downstream view: request-weighted means per internal service.
    TextTable q({"service", "placement", "queue wait (ms)",
                 "compute (ms)", "stall (ms)"});
    for (const auto &[kind, r] : runs) {
        for (const auto &[svc_name, ops] : r.breakdown) {
            if (svc_name == teastore::names::kWebui ||
                svc_name == teastore::names::kRegistry) {
                continue;
            }
            double wait = 0.0, comp = 0.0, stall = 0.0;
            std::uint64_t n = 0;
            for (const auto &[op, b] : ops) {
                wait += b.queueWaitMeanMs * b.count;
                comp += b.computeMeanMs * b.count;
                stall += b.stallMeanMs * b.count;
                n += b.count;
            }
            if (n == 0)
                continue;
            q.row()
                .cell(svc_name)
                .cell(core::placementName(kind))
                .cell(wait / n, 2)
                .cell(comp / n, 2)
                .cell(stall / n, 2);
        }
    }
    q.printWithCaption(
        "FIG-9 (cont.) | Internal services: request-weighted means");
    return 0;
}
