/**
 * @file
 * FIG-18: the replicated data tier under failure and scale events.
 * Three paired arms on small clusters of small8 nodes over the LAN
 * fabric, each contrasting the unreplicated FIG-17 tier (R=1) with
 * quorum replication (R=2):
 *
 *  - nodekill: one of two machines dies early in the window and never
 *    returns. At R=1 the dead node takes its cache node and shards
 *    (half the keyspace) with it; at R=2 reads bypass the dead cache
 *    to quorum reads and surviving replicas cover the dead shards, so
 *    only strict-quorum writes (W=2) block. Headline: R=2 sustains
 *    >= 3x the R=1 goodput.
 *  - tax: both tiers healthy. The extra synchronous write leg is the
 *    price of replication, visible as a higher checkout p99.
 *  - rebalance: a fifth node joins a four-node R=2 cluster mid-window
 *    and the coordinator streams its key ranges over in bounded
 *    batches, on a flat LAN vs an oversubscribed core (the new node
 *    sits across the rack boundary). Both must finish with zero
 *    consistency violations; the oversubscribed stream takes longer.
 *
 * Every R=2 arm drains and runs the acked-write invariant sweep: no
 * acknowledged write may be lost and no quorum read may have returned
 * stale data.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "cluster/cluster.hh"
#include "common.hh"
#include "svc/fault.hh"
#include "teastore/chaos.hh"
#include "topo/presets.hh"

using namespace microscale;

namespace
{

const core::RunResult &
byLabel(const std::vector<core::SweepOutcome> &runs,
        const std::string &label)
{
    for (const core::SweepOutcome &o : runs) {
        if (o.label == label)
            return o.result;
    }
    fatal("fig18: no sweep point labeled '", label, "'");
}

double
checkoutP99(const core::RunResult &r)
{
    const auto it = r.perOp.find("checkout");
    if (it == r.perOp.end())
        fatal("fig18: run has no checkout ops");
    return it->second.p99Ms;
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);
    const bool fast = benchx::fastMode();

    const Tick warmup = fast ? 300 * kMillisecond : 600 * kMillisecond;
    const Tick measure = fast ? 1500 * kMillisecond : 3 * kSecond;

    // Per-node world: small8 machines with the per-node sizing of the
    // FIG-17 data-tier scenario. Closed-loop browse load; the store is
    // large enough that a rebalance moves a real key population.
    core::ExperimentConfig base;
    base.machine = topo::small8();
    base.app.store.categories = 8;
    base.app.store.productsPerCategory = 20;
    base.app.store.users = 100;
    base.sizing.webui = {1, 8};
    base.sizing.auth = {1, 4};
    base.sizing.persistence = {1, 8};
    base.sizing.recommender = {1, 2};
    base.sizing.image = {1, 8};
    base.sizing.registry = {1, 1};
    base.load.users = 150;
    base.load.meanThink = 25 * kMillisecond;
    // Health-aware balancing + retries: the app tier must route
    // around the dead machine's replicas, so the nodekill arms only
    // differ in what the DATA tier can still serve.
    base.resilience = teastore::resilientPolicy();
    base.warmup = warmup;
    base.measure = measure;
    // Every arm drains so the R=2 runs end with the acked-write sweep
    // (replication.consistency_checked in the artifact).
    base.drainAtEnd = true;

    // Two-node cluster for the nodekill/tax pairs: 4 shards and 2
    // cache nodes split across the machines, so losing node 1 takes
    // half of each tier down.
    cluster::ClusterParams duo;
    duo.nodes = 2;
    duo.nodeMachine = topo::small8();
    cluster::applyFabricPreset(duo, "lan");
    duo.shards = 4;
    duo.cacheNodes = 2;
    duo.cacheCapacity = 256;

    // Node 1 dies shortly into the measurement window, for good.
    svc::FaultEvent kill;
    kill.kind = svc::FaultEvent::Kind::NodeDown;
    kill.at = warmup + measure / 8;
    kill.replica = 1;

    benchx::SeriesReporter rep(
        "FIG-18", "fig18_replication",
        "replicated data tier (R=2 quorum writes/reads, hinted "
        "handoff, scale-event rebalancing) vs the unreplicated tier: "
        "goodput under permanent node loss, the healthy-path write "
        "tax, and rebalance cost on flat vs oversubscribed fabrics",
        base);

    std::vector<core::SweepPoint> points;
    for (unsigned factor : {1u, 2u}) {
        cluster::ClusterParams params = duo;
        params.replication.factor = factor;

        core::SweepPoint killp;
        killp.label = "nodekill/r" + std::to_string(factor);
        killp.config = base;
        // Open-loop arrivals: a closed loop would let the R=1 arm
        // cycle through its fast data-tier failures and re-offer the
        // surviving keyspace at a higher rate, masking the loss. A
        // fixed rate the surviving node can carry (one small8 node
        // saturates around 540 req/s on this deployment) makes
        // goodput the success share of the same offered load.
        killp.config.openLoopRps = 450.0;
        killp.config.faults.events.push_back(kill);
        killp.runner = [params](const core::ExperimentConfig &c) {
            return cluster::runScaleout(c, params);
        };
        points.push_back(std::move(killp));

        core::SweepPoint taxp;
        taxp.label = "tax/r" + std::to_string(factor);
        taxp.config = base;
        // Below saturation: at full utilization queueing noise dwarfs
        // the quorum write leg; at ~50% the checkout tail cleanly
        // shows the extra synchronous cross-node apply.
        taxp.config.load.users = 80;
        taxp.runner = [params](const core::ExperimentConfig &c) {
            return cluster::runScaleout(c, params);
        };
        points.push_back(std::move(taxp));
    }
    // Rebalance arms: a 5th node joins a 4-node R=2 cluster and the
    // coordinator streams the ring slices it gains over the fabric.
    // On "oversub" (racks of 4) the new node is alone in rack 1, so
    // every migrate batch crosses the 2.5x core tier.
    for (const char *fabric : {"lan", "oversub"}) {
        cluster::ClusterParams params;
        params.nodes = 5;
        params.initialNodes = 4;
        params.nodeMachine = topo::small8();
        cluster::applyFabricPreset(params, fabric);
        params.shards = 4;
        params.cacheNodes = 2;
        params.cacheCapacity = 256;
        params.replication.factor = 2;
        params.replication.scaleAddNodeAt = warmup + measure / 3;
        params.replication.rebalanceBatchEntities = 16;
        params.replication.rebalanceBatchBytes = 64 * 1024;

        core::SweepPoint p;
        p.label = std::string("rebalance/") + fabric;
        p.config = base;
        p.runner = [params](const core::ExperimentConfig &c) {
            return cluster::runScaleout(c, params);
        };
        points.push_back(std::move(p));
    }

    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"arm", "goodput (req/s)", "p99 (ms)", "checkout p99",
                 "acked writes", "write fails", "hints q/rep",
                 "repairs", "rebal ms", "lost", "stale"});
    for (const core::SweepOutcome &o : runs) {
        const core::RunResult &r = o.result;
        const core::ReplicationSummary &rp = r.replication;
        t.row()
            .cell(o.label)
            .cell(r.resilience.goodputRps, 0)
            .cell(r.latency.p99Ms, 1)
            .cell(checkoutP99(r), 1)
            .cell(rp.ackedWrites)
            .cell(rp.writeFailures)
            .cell(std::to_string(rp.hintsQueued) + "/" +
                  std::to_string(rp.hintsReplayed))
            .cell(rp.readRepairs)
            .cell(rp.rebalanceMsTotal, 2)
            .cell(rp.lostAckedWrites)
            .cell(rp.staleQuorumReads);
    }
    rep.table(t, "FIG-18 | Replicated vs unreplicated data tier under "
                 "node loss, healthy write tax, and scale-event "
                 "rebalancing");
    rep.finish();

    // Headline claims.
    bool ok = true;
    // (a) Availability: with a machine dead for 7/8 of the window the
    // replicated tier keeps serving reads (cache bypass + surviving
    // replicas) while the unreplicated tier loses every request that
    // touches the dead half of the keyspace.
    {
        const core::RunResult &r1 = byLabel(runs, "nodekill/r1");
        const core::RunResult &r2 = byLabel(runs, "nodekill/r2");
        const bool pass = r2.resilience.goodputRps >=
                          3.0 * r1.resilience.goodputRps;
        std::printf("check (a) nodekill goodput R=1 %6.0f req/s -> "
                    "R=2 %6.0f req/s (x%.2f)  [%s]\n",
                    r1.resilience.goodputRps, r2.resilience.goodputRps,
                    r2.resilience.goodputRps /
                        std::max(1.0, r1.resilience.goodputRps),
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }
    // (b) Replication tax: on the healthy pair the strict write
    // quorum (W=2) adds a synchronous cross-node leg to every order,
    // so checkout p99 rises with R and the quorum ack path is real.
    {
        const core::RunResult &r1 = byLabel(runs, "tax/r1");
        const core::RunResult &r2 = byLabel(runs, "tax/r2");
        const core::ReplicationSummary &rp = r2.replication;
        const bool pass = checkoutP99(r2) > checkoutP99(r1) &&
                          rp.quorumWrites > 0 &&
                          rp.writeAckP99Ms > 0.0;
        std::printf("check (b) healthy checkout p99 R=1 %.2f ms -> "
                    "R=2 %.2f ms (write ack p99 %.2f ms)  [%s]\n",
                    checkoutP99(r1), checkoutP99(r2), rp.writeAckP99Ms,
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }
    // (c) Rebalance safety and cost: both fabrics finish the stream
    // with zero invariant violations, and the oversubscribed core
    // makes the same stream strictly slower.
    {
        const core::ReplicationSummary &lan =
            byLabel(runs, "rebalance/lan").replication;
        const core::ReplicationSummary &ov =
            byLabel(runs, "rebalance/oversub").replication;
        bool pass = true;
        for (const core::ReplicationSummary *rp : {&lan, &ov}) {
            pass = pass && rp->rebalancesStarted == 1 &&
                   rp->rebalancesCompleted == 1 &&
                   rp->rebalanceBytes > 0 && rp->consistencyChecked &&
                   rp->lostAckedWrites == 0 &&
                   rp->staleQuorumReads == 0;
        }
        pass = pass && ov.rebalanceMsTotal > lan.rebalanceMsTotal;
        std::printf("check (c) rebalance lan %.2f ms vs oversub %.2f "
                    "ms (%llu bytes, lost %llu/%llu, stale %llu/%llu) "
                    " [%s]\n",
                    lan.rebalanceMsTotal, ov.rebalanceMsTotal,
                    static_cast<unsigned long long>(lan.rebalanceBytes),
                    static_cast<unsigned long long>(lan.lostAckedWrites),
                    static_cast<unsigned long long>(ov.lostAckedWrites),
                    static_cast<unsigned long long>(
                        lan.staleQuorumReads),
                    static_cast<unsigned long long>(ov.staleQuorumReads),
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }
    if (!ok)
        fatal("FIG-18 headline claims not met (see checks above)");
    return 0;
}
