/**
 * @file
 * FIG-14: overload control. A closed-loop saturation run first
 * measures the deployment's capacity; the sweep then offers open-loop
 * load from 0.5x to 3x of that capacity against three mesh arms: no
 * policy at all, the FIG-12 resilient policy (deadlines + retries +
 * breaker + bounded queues), and the overload-aware stack on top of
 * it (AIMD admission, CoDel queues with adaptive LIFO,
 * criticality-aware shedding, brownout dimmer on optional content).
 * The figure reports goodput, tail latency and shed accounting per
 * cell, and asserts the headline claims: the overload-aware arm's
 * goodput plateaus instead of collapsing past saturation, its p99
 * stays bounded at 3x overload, and its critical-class goodput
 * (checkout + login) at 3x beats both baselines.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "common.hh"
#include "teastore/chaos.hh"
#include "teastore/criticality.hh"

using namespace microscale;

namespace
{

struct Arm
{
    const char *name;
    bool resilient;
    bool aware;
};

const core::RunResult &
byLabel(const std::vector<core::SweepOutcome> &runs,
        const std::string &label)
{
    for (const core::SweepOutcome &o : runs) {
        if (o.label == label)
            return o.result;
    }
    fatal("fig14: no sweep point labeled '", label, "'");
}

/** OK completions of the critical ops (checkout + login). */
std::uint64_t
criticalOk(const core::RunResult &r)
{
    return r.perOp.at("checkout").count + r.perOp.at("login").count;
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    // A 4-CCX slice keeps capacity modest so 3x overload stays cheap
    // to drive; the overload behaviour is the same as at full scale.
    core::ExperimentConfig base = benchx::paperConfig(/*users=*/2400);
    base.cores = 16;

    benchx::SeriesReporter rep(
        "FIG-14", "fig14_overload",
        "goodput, tail latency and shed accounting from 0.5x to 3x of "
        "measured capacity: no policy vs resilient mesh vs "
        "overload-aware admission/CoDel/criticality/brownout",
        base);

    // Step 1: measure capacity with a closed-loop saturation run.
    core::SweepPoint cap_point;
    cap_point.label = "capacity";
    cap_point.config = base;
    const std::vector<core::SweepOutcome> cap_runs =
        benchx::runSweep({cap_point}, rep);
    const double capacity = cap_runs[0].result.throughputRps;
    if (capacity <= 0.0)
        fatal("fig14: capacity run produced no throughput");

    // Step 2: offered-load grid x policy arms.
    const std::vector<double> mults = {0.5, 1.0, 1.5, 2.0, 3.0};
    const std::vector<Arm> arms = {{"none", false, false},
                                   {"resilient", true, false},
                                   {"aware", true, true}};

    std::vector<core::SweepPoint> points;
    for (double m : mults) {
        for (const Arm &arm : arms) {
            core::SweepPoint p;
            p.label = formatDouble(m, 1) + "x/" + arm.name;
            p.config = base;
            p.config.openLoopRps = m * capacity;
            if (arm.resilient) {
                p.config.resilience = teastore::resilientPolicy();
                p.config.app.degradedFallbacks = true;
            }
            if (arm.aware)
                p.config.overload = teastore::overloadAwarePolicy();
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"offered", "arm", "goodput (req/s)", "p50 (ms)",
                 "p99 (ms)", "errors", "rejected", "shed c/n/s",
                 "codel", "degraded", "dimmer"});
    std::size_t i = 0;
    for (double m : mults) {
        for (const Arm &arm : arms) {
            const core::RunResult &r = runs[i++].result;
            const core::ResilienceSummary &rs = r.resilience;
            const core::OverloadSummary &ov = r.overload;
            t.row()
                .cell(formatDouble(m, 1) + "x")
                .cell(arm.name)
                .cell(rs.goodputRps, 0)
                .cell(r.latency.p50Ms, 1)
                .cell(r.latency.p99Ms, 1)
                .cell(formatDouble(rs.errorRate * 100.0, 1) + "%")
                .cell(ov.rejectedTotal)
                .cell(std::to_string(ov.shedCritical) + "/" +
                      std::to_string(ov.shedNormal) + "/" +
                      std::to_string(ov.shedSheddable))
                .cell(ov.codelDrops)
                .cell(formatDouble(rs.degradedShare * 100.0, 1) + "%")
                .cell(ov.dimmerFinal, 2);
        }
    }
    rep.table(t, "FIG-14 | Overload control (offered load x mesh arm); "
                 "goodput from OK responses only");
    rep.finish();

    // Headline claims.
    bool ok = true;

    // (a) Goodput plateau: past saturation the overload-aware arm
    // holds its goodput level; 2x and 3x stay within 5% of the 1.5x
    // plateau instead of collapsing with offered load.
    const double plateau =
        byLabel(runs, "1.5x/aware").resilience.goodputRps;
    for (const char *label : {"2.0x/aware", "3.0x/aware"}) {
        const double g = byLabel(runs, label).resilience.goodputRps;
        const bool pass = g >= 0.95 * plateau;
        std::printf("check (a) %-10s goodput %6.0f vs 1.5x plateau "
                    "%6.0f (>= 95%%)  [%s]\n",
                    label, g, plateau, pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    // (b) Bounded tail under 3x overload: CoDel + admission keep the
    // served requests' p99 within the brownout SLO region, while the
    // unprotected arm's queues push p99 well past it.
    const double aware_p99 = byLabel(runs, "3.0x/aware").latency.p99Ms;
    const double none_p99 = byLabel(runs, "3.0x/none").latency.p99Ms;
    {
        const bool pass = aware_p99 < 500.0 && aware_p99 < none_p99;
        std::printf("check (b) 3.0x/aware p99 %6.1fms (< 500ms, < none "
                    "%6.1fms)  [%s]\n",
                    aware_p99, none_p99, pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    // (c) Criticality pays at 3x: checkout+login goodput under the
    // overload-aware arm strictly beats both baselines.
    {
        const std::uint64_t aware = criticalOk(byLabel(runs, "3.0x/aware"));
        const std::uint64_t none = criticalOk(byLabel(runs, "3.0x/none"));
        const std::uint64_t res =
            criticalOk(byLabel(runs, "3.0x/resilient"));
        const bool pass = aware > none && aware > res;
        std::printf("check (c) 3.0x critical OK: aware %llu vs none %llu, "
                    "resilient %llu  [%s]\n",
                    static_cast<unsigned long long>(aware),
                    static_cast<unsigned long long>(none),
                    static_cast<unsigned long long>(res),
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    if (!ok)
        fatal("FIG-14 headline claims not met (see checks above)");
    return 0;
}
