/**
 * @file
 * FIG-15: critical-path latency attribution from per-request traces.
 * The saturation workload runs with tracing on (sample rate 1) under
 * the OS-default and CCX-aware placements; the critical-path analyzer
 * attributes every sampled request's end-to-end latency to queueing,
 * compute, stall, fan-out wait, retry backoff, shedding and transport
 * per service, and the figure reports where the placement win comes
 * from. The bench also asserts the tracing invariants: the per-service
 * components plus the unattributed residue sum to the mean end-to-end
 * latency within 1%, the result is bit-identical whether the run
 * executes inline or on a sweep worker thread (--jobs independence),
 * the exported Chrome trace_event JSON re-parses with a non-empty
 * traceEvents array, and the pinned arm records replica CCX homes
 * while the unpinned arm records none.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "common.hh"
#include "core/json.hh"
#include "trace/export.hh"

using namespace microscale;

namespace
{

/** Attribution component sum (ns, summed over traces) vs e2e. */
double
componentSumNs(const core::TraceSummary &tr)
{
    double sum = tr.attribution.unattributedNs;
    for (const auto &[name, a] : tr.attribution.services)
        sum += a.totalNs();
    return sum;
}

/** Spans with a recorded CCX home across the whole store. */
std::uint64_t
spansWithCcx(const trace::TraceStore &store)
{
    std::uint64_t n = 0;
    for (const auto &t : store.traces()) {
        for (const trace::Span &s : t->spans())
            n += s.ccx >= 0 ? 1 : 0;
    }
    return n;
}

std::string
resultJson(const core::RunResult &r)
{
    std::ostringstream os;
    core::writeJson(os, r);
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    // The FIG-14 operating point: a 4-CCX slice at saturation. Every
    // external request is traced; the attribution is exact, so full
    // sampling only costs memory.
    core::ExperimentConfig base = benchx::paperConfig(/*users=*/2400);
    base.cores = 16;
    base.trace.enabled = true;
    base.trace.sampleRate = 1.0;

    benchx::SeriesReporter rep(
        "FIG-15", "fig15_trace_attribution",
        "critical-path attribution of end-to-end latency (queue, "
        "compute, stall, fan-out wait, retry backoff, shed, network "
        "per service) under OS-default vs CCX-aware placement, from "
        "per-request traces at sample rate 1",
        base);

    const std::vector<
        std::pair<const char *, core::PlacementKind>>
        arms = {{"os-default", core::PlacementKind::OsDefault},
                {"ccx-aware", core::PlacementKind::CcxAware}};

    std::vector<core::SweepPoint> points;
    for (const auto &[name, placement] : arms) {
        core::SweepPoint p;
        p.label = name;
        p.config = base;
        p.config.placement = placement;
        points.push_back(std::move(p));
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    // Per-service attribution table: where each arm's latency goes,
    // and the delta the placement buys.
    TextTable t({"arm", "service", "queue", "compute", "stall",
                 "fanout", "backoff", "shed", "net", "total (ms)"});
    for (const core::SweepOutcome &o : runs) {
        const core::TraceSummary &tr = o.result.trace;
        const double toMs =
            tr.attribution.traces
                ? 1.0 / (static_cast<double>(tr.attribution.traces) * 1e6)
                : 0.0;
        for (const auto &[name, a] : tr.attribution.services) {
            t.row()
                .cell(o.label)
                .cell(name)
                .cell(a.queueNs * toMs, 3)
                .cell(a.computeNs * toMs, 3)
                .cell(a.stallNs * toMs, 3)
                .cell(a.fanoutNs * toMs, 3)
                .cell(a.backoffNs * toMs, 3)
                .cell(a.shedNs * toMs, 3)
                .cell(a.networkNs * toMs, 3)
                .cell(a.totalNs() * toMs, 3);
        }
    }
    rep.table(t, "FIG-15 | Critical-path attribution per service "
                 "(per-trace means, ms)");
    rep.finish();

    bool ok = true;

    // (a) The partition is exact: components + residue reproduce the
    // mean end-to-end latency within 1% on every arm.
    for (const core::SweepOutcome &o : runs) {
        const core::TraceSummary &tr = o.result.trace;
        if (tr.tracesAnalyzed == 0)
            fatal("fig15: arm '", o.label, "' analyzed no traces");
        const double sum = componentSumNs(tr);
        const double e2e = tr.attribution.e2eNs;
        const bool pass =
            e2e > 0.0 && std::abs(sum - e2e) <= 0.01 * e2e;
        std::printf("check (a) %-10s attribution sum %.3f ms vs e2e "
                    "%.3f ms over %llu traces  [%s]\n",
                    o.label.c_str(), sum / 1e6, e2e / 1e6,
                    static_cast<unsigned long long>(tr.tracesAnalyzed),
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    // (b) --jobs independence: rerunning the ccx-aware arm inline (no
    // sweep worker) must serialize to byte-identical JSON.
    {
        const core::RunResult inline_run =
            core::runExperiment(points[1].config);
        const bool pass =
            resultJson(inline_run) == resultJson(runs[1].result);
        std::printf("check (b) ccx-aware inline rerun JSON %s sweep "
                    "run  [%s]\n",
                    pass ? "matches" : "DIFFERS from",
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    // (c) The Chrome export round-trips: the file parses as JSON and
    // carries a non-empty traceEvents array.
    {
        const std::string path =
            benchx::outDir() + "/BENCH_fig15_trace.json";
        const core::TraceSummary &tr = runs[1].result.trace;
        bool pass = tr.store != nullptr &&
                    trace::writeChromeTraceFile(path, *tr.store);
        std::size_t events = 0;
        if (pass) {
            std::ifstream is(path);
            std::ostringstream buf;
            buf << is.rdbuf();
            try {
                const core::JsonValue v = core::parseJson(buf.str());
                const core::JsonValue *ev = v.find("traceEvents");
                pass = ev && ev->isArray() && !ev->elements.empty();
                events = ev ? ev->elements.size() : 0;
            } catch (const std::exception &e) {
                std::printf("fig15: chrome trace parse error: %s\n",
                            e.what());
                pass = false;
            }
        }
        std::printf("check (c) chrome trace %s: %zu events  [%s]\n",
                    path.c_str(), events, pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    // (d) Replica homes: the pinned arm knows its CCXs, the unpinned
    // arm (workers free to migrate) records none.
    {
        const std::uint64_t pinned =
            spansWithCcx(*runs[1].result.trace.store);
        const std::uint64_t unpinned =
            spansWithCcx(*runs[0].result.trace.store);
        const bool pass = pinned > 0 && unpinned == 0;
        std::printf("check (d) spans with a CCX home: ccx-aware %llu, "
                    "os-default %llu  [%s]\n",
                    static_cast<unsigned long long>(pinned),
                    static_cast<unsigned long long>(unpinned),
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }

    if (!ok)
        fatal("FIG-15 tracing invariants not met (see checks above)");
    return 0;
}
