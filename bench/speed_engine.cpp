/**
 * @file
 * SPEED-ENGINE: event-core and end-to-end engine speed harness.
 *
 * Two measurements back the hot-path engine refactor:
 *
 *  1. Event-core microbenchmark. A faithful replica of the
 *     pre-refactor engine (shared_ptr<EventRecord> records and
 *     std::function callbacks in a std::priority_queue) and the slab
 *     engine run the *identical* deterministic schedule/cancel/
 *     reschedule workload; the ratio of their simulated-seconds-per-
 *     wall-second is the refactor's speedup on the event core. In a
 *     Release build (NDEBUG, no sanitizers) the harness fails unless
 *     the slab engine is at least 5x faster.
 *
 *  2. FIG-01 end-to-end points. The paper's operating point runs in
 *     per-user mode, in fluid mode at the same population (for a
 *     like-for-like speed comparison) and in fluid mode at a far
 *     larger population (the "100x bigger runs" target), each
 *     reporting simulated-seconds-per-wall-second and events/sec.
 *
 * Emits BENCH_speed_engine.json: the FIG-01 runs are the points, the
 * engine-core comparison and the per-point speed numbers are tables.
 */

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/table.hh"
#include "common.hh"
#include "core/experiment.hh"
#include "sim/simulation.hh"

using namespace microscale;

namespace
{

/**
 * Replica of the pre-refactor event engine, kept verbatim-equivalent
 * so the microbenchmark compares against what the code base actually
 * shipped: one shared_ptr allocation per event, a type-erased
 * std::function callback (heap-allocated once the capture outgrows
 * the small-buffer), and a priority_queue of entries holding another
 * shared_ptr copy.
 */
class LegacyEngine
{
  public:
    struct Record
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::function<void()> fn;
        bool cancelled = false;
    };

    class Handle
    {
      public:
        Handle() = default;
        explicit Handle(std::shared_ptr<Record> rec)
            : rec_(std::move(rec))
        {
        }
        void cancel()
        {
            if (rec_)
                rec_->cancelled = true;
            rec_.reset();
        }

      private:
        std::shared_ptr<Record> rec_;
    };

    Tick now() const { return now_; }
    std::uint64_t eventsProcessed() const { return events_processed_; }

    Handle scheduleAt(Tick when, std::function<void()> fn)
    {
        auto rec = std::make_shared<Record>();
        rec->when = when;
        rec->seq = next_seq_++;
        rec->fn = std::move(fn);
        ++pending_;
        queue_.push(Entry{rec->when, rec->seq, rec});
        return Handle(rec);
    }

    Handle scheduleAfter(Tick delay, std::function<void()> fn)
    {
        return scheduleAt(now_ + delay, std::move(fn));
    }

    Tick run()
    {
        while (pending_ > 0 && step()) {
        }
        return now_;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::shared_ptr<Record> rec;
    };
    struct Later
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool step()
    {
        while (!queue_.empty()) {
            Entry top = queue_.top();
            queue_.pop();
            --pending_;
            if (top.rec->cancelled)
                continue;
            now_ = top.when;
            ++events_processed_;
            auto fn = std::move(top.rec->fn);
            top.rec->fn = nullptr;
            fn();
            return true;
        }
        return false;
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_processed_ = 0;
    std::uint64_t pending_ = 0;
};

template <typename Engine>
struct HandleOf
{
    using type = typename Engine::Handle;
};
template <>
struct HandleOf<sim::Simulation>
{
    using type = sim::EventHandle;
};

/**
 * The deterministic churn workload both engines execute. A fixed set
 * of actors reschedule themselves from a shared pre-drawn delay table
 * (so neither engine pays RNG cost); each firing models one request
 * crossing the service mesh: it arms one guard timeout per hop
 * (cancelling the previous request's timeouts first), the way the
 * resilient mesh arms per-hop deadlines that are almost always
 * cancelled when the response returns, and the drivers cancel pending
 * think events. Cancelled timeouts are where the engines diverge: the
 * legacy queue carries every cancelled shell until its distant expiry
 * - two heap allocations at arm time, a full deep-heap pop when the
 * shell surfaces - while the slab engine frees the slot at cancel in
 * O(1) and compacts shells out in bulk. That asymmetry is exactly the
 * hot-path win being measured. The callback captures (this, index,
 * tick) mirror the real call sites: 24 bytes, beyond std::function's
 * small-buffer but inside EventFn's inline 48.
 */
template <typename Engine>
class Churn
{
  public:
    explicit Churn(std::uint64_t target) : target_(target)
    {
        Rng rng(42, "bench.speed_engine.delays");
        delays_.resize(4096);
        for (Tick &d : delays_)
            d = kMicrosecond * (1 + rng.uniformInt(0, 999));
        decoys_.resize(kActors * kHops);
    }

    /** Run to completion; returns wall seconds spent inside run(). */
    double run()
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < kActors; ++i) {
            const Tick at = nextDelay();
            eng_.scheduleAt(at, [this, i, at] { tick(i, at); });
        }
        eng_.run();
        const auto elapsed = std::chrono::steady_clock::now() - t0;
        return std::chrono::duration<double>(elapsed).count();
    }

    Tick simNow() const { return eng_.now(); }
    std::uint64_t events() const { return eng_.eventsProcessed(); }

  private:
    static constexpr std::size_t kActors = 512;
    /** Guard timeouts armed (and later cancelled) per request. */
    static constexpr std::size_t kHops = 8;

    Tick nextDelay()
    {
        return delays_[cursor_++ & (delays_.size() - 1)];
    }

    void tick(std::size_t i, Tick scheduled_at)
    {
        (void)scheduled_at;
        if (++fired_ >= target_)
            return;
        for (std::size_t h = 0; h < kHops; ++h) {
            auto &guard = decoys_[i * kHops + h];
            guard.cancel();
            guard = eng_.scheduleAfter((h + 1) * 20 * kMillisecond,
                                       [this, i] { decoyFire(i); });
        }
        const Tick at = eng_.now() + nextDelay();
        eng_.scheduleAt(at, [this, i, at] { tick(i, at); });
    }

    void decoyFire(std::size_t i)
    {
        (void)i;
        ++decoy_fired_;
    }

    Engine eng_;
    std::vector<Tick> delays_;
    std::vector<typename HandleOf<Engine>::type> decoys_;
    std::uint64_t target_;
    std::uint64_t fired_ = 0;
    std::uint64_t decoy_fired_ = 0;
    std::size_t cursor_ = 0;
};

struct EngineScore
{
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double simSeconds = 0.0;
    double simPerWall() const
    {
        return wallSeconds > 0 ? simSeconds / wallSeconds : 0.0;
    }
    double eventsPerSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(events) / wallSeconds
                   : 0.0;
    }
};

template <typename Engine>
EngineScore
scoreEngine(std::uint64_t target)
{
    // One untimed warm-up pass heats the allocator and caches so the
    // first-timed engine is not penalized; then the best of two timed
    // repetitions, since scheduler or page-cache noise only ever
    // inflates wall time.
    { Churn<Engine> warm(target / 8 + 1); warm.run(); }
    EngineScore best;
    for (int rep = 0; rep < 2; ++rep) {
        Churn<Engine> churn(target);
        EngineScore s;
        s.wallSeconds = churn.run();
        s.events = churn.events();
        s.simSeconds = ticksToSeconds(churn.simNow());
        if (rep == 0 || s.wallSeconds < best.wallSeconds)
            best = s;
    }
    return best;
}

/** One FIG-01-scenario run with wall-clock instrumentation. */
struct TimedRun
{
    std::string label;
    unsigned users = 0;
    core::RunResult result;
    double wallSeconds = 0.0;
    double simSeconds = 0.0;
};

TimedRun
timedRun(const std::string &label, const core::ExperimentConfig &config)
{
    inform("running ", label, " (", config.load.users, " users)");
    TimedRun t;
    t.label = label;
    t.users = config.load.users;
    const auto t0 = std::chrono::steady_clock::now();
    t.result = core::runExperiment(config);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    t.wallSeconds = std::chrono::duration<double>(elapsed).count();
    t.simSeconds = ticksToSeconds(config.warmup + config.measure);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    const bool fast = benchx::fastMode();
    const core::ExperimentConfig reference = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "SPEED-ENGINE", "speed_engine",
        "engine-core speedup and FIG-01 simulated-seconds-per-wall-second",
        reference);

    // --- Part 1: event-core microbenchmark, legacy vs slab. ---
    const std::uint64_t target = fast ? 300'000 : 3'000'000;
    const EngineScore legacy = scoreEngine<LegacyEngine>(target);
    const EngineScore slab = scoreEngine<sim::Simulation>(target);
    if (legacy.events != slab.events) {
        fatal("engines diverged on the identical workload: legacy ran ",
              legacy.events, " events, slab ran ", slab.events);
    }
    const double speedup =
        legacy.simPerWall() > 0 ? slab.simPerWall() / legacy.simPerWall()
                                : 0.0;

    TextTable core_table({"engine", "events", "wall (s)", "sim (s)",
                          "sim-s/wall-s", "events/s"});
    core_table.row()
        .cell("legacy (shared_ptr+std::function)")
        .cell(legacy.events)
        .cell(legacy.wallSeconds, 3)
        .cell(legacy.simSeconds, 3)
        .cell(legacy.simPerWall(), 1)
        .cell(legacy.eventsPerSec(), 0);
    core_table.row()
        .cell("slab (arena+EventFn)")
        .cell(slab.events)
        .cell(slab.wallSeconds, 3)
        .cell(slab.simSeconds, 3)
        .cell(slab.simPerWall(), 1)
        .cell(slab.eventsPerSec(), 0);
    core_table.row()
        .cell("speedup")
        .cell("")
        .cell("")
        .cell("")
        .cell(speedup, 2)
        .cell("");
    rep.table(core_table, "event-core microbenchmark (identical "
                          "schedule/cancel/reschedule workload)");

#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)
    if (speedup < 5.0) {
        fatal("slab engine is only ", speedup,
              "x the legacy engine on the event core; the refactor "
              "promises >= 5x in Release builds");
    }
    inform("event-core speedup ", speedup, "x (>= 5x required): ok");
#else
    inform("event-core speedup ", speedup,
           "x (5x floor not enforced without NDEBUG / with sanitizers)");
#endif

    // --- Part 2: FIG-01 end-to-end, per-user vs fluid. ---
    core::ExperimentConfig per_user = benchx::paperConfig();
    core::ExperimentConfig fluid = per_user;
    fluid.load.fluidThreshold = 1; // force fluid mode at any size
    fluid.app.batchedTiming = true;
    core::ExperimentConfig fluid_big = fluid;
    fluid_big.load.users = fast ? 30'000 : 300'000;

    std::vector<TimedRun> runs;
    runs.push_back(timedRun("per-user/3000", per_user));
    runs.push_back(timedRun("fluid/3000", fluid));
    runs.push_back(timedRun(
        "fluid/" + std::to_string(fluid_big.load.users), fluid_big));

    TextTable fig_table({"point", "users", "events", "wall (s)",
                         "sim-s/wall-s", "events/s"});
    for (const TimedRun &t : runs) {
        rep.add(t.label, t.result);
        const double spw =
            t.wallSeconds > 0 ? t.simSeconds / t.wallSeconds : 0.0;
        const double evps =
            t.wallSeconds > 0
                ? static_cast<double>(t.result.eventsProcessed) /
                      t.wallSeconds
                : 0.0;
        fig_table.row()
            .cell(t.label)
            .cell(t.users)
            .cell(t.result.eventsProcessed)
            .cell(t.wallSeconds, 2)
            .cell(spw, 2)
            .cell(evps, 0);
    }
    rep.table(fig_table, "FIG-01 scenario speed (per-user vs fluid)");

    rep.printSummaries();
    rep.finish();
    return 0;
}
