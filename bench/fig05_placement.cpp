/**
 * @file
 * FIG-5 (headline): placement policies at full machine scale.
 * Demonstrates the paper's central result - topology-aware placement
 * of services onto dedicated CCXs with local memory yields a
 * >=double-digit throughput uplift and a matching tail-latency cut
 * over the performance-tuned OS-default baseline (paper: +22% / -18%).
 *
 * The demand shares are measured live with a short profiling run,
 * exactly as the methodology prescribes.
 */

#include <iostream>
#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig(5000);
    benchx::SeriesReporter rep(
        "FIG-5", "fig05_placement",
        "placement policies on the full 128-CPU machine", base);

    std::cout << "measuring per-service demand shares...\n";
    const core::DemandShares demand = core::measureDemand(base);
    std::cout << "  webui=" << formatDouble(demand.webui, 3)
              << " auth=" << formatDouble(demand.auth, 3)
              << " persistence=" << formatDouble(demand.persistence, 3)
              << " recommender=" << formatDouble(demand.recommender, 3)
              << " image=" << formatDouble(demand.image, 3) << "\n";
    base.demand = demand;
    const unsigned refine_rounds = benchx::fastMode() ? 1 : 2;

    std::vector<core::SweepPoint> points;
    for (core::PlacementKind kind : core::allPlacements()) {
        core::SweepPoint p;
        p.label = core::placementName(kind);
        p.config = base;
        p.config.placement = kind;
        // Pinned policies get the iterative partition refinement the
        // methodology prescribes (re-measure CPU cost per service
        // under the new placement, re-partition).
        const bool pinned = kind != core::PlacementKind::OsDefault &&
                            kind != core::PlacementKind::NodeAware;
        p.refineRounds = pinned ? refine_rounds : 0;
        points.push_back(std::move(p));
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"placement", "tput (req/s)", "d tput", "p50 (ms)",
                 "p99 (ms)", "d p99", "IPC", "L3 miss%", "migr/s"});
    const double base_tput = runs[0].result.throughputRps;
    const double base_p99 = runs[0].result.latency.p99Ms;
    for (const core::SweepOutcome &o : runs) {
        const core::RunResult &r = o.result;
        const double win_s = ticksToSeconds(base.measure);
        t.row()
            .cell(o.label)
            .cell(r.throughputRps, 0)
            .cell(formatPercent(r.throughputRps / base_tput - 1.0))
            .cell(r.latency.p50Ms, 1)
            .cell(r.latency.p99Ms, 1)
            .cell(formatPercent(r.latency.p99Ms / base_p99 - 1.0))
            .cell(r.total.ipc, 2)
            .cell(r.total.l3MissRatio * 100.0, 1)
            .cell(static_cast<double>(r.sched.migrations) / win_s, 0);
    }
    rep.table(t, "FIG-5 | Topology-aware placement vs tuned baseline "
                 "(paper: +22% throughput, -18% latency)");
    rep.finish();
    return 0;
}
