/**
 * @file
 * FIG-5 (headline): placement policies at full machine scale.
 * Demonstrates the paper's central result - topology-aware placement
 * of services onto dedicated CCXs with local memory yields a
 * >=double-digit throughput uplift and a matching tail-latency cut
 * over the performance-tuned OS-default baseline (paper: +22% / -18%).
 *
 * The demand shares are measured live with a short profiling run,
 * exactly as the methodology prescribes.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig(5000);
    benchx::printHeader(
        "FIG-5", "placement policies on the full 128-CPU machine", base);

    std::cout << "measuring per-service demand shares...\n";
    const core::DemandShares demand = core::measureDemand(base);
    std::cout << "  webui=" << formatDouble(demand.webui, 3)
              << " auth=" << formatDouble(demand.auth, 3)
              << " persistence=" << formatDouble(demand.persistence, 3)
              << " recommender=" << formatDouble(demand.recommender, 3)
              << " image=" << formatDouble(demand.image, 3) << "\n";
    base.demand = demand;
    const unsigned refine_rounds = benchx::fastMode() ? 1 : 2;

    TextTable t({"placement", "tput (req/s)", "d tput", "p50 (ms)",
                 "p99 (ms)", "d p99", "IPC", "L3 miss%", "migr/s"});
    double base_tput = 0.0;
    double base_p99 = 0.0;
    for (core::PlacementKind kind : core::allPlacements()) {
        core::ExperimentConfig c = base;
        c.placement = kind;
        // Pinned policies get the iterative partition refinement the
        // methodology prescribes (re-measure CPU cost per service
        // under the new placement, re-partition).
        const bool pinned = kind != core::PlacementKind::OsDefault &&
                            kind != core::PlacementKind::NodeAware;
        const core::RunResult r =
            pinned ? core::runRefined(c, refine_rounds)
                   : core::runExperiment(c);
        if (kind == core::PlacementKind::OsDefault) {
            base_tput = r.throughputRps;
            base_p99 = r.latency.p99Ms;
        }
        const double win_s = ticksToSeconds(c.measure);
        t.row()
            .cell(core::placementName(kind))
            .cell(r.throughputRps, 0)
            .cell(formatPercent(r.throughputRps / base_tput - 1.0))
            .cell(r.latency.p50Ms, 1)
            .cell(r.latency.p99Ms, 1)
            .cell(formatPercent(r.latency.p99Ms / base_p99 - 1.0))
            .cell(r.total.ipc, 2)
            .cell(r.total.l3MissRatio * 100.0, 1)
            .cell(static_cast<double>(r.sched.migrations) / win_s, 0);
        std::cout << "  " << core::placementName(kind) << ": "
                  << core::summarize(r) << "\n";
    }
    t.printWithCaption(
        "FIG-5 | Topology-aware placement vs tuned baseline "
        "(paper: +22% throughput, -18% latency)");
    return 0;
}
