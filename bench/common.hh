/**
 * @file
 * Shared harness for the benchmark binaries.
 *
 * Every figNN/tabNN binary reproduces one artifact of the paper's
 * evaluation on the rome128 machine model. Binaries accept the shared
 * flags (--jobs N, --out-dir PATH), run their sweep on the parallel
 * core::SweepRunner, print the table/series the paper reports, and
 * write a machine-readable BENCH_<stem>.json next to it. Set
 * MICROSCALE_BENCH_FAST=1 to shrink windows for smoke runs and
 * MICROSCALE_BENCH_JOBS to set the default worker count.
 */

#ifndef MICROSCALE_BENCH_COMMON_HH
#define MICROSCALE_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/table.hh"
#include "core/sweep.hh"

namespace microscale::benchx
{

/**
 * Version of the BENCH_*.json layout, stamped into every artifact as
 * "schema_version" (json_check requires it). Bump when the top-level
 * layout or the meaning of an existing field changes; purely additive
 * per-point result fields do not bump it. Version 2 = the original
 * (unstamped) layout plus the stamp itself and the optional per-point
 * "elastic" block. Version 3 adds the top-level speed stamps:
 * "wall_seconds" (reporter construction to finish()) and
 * "events_processed" (summed over every successful point's result).
 */
inline constexpr int kBenchSchemaVersion = 3;

/** True when MICROSCALE_BENCH_FAST=1 is set. */
bool fastMode();

/**
 * Demand shares for partitioning, measured on the browse profile at
 * saturation and refined under the pinned placement (runRefined), so
 * they reflect pinned-regime IPC. Kept fixed here so every bench
 * partitions identically; fig05 re-derives them live to demonstrate
 * the workflow.
 */
core::DemandShares calibratedDemand();

/**
 * The paper's operating point: rome128, tuned baseline sizing,
 * closed-loop browse-profile load at saturation.
 */
core::ExperimentConfig paperConfig(unsigned users = 3000);

/**
 * Parse the shared harness flags (--jobs, --out-dir). Call first in
 * every bench main; exits on --help or unknown flags.
 */
void init(int argc, char **argv);

/** Worker threads for runSweep: --jobs, else core::resolveJobs(0). */
unsigned jobs();

/**
 * Directory that receives BENCH_<stem>.json: --out-dir, else the
 * MICROSCALE_BENCH_OUT_DIR environment variable, else the current
 * directory.
 */
std::string outDir();

/**
 * Collects one artifact's labeled results and tables, prints the
 * banner/summaries/tables the paper-style output needs, and writes
 * BENCH_<stem>.json (see EXPERIMENTS.md for the schema) on finish().
 */
class SeriesReporter
{
  public:
    /** Artifact with a reference config: prints the full banner. */
    SeriesReporter(std::string artifact, std::string stem,
                   std::string caption,
                   const core::ExperimentConfig &reference);

    /** Artifact without a single reference config (e.g. FIG-3). */
    SeriesReporter(std::string artifact, std::string stem,
                   std::string caption);

    /** Record one labeled point for the JSON series. */
    void add(const std::string &label, const core::RunResult &result);

    /**
     * Record a failed point: the JSON gets {"label", "error"} instead
     * of a result, which json_check treats as a hard failure.
     */
    void addError(const std::string &label, const std::string &message);

    /** Print "  <label>: <summary>" for every recorded point. */
    void printSummaries() const;

    /** Print a table with its caption and record it for the JSON. */
    void table(const TextTable &t, const std::string &caption);

    /** Wall-clock seconds since this reporter was constructed. */
    double wallSeconds() const;

    /** Engine events summed over every successful recorded point. */
    std::uint64_t eventsProcessed() const { return events_processed_; }

    /** Write BENCH_<stem>.json; prints the path. */
    void finish();

  private:
    struct StoredTable
    {
        std::string caption;
        std::vector<std::string> headers;
        std::vector<std::vector<std::string>> rows;
    };

    struct StoredPoint
    {
        std::string label;
        core::RunResult result;
        /** Non-empty when the point failed (no valid result). */
        std::string error;
    };

    std::string artifact_;
    std::string stem_;
    std::string caption_;
    std::string machine_;
    std::vector<StoredPoint> points_;
    std::vector<StoredTable> tables_;
    /** Construction time; finish() stamps the elapsed wall clock. */
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
    std::uint64_t events_processed_ = 0;
};

/**
 * Run the labeled points on a core::SweepRunner (jobs()) and record
 * every result with the reporter in submission order. If any point
 * fails, its error is recorded for the JSON ("error" field, which
 * json_check rejects), the JSON is written, and the bench fatal()s:
 * bench artifacts need every point, but a partial JSON beats none.
 */
std::vector<core::SweepOutcome>
runSweep(const std::vector<core::SweepPoint> &points,
         SeriesReporter &reporter);

} // namespace microscale::benchx

#endif // MICROSCALE_BENCH_COMMON_HH
