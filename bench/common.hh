/**
 * @file
 * Shared configuration for the benchmark harness.
 *
 * Every figNN/tabNN binary reproduces one artifact of the paper's
 * evaluation on the rome128 machine model. Binaries run with no
 * arguments and print the table/series the paper reports. Set
 * MICROSCALE_BENCH_FAST=1 to shrink windows for smoke runs.
 */

#ifndef MICROSCALE_BENCH_COMMON_HH
#define MICROSCALE_BENCH_COMMON_HH

#include <string>

#include "core/experiment.hh"

namespace microscale::benchx
{

/** True when MICROSCALE_BENCH_FAST=1 is set. */
bool fastMode();

/**
 * Demand shares for partitioning, measured on the browse profile at
 * saturation and refined under the pinned placement (runRefined), so
 * they reflect pinned-regime IPC. Kept fixed here so every bench
 * partitions identically; fig05 re-derives them live to demonstrate
 * the workflow.
 */
core::DemandShares calibratedDemand();

/**
 * The paper's operating point: rome128, tuned baseline sizing,
 * closed-loop browse-profile load at saturation.
 */
core::ExperimentConfig paperConfig(unsigned users = 3000);

/** Print the bench banner: id, caption, machine, load. */
void printHeader(const std::string &artifact, const std::string &caption,
                 const core::ExperimentConfig &config);

} // namespace microscale::benchx

#endif // MICROSCALE_BENCH_COMMON_HH
