/**
 * @file
 * FIG-2: per-service CPU utilization breakdown at saturation - which
 * services the machine's cycles actually go to under the browse
 * profile (WebUI and ImageProvider dominate).
 */

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig c = benchx::paperConfig();
    c.placement = core::PlacementKind::OsDefault;
    benchx::SeriesReporter rep(
        "FIG-2", "fig02_service_util",
        "per-service CPU utilization at saturation", c);

    core::SweepPoint p;
    p.label = "os-default/saturation";
    p.config = c;
    const core::RunResult r = benchx::runSweep({p}, rep)[0].result;

    double total_cpus = 0.0;
    for (const auto &[name, row] : r.servicePerf)
        total_cpus += row.utilizationCpus;

    TextTable t({"service", "CPUs busy", "share", "MIPS", "IPC",
                 "kernel%", "CS/s"});
    for (const auto &[name, row] : r.servicePerf) {
        t.row()
            .cell(name)
            .cell(row.utilizationCpus, 2)
            .cell(formatDouble(row.utilizationCpus / total_cpus * 100.0,
                               1) +
                  "%")
            .cell(row.mips, 0)
            .cell(row.ipc, 2)
            .cell(row.kernelShare * 100.0, 1)
            .cell(row.csPerSec, 0);
    }
    t.row()
        .cell("TOTAL")
        .cell(total_cpus, 2)
        .cell("100.0%")
        .cell(r.total.mips, 0)
        .cell(r.total.ipc, 2)
        .cell(r.total.kernelShare * 100.0, 1)
        .cell(r.total.csPerSec, 0);

    rep.table(t, "FIG-2 | Per-service CPU demand under the browse "
                 "profile (tput=" +
                     formatDouble(r.throughputRps, 0) + " req/s)");
    rep.finish();
    return 0;
}
