/**
 * @file
 * FIG-12: chaos experiment suite. Runs the canonical fault scenarios
 * (image-replica crash, recommender brownout, network latency spike)
 * against the mesh with no resilience policy and with the reference
 * resilient policy (deadlines + retries + breaker + shedding +
 * health-aware balancing + degraded page fallbacks), and reports
 * goodput, error rate, degraded share and tail latency for each cell.
 * The healthy row demonstrates the policy costs nothing when nothing
 * is wrong.
 */

#include <string>
#include <vector>

#include "common.hh"
#include "teastore/chaos.hh"

using namespace microscale;

namespace
{

struct Policy
{
    const char *name;
    bool resilient;
};

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    const std::vector<teastore::ChaosScenario> scenarios =
        teastore::allChaosScenarios();
    const std::vector<Policy> policies = {{"none", false},
                                          {"resilient", true}};

    core::ExperimentConfig base = benchx::paperConfig(/*users=*/2400);
    benchx::SeriesReporter rep(
        "FIG-12", "fig12_resilience",
        "goodput and tail latency under injected faults, without and "
        "with the resilient mesh policy",
        base);

    std::vector<core::SweepPoint> points;
    for (teastore::ChaosScenario s : scenarios) {
        for (const Policy &pol : policies) {
            core::SweepPoint p;
            p.label = std::string(teastore::chaosName(s)) + "/" + pol.name;
            p.config = base;
            p.config.faults =
                teastore::makeChaosScript(s, base.warmup, base.measure);
            if (pol.resilient) {
                p.config.resilience = teastore::resilientPolicy();
                p.config.app.degradedFallbacks = true;
            }
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"scenario", "policy", "goodput (req/s)", "errors",
                 "degraded", "p50 (ms)", "p99 (ms)", "retries", "shed",
                 "ddl drops", "brk opens"});
    std::size_t i = 0;
    for (teastore::ChaosScenario s : scenarios) {
        for (const Policy &pol : policies) {
            const core::RunResult &r = runs[i++].result;
            const core::ResilienceSummary &rs = r.resilience;
            t.row()
                .cell(teastore::chaosName(s))
                .cell(pol.name)
                .cell(rs.goodputRps, 0)
                .cell(formatDouble(rs.errorRate * 100.0, 2) + "%")
                .cell(formatDouble(rs.degradedShare * 100.0, 2) + "%")
                .cell(r.latency.p50Ms, 1)
                .cell(r.latency.p99Ms, 1)
                .cell(rs.retries)
                .cell(rs.shed)
                .cell(rs.deadlineDrops)
                .cell(rs.breakerOpens);
        }
    }
    rep.table(t, "FIG-12 | Fault scenarios x mesh policy (p50/p99 over "
                 "successful requests)");
    rep.finish();
    return 0;
}
