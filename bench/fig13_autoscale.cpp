/**
 * @file
 * FIG-13: online elasticity. Time-varying load schedules (flash-crowd
 * spike, diurnal sine, constant load under a recommender brownout)
 * drive the open-loop driver against three provisioning regimes: a
 * static deployment tuned for nominal load, a reactive threshold
 * autoscaler and a predictive (Holt forecast) autoscaler, the latter
 * two placing new replicas either topology-aware (least-loaded CCX,
 * memory homed) or OS-default (unpinned, same capacity bill). The
 * figure reports SLO-violation seconds, core-seconds of granted
 * capacity and scale-out lag per cell, and asserts the two headline
 * claims: autoscaling beats the static baseline on both violation
 * seconds and core-seconds for the spike, and topology-aware
 * placement beats OS-default during scale-out.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "autoscale/elastic.hh"
#include "base/logging.hh"
#include "common.hh"
#include "teastore/chaos.hh"

using namespace microscale;

namespace
{

struct Arm
{
    const char *name;
    bool autoscale;
    autoscale::PolicyKind policy;
    autoscale::PlacerKind placer;
};

/** Short label suffix: "static", "reactive/ccx", "predictive/os". */
std::string
armLabel(const Arm &arm)
{
    if (!arm.autoscale)
        return "static";
    std::string s = arm.name;
    s += arm.placer == autoscale::PlacerKind::TopologyAware ? "/ccx"
                                                            : "/os";
    return s;
}

const core::RunResult &
byLabel(const std::vector<core::SweepOutcome> &runs,
        const std::string &label)
{
    for (const core::SweepOutcome &o : runs) {
        if (o.label == label)
            return o.result;
    }
    fatal("fig13: no sweep point labeled '", label, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);
    const bool fast = benchx::fastMode();

    // Windows are much longer than the other figures: the control
    // loop needs room for several scale-out/scale-in episodes.
    const Tick warmup = fast ? 2 * kSecond : 3 * kSecond;
    const Tick measure = fast ? 24 * kSecond : 48 * kSecond;

    // Nominal load a single replica per service handles comfortably;
    // the spike overwhelms the static deployment (its webui partition
    // saturates around 2.3k req/s) but stays within what the
    // autoscaler can reach by growing into the idle CCXs.
    const double base_rps = 600.0;
    const double spike_rps = 5000.0;
    const double diurnal_crest = 3000.0;
    const double chaos_rps = 1600.0;

    loadgen::LoadSchedule spike = autoscale::makeSchedule(
        "spike", base_rps, spike_rps, warmup, measure);
    loadgen::LoadSchedule diurnal = autoscale::makeSchedule(
        "diurnal", base_rps, diurnal_crest, warmup, measure);
    loadgen::LoadSchedule brownout = autoscale::makeSchedule(
        "constant", chaos_rps, chaos_rps, warmup, measure);
    brownout.setName("chaos-brownout");

    core::ExperimentConfig base = benchx::paperConfig();
    base.warmup = warmup;
    base.measure = measure;
    // Initial deployments are the tuned CCX partitioning of a 7-CCX
    // slice (webui 2 / image 2 / one CCX each for the rest); the
    // remaining 9 CCXs are the headroom the autoscaler grows into.
    base.placement = core::PlacementKind::CcxAware;

    autoscale::AutoscalerParams as;
    as.period = fast ? 250 * kMillisecond : 500 * kMillisecond;
    as.warmup.registrationDelay = fast ? 1 * kSecond : 2 * kSecond;
    as.warmup.coldWindow = fast ? 2 * kSecond : 4 * kSecond;
    as.scaleOutCooldown = fast ? 500 * kMillisecond : 1 * kSecond;
    as.scaleInCooldown = fast ? 1 * kSecond : 2 * kSecond;
    as.minReplicas = 1;
    as.maxReplicas = 6;
    // Two replicas per scale-out so the reactive policy climbs out of
    // a flash crowd in a few control periods; the forecast horizon
    // matches the replica warm-up time (registration + half the cold
    // window), i.e. "scale now for the load when capacity arrives".
    as.policyParams.scaleOutStep = 2;
    as.policyParams.horizon =
        as.warmup.registrationDelay + as.warmup.coldWindow / 2;

    const std::vector<loadgen::LoadSchedule *> schedules = {
        &spike, &diurnal, &brownout};
    const std::vector<Arm> arms = {
        {"static", false, autoscale::PolicyKind::Static,
         autoscale::PlacerKind::TopologyAware},
        {"reactive", true, autoscale::PolicyKind::Threshold,
         autoscale::PlacerKind::TopologyAware},
        {"reactive", true, autoscale::PolicyKind::Threshold,
         autoscale::PlacerKind::OsDefault},
        {"predictive", true, autoscale::PolicyKind::Predictive,
         autoscale::PlacerKind::TopologyAware},
        {"predictive", true, autoscale::PolicyKind::Predictive,
         autoscale::PlacerKind::OsDefault},
    };

    benchx::SeriesReporter rep(
        "FIG-13", "fig13_autoscale",
        "SLO-violation seconds, core-seconds and scale-out lag under "
        "time-varying load: static-tuned vs reactive vs predictive "
        "autoscaling, topology-aware vs OS-default placement",
        base);

    std::vector<core::SweepPoint> points;
    for (const loadgen::LoadSchedule *sched : schedules) {
        for (const Arm &arm : arms) {
            autoscale::ElasticConfig ec;
            ec.base = base;
            ec.schedule = *sched;
            ec.initialCores = 28; // 7 of rome128's 16 CCXs
            ec.autoscale = arm.autoscale;
            ec.autoscaler = as;
            ec.autoscaler.policy = arm.policy;
            ec.autoscaler.placer = arm.placer;
            if (sched->name() == "chaos-brownout") {
                ec.base.faults = teastore::makeChaosScript(
                    teastore::ChaosScenario::Brownout, warmup, measure);
                ec.base.resilience = teastore::resilientPolicy();
                ec.base.app.degradedFallbacks = true;
            }

            core::SweepPoint p;
            p.label = sched->name() + "/" + armLabel(arm);
            p.config = ec.base;
            p.runner = [ec](const core::ExperimentConfig &) {
                return autoscale::runElastic(ec);
            };
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"schedule", "arm", "offered (req/s)", "tput (req/s)",
                 "p99 (ms)", "SLO viol (s)", "core-s", "steady cpus",
                 "outs", "ins", "lag (ms)", "peak webui", "peak image"});
    std::size_t i = 0;
    for (const loadgen::LoadSchedule *sched : schedules) {
        for (const Arm &arm : arms) {
            const core::RunResult &r = runs[i++].result;
            const core::ElasticSummary &es = r.elastic;
            auto peak = [&es](const char *svc) -> unsigned {
                auto it = es.peakReplicas.find(svc);
                return it == es.peakReplicas.end() ? 0 : it->second;
            };
            t.row()
                .cell(sched->name())
                .cell(armLabel(arm))
                .cell(es.offeredMeanRps, 0)
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(es.sloViolationSeconds, 2)
                .cell(es.coreSecondsGranted, 0)
                .cell(es.steadyStateCpus, 0)
                .cell(es.scaleOuts)
                .cell(es.scaleIns)
                .cell(es.scaleOutLagMeanMs, 0)
                .cell(peak("webui"))
                .cell(peak("image"));
        }
    }
    rep.table(t, "FIG-13 | Elasticity under time-varying load "
                 "(policy x placement x schedule)");
    rep.finish();

    // Headline claims. (a) On the spike, both autoscaling policies cut
    // SLO-violation seconds below the static baseline while running at
    // a lower steady-state capacity level off-peak (the static
    // deployment holds its full grant around the clock).
    const core::ElasticSummary &st = byLabel(runs, "spike/static").elastic;
    bool ok = true;
    for (const char *label : {"spike/reactive/ccx", "spike/predictive/ccx"}) {
        const core::ElasticSummary &es = byLabel(runs, label).elastic;
        const bool pass = es.sloViolationSeconds < st.sloViolationSeconds &&
                          es.steadyStateCpus < st.steadyStateCpus;
        std::printf("check (a) %-22s viol %6.2fs vs static %6.2fs, "
                    "steady cpus %4.0f vs %4.0f  [%s]\n",
                    label, es.sloViolationSeconds, st.sloViolationSeconds,
                    es.steadyStateCpus, st.steadyStateCpus,
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }
    // (b) Topology-aware placement beats OS-default during scale-out:
    // no worse on throughput AND better tail latency (or vice versa).
    for (const char *pol : {"reactive", "predictive"}) {
        const core::RunResult &ccx =
            byLabel(runs, std::string("spike/") + pol + "/ccx");
        const core::RunResult &os =
            byLabel(runs, std::string("spike/") + pol + "/os");
        const bool pass =
            (ccx.throughputRps >= 0.99 * os.throughputRps &&
             ccx.latency.p99Ms < os.latency.p99Ms) ||
            (ccx.latency.p99Ms <= 1.01 * os.latency.p99Ms &&
             ccx.throughputRps > os.throughputRps);
        std::printf("check (b) spike/%-11s ccx %5.0f req/s p99 %6.1fms "
                    "vs os %5.0f req/s p99 %6.1fms  [%s]\n",
                    pol, ccx.throughputRps, ccx.latency.p99Ms,
                    os.throughputRps, os.latency.p99Ms,
                    pass ? "PASS" : "FAIL");
        ok = ok && pass;
    }
    if (!ok)
        fatal("FIG-13 headline claims not met (see checks above)");
    return 0;
}
