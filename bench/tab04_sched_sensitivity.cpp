/**
 * @file
 * TAB-4: sensitivity of the baseline to OS scheduler parameters -
 * context-switch cost, preemption timeslice, and the load balancer.
 * Quantifies how much of the baseline's behaviour is scheduler policy
 * vs hardware topology.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    base.placement = core::PlacementKind::OsDefault;
    benchx::printHeader("TAB-4",
                        "baseline sensitivity to scheduler parameters",
                        base);

    struct Variant
    {
        const char *what;
        os::SchedParams sched;
    };
    std::vector<Variant> variants;
    {
        Variant v{"default (2us switch, 1ms slice, balance on)", {}};
        variants.push_back(v);
    }
    {
        Variant v{"free context switches", {}};
        v.sched.switchCost = 0;
        variants.push_back(v);
    }
    {
        Variant v{"expensive switches (5us)", {}};
        v.sched.switchCost = 5 * kMicrosecond;
        variants.push_back(v);
    }
    {
        Variant v{"short timeslice (0.5ms)", {}};
        v.sched.timeslice = 500 * kMicrosecond;
        variants.push_back(v);
    }
    {
        Variant v{"long timeslice (4ms)", {}};
        v.sched.timeslice = 4 * kMillisecond;
        variants.push_back(v);
    }
    {
        Variant v{"no periodic load balancing", {}};
        v.sched.loadBalance = false;
        variants.push_back(v);
    }

    TextTable t({"scheduler variant", "tput (req/s)", "d tput",
                 "p99 (ms)", "CS/s", "migr/s"});
    double base_tput = 0.0;
    for (const Variant &v : variants) {
        core::ExperimentConfig c = base;
        c.sched = v.sched;
        const core::RunResult r = core::runExperiment(c);
        if (base_tput == 0.0)
            base_tput = r.throughputRps;
        const double win_s = ticksToSeconds(c.measure);
        t.row()
            .cell(v.what)
            .cell(r.throughputRps, 0)
            .cell(formatPercent(r.throughputRps / base_tput - 1.0))
            .cell(r.latency.p99Ms, 1)
            .cell(r.total.csPerSec, 0)
            .cell(static_cast<double>(r.sched.migrations) / win_s, 0);
        std::cout << "  " << v.what << ": " << core::summarize(r)
                  << "\n";
    }
    t.printWithCaption("TAB-4 | Scheduler-parameter sensitivity");
    return 0;
}
