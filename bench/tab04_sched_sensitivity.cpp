/**
 * @file
 * TAB-4: sensitivity of the baseline to OS scheduler parameters -
 * context-switch cost, preemption timeslice, and the load balancer.
 * Quantifies how much of the baseline's behaviour is scheduler policy
 * vs hardware topology.
 */

#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    base.placement = core::PlacementKind::OsDefault;
    benchx::SeriesReporter rep(
        "TAB-4", "tab04_sched_sensitivity",
        "baseline sensitivity to scheduler parameters", base);

    struct Variant
    {
        const char *what;
        os::SchedParams sched;
    };
    std::vector<Variant> variants;
    {
        Variant v{"default (2us switch, 1ms slice, balance on)", {}};
        variants.push_back(v);
    }
    {
        Variant v{"free context switches", {}};
        v.sched.switchCost = 0;
        variants.push_back(v);
    }
    {
        Variant v{"expensive switches (5us)", {}};
        v.sched.switchCost = 5 * kMicrosecond;
        variants.push_back(v);
    }
    {
        Variant v{"short timeslice (0.5ms)", {}};
        v.sched.timeslice = 500 * kMicrosecond;
        variants.push_back(v);
    }
    {
        Variant v{"long timeslice (4ms)", {}};
        v.sched.timeslice = 4 * kMillisecond;
        variants.push_back(v);
    }
    {
        Variant v{"no periodic load balancing", {}};
        v.sched.loadBalance = false;
        variants.push_back(v);
    }

    std::vector<core::SweepPoint> points;
    for (const Variant &v : variants) {
        core::SweepPoint p;
        p.label = v.what;
        p.config = base;
        p.config.sched = v.sched;
        points.push_back(std::move(p));
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"scheduler variant", "tput (req/s)", "d tput",
                 "p99 (ms)", "CS/s", "migr/s"});
    const double base_tput = runs[0].result.throughputRps;
    for (const core::SweepOutcome &o : runs) {
        const core::RunResult &r = o.result;
        const double win_s = ticksToSeconds(base.measure);
        t.row()
            .cell(o.label)
            .cell(r.throughputRps, 0)
            .cell(formatPercent(r.throughputRps / base_tput - 1.0))
            .cell(r.latency.p99Ms, 1)
            .cell(r.total.csPerSec, 0)
            .cell(static_cast<double>(r.sched.migrations) / win_s, 0);
    }
    rep.table(t, "TAB-4 | Scheduler-parameter sensitivity");
    rep.finish();
    return 0;
}
