/**
 * @file
 * FIG-10: sensitivity to the shared-L3 domain size. Same 64 cores /
 * 128 threads, but organized as 2-, 4- or 8-core CCXs (L3 scaled at
 * 4 MB/core). Bigger cache domains reduce the penalty of the default
 * scheduler's service mixing, shrinking the benefit of explicit CCX
 * placement - the design-point discussion behind the paper's CCX
 * analysis (and the milan128 preset).
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader("FIG-10",
                        "scale-up vs shared-L3 (CCX) domain size", base);

    TextTable t({"cores/CCX", "L3/CCX (MB)", "placement",
                 "tput (req/s)", "p99 (ms)", "IPC", "ccx-aware gain"});
    for (unsigned cores_per_ccx : {2u, 4u, 8u}) {
        topo::MachineParams machine = topo::rome128();
        machine.name = "rome128-ccx" + std::to_string(cores_per_ccx);
        machine.coresPerCcx = cores_per_ccx;
        machine.ccxsPerNode = 16 / cores_per_ccx; // keep 16 cores/node
        machine.cache.l3BytesPerCcx =
            4ull * 1024 * 1024 * cores_per_ccx; // 4 MB per core

        double base_tput = 0.0;
        for (core::PlacementKind kind :
             {core::PlacementKind::OsDefault,
              core::PlacementKind::CcxAware}) {
            core::ExperimentConfig c = base;
            c.machine = machine;
            c.placement = kind;
            const core::RunResult r = core::runExperiment(c);
            if (kind == core::PlacementKind::OsDefault)
                base_tput = r.throughputRps;
            t.row()
                .cell(cores_per_ccx)
                .cell(machine.cache.l3BytesPerCcx / (1024 * 1024))
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.total.ipc, 2)
                .cell(kind == core::PlacementKind::CcxAware
                          ? formatPercent(r.throughputRps / base_tput -
                                          1.0)
                          : std::string("-"));
            std::cout << "  ccx" << cores_per_ccx << " "
                      << core::placementName(kind) << ": "
                      << core::summarize(r) << "\n";
        }
    }
    t.printWithCaption(
        "FIG-10 | Placement benefit vs cache-domain granularity");
    return 0;
}
