/**
 * @file
 * FIG-10: sensitivity to the shared-L3 domain size. Same 64 cores /
 * 128 threads, but organized as 2-, 4- or 8-core CCXs (L3 scaled at
 * 4 MB/core). Bigger cache domains reduce the penalty of the default
 * scheduler's service mixing, shrinking the benefit of explicit CCX
 * placement - the design-point discussion behind the paper's CCX
 * analysis (and the milan128 preset).
 */

#include <string>
#include <vector>

#include "common.hh"

using namespace microscale;

namespace
{

topo::MachineParams
ccxMachine(unsigned cores_per_ccx)
{
    topo::MachineParams machine = topo::rome128();
    machine.name = "rome128-ccx" + std::to_string(cores_per_ccx);
    machine.coresPerCcx = cores_per_ccx;
    machine.ccxsPerNode = 16 / cores_per_ccx; // keep 16 cores/node
    machine.cache.l3BytesPerCcx =
        4ull * 1024 * 1024 * cores_per_ccx; // 4 MB per core
    return machine;
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "FIG-10", "fig10_ccx_size",
        "scale-up vs shared-L3 (CCX) domain size", base);

    const std::vector<unsigned> ccx_sizes = {2u, 4u, 8u};
    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware};

    std::vector<core::SweepPoint> points;
    for (unsigned cores_per_ccx : ccx_sizes) {
        for (core::PlacementKind kind : kinds) {
            core::SweepPoint p;
            p.label = "ccx" + std::to_string(cores_per_ccx) + "/" +
                      core::placementName(kind);
            p.config = base;
            p.config.machine = ccxMachine(cores_per_ccx);
            p.config.placement = kind;
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"cores/CCX", "L3/CCX (MB)", "placement",
                 "tput (req/s)", "p99 (ms)", "IPC", "ccx-aware gain"});
    std::size_t i = 0;
    for (unsigned cores_per_ccx : ccx_sizes) {
        double base_tput = 0.0;
        for (core::PlacementKind kind : kinds) {
            const core::RunResult &r = runs[i++].result;
            if (kind == core::PlacementKind::OsDefault)
                base_tput = r.throughputRps;
            t.row()
                .cell(cores_per_ccx)
                .cell(static_cast<std::uint64_t>(4) * cores_per_ccx)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.total.ipc, 2)
                .cell(kind == core::PlacementKind::CcxAware
                          ? formatPercent(r.throughputRps / base_tput -
                                          1.0)
                          : std::string("-"));
        }
    }
    rep.table(t,
              "FIG-10 | Placement benefit vs cache-domain granularity");
    rep.finish();
    return 0;
}
