/**
 * @file
 * FIG-11: image-cache sensitivity. The ImageProvider dominates CPU
 * demand; its cache hit ratio decides how much rescaling work the
 * machine does per page. Sweeping the hit ratio moves the demand
 * balance and the saturation throughput, and shifts how many CCXs the
 * planner hands to the image service.
 */

#include <string>
#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "FIG-11", "fig11_image_cache",
        "sensitivity to the image cache hit ratio", base);

    const std::vector<double> hits = {0.70, 0.88, 0.98};
    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware};

    std::vector<core::SweepPoint> points;
    for (double hit : hits) {
        for (core::PlacementKind kind : kinds) {
            core::SweepPoint p;
            p.label = "hit" + formatDouble(hit, 2) + "/" +
                      core::placementName(kind);
            p.config = base;
            p.config.app.imageCacheHitRatio = hit;
            p.config.placement = kind;
            p.refineRounds =
                kind == core::PlacementKind::CcxAware ? 1 : 0;
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"hit ratio", "placement", "tput (req/s)", "p99 (ms)",
                 "image CPUs", "image CCXs"});
    std::size_t i = 0;
    for (double hit : hits) {
        for (core::PlacementKind kind : kinds) {
            const core::RunResult &r = runs[i++].result;
            t.row()
                .cell(hit, 2)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.servicePerf.at(teastore::names::kImage)
                          .utilizationCpus,
                      1)
                .cell(r.plan.services.at(teastore::names::kImage)
                          .replicas);
        }
    }
    rep.table(t, "FIG-11 | Cache effectiveness moves demand and the "
                 "partition");
    rep.finish();
    return 0;
}
