/**
 * @file
 * FIG-11: image-cache sensitivity. The ImageProvider dominates CPU
 * demand; its cache hit ratio decides how much rescaling work the
 * machine does per page. Sweeping the hit ratio moves the demand
 * balance and the saturation throughput, and shifts how many CCXs the
 * planner hands to the image service.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader("FIG-11",
                        "sensitivity to the image cache hit ratio",
                        base);

    TextTable t({"hit ratio", "placement", "tput (req/s)", "p99 (ms)",
                 "image CPUs", "image CCXs"});
    for (double hit : {0.70, 0.88, 0.98}) {
        for (core::PlacementKind kind :
             {core::PlacementKind::OsDefault,
              core::PlacementKind::CcxAware}) {
            core::ExperimentConfig c = base;
            c.app.imageCacheHitRatio = hit;
            c.placement = kind;
            const core::RunResult r =
                kind == core::PlacementKind::CcxAware
                    ? core::runRefined(c, 1)
                    : core::runExperiment(c);
            t.row()
                .cell(hit, 2)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.servicePerf.at(teastore::names::kImage)
                          .utilizationCpus,
                      1)
                .cell(r.plan.services.at(teastore::names::kImage)
                          .replicas);
            std::cout << "  hit=" << hit << " "
                      << core::placementName(kind) << ": "
                      << core::summarize(r) << "\n";
        }
    }
    t.printWithCaption(
        "FIG-11 | Cache effectiveness moves demand and the partition");
    return 0;
}
