/**
 * @file
 * MICRO: google-benchmark microbenchmarks of the simulation engine
 * itself - event queue throughput, CpuMask algebra, histogram insert
 * and quantile queries, scheduler dispatch and execution-engine churn.
 * These bound how much simulated time per wall second the harness can
 * deliver.
 */

#include <benchmark/benchmark.h>

#include "base/cpumask.hh"
#include "base/stats.hh"
#include "cpu/exec.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "topo/presets.hh"

using namespace microscale;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulation sim;
        long sink = 0;
        for (int i = 0; i < batch; ++i)
            sim.scheduleAt(static_cast<Tick>(i % 97) + 1,
                           [&sink] { ++sink; });
        sim.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void
BM_EventCancellation(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        std::vector<sim::EventHandle> handles;
        handles.reserve(1000);
        for (int i = 0; i < 1000; ++i)
            handles.push_back(sim.scheduleAt(i + 1, [] {}));
        for (auto &h : handles)
            h.cancel();
        sim.run();
        benchmark::DoNotOptimize(sim.eventsProcessed());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancellation);

void
BM_CpuMaskAlgebra(benchmark::State &state)
{
    const CpuMask a = CpuMask::range(0, 127);
    const CpuMask b = CpuMask::range(64, 255);
    for (auto _ : state) {
        CpuMask c = (a & b) | (a - b);
        benchmark::DoNotOptimize(c.count());
        benchmark::DoNotOptimize(c.first());
    }
}
BENCHMARK(BM_CpuMaskAlgebra);

void
BM_CpuMaskIterate(benchmark::State &state)
{
    const CpuMask m = CpuMask::range(0, 255);
    for (auto _ : state) {
        unsigned sum = 0;
        for (CpuId c : m)
            sum += c;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CpuMaskIterate);

void
BM_HistogramAdd(benchmark::State &state)
{
    QuantileHistogram h;
    double v = 1.0;
    for (auto _ : state) {
        h.add(v);
        v = v * 1.37 + 3.0;
        if (v > 1e12)
            v = 1.0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void
BM_HistogramQuantile(benchmark::State &state)
{
    QuantileHistogram h;
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.lognormal(1e6, 1.0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.p99());
    }
}
BENCHMARK(BM_HistogramQuantile);

void
BM_SchedulerDispatchCycle(benchmark::State &state)
{
    // One full wake -> dispatch -> complete cycle per item.
    sim::Simulation sim;
    topo::Machine machine(topo::small8());
    cpu::ExecEngine engine(sim, machine);
    os::SchedParams sp;
    sp.switchCost = 0;
    os::Kernel kernel(sim, machine, engine, sp, 1);
    os::Thread *t = kernel.createThread("bm", machine.allCpus());
    cpu::WorkProfile p;
    p.l3Apki = 0.0;
    p.branchMpki = 0.0;
    p.icacheMpki = 0.0;

    for (auto _ : state) {
        bool done = false;
        t->run(p, 1000.0, [&done] { done = true; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerDispatchCycle);

void
BM_ExecEngineChurn(benchmark::State &state)
{
    // Start/stop churn across CCXs exercises reprice paths.
    sim::Simulation sim;
    topo::Machine machine(topo::rome128());
    cpu::ExecEngine engine(sim, machine);
    cpu::WorkProfile p;
    p.wssBytes = 8.0 * 1024 * 1024;
    std::vector<std::unique_ptr<cpu::ExecContext>> ctxs;
    for (int i = 0; i < 16; ++i) {
        ctxs.push_back(std::make_unique<cpu::ExecContext>(
            "bm" + std::to_string(i), kInvalidNode));
        engine.setWork(*ctxs.back(), p, 1e15, [] {});
    }
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i)
            engine.startRun(*ctxs[i], static_cast<CpuId>(i * 8));
        sim.runUntil(sim.now() + kMicrosecond);
        for (int i = 0; i < 16; ++i)
            engine.stopRun(*ctxs[i]);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ExecEngineChurn);

} // namespace

BENCHMARK_MAIN();
