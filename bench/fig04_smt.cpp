/**
 * @file
 * FIG-4: SMT sensitivity - the same physical core counts with SMT
 * siblings disabled vs enabled. SMT adds real capacity for this
 * memory- and frontend-bound workload, but well under 2x, and the
 * benefit shrinks when heterogeneous services share cores.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig();
    benchx::printHeader("FIG-4",
                        "SMT off vs on at fixed physical core counts",
                        base);

    TextTable t({"cores", "SMT", "logical", "tput (req/s)", "p99 (ms)",
                 "IPC", "GHz", "SMT gain"});
    for (unsigned cores : {32u, 64u}) {
        double tput_off = 0.0;
        for (bool smt : {false, true}) {
            core::ExperimentConfig c = base;
            c.cores = cores;
            c.smt = smt;
            c.load.users = 30 * cores * (smt ? 2 : 1);
            const core::RunResult r = core::runExperiment(c);
            if (!smt)
                tput_off = r.throughputRps;
            t.row()
                .cell(cores)
                .cell(smt ? "on" : "off")
                .cell(r.budgetCpus)
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.total.ipc, 2)
                .cell(r.avgFreqGhz, 2)
                .cell(smt ? formatPercent(r.throughputRps / tput_off - 1.0)
                          : std::string("-"));
            std::cout << "  " << cores << " cores SMT "
                      << (smt ? "on" : "off") << ": "
                      << core::summarize(r) << "\n";
        }
    }
    t.printWithCaption("FIG-4 | SMT contribution to scale-up");
    return 0;
}
