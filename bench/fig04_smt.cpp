/**
 * @file
 * FIG-4: SMT sensitivity - the same physical core counts with SMT
 * siblings disabled vs enabled. SMT adds real capacity for this
 * memory- and frontend-bound workload, but well under 2x, and the
 * benefit shrinks when heterogeneous services share cores.
 */

#include <string>
#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig();
    benchx::SeriesReporter rep(
        "FIG-4", "fig04_smt",
        "SMT off vs on at fixed physical core counts", base);

    const std::vector<unsigned> core_counts = {32u, 64u};
    std::vector<core::SweepPoint> points;
    for (unsigned cores : core_counts) {
        for (bool smt : {false, true}) {
            core::SweepPoint p;
            p.label = std::to_string(cores) + "c/smt-" +
                      (smt ? "on" : "off");
            p.config = base;
            p.config.cores = cores;
            p.config.smt = smt;
            p.config.load.users = 30 * cores * (smt ? 2 : 1);
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"cores", "SMT", "logical", "tput (req/s)", "p99 (ms)",
                 "IPC", "GHz", "SMT gain"});
    std::size_t i = 0;
    for (unsigned cores : core_counts) {
        double tput_off = 0.0;
        for (bool smt : {false, true}) {
            const core::RunResult &r = runs[i++].result;
            if (!smt)
                tput_off = r.throughputRps;
            t.row()
                .cell(cores)
                .cell(smt ? "on" : "off")
                .cell(r.budgetCpus)
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(r.total.ipc, 2)
                .cell(r.avgFreqGhz, 2)
                .cell(smt ? formatPercent(r.throughputRps / tput_off -
                                          1.0)
                          : std::string("-"));
        }
    }
    rep.table(t, "FIG-4 | SMT contribution to scale-up");
    rep.finish();
    return 0;
}
