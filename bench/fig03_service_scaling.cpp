/**
 * @file
 * FIG-3: individual service scale-up curves. Each leaf service is
 * driven directly (no WebUI front end) while pinned to a growing set
 * of cores, exposing how far each one scales before saturating -
 * the per-service characterization that motivates demand-proportional
 * CCX allocation.
 */

#include <functional>
#include <string>
#include <vector>

#include "common.hh"
#include "loadgen/driver.hh"

using namespace microscale;

namespace
{

struct Target
{
    const char *service;
    const char *op;
    /** Request builder: arg0/arg1 for the op. */
    std::uint64_t arg0, arg1;
};

/** Drive one leaf op against one service pinned to `cores` cores. */
double
leafThroughput(const Target &target, unsigned cores, Tick warmup,
               Tick measure)
{
    sim::Simulation sim;
    topo::Machine machine(topo::rome128());
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 42);
    net::Network network(sim, net::NetParams{}, 42);
    svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 42);

    teastore::AppParams ap;
    // One replica with a deep worker pool; affinity will confine it.
    const teastore::ServiceConfig cfg{1, 128};
    ap.webui = cfg;
    ap.auth = cfg;
    ap.persistence = cfg;
    ap.recommender = cfg;
    ap.image = cfg;
    ap.heartbeats = false;
    teastore::App app(mesh, ap, 42);

    const CpuMask budget = core::budgetMask(machine, cores, true);
    for (svc::Service *s : app.services()) {
        for (unsigned r = 0; r < s->replicaCount(); ++r)
            s->setReplicaPlacement(r, budget, kInvalidNode);
    }
    kernel.start();

    // Closed-loop clients issuing the leaf op directly.
    Rng rng(42, "fig03");
    const unsigned clients = 64 * cores;
    std::uint64_t completed = 0;
    const Tick window_start = warmup;
    const Tick window_end = warmup + measure;
    std::function<void()> spawn = [&]() {
        svc::Payload req;
        req.bytes = 512;
        req.arg0 = target.arg0 ? target.arg0
                               : app.store().sampleProduct(rng);
        req.arg1 = target.arg1;
        mesh.callExternal(target.service, target.op, req,
                          [&](const svc::Payload &) {
                              const Tick now = sim.now();
                              if (now >= window_start && now < window_end)
                                  ++completed;
                              spawn();
                          });
    };
    for (unsigned u = 0; u < clients; ++u)
        spawn();

    sim.runUntil(window_end);
    return static_cast<double>(completed) / ticksToSeconds(measure);
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    const Tick warmup =
        benchx::fastMode() ? 150 * kMillisecond : 300 * kMillisecond;
    const Tick measure =
        benchx::fastMode() ? 300 * kMillisecond : 700 * kMillisecond;

    const std::vector<Target> targets = {
        {"auth", "validate", 1, 0},
        {"persistence", "products", 1, 0},
        {"recommender", "recommend", 1, 2},
        {"image", "previews", 0, 20},
    };
    const std::vector<unsigned> core_counts = {2, 4, 8, 16, 32};

    benchx::SeriesReporter rep(
        "FIG-3", "fig03_service_scaling",
        "individual service scale-up (ops/s, service pinned to N "
        "cores, SMT on)");

    // Sweep points with a custom runner: each drives one leaf op in
    // its own isolated simulation, so they parallelize like any
    // runExperiment point.
    std::vector<core::SweepPoint> points;
    for (const Target &target : targets) {
        for (unsigned cores : core_counts) {
            core::SweepPoint p;
            p.label = std::string(target.service) + "." + target.op +
                      "@" + std::to_string(cores) + "c";
            p.runner = [target, cores, warmup,
                        measure](const core::ExperimentConfig &) {
                core::RunResult r;
                r.throughputRps =
                    leafThroughput(target, cores, warmup, measure);
                return r;
            };
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"service/op", "2c", "4c", "8c", "16c", "32c",
                 "32c/2c speedup"});
    std::size_t i = 0;
    for (const Target &target : targets) {
        std::vector<double> tputs;
        for (unsigned cores : core_counts) {
            (void)cores;
            tputs.push_back(runs[i++].result.throughputRps);
        }
        auto row = t.row();
        row.cell(std::string(target.service) + "." + target.op);
        for (double v : tputs)
            row.cell(v, 0);
        row.cell(tputs.back() / tputs.front(), 2);
    }
    rep.table(t,
              "FIG-3 | Per-service throughput scaling with allocated "
              "cores");
    rep.finish();
    return 0;
}
