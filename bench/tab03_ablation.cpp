/**
 * @file
 * TAB-3: optimization ablation. Separates the contribution of each
 * technique stacked on the tuned baseline: soft NUMA-node affinity,
 * CCX pinning without memory homing, and the full CCX + local-memory
 * placement.
 */

#include <vector>

#include "common.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig base = benchx::paperConfig(5000);
    benchx::SeriesReporter rep(
        "TAB-3", "tab03_ablation",
        "ablation of the placement optimizations", base);

    struct Step
    {
        core::PlacementKind kind;
        const char *what;
    };
    const std::vector<Step> steps = {
        {core::PlacementKind::OsDefault,
         "tuned baseline (scheduler free, first-touch)"},
        {core::PlacementKind::NodeAware,
         "+ NUMA-node affinity per replica"},
        {core::PlacementKind::CcxStripedMem,
         "+ CCX pinning (memory striped)"},
        {core::PlacementKind::CcxAware,
         "+ CCX pinning + local memory (full optimization)"},
    };

    std::vector<core::SweepPoint> points;
    for (const Step &s : steps) {
        core::SweepPoint p;
        p.label = core::placementName(s.kind);
        p.config = base;
        p.config.placement = s.kind;
        points.push_back(std::move(p));
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"configuration", "tput (req/s)", "d tput", "p99 (ms)",
                 "d p99", "ccx-migr/s"});
    const double base_tput = runs[0].result.throughputRps;
    const double base_p99 = runs[0].result.latency.p99Ms;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        const core::RunResult &r = runs[i].result;
        const double win_s = ticksToSeconds(base.measure);
        t.row()
            .cell(steps[i].what)
            .cell(r.throughputRps, 0)
            .cell(formatPercent(r.throughputRps / base_tput - 1.0))
            .cell(r.latency.p99Ms, 1)
            .cell(formatPercent(r.latency.p99Ms / base_p99 - 1.0))
            .cell(static_cast<double>(r.sched.ccxMigrations) / win_s, 0);
    }
    rep.table(t, "TAB-3 | What each optimization layer buys");
    rep.finish();
    return 0;
}
