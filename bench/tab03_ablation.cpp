/**
 * @file
 * TAB-3: optimization ablation. Separates the contribution of each
 * technique stacked on the tuned baseline: soft NUMA-node affinity,
 * CCX pinning without memory homing, and the full CCX + local-memory
 * placement.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig base = benchx::paperConfig(5000);
    benchx::printHeader("TAB-3",
                        "ablation of the placement optimizations", base);

    struct Step
    {
        core::PlacementKind kind;
        const char *what;
    };
    const Step steps[] = {
        {core::PlacementKind::OsDefault,
         "tuned baseline (scheduler free, first-touch)"},
        {core::PlacementKind::NodeAware,
         "+ NUMA-node affinity per replica"},
        {core::PlacementKind::CcxStripedMem,
         "+ CCX pinning (memory striped)"},
        {core::PlacementKind::CcxAware,
         "+ CCX pinning + local memory (full optimization)"},
    };

    TextTable t({"configuration", "tput (req/s)", "d tput", "p99 (ms)",
                 "d p99", "ccx-migr/s"});
    double base_tput = 0.0, base_p99 = 0.0;
    for (const Step &s : steps) {
        core::ExperimentConfig c = base;
        c.placement = s.kind;
        const core::RunResult r = core::runExperiment(c);
        if (s.kind == core::PlacementKind::OsDefault) {
            base_tput = r.throughputRps;
            base_p99 = r.latency.p99Ms;
        }
        const double win_s = ticksToSeconds(c.measure);
        t.row()
            .cell(s.what)
            .cell(r.throughputRps, 0)
            .cell(formatPercent(r.throughputRps / base_tput - 1.0))
            .cell(r.latency.p99Ms, 1)
            .cell(formatPercent(r.latency.p99Ms / base_p99 - 1.0))
            .cell(static_cast<double>(r.sched.ccxMigrations) / win_s, 0);
        std::cout << "  " << core::placementName(s.kind) << ": "
                  << core::summarize(r) << "\n";
    }
    t.printWithCaption("TAB-3 | What each optimization layer buys");
    return 0;
}
