/**
 * @file
 * TAB-2: microservices vs conventional server workloads. Contrasts
 * the TeaStore services (measured at saturation) against SPEC-CPU-
 * style synthetic kernels run rate-style on the same machine - the
 * paper's argument that microservices look nothing like the workloads
 * that usually drive server-CPU design.
 */

#include <vector>

#include "common.hh"
#include "perf/report.hh"
#include "perf/synth.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig c = benchx::paperConfig();
    c.placement = core::PlacementKind::OsDefault;
    benchx::SeriesReporter rep(
        "TAB-2", "tab02_spec_compare",
        "microservices vs SPEC-like conventional workloads", c);

    core::SweepPoint p;
    p.label = "os-default/saturation";
    p.config = c;
    const core::RunResult r = benchx::runSweep({p}, rep)[0].result;

    std::vector<perf::PerfRow> rows;
    for (const auto &[name, row] : r.servicePerf) {
        perf::PerfRow labeled = row;
        labeled.name = "uS/" + labeled.name;
        rows.push_back(labeled);
    }

    perf::SynthRunParams sp;
    sp.threads = 64; // one copy per core, SPEC-rate style
    sp.warmup = benchx::fastMode() ? 20 * kMillisecond
                                   : 50 * kMillisecond;
    sp.measure = benchx::fastMode() ? 50 * kMillisecond
                                    : 200 * kMillisecond;
    for (const perf::SynthKernel &k : perf::specLikeSuite()) {
        perf::PerfRow row = perf::runSynthKernel(c.machine, k, sp);
        row.name = "spec/" + row.name;
        rows.push_back(row);
    }

    rep.table(perf::microarchTable(rows),
              "TAB-2 | Microservices (uS/*) vs conventional kernels "
              "(spec/*): IPC, footprints, kernel time and switch rates");
    rep.finish();
    return 0;
}
