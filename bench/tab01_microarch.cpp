/**
 * @file
 * TAB-1: microarchitectural characterization of each service at
 * saturation - IPC, cache and branch MPKIs, kernel share, SMT
 * exposure and context-switch rates, as measured by the modeled
 * performance counters.
 */

#include <vector>

#include "common.hh"
#include "perf/report.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig c = benchx::paperConfig();
    c.placement = core::PlacementKind::OsDefault;
    benchx::printHeader(
        "TAB-1", "per-service microarchitectural characterization", c);

    const core::RunResult r = core::runExperiment(c);

    std::vector<perf::PerfRow> rows;
    for (const auto &[name, row] : r.servicePerf)
        rows.push_back(row);
    rows.push_back(r.total);

    perf::microarchTable(rows).printWithCaption(
        "TAB-1 | Service microarchitecture under the browse profile "
        "(os-default, saturation)");
    perf::activityTable(rows).printWithCaption(
        "TAB-1 (cont.) | Scheduling activity per service");
    return 0;
}
