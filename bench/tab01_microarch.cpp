/**
 * @file
 * TAB-1: microarchitectural characterization of each service at
 * saturation - IPC, cache and branch MPKIs, kernel share, SMT
 * exposure and context-switch rates, as measured by the modeled
 * performance counters.
 */

#include <vector>

#include "common.hh"
#include "perf/report.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    core::ExperimentConfig c = benchx::paperConfig();
    c.placement = core::PlacementKind::OsDefault;
    benchx::SeriesReporter rep(
        "TAB-1", "tab01_microarch",
        "per-service microarchitectural characterization", c);

    core::SweepPoint p;
    p.label = "os-default/saturation";
    p.config = c;
    const core::RunResult r = benchx::runSweep({p}, rep)[0].result;

    std::vector<perf::PerfRow> rows;
    for (const auto &[name, row] : r.servicePerf)
        rows.push_back(row);
    rows.push_back(r.total);

    rep.table(perf::microarchTable(rows),
              "TAB-1 | Service microarchitecture under the browse "
              "profile (os-default, saturation)");
    rep.table(perf::activityTable(rows),
              "TAB-1 (cont.) | Scheduling activity per service");
    rep.finish();
    return 0;
}
