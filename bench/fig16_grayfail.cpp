/**
 * @file
 * FIG-16: gray failures vs passive outlier ejection. Runs the gray
 * scenarios (a slow-but-alive replica that keeps answering, so the
 * circuit breaker never trips) against the resilient mesh policy
 * alone and against the same policy with passive outlier ejection,
 * and reports goodput, tail latency and the ejection counters for
 * each cell. The point of the figure: breakers are blind to gray
 * replicas - only latency-EWMA ejection restores goodput and p99.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common.hh"
#include "teastore/chaos.hh"

using namespace microscale;

namespace
{

struct Policy
{
    const char *name;
    bool eject;
};

} // namespace

int
main(int argc, char **argv)
{
    benchx::init(argc, argv);

    const std::vector<teastore::GrayScenario> scenarios =
        teastore::allGrayScenarios();
    const std::vector<Policy> policies = {{"resilient", false},
                                          {"eject", true}};

    core::ExperimentConfig base = benchx::paperConfig(/*users=*/2400);
    benchx::SeriesReporter rep(
        "FIG-16", "fig16_grayfail",
        "goodput and tail latency under gray (slow-but-alive) replica "
        "failures, resilient policy without and with passive outlier "
        "ejection",
        base);

    std::vector<core::SweepPoint> points;
    for (teastore::GrayScenario s : scenarios) {
        for (const Policy &pol : policies) {
            core::SweepPoint p;
            p.label = std::string(teastore::grayName(s)) + "/" + pol.name;
            p.config = base;
            p.config.faults =
                teastore::makeGrayScript(s, base.warmup, base.measure);
            p.config.resilience = pol.eject ? teastore::ejectionPolicy()
                                            : teastore::resilientPolicy();
            p.config.app.degradedFallbacks = true;
            points.push_back(std::move(p));
        }
    }
    const std::vector<core::SweepOutcome> runs =
        benchx::runSweep(points, rep);

    TextTable t({"scenario", "policy", "goodput (req/s)", "errors",
                 "p50 (ms)", "p99 (ms)", "timeouts", "ejections",
                 "unejections", "ejected@end"});
    bool ejection_wins = true;
    std::size_t i = 0;
    for (teastore::GrayScenario s : scenarios) {
        const core::RunResult &base_r = runs[i].result;
        const core::RunResult &eject_r = runs[i + 1].result;
        for (const Policy &pol : policies) {
            const core::RunResult &r = runs[i++].result;
            const core::ResilienceSummary &rs = r.resilience;
            const core::GrayFailSummary &gf = r.grayfail;
            t.row()
                .cell(teastore::grayName(s))
                .cell(pol.name)
                .cell(rs.goodputRps, 0)
                .cell(formatDouble(rs.errorRate * 100.0, 2) + "%")
                .cell(r.latency.p50Ms, 1)
                .cell(r.latency.p99Ms, 1)
                .cell(rs.timeoutCount)
                .cell(gf.ejections)
                .cell(gf.unejections)
                .cell(gf.ejectedAtEnd);
        }
        // The figure's claim, checked every run: ejection strictly
        // improves both goodput and p99 in every gray scenario.
        if (!(eject_r.resilience.goodputRps >
                  base_r.resilience.goodputRps &&
              eject_r.latency.p99Ms < base_r.latency.p99Ms)) {
            std::cerr << "FIG-16: ejection did not strictly improve "
                      << teastore::grayName(s) << " (goodput "
                      << base_r.resilience.goodputRps << " -> "
                      << eject_r.resilience.goodputRps << " req/s, p99 "
                      << base_r.latency.p99Ms << " -> "
                      << eject_r.latency.p99Ms << " ms)\n";
            ejection_wins = false;
        }
    }
    rep.table(t, "FIG-16 | Gray scenarios x {resilient, resilient + "
                 "outlier ejection} (p50/p99 over successful requests)");
    rep.finish();
    return ejection_wins ? 0 : 1;
}
