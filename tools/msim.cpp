/**
 * @file
 * msim: command-line front end to the scale-up experiment runner.
 *
 *   msim --machine rome128 --placement ccx-aware --users 4000
 *   msim --cores 32 --no-smt... (see --help)
 *
 * Prints a one-line summary plus per-service and per-op tables;
 * --csv switches the tables to CSV for scripting.
 */

#include <chrono>
#include <iostream>

#include "apps/socialnet/runner.hh"
#include "autoscale/elastic.hh"
#include "base/args.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "chaos/search.hh"
#include "cluster/cluster.hh"
#include "core/experiment.hh"
#include "core/json.hh"
#include "core/sweep.hh"
#include "perf/report.hh"
#include "teastore/chaos.hh"
#include "teastore/criticality.hh"
#include "topo/presets.hh"
#include "trace/export.hh"

using namespace microscale;

namespace
{

core::PlacementKind
placementByName(const std::string &name)
{
    for (core::PlacementKind k : core::allPlacements()) {
        if (name == core::placementName(k))
            return k;
    }
    fatal("unknown placement '", name,
          "' (try os-default, node-aware, ccx-aware, ccx-striped-mem)");
}

svc::FaultScript
faultScriptByName(const std::string &name, Tick warmup, Tick measure)
{
    teastore::GrayScenario gray;
    if (teastore::grayByName(name, gray))
        return teastore::makeGrayScript(gray, warmup, measure);
    for (teastore::ChaosScenario s : teastore::allChaosScenarios()) {
        if (name == teastore::chaosName(s))
            return teastore::makeChaosScript(s, warmup, measure);
    }
    fatal("unknown fault scenario '", name,
          "' (try healthy, crash, brownout, spike, gray-persistence, "
          "gray-webui, gray-auth, gray-persistence-pair)");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(
        "msim - microservice scale-up experiments on modeled servers");
    args.addString("machine", "rome128",
                   "machine preset (see topology_explorer)");
    args.addString("placement", "os-default", "placement policy");
    args.addString("app", "teastore",
                   "application graph: teastore (default), socialnet "
                   "(deep fan-out graph; open-loop only, see "
                   "--open-loop-rps and the --fan-*/--hedge-* knobs)");
    args.addInt("fan-depth", 5,
                "socialnet call-chain depth (1-5; shallower graphs "
                "absorb the pruned subtree's work locally)");
    args.addInt("fan-width", 4,
                "socialnet parallel post-storage legs per timeline "
                "read");
    args.addDouble("hedge-delay", 0.0,
                   "hedge the socialnet fan-out edges: launch a backup "
                   "leg after this many milliseconds (0 = no hedging)");
    args.addDouble("hedge-budget", 0.2,
                   "hedge tokens accrued per first attempt on hedged "
                   "edges (caps the duplicate-load ratio)");
    args.addDouble("straggler", 1.0,
                   "slow one socialnet post-storage replica's compute "
                   "by this factor (1 = healthy fleet)");
    args.addInt("users", 3000, "closed-loop users");
    args.addInt("fluid-threshold", 0,
                "aggregate closed-loop users into the O(1) fluid "
                "population model at or above this user count "
                "(0 = always per-user; see DESIGN.md engine internals)");
    args.addDouble("open-loop-rps", 0.0,
                   "use open-loop arrivals at this rate instead");
    args.addInt("cores", 0, "physical-core budget (0 = all)");
    args.addFlag("no-smt", "exclude SMT siblings from the budget");
    args.addDouble("warmup-s", 0.6, "warmup window, seconds");
    args.addDouble("measure-s", 1.5, "measurement window, seconds");
    args.addInt("refine", 0,
                "partition-refinement rounds (pinned placements)");
    args.addInt("jobs", 0,
                "sweep worker threads (0 = MICROSCALE_BENCH_JOBS or "
                "hardware)");
    args.addInt("seed", 42, "random seed");
    args.addString("faults", "healthy",
                   "fault scenario: healthy, crash, brownout, spike, "
                   "gray-persistence, gray-webui, gray-auth, "
                   "gray-persistence-pair");
    args.addFlag("eject",
                 "passive outlier ejection on top of --resilience "
                 "(implies it): gray replicas are pulled from the "
                 "rotation when their latency/error EWMAs diverge");
    args.addInt("chaos-schedules", 0,
                "run this many seeded chaos fault schedules through the "
                "conservation-ledger harness instead of an experiment "
                "(see tools/chaos_search)");
    args.addInt("chaos-seed", 1,
                "first schedule seed for --chaos-schedules");
    args.addString("schedule", "",
                   "time-varying open-loop schedule: constant, spike, "
                   "diurnal (empty = fixed-rate drivers; use windows of "
                   "tens of seconds, e.g. --warmup-s 3 --measure-s 48)");
    args.addDouble("base-rps", 600.0, "schedule base rate, req/s");
    args.addDouble("peak-rps", 5000.0,
                   "schedule peak rate (spike top / diurnal crest)");
    args.addString("autoscale", "",
                   "autoscaling policy for --schedule runs: threshold, "
                   "queue-law, predictive (empty = static deployment)");
    args.addString("placer", "topology-aware",
                   "placement for scaled-out replicas: topology-aware, "
                   "os-default");
    args.addInt("initial-cores", 0,
                "physical cores of the initial deployment for "
                "--schedule runs (0 = the full budget)");
    args.addInt("nodes", 1,
                "cluster size: scale out over this many copies of "
                "--machine joined by the --fabric model (cluster runs "
                "take whole nodes, so --cores must stay 0)");
    args.addString("fabric", "ideal",
                   "cluster fabric preset: ideal, lan, oversub");
    args.addInt("shards", 0,
                "persistence shards behind the consistent-hash tier "
                "(0 = unsharded local persistence)");
    args.addInt("cache-nodes", 0,
                "cache nodes fronting the shards (requires --shards)");
    args.addInt("data-replication", 1,
                "replicas per shard key range (1-3): >1 turns on "
                "quorum writes/reads, hinted handoff and scale-event "
                "rebalancing, and the run drains to verify no acked "
                "write was lost (needs --shards and enough nodes)");
    args.addInt("write-quorum", 0,
                "acks required before a replicated write succeeds "
                "(0 = majority; requires --data-replication > 1)");
    args.addInt("read-quorum", 0,
                "replicas a quorum read must reach (0 = R-W+1, the "
                "smallest that intersects every write quorum; "
                "requires --data-replication > 1)");
    args.addFlag("node-scaler",
                 "whole-node autoscaling: serve from --initial-nodes "
                 "machines and provision spares (warm pool first, "
                 "then cold boots) when the hottest service saturates");
    args.addInt("initial-nodes", 0,
                "nodes serving traffic from the start (0 = all; fewer "
                "than --nodes leaves spares for --node-scaler)");
    args.addFlag("resilience",
                 "enable the resilient mesh policy (timeouts, retries, "
                 "breaker, shedding) plus degraded page fallbacks");
    args.addString("admission", "off",
                   "adaptive admission control with CoDel queues: aimd, "
                   "gradient, off");
    args.addFlag("criticality",
                 "criticality-aware shedding (checkout/login last, "
                 "recommender/image first)");
    args.addFlag("brownout",
                 "brownout dimmer on optional page content (implies "
                 "degraded fallbacks)");
    args.addFlag("trace",
                 "per-request distributed tracing with critical-path "
                 "latency attribution");
    args.addDouble("trace-sample", 1.0,
                   "fraction of external requests to trace");
    args.addString("trace-out", "",
                   "write the sampled spans as Chrome trace_event JSON "
                   "to this file (chrome://tracing, Perfetto)");
    args.addFlag("report-speed",
                 "print engine speed after the run: wall seconds, "
                 "simulated-seconds-per-wall-second and events/sec");
    args.addFlag("csv", "emit tables as CSV");
    args.addFlag("json", "emit the full result as JSON and exit");
    args.addFlag("plan", "print the placement plan");
    if (!args.parse(argc, argv))
        return 1;

    core::ExperimentConfig config;
    config.machine = topo::presetByName(args.getString("machine"));
    config.placement = placementByName(args.getString("placement"));
    config.load.users = static_cast<unsigned>(args.getInt("users"));
    config.load.fluidThreshold =
        static_cast<unsigned>(args.getInt("fluid-threshold"));
    config.openLoopRps = args.getDouble("open-loop-rps");
    config.cores = static_cast<unsigned>(args.getInt("cores"));
    config.smt = !args.getFlag("no-smt");
    config.warmup = secondsToTicks(args.getDouble("warmup-s"));
    config.measure = secondsToTicks(args.getDouble("measure-s"));
    config.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    // Pinned-regime demand shares calibrated for the browse profile.
    config.demand.webui = 0.45;
    config.demand.auth = 0.03;
    config.demand.persistence = 0.065;
    config.demand.recommender = 0.045;
    config.demand.image = 0.41;

    const std::string app = args.getString("app");
    if (app != "teastore" && app != "socialnet")
        fatal("unknown --app '", app, "' (teastore, socialnet)");
    const bool socialnet_mode = app == "socialnet";
    if (!socialnet_mode &&
        (args.getDouble("hedge-delay") > 0.0 ||
         args.getInt("fan-depth") != 5 ||
         args.getInt("fan-width") != 4 ||
         args.getDouble("straggler") != 1.0))
        fatal("--fan-depth/--fan-width/--hedge-delay/--straggler shape "
              "the socialnet graph; add --app socialnet");
    if (socialnet_mode && args.getInt("chaos-schedules") > 0)
        fatal("--chaos-schedules drives TeaStore fault schedules; "
              "drop --app socialnet");

    if (args.getInt("chaos-schedules") > 0) {
        chaos::SearchOptions so;
        so.seed =
            static_cast<std::uint64_t>(args.getInt("chaos-seed"));
        so.schedules =
            static_cast<unsigned>(args.getInt("chaos-schedules"));
        so.run.eject = args.getFlag("eject");
        so.run.experimentSeed = config.seed;
        const chaos::SearchResult res =
            chaos::runSearch(so, std::cout);
        return res.violating == 0 ? 0 : 1;
    }

    if (socialnet_mode) {
        if (args.getString("faults") != "healthy" ||
            args.getFlag("eject") || args.getFlag("resilience"))
            fatal("--faults/--eject/--resilience are TeaStore policy "
                  "presets; socialnet plants its gray replica via "
                  "--straggler and hedges via --hedge-delay");
    } else {
        config.faults = faultScriptByName(args.getString("faults"),
                                          config.warmup,
                                          config.measure);
        if (args.getFlag("eject")) {
            config.resilience = teastore::ejectionPolicy();
            config.app.degradedFallbacks = true;
        } else if (args.getFlag("resilience")) {
            config.resilience = teastore::resilientPolicy();
            config.app.degradedFallbacks = true;
        }
    }

    // Overload layer: start from the tuned preset and keep only the
    // parts the flags ask for, so each knob works on its own.
    const svc::AdmissionKind admission =
        svc::admissionByName(args.getString("admission"));
    if (admission != svc::AdmissionKind::Off ||
        args.getFlag("criticality") || args.getFlag("brownout")) {
        if (socialnet_mode)
            fatal("--admission/--criticality/--brownout apply the "
                  "TeaStore overload preset; not available with "
                  "--app socialnet yet");
        svc::OverloadConfig oc = teastore::overloadAwarePolicy();
        oc.admission.kind = admission;
        oc.codel.enabled = admission != svc::AdmissionKind::Off;
        oc.criticalityAware = args.getFlag("criticality");
        if (!oc.criticalityAware)
            oc.rules.clear();
        oc.brownout.enabled = args.getFlag("brownout");
        if (oc.brownout.enabled)
            config.app.degradedFallbacks = true;
        config.overload = oc;
    }

    if (args.getFlag("trace") || !args.getString("trace-out").empty()) {
        config.trace.enabled = true;
        config.trace.sampleRate = args.getDouble("trace-sample");
    }

    // Run through the sweep harness so msim shares the thread pool,
    // per-point logging tags and error handling with the bench suite.
    core::SweepPoint point;
    point.label = args.getString("machine") + "/" +
                  args.getString("placement");
    point.config = config;
    point.refineRounds = static_cast<unsigned>(args.getInt("refine"));

    // Cluster mode: any scale-out knob reroutes the run through
    // cluster::runScaleout, which joins --nodes copies of --machine
    // over the fabric and layers the cache/shard tier and node scaler
    // on top. A --schedule then modulates the open-loop driver
    // directly (whole-node elasticity replaces the core autoscaler).
    const unsigned cluster_nodes =
        static_cast<unsigned>(args.getInt("nodes"));
    const bool cluster_mode =
        cluster_nodes > 1 || args.getInt("shards") > 0 ||
        args.getInt("cache-nodes") > 0 ||
        args.getInt("initial-nodes") > 0 ||
        args.getFlag("node-scaler") ||
        args.getInt("data-replication") > 1 ||
        args.getString("fabric") != "ideal";

    const std::string schedule = args.getString("schedule");
    if (socialnet_mode) {
        if (cluster_mode)
            fatal("--app socialnet runs on one machine; drop the "
                  "cluster flags (--nodes/--shards/--cache-nodes/"
                  "--node-scaler/--fabric/--data-replication)");
        if (!schedule.empty() || !args.getString("autoscale").empty())
            fatal("--schedule/--autoscale drive the TeaStore runner; "
                  "socialnet runs a fixed open-loop rate");
        if (point.refineRounds != 0)
            fatal("--refine does not apply to --app socialnet");
        if (config.openLoopRps <= 0.0)
            fatal("--app socialnet is open-loop; add "
                  "--open-loop-rps RATE (e.g. 600)");
        socialnet::RunOptions opts;
        const int depth = args.getInt("fan-depth");
        if (depth < 1 || depth > 5)
            fatal("--fan-depth ", depth, " out of range (1-5)");
        opts.app.depth = static_cast<unsigned>(depth);
        const int width = args.getInt("fan-width");
        if (width < 1)
            fatal("--fan-width must be at least 1");
        opts.app.fanWidth = static_cast<unsigned>(width);
        opts.stragglerFactor = args.getDouble("straggler");
        if (opts.stragglerFactor < 1.0)
            fatal("--straggler slows a replica; use a factor >= 1");
        const double hedge_ms = args.getDouble("hedge-delay");
        opts.hedge = hedge_ms > 0.0;
        opts.hedgeDelay = secondsToTicks(hedge_ms / 1e3);
        opts.hedgeBudget = args.getDouble("hedge-budget");
        if (opts.hedgeBudget <= 0.0 || opts.hedgeBudget > 1.0)
            fatal("--hedge-budget ", opts.hedgeBudget,
                  " out of range (0, 1]");
        point.label = "socialnet/depth" + std::to_string(depth) +
                      (opts.hedge ? "/hedge" : "");
        point.runner = [opts](const core::ExperimentConfig &c) {
            return socialnet::runSocialnet(c, opts);
        };
    } else if (cluster_mode) {
        if (!args.getString("autoscale").empty())
            fatal("--autoscale grows cores on one machine; cluster "
                  "runs grow whole nodes, use --node-scaler");
        if (point.refineRounds != 0)
            fatal("--refine does not apply to cluster runs");
        cluster::ClusterParams cp;
        cp.nodes = cluster_nodes;
        cp.initialNodes =
            static_cast<unsigned>(args.getInt("initial-nodes"));
        cp.nodeMachine = config.machine;
        cluster::applyFabricPreset(cp, args.getString("fabric"));
        cp.shards = static_cast<unsigned>(args.getInt("shards"));
        cp.cacheNodes =
            static_cast<unsigned>(args.getInt("cache-nodes"));
        const int repl = args.getInt("data-replication");
        const int write_quorum = args.getInt("write-quorum");
        const int read_quorum = args.getInt("read-quorum");
        if (repl < 1 || repl > 3)
            fatal("--data-replication ", repl, " out of range (1-3)");
        if (repl == 1 && (write_quorum > 0 || read_quorum > 0))
            fatal("--write-quorum/--read-quorum need "
                  "--data-replication > 1 (an unreplicated tier has "
                  "no quorums)");
        if (repl > 1) {
            if (cp.shards == 0)
                fatal("--data-replication replicates shard key "
                      "ranges; add --shards N");
            const unsigned active =
                cp.initialNodes > 0 ? cp.initialNodes : cp.nodes;
            if (active < static_cast<unsigned>(repl))
                fatal("--data-replication ", repl, " places replicas "
                      "on distinct machines; raise --nodes (or "
                      "--initial-nodes) to at least ", repl);
            if (write_quorum > repl)
                fatal("--write-quorum ", write_quorum, " exceeds "
                      "--data-replication ", repl);
            if (read_quorum > repl)
                fatal("--read-quorum ", read_quorum, " exceeds "
                      "--data-replication ", repl);
            cp.replication.factor = static_cast<unsigned>(repl);
            cp.replication.writeQuorum =
                static_cast<unsigned>(write_quorum);
            cp.replication.readQuorum =
                static_cast<unsigned>(read_quorum);
            // Drain so the post-run acked-write sweep can certify the
            // run (replication: ... verified in the summary).
            point.config.drainAtEnd = true;
        }
        cp.scaler.enabled = args.getFlag("node-scaler");
        if (!schedule.empty()) {
            point.config.loadSchedule = autoscale::makeSchedule(
                schedule, args.getDouble("base-rps"),
                args.getDouble("peak-rps"), config.warmup,
                config.measure);
            if (point.config.openLoopRps <= 0.0)
                point.config.openLoopRps = args.getDouble("peak-rps");
        }
        point.runner = [cp](const core::ExperimentConfig &c) {
            return cluster::runScaleout(c, cp);
        };
    } else if (!schedule.empty()) {
        autoscale::ElasticConfig ec;
        ec.base = config;
        ec.schedule = autoscale::makeSchedule(
            schedule, args.getDouble("base-rps"),
            args.getDouble("peak-rps"), config.warmup, config.measure);
        ec.initialCores =
            static_cast<unsigned>(args.getInt("initial-cores"));
        const std::string policy = args.getString("autoscale");
        ec.autoscale = !policy.empty();
        if (ec.autoscale)
            ec.autoscaler.policy = autoscale::policyByName(policy);
        ec.autoscaler.placer =
            autoscale::placerByName(args.getString("placer"));
        if (point.refineRounds != 0)
            fatal("--refine does not apply to --schedule runs");
        point.runner = [ec](const core::ExperimentConfig &) {
            return autoscale::runElastic(ec);
        };
    } else if (!args.getString("autoscale").empty()) {
        fatal("--autoscale needs --schedule");
    }

    core::SweepOptions so;
    so.jobs = static_cast<unsigned>(args.getInt("jobs"));
    so.progress = false;
    const core::SweepRunner runner(so);
    const auto wall_start = std::chrono::steady_clock::now();
    const core::SweepOutcome out = runner.run({point})[0];
    const double wall_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - wall_start).count();
    if (!out.ok)
        fatal("run failed: ", out.error);
    const core::RunResult &r = out.result;

    const std::string trace_out = args.getString("trace-out");
    if (!trace_out.empty()) {
        if (!r.trace.store)
            fatal("--trace-out needs a traced run");
        if (!trace::writeChromeTraceFile(trace_out, *r.trace.store))
            fatal("cannot write trace file '", trace_out, "'");
    }

    if (args.getFlag("json")) {
        core::writeJson(std::cout, r);
        return 0;
    }

    std::cout << core::summarize(r) << "\n";
    if (args.getFlag("report-speed")) {
        const double sim_seconds =
            ticksToSeconds(config.warmup + config.measure);
        std::cout << "speed: wall="
                  << formatDouble(wall_seconds, 2) << "s  sim/wall="
                  << formatDouble(wall_seconds > 0
                                      ? sim_seconds / wall_seconds
                                      : 0.0, 2)
                  << "  events=" << r.eventsProcessed << "  events/s="
                  << formatDouble(
                         wall_seconds > 0
                             ? static_cast<double>(r.eventsProcessed) /
                                   wall_seconds
                             : 0.0, 0)
                  << "\n";
    }
    if (r.elastic.active) {
        const core::ElasticSummary &es = r.elastic;
        std::cout << "elastic: schedule=" << es.schedule
                  << " policy=" << es.policy << " placer=" << es.placer
                  << "  offered=" << formatDouble(es.offeredMeanRps, 0)
                  << "/" << formatDouble(es.offeredPeakRps, 0)
                  << " req/s  slo_viol="
                  << formatDouble(es.sloViolationSeconds, 2)
                  << "s  core_s="
                  << formatDouble(es.coreSecondsGranted, 0)
                  << "  steady_cpus="
                  << formatDouble(es.steadyStateCpus, 0)
                  << "  outs=" << es.scaleOuts << " ins=" << es.scaleIns
                  << "  lag=" << formatDouble(es.scaleOutLagMeanMs, 0)
                  << "ms\n";
    }
    if (r.scaleout.active) {
        const core::ScaleoutSummary &so = r.scaleout;
        std::cout << "scaleout: nodes=" << so.activeNodesEnd << "/"
                  << so.nodes << "  fabric=" << so.fabricMessages
                  << " msgs ("
                  << formatDouble(so.fabricShare * 100.0, 1) << "%)"
                  << "  cache hit="
                  << formatDouble(so.cacheHitRate, 2)
                  << " inval=" << so.cacheInvalidations
                  << "  shard reqs=" << so.shardRequests
                  << " cv=" << formatDouble(so.shardLoadCv, 2)
                  << "  provisioned=" << so.nodesProvisioned
                  << " (warm " << so.warmProvisions << "/cold "
                  << so.coldProvisions << ", lag "
                  << formatDouble(so.provisionLagMeanMs, 0)
                  << "ms)\n";
    }
    if (r.replication.active) {
        const core::ReplicationSummary &rp = r.replication;
        std::cout << "replication: R=" << rp.factor << " W="
                  << rp.writeQuorum << " Rq=" << rp.readQuorum
                  << "  writes=" << rp.quorumWrites << " (fail "
                  << rp.writeFailures << ", ack p99 "
                  << formatDouble(rp.writeAckP99Ms, 2) << "ms)"
                  << "  reads=" << rp.quorumReads << " (repair "
                  << rp.readRepairs << ")"
                  << "  hints q/rep/drop=" << rp.hintsQueued << "/"
                  << rp.hintsReplayed << "/" << rp.hintsDropped
                  << "  rebalance=" << rp.rebalancesCompleted << "/"
                  << rp.rebalancesStarted << " ("
                  << formatDouble(rp.rebalanceMsTotal, 2) << "ms, "
                  << rp.rebalanceBytes << "B)";
        if (rp.consistencyChecked) {
            std::cout << "  verified lost=" << rp.lostAckedWrites
                      << " stale=" << rp.staleQuorumReads;
        }
        std::cout << "\n";
    }
    if (r.fanout.active) {
        const core::FanoutSummary &fo = r.fanout;
        std::cout << "fanout: app=" << fo.app << " depth=" << fo.depth
                  << " services=" << fo.services
                  << " width=" << fo.fanWidth
                  << "  read p50/p99="
                  << formatDouble(fo.p50Ms, 2) << "/"
                  << formatDouble(fo.p99Ms, 2) << "ms  amp="
                  << formatDouble(fo.amplification, 2);
        if (fo.hedged) {
            std::cout << "  hedges=" << fo.hedgesLaunched << "/"
                      << fo.firstAttempts << " (wins " << fo.hedgeWins
                      << ", denied " << fo.hedgesDenied << ", share "
                      << formatDouble(fo.hedgeShare, 3) << ")";
        }
        std::cout << "\n";
    }
    if (r.resilience.active) {
        const core::ResilienceSummary &rs = r.resilience;
        std::cout << "resilience: goodput="
                  << formatDouble(rs.goodputRps, 0) << " req/s"
                  << "  errors="
                  << formatDouble(rs.errorRate * 100.0, 2) << "%"
                  << "  degraded="
                  << formatDouble(rs.degradedShare * 100.0, 2) << "%"
                  << "  retries=" << rs.retries << "  shed=" << rs.shed
                  << "  deadline_drops=" << rs.deadlineDrops
                  << "  breaker_opens=" << rs.breakerOpens << "\n";
    }
    if (r.overload.active) {
        const core::OverloadSummary &ov = r.overload;
        std::cout << "overload: admission=" << ov.admission
                  << " limit=" << formatDouble(ov.limitInitial, 0) << "->"
                  << formatDouble(ov.limitFinal, 0) << " ["
                  << formatDouble(ov.limitMin, 0) << ","
                  << formatDouble(ov.limitMax, 0) << "]"
                  << "  shed crit/norm/shed=" << ov.shedCritical << "/"
                  << ov.shedNormal << "/" << ov.shedSheddable
                  << "  codel_drops=" << ov.codelDrops
                  << "  rejected=" << ov.rejectedTotal
                  << "  brownout_duty="
                  << formatDouble(ov.brownoutDutyCycle * 100.0, 1)
                  << "%  dimmer="
                  << formatDouble(ov.dimmerFinal, 2) << "\n";
    }
    if (r.trace.active) {
        const core::TraceSummary &tr = r.trace;
        std::cout << "trace: sampled=" << tr.tracesSampled << "/"
                  << tr.rootsSeen << "  analyzed=" << tr.tracesAnalyzed
                  << "  spans=" << tr.spanCount
                  << "  mean_e2e=" << formatDouble(tr.meanE2eMs, 2)
                  << "ms\n";
        if (tr.tracesAnalyzed > 0) {
            const double toMs =
                1.0 / (static_cast<double>(tr.attribution.traces) * 1e6);
            TextTable att({"service", "queue", "compute", "stall",
                           "fanout", "backoff", "shed", "net",
                           "total (ms)"});
            for (const auto &[name, a] : tr.attribution.services) {
                att.row()
                    .cell(name)
                    .cell(a.queueNs * toMs, 3)
                    .cell(a.computeNs * toMs, 3)
                    .cell(a.stallNs * toMs, 3)
                    .cell(a.fanoutNs * toMs, 3)
                    .cell(a.backoffNs * toMs, 3)
                    .cell(a.shedNs * toMs, 3)
                    .cell(a.networkNs * toMs, 3)
                    .cell(a.totalNs() * toMs, 3);
            }
            att.printWithCaption(
                "critical-path attribution (per-trace means)");
        }
    }
    if (args.getFlag("plan"))
        std::cout << "\n" << r.plan.describe();

    std::vector<perf::PerfRow> rows;
    for (const auto &[name, row] : r.servicePerf)
        rows.push_back(row);
    rows.push_back(r.total);
    TextTable services = perf::microarchTable(rows);

    TextTable ops({"op", "count", "mean (ms)", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)"});
    for (const auto &[name, lat] : r.perOp) {
        ops.row()
            .cell(name)
            .cell(lat.count)
            .cell(lat.meanMs, 2)
            .cell(lat.p50Ms, 2)
            .cell(lat.p95Ms, 2)
            .cell(lat.p99Ms, 2);
    }

    if (args.getFlag("csv")) {
        services.printCsv(std::cout);
        std::cout << "\n";
        ops.printCsv(std::cout);
    } else {
        services.printWithCaption("per-service counters");
        ops.printWithCaption("per-op end-to-end latency");
    }
    return 0;
}
