/**
 * @file
 * chaos_search: deterministic gray-failure chaos search.
 *
 *   chaos_search --schedules 200 --seed 1
 *   chaos_search --schedules 20 --eject
 *   chaos_search --inject-bug            (must find and shrink a repro)
 *
 * Runs seeded random fault schedules (crash, brownout, latency spike,
 * gray replica slowdown, packet loss/dup, partition, correlated CCX
 * crash) against a fixed TeaStore harness and checks the request-
 * conservation ledger plus drain/breaker/ejection/deadline invariants
 * after every run. Same seed => byte-identical schedules, verdicts and
 * fingerprints.
 *
 * Exit status: 0 when every schedule is clean (or, with --inject-bug,
 * when the planted accounting bug was caught and minimized), 1
 * otherwise.
 */

#include <iostream>

#include "base/args.hh"
#include "chaos/search.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    ArgParser args(
        "chaos_search - seeded fault-schedule search with a "
        "request-conservation ledger");
    args.addInt("seed", 1,
                "first schedule seed (schedule i uses seed + i)");
    args.addInt("schedules", 200, "seeded schedules to run");
    args.addInt("max-events", 12, "max fault events per schedule");
    args.addInt("experiment-seed", 42,
                "experiment RNG seed (fixed across schedules)");
    args.addFlag("eject",
                 "enable passive outlier ejection in the harness");
    args.addFlag("cluster",
                 "run the 2-node cluster harness (small8 x 2 over a "
                 "LAN fabric, sharded persistence behind a cache "
                 "node): adds node-outage and fabric loss/partition "
                 "fault families, so the ledger must conserve "
                 "requests across whole-node loss");
    args.addFlag("inject-bug",
                 "sabotage the ledger (drop Timeout terminals): the "
                 "search must catch it and ddmin the schedule to a "
                 "minimal repro");
    if (!args.parse(argc, argv))
        return 1;

    chaos::SearchOptions opts;
    opts.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    opts.schedules = static_cast<unsigned>(args.getInt("schedules"));
    opts.maxEvents = static_cast<unsigned>(args.getInt("max-events"));
    opts.run.eject = args.getFlag("eject");
    opts.run.cluster = args.getFlag("cluster");
    opts.run.injectBug = args.getFlag("inject-bug");
    opts.run.experimentSeed =
        static_cast<std::uint64_t>(args.getInt("experiment-seed"));

    const chaos::SearchResult result = chaos::runSearch(opts, std::cout);

    if (opts.run.injectBug) {
        if (result.violating == 0) {
            std::cerr << "inject-bug: no schedule tripped the planted "
                         "accounting bug\n";
            return 1;
        }
        std::cout << "inject-bug: caught and shrunk to "
                  << result.shrunkEvents << " event(s)\n";
        return 0;
    }
    return result.violating == 0 ? 0 : 1;
}
