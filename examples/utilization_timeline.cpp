/**
 * @file
 * utilization_timeline: attach a TimeSeriesSampler to a live run and
 * emit a CSV timeline (busy CPUs, frequency, queue depths, completed
 * requests per interval) - the raw material for warmup/stability
 * plots. Demonstrates composing the library's layers manually instead
 * of going through core::runExperiment. A second section rides the
 * autoscaler through a flash-crowd spike and emits the control loop's
 * own timeline: per-service replica counts, queue depths and
 * utilization per control interval.
 */

#include <iostream>

#include "autoscale/elastic.hh"
#include "base/table.hh"
#include "core/placement.hh"
#include "loadgen/driver.hh"
#include "perf/sampler.hh"
#include "topo/presets.hh"

using namespace microscale;

int
main()
{
    sim::Simulation sim;
    topo::Machine machine(topo::rome128());
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 42);
    net::Network network(sim, net::NetParams{}, 42);
    svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 42);

    // Tuned baseline sizing, OS-default placement.
    core::BaselineSizing sizing;
    core::PlacementPlan plan = core::buildPlacement(
        core::PlacementKind::OsDefault, machine,
        core::budgetMask(machine, 0, true), core::DemandShares{},
        sizing);
    teastore::AppParams app_params;
    core::sizeAppFromPlan(app_params, plan);
    teastore::App app(mesh, app_params, 42);
    core::applyPlacement(app, plan);

    loadgen::ClosedLoopParams load;
    load.users = 3000;
    loadgen::ClosedLoopDriver driver(app, loadgen::BrowseMix{}, load,
                                     42);
    driver.measurement().setWindow(0, 3 * kSecond);

    perf::TimeSeriesSampler sampler(sim, engine, kernel, mesh,
                                    50 * kMillisecond);

    kernel.start();
    app.start();
    driver.start();
    sampler.start();

    sim.runUntil(3 * kSecond);
    sampler.stop();
    driver.stopIssuing();

    std::cerr << "sampled " << sampler.samples().size()
              << " points; mean busy CPUs = "
              << formatDouble(sampler.meanBusyCpus(), 1) << "\n";
    sampler.printCsv(std::cout);

    // Part 2: the autoscaler's own timeline. Ride a flash-crowd spike
    // with the threshold policy and emit per-service replica counts,
    // queue depths and utilization per control interval - the raw
    // material for elasticity plots (FIG-13 companions).
    autoscale::ElasticConfig ec;
    ec.base.machine = topo::rome128();
    ec.base.placement = core::PlacementKind::CcxAware;
    ec.base.warmup = 1 * kSecond;
    ec.base.measure = 11 * kSecond;
    ec.schedule = autoscale::makeSchedule(
        "spike", 600.0, 3000.0, ec.base.warmup, ec.base.measure);
    ec.initialCores = 28; // 7 of rome128's 16 CCXs
    ec.autoscaler.period = 250 * kMillisecond;
    ec.autoscaler.warmup.registrationDelay = 500 * kMillisecond;
    ec.autoscaler.warmup.coldWindow = 1 * kSecond;
    ec.autoscaler.scaleOutCooldown = 500 * kMillisecond;
    ec.autoscaler.scaleInCooldown = 1 * kSecond;
    ec.autoscaler.maxReplicas = 6;
    ec.recordTimeline = true;

    autoscale::AutoscalerTelemetry telemetry;
    autoscale::runElastic(ec, &telemetry);

    std::cerr << "\nautoscaler timeline: " << telemetry.timeline.size()
              << " control intervals, " << telemetry.scaleOuts
              << " scale-outs, " << telemetry.scaleIns
              << " scale-ins\n";
    if (telemetry.timeline.empty())
        return 0;

    std::cout << "\ntime_s";
    for (const autoscale::ServiceSample &s : telemetry.timeline.front())
        std::cout << "," << s.service << "_replicas," << s.service
                  << "_queue," << s.service << "_util";
    std::cout << "\n";
    for (const auto &interval : telemetry.timeline) {
        std::cout << formatDouble(ticksToSeconds(interval.front().at), 2);
        for (const autoscale::ServiceSample &s : interval) {
            std::cout << "," << (s.activeReplicas + s.warmingReplicas)
                      << "," << s.queueDepth << ","
                      << formatDouble(s.utilization, 3);
        }
        std::cout << "\n";
    }
    return 0;
}
