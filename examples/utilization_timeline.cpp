/**
 * @file
 * utilization_timeline: attach a TimeSeriesSampler to a live run and
 * emit a CSV timeline (busy CPUs, frequency, queue depths, completed
 * requests per interval) - the raw material for warmup/stability
 * plots. Demonstrates composing the library's layers manually instead
 * of going through core::runExperiment.
 */

#include <iostream>

#include "base/table.hh"
#include "core/placement.hh"
#include "loadgen/driver.hh"
#include "perf/sampler.hh"
#include "topo/presets.hh"

using namespace microscale;

int
main()
{
    sim::Simulation sim;
    topo::Machine machine(topo::rome128());
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, os::SchedParams{}, 42);
    net::Network network(sim, net::NetParams{}, 42);
    svc::Mesh mesh(kernel, network, svc::RpcCostParams{}, 42);

    // Tuned baseline sizing, OS-default placement.
    core::BaselineSizing sizing;
    core::PlacementPlan plan = core::buildPlacement(
        core::PlacementKind::OsDefault, machine,
        core::budgetMask(machine, 0, true), core::DemandShares{},
        sizing);
    teastore::AppParams app_params;
    core::sizeAppFromPlan(app_params, plan);
    teastore::App app(mesh, app_params, 42);
    core::applyPlacement(app, plan);

    loadgen::ClosedLoopParams load;
    load.users = 3000;
    loadgen::ClosedLoopDriver driver(app, loadgen::BrowseMix{}, load,
                                     42);
    driver.measurement().setWindow(0, 3 * kSecond);

    perf::TimeSeriesSampler sampler(sim, engine, kernel, mesh,
                                    50 * kMillisecond);

    kernel.start();
    app.start();
    driver.start();
    sampler.start();

    sim.runUntil(3 * kSecond);
    sampler.stop();
    driver.stopIssuing();

    std::cerr << "sampled " << sampler.samples().size()
              << " points; mean busy CPUs = "
              << formatDouble(sampler.meanBusyCpus(), 1) << "\n";
    sampler.printCsv(std::cout);
    return 0;
}
