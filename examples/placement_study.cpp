/**
 * @file
 * placement_study: the paper's methodology end to end.
 *
 *  1. Profile the tuned baseline to get per-service CPU demand.
 *  2. Partition the machine's CCXs among services by demand.
 *  3. Run every placement policy and compare.
 *  4. Refine the partition from the pinned run's measured costs.
 *
 * This is the programmatic version of what bench/fig05_placement
 * prints; use it as a template for studying your own service mixes.
 */

#include <iostream>
#include <vector>

#include "core/experiment.hh"
#include "core/sweep.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig config;
    config.machine = topo::rome128();
    config.load.users = 4000;
    config.warmup = 500 * kMillisecond;
    config.measure = kSecond;

    std::cout << "step 1: profiling the baseline for demand shares...\n";
    const core::DemandShares measured = core::measureDemand(config);
    std::cout << "  measured: webui=" << formatDouble(measured.webui, 3)
              << " auth=" << formatDouble(measured.auth, 3)
              << " persistence=" << formatDouble(measured.persistence, 3)
              << " recommender=" << formatDouble(measured.recommender, 3)
              << " image=" << formatDouble(measured.image, 3) << "\n\n";
    config.demand = measured;

    std::cout << "step 2: the CCX partition this demand implies:\n";
    topo::Machine machine(config.machine);
    const core::PlacementPlan plan = core::buildPlacement(
        core::PlacementKind::CcxAware, machine,
        core::budgetMask(machine, 0, true), measured,
        core::BaselineSizing{});
    std::cout << plan.describe() << "\n";

    std::cout << "step 3: comparing policies (parallel sweep)...\n";
    std::vector<core::SweepPoint> points;
    for (core::PlacementKind kind : core::allPlacements()) {
        core::SweepPoint p;
        p.label = core::placementName(kind);
        p.config = config;
        p.config.placement = kind;
        points.push_back(std::move(p));
    }
    core::SweepOptions so;
    so.progress = false;
    const core::SweepRunner runner(so);
    const std::vector<core::SweepOutcome> runs = runner.run(points);
    const double base_tput = runs[0].result.throughputRps;
    for (const core::SweepOutcome &o : runs) {
        std::cout << "  " << o.label << ": "
                  << core::summarize(o.result) << "  ("
                  << formatPercent(o.result.throughputRps / base_tput -
                                   1.0)
                  << " vs baseline)\n";
    }

    std::cout << "\nstep 4: refining the ccx-aware partition...\n";
    config.placement = core::PlacementKind::CcxAware;
    core::RefineTrace trace;
    const core::RunResult best = core::runRefined(config, 2, &trace);
    for (std::size_t round = 0; round < trace.perRound.size(); ++round) {
        const core::DemandShares &d = trace.perRound[round];
        std::cout << "  round " << round << " shares: webui="
                  << formatDouble(d.webui, 3)
                  << " auth=" << formatDouble(d.auth, 3)
                  << " persistence=" << formatDouble(d.persistence, 3)
                  << " recommender=" << formatDouble(d.recommender, 3)
                  << " image=" << formatDouble(d.image, 3) << "\n";
    }
    const core::DemandShares &refined = trace.final;
    std::cout << "  refined: webui=" << formatDouble(refined.webui, 3)
              << " auth=" << formatDouble(refined.auth, 3)
              << " persistence=" << formatDouble(refined.persistence, 3)
              << " recommender=" << formatDouble(refined.recommender, 3)
              << " image=" << formatDouble(refined.image, 3) << "\n";
    std::cout << "  final: " << core::summarize(best) << "  ("
              << formatPercent(best.throughputRps / base_tput - 1.0)
              << " vs baseline)\n";
    return 0;
}
