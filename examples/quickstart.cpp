/**
 * @file
 * Quickstart: run the TeaStore model once on the 128-logical-CPU
 * machine with the OS-default baseline and once with the paper's
 * CCX-aware placement, and print the comparison.
 */

#include <iostream>

#include "core/experiment.hh"

using namespace microscale;

int
main()
{
    core::ExperimentConfig config;
    config.machine = topo::rome128();
    config.warmup = 400 * kMillisecond;
    config.measure = kSecond;
    // Enough closed-loop users to saturate the machine, so the
    // comparison shows both the throughput and the latency win.
    config.load.users = 4000;
    config.demand.webui = 0.45;
    config.demand.auth = 0.03;
    config.demand.persistence = 0.065;
    config.demand.recommender = 0.045;
    config.demand.image = 0.41;

    topo::Machine machine(config.machine);
    std::cout << "machine: " << machine.describe() << "\n\n";

    std::cout << "running os-default baseline...\n";
    config.placement = core::PlacementKind::OsDefault;
    const core::RunResult base = core::runExperiment(config);
    std::cout << "  " << core::summarize(base) << "\n\n";

    std::cout << "running ccx-aware placement...\n";
    config.placement = core::PlacementKind::CcxAware;
    const core::RunResult ccx = core::runExperiment(config);
    std::cout << "  " << core::summarize(ccx) << "\n\n";

    const double tput_gain =
        ccx.throughputRps / base.throughputRps - 1.0;
    const double lat_gain = 1.0 - ccx.latency.p99Ms / base.latency.p99Ms;
    std::cout << "ccx-aware vs baseline: throughput "
              << formatPercent(tput_gain) << ", p99 latency "
              << formatPercent(-lat_gain) << "\n";

    std::cout << "\nplan used:\n" << ccx.plan.describe();
    return 0;
}
