/**
 * @file
 * capacity_planning: a downstream-user scenario - "how many cores do
 * I need to serve a target load within a p99 SLO?" Sweeps core
 * budgets under open-loop load for the OS-default baseline and the
 * CCX-aware placement. At high targets, topology-aware placement
 * buys back a sizeable chunk of the machine; note that at small
 * budgets the static partition can be *worse* than the free
 * scheduler (too few CCXs to split among services) - placement is a
 * scale-up technique.
 */

#include <iostream>
#include <string>
#include <vector>

#include "base/table.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"

using namespace microscale;

int
main()
{
    constexpr double kTargetRps = 6500.0;
    constexpr double kSloP99Ms = 60.0;

    std::cout << "goal: " << kTargetRps << " req/s with p99 <= "
              << kSloP99Ms << " ms on a rome128 server\n\n";

    const std::vector<core::PlacementKind> kinds = {
        core::PlacementKind::OsDefault, core::PlacementKind::CcxAware};
    const std::vector<unsigned> budgets = {40u, 48u, 56u, 64u};

    std::vector<core::SweepPoint> points;
    for (core::PlacementKind kind : kinds) {
        for (unsigned cores : budgets) {
            core::SweepPoint p;
            p.label = std::string(core::placementName(kind)) + "/" +
                      std::to_string(cores) + "c";
            core::ExperimentConfig c;
            c.machine = topo::rome128();
            c.cores = cores;
            c.smt = true;
            c.placement = kind;
            c.openLoopRps = kTargetRps;
            c.warmup = 500 * kMillisecond;
            c.measure = kSecond;
            c.demand.webui = 0.45;
            c.demand.auth = 0.03;
            c.demand.persistence = 0.065;
            c.demand.recommender = 0.045;
            c.demand.image = 0.41;
            p.config = c;
            points.push_back(std::move(p));
        }
    }

    core::SweepOptions so;
    so.progress = false;
    const core::SweepRunner runner(so);
    const std::vector<core::SweepOutcome> runs = runner.run(points);

    TextTable t({"cores (SMT on)", "placement", "tput (req/s)",
                 "p99 (ms)", "meets SLO"});
    std::size_t i = 0;
    for (core::PlacementKind kind : kinds) {
        unsigned first_ok = 0;
        for (unsigned cores : budgets) {
            const core::RunResult &r = runs[i++].result;
            const bool ok = r.throughputRps >= kTargetRps * 0.98 &&
                            r.latency.p99Ms <= kSloP99Ms;
            if (ok && first_ok == 0)
                first_ok = cores;
            t.row()
                .cell(cores)
                .cell(core::placementName(kind))
                .cell(r.throughputRps, 0)
                .cell(r.latency.p99Ms, 1)
                .cell(ok ? "yes" : "no");
        }
        if (first_ok) {
            std::cout << core::placementName(kind) << ": "
                      << first_ok << " cores suffice\n";
        } else {
            std::cout << core::placementName(kind)
                      << ": SLO not met within 64 cores\n";
        }
    }
    t.printWithCaption("Capacity needed to meet the SLO");
    return 0;
}
