/**
 * @file
 * topology_explorer: inspect the machine presets - structure, cache
 * layout, NUMA distance matrix and the frequency boost curve - and
 * probe the execution engine's what-if rates (e.g. how much slower a
 * thread gets when its SMT sibling or CCX neighbours wake up).
 *
 * Usage: topology_explorer [preset-name]   (default: rome128)
 */

#include <iostream>

#include "base/table.hh"
#include "cpu/exec.hh"
#include "sim/simulation.hh"
#include "teastore/profiles.hh"
#include "topo/presets.hh"

using namespace microscale;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "rome128";
    const topo::MachineParams params = topo::presetByName(name);
    topo::Machine machine(params);

    std::cout << machine.describe() << "\n\n";

    // Structure table: one row per CCX.
    TextTable structure({"ccx", "node", "socket", "cores", "cpus"});
    for (CcxId x = 0; x < machine.numCcxs(); ++x) {
        const CpuMask cpus = machine.cpusOfCcx(x);
        std::string cores;
        for (CpuId c : cpus) {
            if (machine.isPrimaryThread(c)) {
                if (!cores.empty())
                    cores += ",";
                cores += std::to_string(machine.coreOf(c));
            }
        }
        structure.row()
            .cell(x)
            .cell(machine.nodeOfCcx(x))
            .cell(machine.socketOfNode(machine.nodeOfCcx(x)))
            .cell(cores)
            .cell(cpus.toString());
    }
    structure.printWithCaption("CCX layout");

    // NUMA distance matrix.
    std::vector<std::string> headers = {"from\\to"};
    for (NodeId n = 0; n < machine.numNodes(); ++n)
        headers.push_back("node" + std::to_string(n));
    TextTable numa(headers);
    for (NodeId from = 0; from < machine.numNodes(); ++from) {
        auto row = numa.row();
        row.cell("node" + std::to_string(from));
        for (NodeId to = 0; to < machine.numNodes(); ++to)
            row.cell(machine.memLatencyNs(from, to), 0);
    }
    numa.printWithCaption("DRAM latency (ns) by NUMA distance");

    // Frequency curve.
    TextTable freq({"active cores", "GHz"});
    const unsigned cores_per_socket =
        machine.numCores() / machine.numSockets();
    for (unsigned n = 0; n <= cores_per_socket;
         n += std::max(1u, cores_per_socket / 8)) {
        freq.row().cell(n).cell(
            params.freq.freqGhz(n, cores_per_socket), 2);
    }
    freq.printWithCaption("Socket frequency vs active cores");

    // What-if retire rates for the webui profile.
    sim::Simulation sim;
    cpu::ExecEngine engine(sim, machine);
    const cpu::WorkProfile &webui = teastore::webuiProfile();
    const cpu::WorkProfile &image = teastore::imageProfile();

    cpu::ExecContext solo("solo", 0);
    cpu::ExecContext sib("sibling", 0);
    cpu::ExecContext neighbor("neighbor", 0);
    engine.setWork(solo, webui, 1e9, [] {});
    engine.setWork(sib, webui, 1e9, [] {});
    engine.setWork(neighbor, image, 1e9, [] {});

    TextTable rates({"scenario", "instr/ns", "relative"});
    const double alone = engine.rateOn(solo, 0);
    rates.row().cell("webui thread alone on CCX 0").cell(alone, 3).cell(
        "1.00");
    if (machine.threadsPerCore() == 2) {
        engine.startRun(sib, machine.siblingOf(0));
        const double with_sib = engine.rateOn(solo, 0);
        rates.row()
            .cell("+ same-service SMT sibling")
            .cell(with_sib, 3)
            .cell(with_sib / alone, 2);
        engine.stopRun(sib);
    }
    engine.startRun(neighbor, 1);
    const double with_neighbor = engine.rateOn(solo, 0);
    rates.row()
        .cell("+ image service on the same CCX")
        .cell(with_neighbor, 3)
        .cell(with_neighbor / alone, 2);
    engine.stopRun(neighbor);
    rates.printWithCaption(
        "What-if retire rates (webui profile, idle machine)");

    return 0;
}
