#include "teastore/chaos.hh"

#include "base/logging.hh"
#include "teastore/app.hh"

namespace microscale::teastore
{

const char *
chaosName(ChaosScenario scenario)
{
    switch (scenario) {
    case ChaosScenario::None:
        return "healthy";
    case ChaosScenario::ReplicaCrash:
        return "crash";
    case ChaosScenario::Brownout:
        return "brownout";
    case ChaosScenario::LatencySpike:
        return "spike";
    }
    MS_PANIC("invalid ChaosScenario");
}

ChaosScenario
chaosByName(const std::string &name)
{
    for (ChaosScenario s : allChaosScenarios()) {
        if (name == chaosName(s))
            return s;
    }
    fatal("unknown fault scenario '", name,
          "' (try healthy, crash, brownout, spike)");
}

std::vector<ChaosScenario>
allChaosScenarios()
{
    return {ChaosScenario::None, ChaosScenario::ReplicaCrash,
            ChaosScenario::Brownout, ChaosScenario::LatencySpike};
}

svc::FaultScript
makeChaosScript(ChaosScenario scenario, Tick warmup, Tick measure)
{
    svc::FaultScript script;
    const Tick onset = warmup + measure / 6;
    const Tick recovery = warmup + 2 * measure / 3;

    using Kind = svc::FaultEvent::Kind;
    auto add = [&script](Kind kind, Tick at, const std::string &service,
                         unsigned replica, double factor) {
        svc::FaultEvent e;
        e.kind = kind;
        e.at = at;
        e.service = service;
        e.replica = replica;
        e.factor = factor;
        script.events.push_back(std::move(e));
    };

    switch (scenario) {
    case ChaosScenario::None:
        break;
    case ChaosScenario::ReplicaCrash:
        add(Kind::ReplicaDown, onset, names::kImage, 0, 1.0);
        add(Kind::ReplicaUp, recovery, names::kImage, 0, 1.0);
        break;
    case ChaosScenario::Brownout:
        add(Kind::Slowdown, onset, names::kRecommender, 0, 12.0);
        add(Kind::Slowdown, recovery, names::kRecommender, 0, 1.0);
        break;
    case ChaosScenario::LatencySpike:
        add(Kind::LatencyFactor, onset, "", 0, 1500.0);
        add(Kind::LatencyFactor, recovery, "", 0, 1.0);
        break;
    }
    return script;
}

const char *
grayName(GrayScenario scenario)
{
    switch (scenario) {
    case GrayScenario::SlowPersistence:
        return "gray-persistence";
    case GrayScenario::SlowWebui:
        return "gray-webui";
    case GrayScenario::SlowAuth:
        return "gray-auth";
    case GrayScenario::SlowPersistencePair:
        return "gray-persistence-pair";
    }
    MS_PANIC("invalid GrayScenario");
}

bool
grayByName(const std::string &name, GrayScenario &out)
{
    for (GrayScenario s : allGrayScenarios()) {
        if (name == grayName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

std::vector<GrayScenario>
allGrayScenarios()
{
    return {GrayScenario::SlowPersistence, GrayScenario::SlowWebui,
            GrayScenario::SlowAuth, GrayScenario::SlowPersistencePair};
}

svc::FaultScript
makeGrayScript(GrayScenario scenario, Tick warmup, Tick measure)
{
    svc::FaultScript script;
    const Tick onset = warmup + measure / 6;
    const Tick recovery = warmup + 2 * measure / 3;

    auto slow = [&script](Tick at, const std::string &service,
                          unsigned replica, double factor) {
        svc::FaultEvent e;
        e.kind = svc::FaultEvent::Kind::ReplicaSlow;
        e.at = at;
        e.service = service;
        e.replica = replica;
        e.factor = factor;
        script.events.push_back(std::move(e));
    };

    switch (scenario) {
    case GrayScenario::SlowPersistence:
        slow(onset, names::kPersistence, 0, 8.0);
        slow(recovery, names::kPersistence, 0, 1.0);
        break;
    case GrayScenario::SlowWebui:
        slow(onset, names::kWebui, 0, 6.0);
        slow(recovery, names::kWebui, 0, 1.0);
        break;
    case GrayScenario::SlowAuth:
        slow(onset, names::kAuth, 0, 10.0);
        slow(recovery, names::kAuth, 0, 1.0);
        break;
    case GrayScenario::SlowPersistencePair:
        slow(onset, names::kPersistence, 0, 8.0);
        slow(onset, names::kPersistence, 1, 8.0);
        slow(recovery, names::kPersistence, 0, 1.0);
        slow(recovery, names::kPersistence, 1, 1.0);
        break;
    }
    return script;
}

svc::ResilienceConfig
resilientPolicy()
{
    svc::ResilienceConfig rc;
    rc.healthAwareBalancing = true;
    rc.maxQueueDepth = 400;
    rc.retryBudgetRatio = 0.2;

    rc.breaker.enabled = true;
    rc.breaker.consecutiveFailures = 12;
    rc.breaker.errorRateThreshold = 0.6;
    rc.breaker.windowSize = 40;
    rc.breaker.windowMin = 20;
    rc.breaker.openFor = 150 * kMillisecond;

    auto edge = [&rc](const char *client, const char *server,
                      Tick timeout, unsigned attempts, Tick backoff) {
        svc::EdgeRule rule;
        rule.client = client;
        rule.server = server;
        rule.policy.timeout = timeout;
        rule.policy.maxAttempts = attempts;
        rule.policy.backoffBase = backoff;
        rc.edges.push_back(std::move(rule));
    };

    // Optional page content fails fast so fallbacks keep the page
    // latency bounded; the critical auth/persistence path gets
    // generous deadlines plus one retry.
    edge(names::kWebui, names::kRecommender, 30 * kMillisecond, 1, 0);
    edge(names::kWebui, names::kImage, 60 * kMillisecond, 2,
         1 * kMillisecond);
    edge(names::kWebui, names::kAuth, 250 * kMillisecond, 2,
         2 * kMillisecond);
    edge(names::kWebui, names::kPersistence, 250 * kMillisecond, 2,
         2 * kMillisecond);
    edge(names::kAuth, names::kPersistence, 250 * kMillisecond, 2,
         2 * kMillisecond);
    return rc;
}

svc::ResilienceConfig
ejectionPolicy()
{
    svc::ResilienceConfig rc = resilientPolicy();
    rc.outlier.enabled = true;
    rc.outlier.latencyFactor = 3.0;
    rc.outlier.errorThreshold = 0.5;
    rc.outlier.ewmaAlpha = 0.1;
    rc.outlier.minSamples = 20;
    rc.outlier.maxEjectFraction = 0.5;
    rc.outlier.ejectFor = 200 * kMillisecond;
    return rc;
}

} // namespace microscale::teastore
