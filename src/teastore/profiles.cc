#include "teastore/profiles.hh"

namespace microscale::teastore
{

const cpu::WorkProfile &
webuiProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "webui";
        q.ipcBase = 0.75;
        q.branchMpki = 7.0;
        q.icacheMpki = 18.0;
        q.l3Apki = 3.8;
        q.wssBytes = 10.0 * 1024 * 1024;
        q.smtYield = 0.68;
        q.kernelShare = 0.25;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
authProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "auth";
        q.ipcBase = 1.70;
        q.branchMpki = 2.0;
        q.icacheMpki = 3.0;
        q.l3Apki = 0.6;
        q.wssBytes = 1.5 * 1024 * 1024;
        q.smtYield = 0.55;
        q.kernelShare = 0.08;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
persistenceProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "persistence";
        q.ipcBase = 0.85;
        q.branchMpki = 6.0;
        q.icacheMpki = 12.0;
        q.l3Apki = 6.0;
        q.wssBytes = 12.0 * 1024 * 1024;
        q.smtYield = 0.70;
        q.kernelShare = 0.30;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
recommenderProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "recommender";
        q.ipcBase = 1.30;
        q.branchMpki = 3.0;
        q.icacheMpki = 5.0;
        q.l3Apki = 4.5;
        q.wssBytes = 8.0 * 1024 * 1024;
        q.smtYield = 0.62;
        q.kernelShare = 0.10;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
imageProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "image";
        q.ipcBase = 1.10;
        q.branchMpki = 3.0;
        q.icacheMpki = 6.0;
        q.l3Apki = 7.5;
        q.wssBytes = 14.0 * 1024 * 1024;
        q.smtYield = 0.72;
        q.kernelShare = 0.20;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
registryProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "registry";
        q.ipcBase = 0.90;
        q.branchMpki = 5.0;
        q.icacheMpki = 10.0;
        q.l3Apki = 1.5;
        q.wssBytes = 1.0 * 1024 * 1024;
        q.smtYield = 0.65;
        q.kernelShare = 0.40;
        return q;
    }();
    return p;
}

} // namespace microscale::teastore
