/**
 * @file
 * Chaos experiment suite for the TeaStore model: canonical fault
 * scenarios (replica crash, recommender brownout, link-latency spike)
 * and the reference resilient policy (timeouts + retries + breaker +
 * shedding + health-aware balancing). Shared between
 * bench/fig12_resilience and the tools/msim --faults/--resilience
 * flags so both run exactly the same scripts.
 */

#ifndef MICROSCALE_TEASTORE_CHAOS_HH
#define MICROSCALE_TEASTORE_CHAOS_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "svc/fault.hh"
#include "svc/resilience.hh"

namespace microscale::teastore
{

/** The canonical fault scenarios. */
enum class ChaosScenario
{
    None = 0,
    /** Crash one ImageProvider replica mid-window, restart later. */
    ReplicaCrash,
    /** Recommender compute slows down sharply (brownout). */
    Brownout,
    /** Loopback latency inflates (network contention spike). */
    LatencySpike,
};

/** Scenario name ("healthy", "crash", "brownout", "spike"). */
const char *chaosName(ChaosScenario scenario);

/** Inverse of chaosName; fatal() on an unknown name. */
ChaosScenario chaosByName(const std::string &name);

/** All scenarios, healthy first. */
std::vector<ChaosScenario> allChaosScenarios();

/**
 * Build the scenario's fault script for a run with the given windows.
 * The fault strikes at warmup + measure/6 and recovers at
 * warmup + 2*measure/3, so the measurement window sees healthy,
 * faulted and recovering phases.
 */
svc::FaultScript makeChaosScript(ChaosScenario scenario, Tick warmup,
                                 Tick measure);

/**
 * The reference resilient policy: per-edge timeouts (tight on the
 * optional recommender/image legs, generous on auth/persistence),
 * retries with budget, per-replica breaker, bounded queues and
 * health-aware balancing. Pair with AppParams::degradedFallbacks.
 */
svc::ResilienceConfig resilientPolicy();

} // namespace microscale::teastore

#endif // MICROSCALE_TEASTORE_CHAOS_HH
