/**
 * @file
 * Chaos experiment suite for the TeaStore model: canonical fault
 * scenarios (replica crash, recommender brownout, link-latency spike)
 * and the reference resilient policy (timeouts + retries + breaker +
 * shedding + health-aware balancing). Shared between
 * bench/fig12_resilience and the tools/msim --faults/--resilience
 * flags so both run exactly the same scripts.
 */

#ifndef MICROSCALE_TEASTORE_CHAOS_HH
#define MICROSCALE_TEASTORE_CHAOS_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "svc/fault.hh"
#include "svc/resilience.hh"

namespace microscale::teastore
{

/** The canonical fault scenarios. */
enum class ChaosScenario
{
    None = 0,
    /** Crash one ImageProvider replica mid-window, restart later. */
    ReplicaCrash,
    /** Recommender compute slows down sharply (brownout). */
    Brownout,
    /** Loopback latency inflates (network contention spike). */
    LatencySpike,
};

/** Scenario name ("healthy", "crash", "brownout", "spike"). */
const char *chaosName(ChaosScenario scenario);

/** Inverse of chaosName; fatal() on an unknown name. */
ChaosScenario chaosByName(const std::string &name);

/** All scenarios, healthy first. */
std::vector<ChaosScenario> allChaosScenarios();

/**
 * Build the scenario's fault script for a run with the given windows.
 * The fault strikes at warmup + measure/6 and recovers at
 * warmup + 2*measure/3, so the measurement window sees healthy,
 * faulted and recovering phases.
 */
svc::FaultScript makeChaosScript(ChaosScenario scenario, Tick warmup,
                                 Tick measure);

/**
 * The reference resilient policy: per-edge timeouts (tight on the
 * optional recommender/image legs, generous on auth/persistence),
 * retries with budget, per-replica breaker, bounded queues and
 * health-aware balancing. Pair with AppParams::degradedFallbacks.
 */
svc::ResilienceConfig resilientPolicy();

/**
 * resilientPolicy() plus passive outlier ejection: per-replica EWMA
 * latency/error tracking that pulls gray (slow-but-answering) replicas
 * out of the rotation and health-weights the remainder. This is the
 * mitigation FIG-16 pits against gray faults that circuit breakers
 * never see.
 */
svc::ResilienceConfig ejectionPolicy();

/**
 * Gray-failure scenarios: a replica degrades without failing, so every
 * request it serves is slow but successful — timeouts rarely fire,
 * breakers never open, yet tail latency collapses. Distinct from
 * ChaosScenario (fail-stop faults) so existing suites iterating
 * allChaosScenarios() are untouched.
 */
enum class GrayScenario
{
    /** One persistence replica computes 8x slower (sick disk). */
    SlowPersistence = 0,
    /** One WebUI replica computes 6x slower (noisy neighbor). */
    SlowWebui,
    /** One Auth replica computes 10x slower (thermal throttling). */
    SlowAuth,
    /** Two persistence replicas compute 8x slower together. */
    SlowPersistencePair,
};

/** Scenario name ("gray-persistence", "gray-webui", ...). */
const char *grayName(GrayScenario scenario);

/** Non-fatal lookup: true and sets `out` when `name` is a gray
 *  scenario. Lets callers fall back to chaosByName. */
bool grayByName(const std::string &name, GrayScenario &out);

/** All gray scenarios, in enum order. */
std::vector<GrayScenario> allGrayScenarios();

/**
 * Build the gray scenario's fault script for a run with the given
 * windows. Same phase structure as makeChaosScript: onset at
 * warmup + measure/6, recovery at warmup + 2*measure/3.
 */
svc::FaultScript makeGrayScript(GrayScenario scenario, Tick warmup,
                                Tick measure);

} // namespace microscale::teastore

#endif // MICROSCALE_TEASTORE_CHAOS_HH
