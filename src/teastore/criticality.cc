#include "teastore/criticality.hh"

#include "base/logging.hh"

namespace microscale::teastore
{

svc::Criticality
opCriticality(OpType op)
{
    switch (op) {
      case OpType::Checkout:
      case OpType::Login:
        return svc::Criticality::Critical;
      case OpType::Home:
      case OpType::Category:
      case OpType::Product:
      case OpType::AddToCart:
      case OpType::Profile:
        return svc::Criticality::Normal;
    }
    MS_PANIC("invalid OpType");
}

std::vector<svc::CriticalityRule>
criticalityRules()
{
    using svc::Criticality;
    std::vector<svc::CriticalityRule> rules;
    rules.push_back({names::kWebui, opName(OpType::Checkout),
                     Criticality::Critical});
    rules.push_back({names::kWebui, opName(OpType::Login),
                     Criticality::Critical});
    // Optional content: shed first anywhere in the call tree. Auth and
    // Persistence carry no rule, so their requests inherit the tier of
    // the page that issued them (a checkout's placeOrder stays
    // Critical; a browse page's product query stays Normal).
    rules.push_back({names::kRecommender, "*", Criticality::Sheddable});
    rules.push_back({names::kImage, "*", Criticality::Sheddable});
    return rules;
}

svc::OverloadConfig
overloadAwarePolicy()
{
    svc::OverloadConfig oc;

    // AIMD admission: start near one replica's worker pool, back off
    // gently (0.95) so the limit tracks capacity instead of sawing
    // through it, and treat queueing past ~60 ms as a breach.
    oc.admission.kind = svc::AdmissionKind::Aimd;
    oc.admission.initialLimit = 48;
    oc.admission.minLimit = 4;
    oc.admission.maxLimit = 512;
    oc.admission.latencyTarget = 60 * kMillisecond;
    oc.admission.aimdIncrease = 2.0;
    oc.admission.aimdBackoff = 0.95;

    // CoDel: drop from the queue head once sojourn stays above 20 ms
    // for a 100 ms interval; serve newest-first while dropping so
    // fresh requests meet their deadlines (adaptive LIFO).
    oc.codel.enabled = true;
    oc.codel.target = 20 * kMillisecond;
    oc.codel.interval = 100 * kMillisecond;
    oc.codel.lifoUnderOverload = true;

    // Criticality-aware shedding with the TeaStore tier map.
    oc.criticalityAware = true;
    oc.sheddableFrac = 0.5;
    oc.normalFrac = 0.85;
    oc.rules = criticalityRules();

    // Brownout: dim optional page content when even admission-
    // controlled service cannot hold the latency target (the SLO
    // matches it, so the dimmer engages exactly when the WebUI
    // saturates and releases as soon as shedding work restores the
    // tail).
    oc.brownout.enabled = true;
    oc.brownout.sloP99Ms = 60.0;
    oc.brownout.period = 250 * kMillisecond;
    oc.brownout.gain = 0.4;
    oc.brownout.minDimmer = 0.1;

    return oc;
}

} // namespace microscale::teastore
