/**
 * @file
 * Calibrated work profiles for the six TeaStore services.
 *
 * Values are chosen to match the paper's qualitative characterization
 * of microservice code on big x86 servers: low IPC (0.7-1.3), large
 * instruction footprints (high icache MPKI), moderate-to-high L3
 * traffic, working sets of a few to tens of MB per thread, significant
 * kernel-mode share from the network stack, and good SMT yield for the
 * memory-bound services.
 *
 * Every accessor returns a reference with static storage duration:
 * work profiles must outlive the work items that reference them.
 */

#ifndef MICROSCALE_TEASTORE_PROFILES_HH
#define MICROSCALE_TEASTORE_PROFILES_HH

#include "cpu/work.hh"

namespace microscale::teastore
{

/** JSP/template rendering in the WebUI front end. */
const cpu::WorkProfile &webuiProfile();

/** Password hashing and session validation (compute-bound). */
const cpu::WorkProfile &authProfile();

/** ORM + database engine work in the Persistence service. */
const cpu::WorkProfile &persistenceProfile();

/** In-memory recommendation model scoring. */
const cpu::WorkProfile &recommenderProfile();

/** Image cache lookups and (on miss) rescaling. */
const cpu::WorkProfile &imageProfile();

/** Registry bookkeeping (heartbeats, lookups). */
const cpu::WorkProfile &registryProfile();

} // namespace microscale::teastore

#endif // MICROSCALE_TEASTORE_PROFILES_HH
