/**
 * @file
 * Request criticality for the TeaStore mix, and the overload-aware
 * preset that pairs with chaos.hh's resilientPolicy().
 *
 * The tiers encode what the shop can afford to lose under overload:
 *
 *  - Critical: checkout and login. Dropping a checkout loses revenue
 *    and dropping a login locks the user out of everything behind it,
 *    so these are shed last.
 *  - Normal: the browse pages (home, category, product, addToCart,
 *    profile). Shedding one loses a page view.
 *  - Sheddable: everything served by the Recommender and the
 *    ImageProvider. Both are optional page content with degraded
 *    fallbacks, so shedding them costs fidelity, not function.
 *
 * Tiers attach to requests at the WebUI edge via opCriticality() and
 * propagate down the call tree; criticalityRules() reclassifies the
 * optional internal edges so downstream admission can shed them first.
 */

#ifndef MICROSCALE_TEASTORE_CRITICALITY_HH
#define MICROSCALE_TEASTORE_CRITICALITY_HH

#include <vector>

#include "svc/overload.hh"
#include "teastore/app.hh"

namespace microscale::teastore
{

/** Criticality tier of a user-facing WebUI operation. */
svc::Criticality opCriticality(OpType op);

/**
 * Server-side reclassification rules for the TeaStore topology:
 * checkout/login stay Critical at the WebUI door, and anything asked
 * of the Recommender or ImageProvider becomes Sheddable regardless of
 * the page that asked.
 */
std::vector<svc::CriticalityRule> criticalityRules();

/**
 * The overload-aware preset used by FIG-14's third arm: AIMD
 * admission with CoDel queue management (adaptive LIFO under
 * sustained overload), criticality-aware shedding with the rules
 * above, and a brownout dimmer on the WebUI driven by the FIG-14 SLO.
 * Pair it with chaos.hh's resilientPolicy() and degraded fallbacks.
 */
svc::OverloadConfig overloadAwarePolicy();

} // namespace microscale::teastore

#endif // MICROSCALE_TEASTORE_CRITICALITY_HH
