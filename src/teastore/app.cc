#include "teastore/app.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "teastore/profiles.hh"

namespace microscale::teastore
{

namespace
{

// Nominal instruction budgets (before AppParams::workScale), calibrated
// so a product page costs a few ms of CPU across the service chain,
// matching the latency scale of the original application.

// WebUI page rendering.
constexpr double kHomeRender = 2.2e6;
constexpr double kCategoryRender = 3.2e6;
constexpr double kProductRender = 2.8e6;
constexpr double kLoginRender = 1.5e6;
constexpr double kCartRender = 1.6e6;
constexpr double kCheckoutRender = 2.0e6;
constexpr double kProfileRender = 2.0e6;

// Auth.
constexpr double kAuthHash = 3.5e6;     // password hash on login
constexpr double kAuthSession = 0.3e6;  // session token creation
constexpr double kAuthValidate = 0.6e6; // per-request session check

// Persistence: ORM + storage engine cost per query element.
constexpr double kDbBase = 150e3;
constexpr double kDbPerRow = 28e3;
constexpr double kDbPerDescent = 6e3;

// Recommender model scoring.
constexpr double kRecommendBase = 2.2e6;

// Image provider: cache hit vs rescale-on-miss.
constexpr double kPreviewHit = 180e3;
constexpr double kPreviewMiss = 1.6e6;
constexpr double kFullHit = 350e3;
constexpr double kFullMiss = 2.8e6;
constexpr std::uint32_t kPreviewBytes = 18 * 1024;

// Registry heartbeat processing.
constexpr double kHeartbeat = 150e3;

// Payload sizes.
constexpr std::uint32_t kSmallReq = 400;
constexpr std::uint32_t kHomeBytes = 16 * 1024;
constexpr std::uint32_t kCategoryBytes = 24 * 1024;
constexpr std::uint32_t kProductBytes = 20 * 1024;
constexpr std::uint32_t kPlainBytes = 8 * 1024;

double
dbInstructions(const db::QueryCost &cost)
{
    return kDbBase +
           kDbPerRow * static_cast<double>(cost.rowsTouched) +
           kDbPerDescent * static_cast<double>(cost.indexDescents);
}

} // namespace

const char *
opName(OpType op)
{
    switch (op) {
      case OpType::Home:
        return "home";
      case OpType::Login:
        return "login";
      case OpType::Category:
        return "category";
      case OpType::Product:
        return "product";
      case OpType::AddToCart:
        return "addToCart";
      case OpType::Checkout:
        return "checkout";
      case OpType::Profile:
        return "profile";
    }
    MS_PANIC("invalid OpType");
}

std::array<OpType, kNumOps>
allOps()
{
    return {OpType::Home,    OpType::Login,    OpType::Category,
            OpType::Product, OpType::AddToCart, OpType::Checkout,
            OpType::Profile};
}

App::App(svc::Mesh &mesh, AppParams params, std::uint64_t seed)
    : mesh_(mesh),
      params_(params),
      store_(params.store, seed),
      rng_(seed, "teastore.app")
{
    auto make = [&](const char *name, const cpu::WorkProfile &profile,
                    const ServiceConfig &cfg) {
        svc::ServiceParams sp;
        sp.name = name;
        sp.profile = profile;
        sp.replicas = cfg.replicas;
        sp.workersPerReplica = cfg.workers;
        sp.batchedTiming = params_.batchedTiming;
        return mesh_.createService(sp);
    };

    webui_ = make(names::kWebui, webuiProfile(), params_.webui);
    auth_ = make(names::kAuth, authProfile(), params_.auth);
    persistence_ =
        make(names::kPersistence, persistenceProfile(), params_.persistence);
    recommender_ =
        make(names::kRecommender, recommenderProfile(), params_.recommender);
    image_ = make(names::kImage, imageProfile(), params_.image);
    registry_ = make(names::kRegistry, registryProfile(), params_.registry);

    installWebui();
    installAuth();
    installPersistence();
    installRecommender();
    installImage();
    installRegistry();
}

std::vector<svc::Service *>
App::services() const
{
    return {webui_, auth_, persistence_, recommender_, image_, registry_};
}

void
App::start()
{
    if (started_)
        return;
    started_ = true;
    if (!params_.heartbeats)
        return;
    auto &sim = mesh_.kernel().sim();
    const std::vector<svc::Service *> senders = {
        webui_, auth_, persistence_, recommender_, image_};
    heartbeats_.resize(senders.size());
    for (std::size_t i = 0; i < senders.size(); ++i) {
        // Staggered phases avoid synchronized heartbeat bursts.
        const Tick phase = (i + 1) * 137 * kMillisecond;
        heartbeats_[i].start(
            sim, params_.heartbeatPeriod,
            [this] {
                svc::Payload hb;
                hb.bytes = 256;
                mesh_.callExternal(names::kRegistry, "heartbeat", hb,
                                   nullptr);
            },
            phase);
    }
}

void
App::stop()
{
    for (auto &hb : heartbeats_)
        hb.stop();
    heartbeats_.clear();
    started_ = false;
}

bool
App::brownoutDegrades()
{
    return brownout_ != nullptr && brownout_->shouldDegrade();
}

svc::Payload
App::sampleRequest(OpType op, Rng &rng) const
{
    svc::Payload p;
    p.bytes = kSmallReq;
    switch (op) {
      case OpType::Home:
        break;
      case OpType::Login:
        p.arg0 = store_.sampleUser(rng);
        break;
      case OpType::Category: {
        p.arg0 = store_.sampleCategory(rng);
        // Earlier pages are visited more often; never request a page
        // beyond the category's catalog.
        const unsigned pages = std::max<unsigned>(
            1, params_.store.productsPerCategory / params_.pageSize);
        std::vector<double> weights = {8, 4, 2, 1, 1};
        weights.resize(std::min<std::size_t>(weights.size(), pages));
        p.arg1 = rng.weightedIndex(weights);
        break;
      }
      case OpType::Product:
        p.arg0 = store_.sampleProduct(rng);
        p.arg1 = store_.sampleUser(rng);
        break;
      case OpType::AddToCart:
        p.arg0 = store_.sampleProduct(rng);
        p.arg1 = store_.sampleUser(rng);
        break;
      case OpType::Checkout:
        p.arg0 = store_.sampleUser(rng);
        break;
      case OpType::Profile:
        p.arg0 = store_.sampleUser(rng);
        break;
    }
    return p;
}

void
App::installWebui()
{
    using svc::HandlerCtx;
    using svc::Payload;

    auto small = [] {
        Payload p;
        p.bytes = kSmallReq;
        return p;
    };

    webui_->addOp("home", [this, small](HandlerCtx &ctx) {
        if (brownoutDegrades()) {
            // Brownout: serve the dimmed page from the category list
            // alone; the optional imagery call is never issued.
            ctx.traceAnnotate("brownout-dim");
            ctx.call(names::kPersistence, "categories", small(),
                     [this, &ctx](const Payload &) {
                         ctx.response().bytes = kHomeBytes;
                         ctx.response().degraded = true;
                         ctx.compute(scaled(kHomeRender),
                                     [&ctx] { ctx.done(); });
                     });
            return;
        }
        // The category list and the static imagery are independent:
        // fetch them in parallel, as the real front end does.
        Payload img = small();
        img.arg0 = 1; // site imagery starts at product 1
        img.arg1 = 4; // logo + banners
        std::vector<HandlerCtx::CallSpec> calls;
        calls.push_back({names::kPersistence, "categories", small()});
        calls.push_back({names::kImage, "previews", img});
        ctx.callAll(
            std::move(calls),
            [this, &ctx](const std::vector<Payload> &,
                         const std::vector<svc::Status> &statuses) {
                // The category list is the page; imagery is optional.
                if (statuses[0] != svc::Status::Ok) {
                    ctx.fail(statuses[0]);
                    return;
                }
                const bool degraded = statuses[1] != svc::Status::Ok;
                if (degraded && !params_.degradedFallbacks) {
                    ctx.fail(statuses[1]);
                    return;
                }
                if (degraded)
                    ctx.traceAnnotate("degraded-fallback");
                ctx.response().bytes = kHomeBytes;
                ctx.response().degraded = degraded;
                ctx.compute(scaled(kHomeRender), [&ctx] { ctx.done(); });
            });
    });

    webui_->addOp("login", [this, small](HandlerCtx &ctx) {
        Payload a = small();
        a.arg0 = ctx.request().arg0; // user id
        ctx.call(names::kAuth, "login", a,
                 [this, &ctx](const Payload &) {
                     ctx.response().bytes = kPlainBytes;
                     ctx.compute(scaled(kLoginRender),
                                 [&ctx] { ctx.done(); });
                 });
    });

    webui_->addOp("category", [this, small](HandlerCtx &ctx) {
        const bool dim = brownoutDegrades();
        ctx.call(
            names::kAuth, "validate", small(),
            [this, &ctx, small, dim](const Payload &) {
                Payload q = small();
                q.arg0 = ctx.request().arg0; // category
                q.arg1 = ctx.request().arg1; // page
                ctx.call(
                    names::kPersistence, "products", q,
                    [this, &ctx, small, dim](const Payload &resp) {
                        if (dim) {
                            // Brownout: skip the preview strip.
                            ctx.traceAnnotate("brownout-dim");
                            ctx.response().bytes = kCategoryBytes;
                            ctx.response().degraded = true;
                            ctx.compute(scaled(kCategoryRender),
                                        [&ctx] { ctx.done(); });
                            return;
                        }
                        Payload img = small();
                        img.arg0 = resp.arg0; // first product id
                        img.arg1 = resp.arg1; // count
                        ctx.call(
                            names::kImage, "previews", img,
                            [this, &ctx](const Payload &,
                                         svc::Status status) {
                                const bool ok =
                                    status == svc::Status::Ok;
                                if (!ok && !params_.degradedFallbacks) {
                                    ctx.fail(status);
                                    return;
                                }
                                ctx.response().bytes = kCategoryBytes;
                                ctx.response().degraded = !ok;
                                ctx.compute(scaled(kCategoryRender),
                                            [&ctx] { ctx.done(); });
                            });
                    });
            });
    });

    webui_->addOp("product", [this, small](HandlerCtx &ctx) {
        // Auth and the product row are the page; recommendations and
        // imagery degrade gracefully when fallbacks are enabled.
        const bool dim = brownoutDegrades();
        ctx.call(
            names::kAuth, "validate", small(),
            [this, &ctx, small, dim](const Payload &) {
                Payload q = small();
                q.arg0 = ctx.request().arg0; // product
                ctx.call(
                    names::kPersistence, "product", q,
                    [this, &ctx, small, dim](const Payload &prod) {
                        if (dim) {
                            // Brownout: the product row is the page;
                            // the recommender and both imagery legs
                            // are skipped as a unit.
                            ctx.traceAnnotate("brownout-dim");
                            ctx.response().bytes = kProductBytes;
                            ctx.response().degraded = true;
                            ctx.compute(scaled(kProductRender),
                                        [&ctx] { ctx.done(); });
                            return;
                        }
                        Payload rec = small();
                        rec.arg0 = ctx.request().arg1; // user
                        rec.arg1 = ctx.request().arg0; // product
                        ctx.call(
                            names::kRecommender, "recommend", rec,
                            [this, &ctx, small, prod](
                                const Payload &ads,
                                svc::Status rec_status) {
                                const bool rec_ok =
                                    rec_status == svc::Status::Ok;
                                if (!rec_ok &&
                                    !params_.degradedFallbacks) {
                                    ctx.fail(rec_status);
                                    return;
                                }
                                Payload full = small();
                                full.arg0 = prod.arg0;
                                ctx.call(
                                    names::kImage, "full", full,
                                    [this, &ctx, small, ads, rec_ok](
                                        const Payload &,
                                        svc::Status full_status) {
                                        const bool full_ok =
                                            full_status ==
                                            svc::Status::Ok;
                                        if (!full_ok &&
                                            !params_
                                                 .degradedFallbacks) {
                                            ctx.fail(full_status);
                                            return;
                                        }
                                        auto render = [this, &ctx,
                                                       rec_ok, full_ok](
                                                          bool pre_ok) {
                                            ctx.response().bytes =
                                                kProductBytes;
                                            ctx.response().degraded =
                                                !rec_ok || !full_ok ||
                                                !pre_ok;
                                            ctx.compute(
                                                scaled(kProductRender),
                                                [&ctx] { ctx.done(); });
                                        };
                                        if (!rec_ok) {
                                            // No recommendations, so
                                            // no ad strip to fetch.
                                            render(true);
                                            return;
                                        }
                                        Payload pre = small();
                                        pre.arg0 = ads.arg0;
                                        pre.arg1 = 3; // ad previews
                                        ctx.call(
                                            names::kImage, "previews",
                                            pre,
                                            [this, &ctx, render](
                                                const Payload &,
                                                svc::Status
                                                    pre_status) {
                                                const bool pre_ok =
                                                    pre_status ==
                                                    svc::Status::Ok;
                                                if (!pre_ok &&
                                                    !params_
                                                         .degradedFallbacks) {
                                                    ctx.fail(
                                                        pre_status);
                                                    return;
                                                }
                                                render(pre_ok);
                                            });
                                    });
                            });
                    });
            });
    });

    webui_->addOp("addToCart", [this, small](HandlerCtx &ctx) {
        const bool dim = brownoutDegrades();
        ctx.call(
            names::kAuth, "validate", small(),
            [this, &ctx, small, dim](const Payload &) {
                Payload q = small();
                q.arg0 = ctx.request().arg0; // product
                ctx.call(
                    names::kPersistence, "product", q,
                    [this, &ctx, small, dim](const Payload &) {
                        if (dim) {
                            // Brownout: cart math without the
                            // recommender cross-sell.
                            ctx.traceAnnotate("brownout-dim");
                            ctx.response().bytes = kPlainBytes;
                            ctx.response().degraded = true;
                            ctx.compute(scaled(kCartRender),
                                        [&ctx] { ctx.done(); });
                            return;
                        }
                        Payload rec = small();
                        rec.arg0 = ctx.request().arg1; // user
                        rec.arg1 = ctx.request().arg0;
                        ctx.call(
                            names::kRecommender, "recommend", rec,
                            [this, &ctx](const Payload &,
                                         svc::Status status) {
                                const bool ok =
                                    status == svc::Status::Ok;
                                if (!ok && !params_.degradedFallbacks) {
                                    ctx.fail(status);
                                    return;
                                }
                                ctx.response().bytes = kPlainBytes;
                                ctx.response().degraded = !ok;
                                ctx.compute(scaled(kCartRender),
                                            [&ctx] { ctx.done(); });
                            });
                    });
            });
    });

    webui_->addOp("checkout", [this, small](HandlerCtx &ctx) {
        ctx.call(names::kAuth, "validate", small(),
                 [this, &ctx, small](const Payload &) {
                     Payload q = small();
                     q.arg0 = ctx.request().arg0; // user
                     ctx.call(names::kPersistence, "placeOrder", q,
                              [this, &ctx](const Payload &) {
                                  ctx.response().bytes = kPlainBytes;
                                  ctx.compute(scaled(kCheckoutRender),
                                              [&ctx] { ctx.done(); });
                              });
                 });
    });

    webui_->addOp("profile", [this, small](HandlerCtx &ctx) {
        ctx.call(
            names::kAuth, "validate", small(),
            [this, &ctx, small](const Payload &) {
                Payload q = small();
                q.arg0 = ctx.request().arg0; // user
                ctx.call(
                    names::kPersistence, "user", q,
                    [this, &ctx, small](const Payload &) {
                        Payload o = small();
                        o.arg0 = ctx.request().arg0;
                        ctx.call(names::kPersistence, "ordersOfUser", o,
                                 [this, &ctx](const Payload &) {
                                     ctx.response().bytes =
                                         kPlainBytes + 4 * 1024;
                                     ctx.compute(scaled(kProfileRender),
                                                 [&ctx] { ctx.done(); });
                                 });
                    });
            });
    });
}

void
App::installAuth()
{
    using svc::HandlerCtx;
    using svc::Payload;

    auth_->addOp("login", [this](HandlerCtx &ctx) {
        ctx.compute(scaled(kAuthHash), [this, &ctx] {
            Payload q;
            q.bytes = kSmallReq;
            q.arg0 = ctx.request().arg0; // user id
            ctx.call(names::kPersistence, "userByName", q,
                     [this, &ctx](const Payload &) {
                         ctx.compute(scaled(kAuthSession), [&ctx] {
                             ctx.response().bytes = 600;
                             ctx.done();
                         });
                     });
        });
    });

    auth_->addOp("validate", [this](HandlerCtx &ctx) {
        ctx.compute(scaled(kAuthValidate), [&ctx] {
            ctx.response().bytes = 300;
            ctx.done();
        });
    });
}

void
App::installPersistence()
{
    installDataOps(*persistence_, /*direct=*/false);
}

void
App::installDataOps(svc::Service &svc, bool direct)
{
    using svc::HandlerCtx;

    // Non-direct handlers (the app's own Persistence service) defer to
    // the cluster backend when one is installed; shard-side copies
    // (direct) always execute against the store. With no backend the
    // check is a null test — byte-identical to the pre-cluster code.
    auto remoted = [this, direct](HandlerCtx &ctx, const char *op) {
        return !direct && scaleout_ != nullptr &&
               scaleout_->persistenceOp(ctx, op);
    };

    svc.addOp("categories", [this, remoted](HandlerCtx &ctx) {
        if (remoted(ctx, "categories"))
            return;
        db::QueryCost cost;
        const auto ids = store_.listCategories(cost);
        ctx.response().arg0 = ids.size();
        ctx.response().bytes = 2 * 1024;
        ctx.compute(scaled(dbInstructions(cost)), [&ctx] { ctx.done(); });
    });

    svc.addOp("products", [this, remoted](HandlerCtx &ctx) {
        if (remoted(ctx, "products"))
            return;
        db::QueryCost cost;
        auto cat = static_cast<db::CategoryId>(ctx.request().arg0);
        const unsigned page = static_cast<unsigned>(ctx.request().arg1);
        const auto ids = store_.productsInCategory(
            cat, page * params_.pageSize, params_.pageSize, cost);
        ctx.response().arg0 = ids.empty() ? 0 : ids.front();
        ctx.response().arg1 = ids.size();
        ctx.response().bytes =
            1024 + static_cast<std::uint32_t>(ids.size()) * 256;
        ctx.compute(scaled(dbInstructions(cost)), [&ctx] { ctx.done(); });
    });

    svc.addOp("product", [this, remoted](HandlerCtx &ctx) {
        if (remoted(ctx, "product"))
            return;
        db::QueryCost cost;
        auto id = static_cast<db::ProductId>(ctx.request().arg0);
        const db::Product *p = store_.product(id, cost);
        if (!p) {
            // Unknown ids behave like a valid catalog miss page.
            ctx.response().arg0 = 0;
            ctx.response().arg1 = 0;
        } else {
            ctx.response().arg0 = p->id;
            ctx.response().arg1 = p->imageBytes;
        }
        ctx.response().bytes = 1024;
        ctx.compute(scaled(dbInstructions(cost)), [&ctx] { ctx.done(); });
    });

    svc.addOp("userByName", [this, remoted](HandlerCtx &ctx) {
        if (remoted(ctx, "userByName"))
            return;
        db::QueryCost cost;
        const std::string name =
            "user-" + std::to_string(ctx.request().arg0);
        const db::User *u = store_.userByName(name, cost);
        ctx.response().arg0 = u ? u->id : 0;
        ctx.response().bytes = 500;
        ctx.compute(scaled(dbInstructions(cost)), [&ctx] { ctx.done(); });
    });

    svc.addOp("user", [this, remoted](HandlerCtx &ctx) {
        if (remoted(ctx, "user"))
            return;
        db::QueryCost cost;
        const db::User *u = store_.user(
            static_cast<db::UserId>(ctx.request().arg0), cost);
        ctx.response().arg0 = u ? u->id : 0;
        ctx.response().bytes = 600;
        ctx.compute(scaled(dbInstructions(cost)), [&ctx] { ctx.done(); });
    });

    svc.addOp("ordersOfUser", [this, remoted](HandlerCtx &ctx) {
        if (remoted(ctx, "ordersOfUser"))
            return;
        db::QueryCost cost;
        const auto ids = store_.ordersOfUser(
            static_cast<db::UserId>(ctx.request().arg0), 10, cost);
        ctx.response().arg0 = ids.size();
        ctx.response().bytes =
            1024 + static_cast<std::uint32_t>(ids.size()) * 128;
        ctx.compute(scaled(dbInstructions(cost)), [&ctx] { ctx.done(); });
    });

    svc.addOp("placeOrder", [this, remoted](HandlerCtx &ctx) {
        if (remoted(ctx, "placeOrder"))
            return;
        db::QueryCost cost;
        const auto user = static_cast<db::UserId>(ctx.request().arg0);
        const auto n_items =
            static_cast<unsigned>(ctx.rng().uniformInt(1, 5));
        std::vector<db::OrderItem> items;
        items.reserve(n_items);
        for (unsigned i = 0; i < n_items; ++i) {
            const db::ProductId pid = store_.sampleProduct(ctx.rng());
            const db::Product *p = store_.product(pid, cost);
            db::OrderItem item;
            item.product = pid;
            item.quantity =
                static_cast<std::uint16_t>(ctx.rng().uniformInt(1, 3));
            item.unitPriceCents = p ? p->priceCents : 999;
            items.push_back(item);
        }
        const db::OrderId oid =
            store_.placeOrder(user, items, ctx.now(), cost);
        ctx.response().arg0 = oid;
        ctx.response().bytes = 700;
        ctx.compute(scaled(dbInstructions(cost)), [&ctx] { ctx.done(); });
    });
}

void
App::installImageFetchOp(svc::Service &svc)
{
    using svc::HandlerCtx;

    // The rescale-on-miss work of the ImageProvider's "full" op,
    // executed on the shard that owns the image bytes. Unlike the
    // local path there is no cache-hit draw: this op only runs on
    // misses, so its cost is always the miss cost.
    svc.addOp("imgFetch", [this](HandlerCtx &ctx) {
        db::QueryCost cost;
        const db::Product *p = store_.product(
            static_cast<db::ProductId>(ctx.request().arg0), cost);
        const std::uint32_t bytes =
            p ? p->imageBytes : params_.store.meanImageBytes;
        const double size_factor =
            static_cast<double>(bytes) /
            static_cast<double>(params_.store.meanImageBytes);
        const double instructions =
            kFullMiss * std::max(0.25, size_factor);
        ctx.response().bytes = bytes;
        ctx.compute(scaled(instructions), [&ctx] { ctx.done(); });
    });
}

void
App::installRecommender()
{
    using svc::HandlerCtx;

    recommender_->addOp("recommend", [this](HandlerCtx &ctx) {
        // The in-memory model is trained offline; scoring cost scales
        // mildly with catalog size.
        const double catalog_factor =
            1.0 + 0.1 * static_cast<double>(store_.productCount()) / 1500.0;
        ctx.compute(scaled(kRecommendBase * catalog_factor), [this, &ctx] {
            ctx.response().arg0 = store_.sampleProduct(ctx.rng());
            ctx.response().arg1 = 3;
            ctx.response().bytes = 1024;
            ctx.done();
        });
    });
}

void
App::installImage()
{
    using svc::HandlerCtx;

    image_->addOp("previews", [this](HandlerCtx &ctx) {
        const auto count =
            static_cast<unsigned>(std::min<std::uint64_t>(
                ctx.request().arg1, 64));
        double instructions = 0.0;
        for (unsigned i = 0; i < count; ++i) {
            instructions +=
                ctx.rng().chance(params_.imageCacheHitRatio)
                    ? kPreviewHit
                    : kPreviewMiss;
        }
        if (count == 0)
            instructions = kPreviewHit;
        ctx.response().bytes = std::max<std::uint32_t>(
            1024, count * kPreviewBytes);
        ctx.compute(scaled(instructions), [&ctx] { ctx.done(); });
    });

    image_->addOp("full", [this](HandlerCtx &ctx) {
        db::QueryCost cost;
        const db::Product *p = store_.product(
            static_cast<db::ProductId>(ctx.request().arg0), cost);
        const std::uint32_t bytes =
            p ? p->imageBytes : params_.store.meanImageBytes;
        const bool hit = ctx.rng().chance(params_.imageCacheHitRatio);
        // Cluster mode: a local miss is fetched from the distributed
        // cache/shard tier instead of rescaling here. The hit draw
        // above already happened, so the local-hit fast path (and the
        // RNG sequence) is shared between both modes.
        if (!hit && scaleout_ != nullptr &&
            scaleout_->imageMiss(ctx, ctx.request().arg0, bytes))
            return;
        // Rescale cost grows with the source image size.
        const double size_factor =
            static_cast<double>(bytes) /
            static_cast<double>(params_.store.meanImageBytes);
        const double instructions =
            hit ? kFullHit : kFullMiss * std::max(0.25, size_factor);
        ctx.response().bytes = bytes;
        ctx.compute(scaled(instructions), [&ctx] { ctx.done(); });
    });
}

void
App::installRegistry()
{
    using svc::HandlerCtx;

    registry_->addOp("heartbeat", [this](HandlerCtx &ctx) {
        ctx.compute(scaled(kHeartbeat), [&ctx] {
            ctx.response().bytes = 128;
            ctx.done();
        });
    });
}

} // namespace microscale::teastore
