/**
 * @file
 * App: the assembled TeaStore application model.
 *
 * Six services wired through a Mesh:
 *
 *   client -> WebUI -> Auth --------> Persistence -> Store (in-memory DB)
 *                   -> Persistence /
 *                   -> Recommender
 *                   -> ImageProvider
 *   all services -> Registry (heartbeats)
 *
 * The WebUI exposes the user-facing operations of the browse profile
 * (home, login, category, product, addToCart, checkout, profile); the
 * other services expose internal RPCs.
 */

#ifndef MICROSCALE_TEASTORE_APP_HH
#define MICROSCALE_TEASTORE_APP_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "db/store.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"

namespace microscale::teastore
{

/** The user-facing WebUI operations of the browse profile. */
enum class OpType : unsigned
{
    Home = 0,
    Login,
    Category,
    Product,
    AddToCart,
    Checkout,
    Profile,
};

/** Number of OpType values. */
constexpr unsigned kNumOps = 7;

/** WebUI op name for an OpType (also the handler key). */
const char *opName(OpType op);

/** All op types in declaration order. */
std::array<OpType, kNumOps> allOps();

/** Replica/worker sizing for one service. */
struct ServiceConfig
{
    unsigned replicas = 1;
    unsigned workers = 16;
};

/** Application parameters. */
struct AppParams
{
    db::StoreParams store;

    ServiceConfig webui{1, 24};
    ServiceConfig auth{1, 16};
    ServiceConfig persistence{1, 24};
    ServiceConfig recommender{1, 12};
    ServiceConfig image{1, 24};
    ServiceConfig registry{1, 2};

    /** Global multiplier on all service work budgets (calibration). */
    double workScale = 1.0;

    /** Forwarded to every service (see ServiceParams::batchedTiming). */
    bool batchedTiming = false;

    /** Products per category page. */
    unsigned pageSize = 20;

    /** Image cache hit probability for previews/full images. */
    double imageCacheHitRatio = 0.88;

    /** Emit per-service heartbeats to the registry. */
    bool heartbeats = true;
    Tick heartbeatPeriod = kSecond;

    /**
     * Graceful degradation (mirrors real TeaStore): when a
     * Recommender or ImageProvider call fails, serve the page without
     * that content (response marked degraded) instead of failing it.
     * Auth/Persistence failures always fail the page.
     */
    bool degradedFallbacks = false;
};

/**
 * Hook through which the cluster layer (src/cluster) reroutes the
 * stateful data paths: Persistence queries and full-image cache misses
 * can be redirected through a sharded store behind a distributed cache
 * tier instead of executing locally. Each hook returns true when the
 * backend took ownership of the request (the handler must return
 * without touching it further) and false to fall through to the local
 * single-machine path. With no backend installed (the default) the
 * hooks are never consulted and behavior is byte-identical.
 */
class ScaleoutBackend
{
  public:
    virtual ~ScaleoutBackend() = default;

    /** A Persistence data op ("categories", ..., "placeOrder"). */
    virtual bool persistenceOp(svc::HandlerCtx &ctx,
                               const std::string &op) = 0;

    /** A full-image cache miss for `product` of `bytes` source size. */
    virtual bool imageMiss(svc::HandlerCtx &ctx, std::uint64_t product,
                           std::uint32_t bytes) = 0;
};

/** Canonical service names. */
namespace names
{
inline constexpr const char *kWebui = "webui";
inline constexpr const char *kAuth = "auth";
inline constexpr const char *kPersistence = "persistence";
inline constexpr const char *kRecommender = "recommender";
inline constexpr const char *kImage = "image";
inline constexpr const char *kRegistry = "registry";
} // namespace names

/**
 * The assembled application. Construction registers all services and
 * handlers with the mesh; start() begins background heartbeats.
 */
class App
{
  public:
    App(svc::Mesh &mesh, AppParams params, std::uint64_t seed);

    App(const App &) = delete;
    App &operator=(const App &) = delete;

    svc::Mesh &mesh() { return mesh_; }
    const AppParams &params() const { return params_; }
    db::Store &store() { return store_; }
    const db::Store &store() const { return store_; }
    Rng &rng() { return rng_; }

    svc::Service &webui() { return *webui_; }
    svc::Service &auth() { return *auth_; }
    svc::Service &persistence() { return *persistence_; }
    svc::Service &recommender() { return *recommender_; }
    svc::Service &image() { return *image_; }
    svc::Service &registry() { return *registry_; }

    /** The five worker services + registry, in canonical order. */
    std::vector<svc::Service *> services() const;

    /** Start background activity (heartbeats). Idempotent. */
    void start();
    /** Stop background activity. */
    void stop();

    /**
     * Attach a brownout controller (nullptr detaches). While attached
     * and dimming, WebUI handlers skip the optional Recommender and
     * ImageProvider legs of a page as a unit (the page renders
     * degraded without issuing those calls), shedding downstream work
     * before queues fill. Critical legs (Auth, Persistence) always
     * run.
     */
    void setBrownout(svc::BrownoutController *controller)
    {
        brownout_ = controller;
    }

    /**
     * Install (or remove, with nullptr) the cluster data-path backend.
     * Must be set before traffic starts; the backend must outlive it.
     */
    void setScaleoutBackend(ScaleoutBackend *backend)
    {
        scaleout_ = backend;
    }

    ScaleoutBackend *scaleoutBackend() const { return scaleout_; }

    /**
     * Install the seven Persistence data-op handlers (categories,
     * products, product, userByName, user, ordersOfUser, placeOrder)
     * on `svc`, executing against this app's store. With `direct` the
     * handlers always run locally (the cluster layer installs them on
     * shard services); without it they consult the ScaleoutBackend
     * first — that is how the app's own Persistence service is built.
     */
    void installDataOps(svc::Service &svc, bool direct);

    /**
     * Install the shard-side full-image fetch op ("imgFetch") on
     * `svc`: the rescale-on-miss work the ImageProvider would have
     * done locally, executed where the image bytes live.
     */
    void installImageFetchOp(svc::Service &svc);

    /**
     * Build a request payload for a WebUI op, sampling entity ids from
     * the store with the supplied RNG (the load generator's stream).
     */
    svc::Payload sampleRequest(OpType op, Rng &rng) const;

    /** Scale a nominal instruction budget by params().workScale. */
    double scaled(double instructions) const
    {
        return instructions * params_.workScale;
    }

  private:
    /** One dimmer decision per page (gates all its optional legs). */
    bool brownoutDegrades();

    void installWebui();
    void installAuth();
    void installPersistence();
    void installRecommender();
    void installImage();
    void installRegistry();

    svc::Mesh &mesh_;
    AppParams params_;
    db::Store store_;
    Rng rng_;

    svc::Service *webui_ = nullptr;
    svc::Service *auth_ = nullptr;
    svc::Service *persistence_ = nullptr;
    svc::Service *recommender_ = nullptr;
    svc::Service *image_ = nullptr;
    svc::Service *registry_ = nullptr;

    std::vector<sim::PeriodicEvent> heartbeats_;
    bool started_ = false;
    svc::BrownoutController *brownout_ = nullptr;
    ScaleoutBackend *scaleout_ = nullptr;
};

} // namespace microscale::teastore

#endif // MICROSCALE_TEASTORE_APP_HH
