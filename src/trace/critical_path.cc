#include "trace/critical_path.hh"

#include <algorithm>
#include <vector>

namespace microscale::trace
{

namespace
{

/** Client-side end of a span: completion at the caller, or the server
 * finish for fire-and-forget calls (no response hop). 0 = in flight. */
Tick
endOf(const Span &s)
{
    return s.clientComplete != 0 ? s.clientComplete : s.finish;
}

/** One logical call: its attempts in issue order. */
struct Call
{
    std::vector<const Span *> attempts;

    const Span &first() const { return *attempts.front(); }

    /**
     * The attempt whose outcome settled the call: the last attempt
     * that was not cancelled. Hedging cancels losing legs when the
     * winner's response arrives; retries never cancel, so without
     * hedging this is exactly the last attempt. Null only for a call
     * captured mid-cancellation (no surviving attempt).
     */
    const Span *winner() const
    {
        for (auto it = attempts.rbegin(); it != attempts.rend(); ++it)
            if (!(*it)->cancelled)
                return *it;
        return nullptr;
    }

    Tick issue() const { return first().clientIssue; }

    Tick end() const
    {
        const Span *w = winner();
        return w ? endOf(*w) : 0;
    }
};

/** Walks one trace's span DAG and accumulates into an Attribution. */
class Walker
{
  public:
    Walker(const Trace &trace, Attribution &acc) : acc_(acc)
    {
        for (const Span &s : trace.spans()) {
            if (s.retryOf == kNoSpan) {
                calls_[s.id].attempts.push_back(&s);
                children_[s.parent][s.group].push_back(s.id);
            } else {
                auto it = calls_.find(s.retryOf);
                if (it != calls_.end())
                    it->second.attempts.push_back(&s);
            }
        }
    }

    /** The earliest-created root call, or nullptr. */
    const Call *root() const
    {
        auto it = children_.find(kNoSpan);
        if (it == children_.end() || it->second.empty())
            return nullptr;
        const auto &ids = it->second.begin()->second;
        return ids.empty() ? nullptr : &calls_.at(ids.front());
    }

    /**
     * Attribute one logical call's wall time. `fanoutLeg` marks the
     * call as the gating leg of a multi-leg group at `caller`: its
     * transport slack then counts as the caller's fan-out wait rather
     * than plain network time.
     */
    void attributeCall(const Call &call, bool fanoutLeg,
                       const std::string &caller)
    {
        const std::string &target = call.first().service;
        ServiceAttribution &svc = acc_.services[target];
        const Span *win = call.winner();
        if (!win)
            return; // every leg cancelled mid-capture; nothing billable
        // Hedged calls race overlapping legs, so the sequential-retry
        // accounting (bill every failed attempt's wall as shed plus the
        // backoff gaps) would double-count overlapped time and miss the
        // pre-hedge delay. For them the winner's wall spans the whole
        // call interval and every sibling leg — cancelled or failed —
        // is concurrent and unbilled; retried calls keep the exact
        // ladder accounting.
        bool hedged = false;
        for (const Span *a : call.attempts) {
            if (a->hedge) {
                hedged = true;
                break;
            }
        }
        if (!hedged) {
            for (const Span *a : call.attempts)
                svc.backoffNs += static_cast<double>(a->backoffBefore);
            for (const Span *a : call.attempts) {
                if (a == win)
                    continue;
                const Tick e = endOf(*a);
                if (e >= a->clientIssue)
                    svc.shedNs +=
                        static_cast<double>(e - a->clientIssue);
            }
        }
        const Span &fin = *win;
        const Tick e = endOf(fin);
        if (e == 0 || e < fin.clientIssue)
            return; // in flight / malformed; group wall excluded it too
        const Tick start = hedged ? call.issue() : fin.clientIssue;
        const double wall = static_cast<double>(e - start);
        if (fin.clientStatus != svc::Status::Ok) {
            svc.shedNs += wall;
            return;
        }
        if (fin.arrived == 0 || fin.finish < fin.arrived) {
            // No server record survived; the whole leg is transport.
            (fanoutLeg ? acc_.services[caller].fanoutNs
                       : svc.networkNs) += wall;
            return;
        }
        const double server =
            static_cast<double>(fin.finish - fin.arrived);
        double slack = wall - server;
        if (slack < 0.0) {
            // Server window exceeds the client wall (defensive; should
            // not happen). Keep the sum exact via the residue.
            acc_.unattributedNs += slack;
            slack = 0.0;
        }
        (fanoutLeg ? acc_.services[caller].fanoutNs : svc.networkNs) +=
            slack;
        // The fabric portion of the slack (bounded by the slack itself:
        // jitter/clamping can make the nominal estimate exceed it).
        // Sub-attribution only — svc.networkNs already holds it.
        if (!fanoutLeg && fin.fabricNs > 0.0)
            svc.fabricNs += std::min(slack, fin.fabricNs);
        attributeServer(fin);
    }

    /** Attribute one span's server window [arrived, finish]. */
    void attributeServer(const Span &span)
    {
        const std::string &name = span.service;
        ServiceAttribution &svc = acc_.services[name];
        if (span.dispatched == 0) {
            // Rejected / dropped without ever occupying a worker.
            if (span.finish >= span.arrived)
                svc.shedNs +=
                    static_cast<double>(span.finish - span.arrived);
            return;
        }
        svc.queueNs +=
            static_cast<double>(span.dispatched - span.arrived);
        const double window =
            static_cast<double>(span.finish - span.dispatched);
        double covered = 0.0;
        auto kids = children_.find(span.id);
        if (kids != children_.end()) {
            for (const auto &group : kids->second) {
                Tick gstart = kTickNever;
                Tick gend = 0;
                const Call *gating = nullptr;
                for (SpanId id : group.second) {
                    const Call &leg = calls_.at(id);
                    gstart = std::min(gstart, leg.issue());
                    const Tick le = leg.end();
                    if (le == 0)
                        continue; // never completed; off the path
                    if (le > gend) {
                        gend = le;
                        gating = &leg;
                    }
                }
                if (!gating || gend <= gstart)
                    continue;
                covered += static_cast<double>(gend - gstart);
                // Issue skew between the group start and its gating
                // leg is time the handler waited on fan-out machinery.
                if (gating->issue() > gstart)
                    svc.fanoutNs += static_cast<double>(
                        gating->issue() - gstart);
                attributeCall(*gating, group.second.size() > 1, name);
            }
        }
        double uncovered = window - covered;
        if (uncovered < 0.0) {
            acc_.unattributedNs += uncovered;
            uncovered = 0.0;
        }
        const double compute = std::min(span.computeNs, uncovered);
        svc.computeNs += compute;
        svc.stallNs += uncovered - compute;
    }

  private:
    Attribution &acc_;
    std::map<SpanId, Call> calls_;
    std::map<SpanId, std::map<std::uint32_t, std::vector<SpanId>>>
        children_;
};

} // namespace

bool
attributeTrace(const Trace &trace, Attribution &acc)
{
    Walker walker(trace, acc);
    const Call *rootCall = walker.root();
    if (!rootCall)
        return false;
    const Tick end = rootCall->end();
    if (end == 0 || end < rootCall->issue())
        return false;
    ++acc.traces;
    acc.e2eNs += static_cast<double>(end - rootCall->issue());
    walker.attributeCall(*rootCall, false, std::string());
    return true;
}

Attribution
attributeTraces(const TraceStore &store, const std::string &rootService,
                Tick windowStart, Tick windowEnd)
{
    Attribution acc;
    for (const auto &t : store.traces()) {
        Attribution probe;
        Walker walker(*t, probe);
        const Call *rootCall = walker.root();
        if (!rootCall)
            continue;
        if (!rootService.empty() &&
            rootCall->first().service != rootService)
            continue;
        const Tick end = rootCall->end();
        if (end == 0 || end < rootCall->issue())
            continue;
        if (end < windowStart || (windowEnd != 0 && end >= windowEnd))
            continue;
        attributeTrace(*t, acc);
    }
    return acc;
}

} // namespace microscale::trace
