#include "trace/export.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

namespace microscale::trace
{

namespace
{

/** Local status label (keeps the trace library off svc's .cc files). */
const char *
statusLabel(svc::Status status)
{
    switch (status) {
    case svc::Status::Ok:
        return "ok";
    case svc::Status::Timeout:
        return "timeout";
    case svc::Status::Overload:
        return "overload";
    case svc::Status::Unavailable:
        return "unavailable";
    case svc::Status::Rejected:
        return "rejected";
    }
    return "?";
}

void
escape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Microseconds with nanosecond resolution, deterministic format. */
void
micros(std::ostream &os, double ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", ns / 1000.0);
    os << buf;
}

void
spanArgs(std::ostream &os, const Trace &trace, const Span &s)
{
    os << "{\"trace\":" << trace.id() << ",\"span\":" << s.id
       << ",\"parent\":" << s.parent << ",\"group\":" << s.group
       << ",\"attempt\":" << s.attempt << ",\"status\":\""
       << statusLabel(s.status) << "\",\"client_status\":\""
       << statusLabel(s.clientStatus) << "\",\"queue_us\":";
    micros(os, s.dispatched >= s.arrived && s.dispatched != 0
                   ? static_cast<double>(s.dispatched - s.arrived)
                   : 0.0);
    os << ",\"compute_us\":";
    micros(os, s.computeNs);
    os << ",\"backoff_us\":";
    micros(os, static_cast<double>(s.backoffBefore));
    os << ",\"replica\":" << s.replica << ",\"ccx\":" << s.ccx
       << ",\"node\":" << s.node
       << ",\"degraded\":" << (s.degraded ? "true" : "false");
    if (!s.annotation.empty()) {
        os << ",\"annotation\":";
        escape(os, s.annotation);
    }
    os << "}";
}

} // namespace

void
writeChromeTrace(std::ostream &os, const TraceStore &store)
{
    // Track ids: 0 = external client, services numbered by first
    // appearance over the (deterministic) span creation order.
    std::map<std::string, int> tids;
    std::map<int, std::string> names;
    names[0] = "client";
    for (const auto &t : store.traces()) {
        for (const Span &s : t->spans()) {
            if (tids.emplace(s.service,
                             static_cast<int>(tids.size()) + 1)
                    .second)
                names[tids[s.service]] = s.service;
        }
    }

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };
    for (const auto &kv : names) {
        comma();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << kv.first
           << ",\"name\":\"thread_name\",\"args\":{\"name\":";
        escape(os, kv.second);
        os << "}}";
    }
    for (const auto &t : store.traces()) {
        for (const Span &s : t->spans()) {
            // Server window on the service's track.
            if (s.arrived != 0 && s.finish >= s.arrived) {
                comma();
                os << "{\"ph\":\"X\",\"pid\":1,\"tid\":"
                   << tids[s.service] << ",\"ts\":";
                micros(os, static_cast<double>(s.arrived));
                os << ",\"dur\":";
                micros(os, static_cast<double>(s.finish - s.arrived));
                os << ",\"name\":";
                escape(os, s.service + "." + s.op);
                os << ",\"cat\":";
                escape(os, s.service);
                os << ",\"args\":";
                spanArgs(os, *t, s);
                os << "}";
            }
            // Root spans also get the client-side wall on track 0.
            const Tick end =
                s.clientComplete != 0 ? s.clientComplete : s.finish;
            if (s.parent == kNoSpan && end >= s.clientIssue &&
                end != 0) {
                comma();
                os << "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":";
                micros(os, static_cast<double>(s.clientIssue));
                os << ",\"dur\":";
                micros(os, static_cast<double>(end - s.clientIssue));
                os << ",\"name\":";
                escape(os, "request." + s.op);
                os << ",\"cat\":\"request\",\"args\":";
                spanArgs(os, *t, s);
                os << "}";
            }
        }
    }
    os << "\n]}\n";
}

bool
writeChromeTraceFile(const std::string &path, const TraceStore &store)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeTrace(os, store);
    return os.good();
}

} // namespace microscale::trace
