/**
 * @file
 * Chrome trace_event exporter: serialize a TraceStore into the JSON
 * Trace Event Format that chrome://tracing and Perfetto load.
 *
 * Each span's server window becomes a complete ("X") event on a
 * per-service track; root spans additionally get a client-side event
 * on a dedicated "client" track so the page request's full wall time
 * is visible above its RPC tree. Output is deterministic: events are
 * emitted in trace/span creation order with no timestamps or ids
 * taken from the host.
 */

#ifndef MICROSCALE_TRACE_EXPORT_HH
#define MICROSCALE_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace microscale::trace
{

/** Write the store as Chrome trace_event JSON. */
void writeChromeTrace(std::ostream &os, const TraceStore &store);

/** writeChromeTrace into a file; returns false when unwritable. */
bool writeChromeTraceFile(const std::string &path,
                          const TraceStore &store);

} // namespace microscale::trace

#endif // MICROSCALE_TRACE_EXPORT_HH
