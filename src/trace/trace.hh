/**
 * @file
 * Deterministic per-request distributed tracing.
 *
 * A TraceStore (owned by svc::Mesh, one per Simulation) allocates a
 * Trace per sampled external request; every RPC hop of that request
 * records a Span. Spans carry both the client-side view (issue tick,
 * completion tick, per-attempt retry/backoff lineage) and the
 * server-side view (arrival, dispatch, finish, handler CPU, the
 * replica that served it and its CCX/NUMA home), so the CriticalPath
 * analyzer (trace/critical_path.hh) can partition end-to-end latency
 * exactly.
 *
 * Determinism: recording never schedules events, never sends messages
 * and never draws from a shared RNG stream; the sampling decision uses
 * a dedicated named stream that is only drawn from when tracing is on
 * and the rate is fractional. With tracing off no store exists and the
 * simulation's event/RNG sequence is bit-identical to an untraced
 * build. Each store belongs to one single-threaded Simulation, so
 * parallel sweeps (--jobs N) never share trace state across workers.
 */

#ifndef MICROSCALE_TRACE_TRACE_HH
#define MICROSCALE_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "svc/resilience.hh"

namespace microscale::trace
{

/** Tracing knobs (core::ExperimentConfig::trace). */
struct TraceParams
{
    /** Master switch; off keeps runs byte-identical to pre-trace. */
    bool enabled = false;
    /** Probability an external request is traced (1 = every one). */
    double sampleRate = 1.0;
    /** Hard cap on retained traces (memory bound for long runs). */
    std::uint64_t maxTraces = 1u << 20;
};

/** Span identifier within one Trace; 0 = none. */
using SpanId = std::uint32_t;
constexpr SpanId kNoSpan = 0;

/**
 * One RPC hop (one attempt) of a traced request. Client-side ticks are
 * stamped by the mesh, server-side ticks by the service; a tick of 0
 * means "never happened" (e.g. dispatched == 0 for a request rejected
 * at admission; clientComplete == 0 for a fire-and-forget call).
 */
struct Span
{
    SpanId id = kNoSpan;
    /** Calling handler's span; kNoSpan = root (external client). */
    SpanId parent = kNoSpan;
    /**
     * Fan-out group within the parent handler: every HandlerCtx::call
     * gets a fresh group, all legs of one callAll share one. Groups of
     * one handler never overlap in time (the worker blocks on each).
     */
    std::uint32_t group = 0;
    /** Attempt number of the logical call (1 = first). */
    unsigned attempt = 1;
    /** Span of the logical call's first attempt; kNoSpan on attempt 1. */
    SpanId retryOf = kNoSpan;

    std::string client;
    std::string service;
    std::string op;

    /** Client issued this attempt (after request serialization). */
    Tick clientIssue = 0;
    /** Response (or failure) delivered back at the client. */
    Tick clientComplete = 0;
    /** Request delivered at the replica queue. */
    Tick arrived = 0;
    /** Handler started on a worker. */
    Tick dispatched = 0;
    /** Response handed to transport / request rejected. */
    Tick finish = 0;
    /** Retry backoff delay that preceded this attempt. */
    Tick backoffBefore = 0;
    /**
     * Effective absolute deadline the mesh attached to this attempt
     * (kTickNever = none). Child deadlines never exceed the parent's;
     * the chaos harness checks that monotonicity invariant.
     */
    Tick deadline = kTickNever;

    /** Outcome as the server recorded it. */
    svc::Status status = svc::Status::Ok;
    /** Outcome as the client observed it (may differ: client timeout). */
    svc::Status clientStatus = svc::Status::Ok;
    /** Handler CPU time (compute + serialization) on the worker, ns. */
    double computeNs = 0.0;

    /** Replica that dispatched the request; -1 = none (rejected). */
    int replica = -1;
    /** CCX the serving replica is pinned to; -1 = unpinned/unknown. */
    int ccx = -1;
    /** NUMA home node of the serving replica; -1 = first-touch. */
    int node = -1;
    /** Cluster machine of the serving replica; -1 = single-machine. */
    int clusterNode = -1;
    /**
     * Nominal (jitter-free) fabric latency this call paid crossing
     * machine boundaries, request and response legs combined, in ns.
     * Stays 0 on single-machine runs and intra-node calls.
     */
    double fabricNs = 0.0;

    /** Response was assembled from a degraded fallback. */
    bool degraded = false;
    /** This attempt was a hedge (duplicate issued after the hedge
     *  delay); hedge legs share the first leg's call via retryOf. */
    bool hedge = false;
    /**
     * Attempt was cancelled when a sibling leg won the race
     * (first-response-wins). clientComplete records the cancellation
     * tick; the attribution walk never bills a cancelled leg.
     */
    bool cancelled = false;
    /** Free-form notes ("brownout-dim;..."), semicolon-separated. */
    std::string annotation;
};

/** The span DAG of one external request. */
class Trace
{
  public:
    explicit Trace(std::uint64_t id) : id_(id) {}

    std::uint64_t id() const { return id_; }

    /** Append a span; returns its id. References from span() are
     * invalidated by the next addSpan (vector growth). */
    SpanId addSpan()
    {
        spans_.emplace_back();
        spans_.back().id = static_cast<SpanId>(spans_.size());
        return spans_.back().id;
    }

    Span &span(SpanId id) { return spans_[id - 1]; }
    const Span &span(SpanId id) const { return spans_[id - 1]; }

    const std::vector<Span> &spans() const { return spans_; }

  private:
    std::uint64_t id_;
    std::vector<Span> spans_;
};

/** Reference to one span, carried inside a svc::Envelope. Null trace
 * = request untraced (the universal default). */
struct SpanRef
{
    Trace *trace = nullptr;
    SpanId span = kNoSpan;

    explicit operator bool() const { return trace != nullptr; }
};

/** Parent link a caller hands to Mesh::sendRpc for one logical call:
 * which trace, which handler span, which fan-out group. */
struct TraceLink
{
    Trace *trace = nullptr;
    SpanId parent = kNoSpan;
    std::uint32_t group = 0;

    explicit operator bool() const { return trace != nullptr; }
};

/**
 * All traces of one run. Single-threaded (owned by one Simulation's
 * mesh); kept alive past the run via shared_ptr so exporters can walk
 * it after the mesh is gone.
 */
class TraceStore
{
  public:
    explicit TraceStore(TraceParams params) : params_(params) {}

    const TraceParams &params() const { return params_; }
    bool enabled() const { return params_.enabled; }

    /** Sampling stops once the retention cap is reached. */
    bool full() const { return traces_.size() >= params_.maxTraces; }

    /** Count one external request seen while tracing was on. */
    void noteRoot() { ++roots_seen_; }
    std::uint64_t rootsSeen() const { return roots_seen_; }

    Trace *newTrace()
    {
        traces_.push_back(std::make_unique<Trace>(next_id_++));
        return traces_.back().get();
    }

    const std::vector<std::unique_ptr<Trace>> &traces() const
    {
        return traces_;
    }

    std::uint64_t spanCount() const
    {
        std::uint64_t n = 0;
        for (const auto &t : traces_)
            n += t->spans().size();
        return n;
    }

  private:
    TraceParams params_;
    std::vector<std::unique_ptr<Trace>> traces_;
    std::uint64_t next_id_ = 1;
    std::uint64_t roots_seen_ = 0;
};

} // namespace microscale::trace

#endif // MICROSCALE_TRACE_TRACE_HH
