/**
 * @file
 * CriticalPath: exact attribution of a traced request's end-to-end
 * latency to per-service components.
 *
 * The decomposition walks the span DAG from the root call down. At
 * every level the wall time of a logical call partitions exactly:
 *
 *   call wall = retry backoff gaps            -> backoffNs[callee]
 *             + failed attempt intervals      -> shedNs[callee]
 *             + final attempt server window   -> recursed into callee
 *             + final attempt transport slack -> networkNs[callee], or
 *                                                fanoutNs[caller] when
 *                                                the call is one leg of
 *                                                a multi-leg fan-out
 *
 * and a dispatched server window [arrived, finish] partitions as
 *
 *   window = queue wait                       -> queueNs[svc]
 *          + child fan-out group walls        -> recursed (the gating
 *                                               leg of each group is
 *                                               the critical path)
 *          + handler CPU in uncovered time    -> computeNs[svc]
 *          + remaining uncovered time         -> stallNs[svc]
 *
 * Fan-out groups of one handler are issued sequentially (the worker
 * blocks on each), so group walls never overlap and the partition is
 * exact by construction; any clamping residue (defensive only) is
 * tracked in unattributedNs rather than silently dropped. Summing all
 * components plus unattributedNs over the analyzed traces therefore
 * reproduces the summed end-to-end latency exactly, which json_check
 * --trace verifies to 1%.
 */

#ifndef MICROSCALE_TRACE_CRITICAL_PATH_HH
#define MICROSCALE_TRACE_CRITICAL_PATH_HH

#include <cstdint>
#include <map>
#include <string>

#include "base/types.hh"
#include "trace/trace.hh"

namespace microscale::trace
{

/** Latency attributed to one service over the analyzed traces, ns. */
struct ServiceAttribution
{
    /** Waiting in the replica queue for a worker. */
    double queueNs = 0.0;
    /** Handler CPU (compute + RPC serialization). */
    double computeNs = 0.0;
    /** On a worker but neither computing nor waiting on children
     * (preempted / runnable-wait). */
    double stallNs = 0.0;
    /** Caller blocked on a multi-leg fan-out beyond the critical
     * leg's server residency (transport + leg skew). */
    double fanoutNs = 0.0;
    /** Retry backoff gaps before attempts to this service. */
    double backoffNs = 0.0;
    /** Wall time burned in failed / rejected / shed legs. */
    double shedNs = 0.0;
    /** Transport slack of successful single calls to this service. */
    double networkNs = 0.0;
    /**
     * Portion of networkNs spent crossing the cluster fabric (nominal
     * fabric latency of the final attempt's request+response legs).
     * A subset of networkNs, NOT an extra component: totalNs() is
     * unchanged, so single-machine attribution stays bit-identical.
     */
    double fabricNs = 0.0;

    double totalNs() const
    {
        return queueNs + computeNs + stallNs + fanoutNs + backoffNs +
               shedNs + networkNs;
    }
};

/** Aggregated critical-path attribution over a set of traces. */
struct Attribution
{
    /** Traces analyzed (root completed inside the window). */
    std::uint64_t traces = 0;
    /** Summed end-to-end latency of those traces, ns. */
    double e2eNs = 0.0;
    /** Clamping residue not attributed to any service, ns. */
    double unattributedNs = 0.0;
    std::map<std::string, ServiceAttribution> services;

    /** Sum of every component over every service plus the residue;
     * equals e2eNs up to floating-point rounding. */
    double attributedNs() const
    {
        double sum = unattributedNs;
        for (const auto &kv : services)
            sum += kv.second.totalNs();
        return sum;
    }
};

/**
 * Attribute one trace. Returns false (and leaves `acc` untouched)
 * when the trace is unusable: no root span, or the root call never
 * completed (still in flight when the run ended).
 */
bool attributeTrace(const Trace &trace, Attribution &acc);

/**
 * Attribute every complete trace in the store whose root targets
 * `rootService` (empty = any) and completes inside
 * [windowStart, windowEnd) (windowEnd 0 = no upper bound).
 */
Attribution attributeTraces(const TraceStore &store,
                            const std::string &rootService,
                            Tick windowStart = 0, Tick windowEnd = 0);

} // namespace microscale::trace

#endif // MICROSCALE_TRACE_CRITICAL_PATH_HH
