#include "cpu/exec.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace microscale::cpu
{

namespace
{
/** IPC assumed for context-switch/overhead kernel code. */
constexpr double kOverheadIpc = 0.5;
} // namespace

ExecEngine::ExecEngine(sim::Simulation &sim, const topo::Machine &machine,
                       PerfModelParams params)
    : sim_(sim),
      machine_(machine),
      params_(params),
      running_(machine.numCpus(), nullptr),
      core_busy_(machine.numCores(), 0),
      active_cores_(machine.numSockets(), 0),
      socket_freq_ghz_(machine.numSockets(), 0.0),
      cpu_busy_ns_(machine.numCpus(), 0.0)
{
    for (SocketId s = 0; s < machine_.numSockets(); ++s)
        updateSocketFreq(s);
}

void
ExecEngine::setWork(ExecContext &ctx, const WorkProfile &profile,
                    double instructions,
                    sim::EventFn on_complete)
{
    if (ctx.running())
        MS_PANIC("setWork on running context ", ctx.name());
    if (ctx.hasWork())
        MS_PANIC("setWork on context ", ctx.name(), " with pending work");
    if (instructions <= 0.0)
        MS_PANIC("setWork with non-positive budget: ", instructions);
    profile.validate();
    ctx.profile_ = &profile;
    ctx.remaining_ = instructions;
    ctx.on_complete_ = std::move(on_complete);
}

bool
ExecEngine::siblingBusy(CpuId cpu) const
{
    const CpuId sib = machine_.siblingOf(cpu);
    return sib != kInvalidCpu && running_[sib] != nullptr;
}

double
ExecEngine::missRatio(const ExecContext &ctx, CcxId ccx, bool cold) const
{
    const WorkProfile &p = *ctx.profile_;
    if (p.wssBytes <= 0.0)
        return params_.missFloor;

    // Sum the *distinct* working sets competing for this CCX's L3:
    // threads of the same service share code and heap, so a profile's
    // footprint counts once no matter how many of its threads run
    // here. This is the mechanism that rewards same-service CCX
    // affinity and punishes the default scheduler's service mixing.
    double wss_sum = p.wssBytes; // self's profile, counted once
    const WorkProfile *seen[16] = {&p};
    unsigned n_seen = 1;
    for (CpuId c : machine_.cpusOfCcx(ccx)) {
        const ExecContext *r = running_[c];
        if (!r)
            continue;
        const WorkProfile *q = r->profile_;
        bool dup = false;
        for (unsigned i = 0; i < n_seen; ++i) {
            if (seen[i] == q) {
                dup = true;
                break;
            }
        }
        if (!dup) {
            if (n_seen < 16)
                seen[n_seen++] = q;
            wss_sum += q->wssBytes;
        }
    }

    const double l3 =
        static_cast<double>(machine_.params().cache.l3BytesPerCcx);
    double share = wss_sum > 0.0 ? l3 * (p.wssBytes / wss_sum) : l3;
    share = std::max(share, params_.minL3ShareBytes);
    const double resident = std::min(share, p.wssBytes);
    double ratio = params_.missFloor +
                   (1.0 - params_.missFloor) * (1.0 - resident / p.wssBytes);
    if (cold)
        ratio = std::max(ratio, params_.coldMissRatio);
    return ratio;
}

double
ExecEngine::computeRate(const ExecContext &ctx, CpuId cpu,
                        bool sibling_busy) const
{
    const WorkProfile &p = *ctx.profile_;
    const auto &cache = machine_.params().cache;
    const SocketId socket = machine_.socketOf(cpu);
    const double freq = socket_freq_ghz_[socket]; // cycles per ns

    const bool cold = ctx.cold_accesses_left_ > 0.0;
    const double miss = missRatio(ctx, machine_.ccxOf(cpu), cold);

    NodeId home = ctx.homeNode();
    if (home == kInvalidNode)
        home = machine_.nodeOf(cpu);
    const double mem_lat_cycles =
        machine_.memLatencyNs(machine_.nodeOf(cpu), home) * freq;

    double cpi = 1.0 / p.ipcBase;
    cpi += p.branchMpki / 1000.0 * params_.branchPenaltyCycles;
    cpi += p.icacheMpki / 1000.0 * cache.l2LatencyCycles;
    cpi += p.l3Apki / 1000.0 *
           (miss * mem_lat_cycles + (1.0 - miss) * cache.l3LatencyCycles);

    double rate = freq / cpi;
    if (sibling_busy) {
        rate *= p.smtYield;
        const CpuId sib = machine_.siblingOf(cpu);
        const ExecContext *other =
            sib != kInvalidCpu ? running_[sib] : nullptr;
        if (other && other != &ctx && other->profile_ != &p)
            rate *= params_.smtHeteroFactor;
    }
    return rate;
}

double
ExecEngine::rateOn(const ExecContext &ctx, CpuId cpu) const
{
    if (!ctx.hasWork())
        MS_PANIC("rateOn without work attached");
    bool sibling = siblingBusy(cpu);
    // Ignore self when already on this very cpu's sibling slot.
    const CpuId sib = machine_.siblingOf(cpu);
    if (sib != kInvalidCpu && running_[sib] == &ctx)
        sibling = false;
    return computeRate(ctx, cpu, sibling);
}

double
ExecEngine::socketFreqGhz(SocketId socket) const
{
    if (socket >= machine_.numSockets())
        MS_PANIC("socketFreqGhz: socket ", socket, " out of range");
    return socket_freq_ghz_[socket];
}

bool
ExecEngine::updateSocketFreq(SocketId socket)
{
    const unsigned cores_per_socket =
        machine_.numCores() / machine_.numSockets();
    const double f = machine_.params().freq.freqGhz(active_cores_[socket],
                                                    cores_per_socket);
    if (f == socket_freq_ghz_[socket])
        return false;
    socket_freq_ghz_[socket] = f;
    return true;
}

void
ExecEngine::bank(ExecContext &ctx)
{
    if (!ctx.running())
        return;
    const Tick now = sim_.now();
    const Tick dt_ticks = now - ctx.last_bank_;
    ctx.last_bank_ = now;
    if (dt_ticks == 0 || ctx.rate_ <= 0.0)
        return;

    const double dt = static_cast<double>(dt_ticks);
    const double retired = std::min(ctx.remaining_, ctx.rate_ * dt);
    const WorkProfile &p = *ctx.profile_;
    const SocketId socket = machine_.socketOf(ctx.cpu_);
    const double freq = socket_freq_ghz_[socket];

    PerfCounters &c = ctx.counters_;
    c.instructions += retired;
    c.cycles += dt * freq;
    c.busyNs += dt;
    const double accesses = retired * p.l3Apki / 1000.0;
    c.l3Accesses += accesses;
    c.l3Misses += accesses * ctx.miss_ratio_;
    c.branchMisses += retired * p.branchMpki / 1000.0;
    c.icacheMisses += retired * p.icacheMpki / 1000.0;
    c.kernelInstructions += retired * p.kernelShare;
    if (ctx.sibling_busy_)
        c.smtBusyNs += dt;
    if (ctx.cold_accesses_left_ > 0.0) {
        c.coldNs += dt;
        ctx.cold_accesses_left_ =
            std::max(0.0, ctx.cold_accesses_left_ - accesses);
    }

    cpu_busy_ns_[ctx.cpu_] += dt;
    ctx.remaining_ -= retired;
}

void
ExecEngine::reprice(ExecContext &ctx)
{
    if (!ctx.running())
        return;
    bank(ctx);
    ctx.sibling_busy_ = siblingBusy(ctx.cpu_);
    const bool cold = ctx.cold_accesses_left_ > 0.0;
    ctx.miss_ratio_ = missRatio(ctx, machine_.ccxOf(ctx.cpu_), cold);
    ctx.rate_ = computeRate(ctx, ctx.cpu_, ctx.sibling_busy_);
    ctx.completion_.cancel();
    Tick delay = 1;
    if (ctx.remaining_ > 0.0) {
        if (ctx.rate_ <= 0.0)
            MS_PANIC("non-positive retire rate for ", ctx.name());
        delay = std::max<Tick>(
            1, static_cast<Tick>(std::ceil(ctx.remaining_ / ctx.rate_)));
        // If the context is cold, the rate will improve once the refill
        // completes; bound the slice so we reprice at warm-up time.
        if (cold) {
            const double access_rate = ctx.rate_ * ctx.profile_->l3Apki /
                                       1000.0; // accesses per ns
            if (access_rate > 0.0) {
                const Tick warm = std::max<Tick>(
                    1, static_cast<Tick>(std::ceil(
                           ctx.cold_accesses_left_ / access_rate)));
                delay = std::min(delay, warm);
            }
        }
    }
    ctx.completion_ =
        sim_.scheduleAfter(delay, [this, &ctx] { complete(ctx); });
}

void
ExecEngine::repriceCcx(CcxId ccx)
{
    for (CpuId c : machine_.cpusOfCcx(ccx)) {
        if (running_[c])
            reprice(*running_[c]);
    }
}

void
ExecEngine::repriceSocket(SocketId socket)
{
    for (CpuId c : machine_.cpusOfSocket(socket)) {
        if (running_[c])
            reprice(*running_[c]);
    }
}

void
ExecEngine::startRun(ExecContext &ctx, CpuId cpu)
{
    if (cpu >= machine_.numCpus())
        MS_PANIC("startRun: cpu ", cpu, " out of range");
    if (!ctx.hasWork())
        MS_PANIC("startRun without work: ", ctx.name());
    if (ctx.running())
        MS_PANIC("startRun on already-running context ", ctx.name());
    if (running_[cpu])
        MS_PANIC("startRun on busy cpu ", cpu);

    const CcxId ccx = machine_.ccxOf(cpu);
    if (ctx.ever_ran_) {
        if (ctx.last_cpu_ != cpu)
            ++ctx.counters_.migrations;
        if (ctx.last_ccx_ != ccx) {
            ++ctx.counters_.ccxMigrations;
            // Refill the private hot set; if a same-service thread is
            // already running here, the shared footprint is warm and
            // the move is nearly free.
            bool shared_warm = false;
            for (CpuId c : machine_.cpusOfCcx(ccx)) {
                const ExecContext *r = running_[c];
                if (r && r->profile_ == ctx.profile_) {
                    shared_warm = true;
                    break;
                }
            }
            if (!shared_warm) {
                ctx.cold_accesses_left_ =
                    std::min(ctx.profile_->wssBytes,
                             params_.coldRefillBytes) /
                    64.0;
            }
        }
    }
    ctx.ever_ran_ = true;
    ctx.last_cpu_ = cpu;
    ctx.last_ccx_ = ccx;

    // First-touch NUMA policy: memory is homed on the node where the
    // thread first executes, as Linux does by default.
    if (ctx.home_node_ == kInvalidNode)
        ctx.home_node_ = machine_.nodeOf(cpu);

    // Occupancy update.
    const CoreId core = machine_.coreOf(cpu);
    const SocketId socket = machine_.socketOf(cpu);
    running_[cpu] = &ctx;
    if (core_busy_[core]++ == 0)
        ++active_cores_[socket];

    ctx.cpu_ = cpu;
    ctx.last_bank_ = sim_.now();
    ctx.rate_ = 0.0;

    // Reprice everyone affected: whole socket on a frequency-bucket
    // crossing, otherwise just this CCX (covers the SMT sibling too).
    if (updateSocketFreq(socket))
        repriceSocket(socket);
    else
        repriceCcx(ccx);
}

void
ExecEngine::detach(ExecContext &ctx)
{
    bank(ctx);
    ctx.completion_.cancel();

    const CpuId cpu = ctx.cpu_;
    const CoreId core = machine_.coreOf(cpu);
    const CcxId ccx = machine_.ccxOf(cpu);
    const SocketId socket = machine_.socketOf(cpu);

    running_[cpu] = nullptr;
    if (--core_busy_[core] == 0)
        --active_cores_[socket];
    ctx.cpu_ = kInvalidCpu;
    ctx.rate_ = 0.0;

    if (updateSocketFreq(socket))
        repriceSocket(socket);
    else
        repriceCcx(ccx);
}

void
ExecEngine::stopRun(ExecContext &ctx)
{
    if (!ctx.running())
        MS_PANIC("stopRun on idle context ", ctx.name());
    detach(ctx);
}

void
ExecEngine::complete(ExecContext &ctx)
{
    bank(ctx);
    if (ctx.remaining_ > 0.0) {
        // Woke early (cold-refill boundary or rounding): re-evaluate.
        reprice(ctx);
        return;
    }
    detach(ctx);
    ctx.profile_ = nullptr;
    ctx.remaining_ = 0.0;
    sim::EventFn fn = std::move(ctx.on_complete_);
    if (fn)
        fn();
}

void
ExecEngine::bankAll()
{
    for (CpuId c = 0; c < machine_.numCpus(); ++c) {
        if (running_[c])
            bank(*running_[c]);
    }
}

void
ExecEngine::chargeOverhead(CpuId cpu, Tick duration,
                           PerfCounters *attribute_to)
{
    if (cpu >= machine_.numCpus())
        MS_PANIC("chargeOverhead: cpu ", cpu, " out of range");
    const double dt = static_cast<double>(duration);
    cpu_busy_ns_[cpu] += dt;
    if (attribute_to) {
        const double freq = socket_freq_ghz_[machine_.socketOf(cpu)];
        const double instrs = dt * freq * kOverheadIpc;
        attribute_to->busyNs += dt;
        attribute_to->cycles += dt * freq;
        attribute_to->instructions += instrs;
        attribute_to->kernelInstructions += instrs;
    }
}

} // namespace microscale::cpu
