#include "cpu/work.hh"

#include "base/logging.hh"

namespace microscale::cpu
{

void
WorkProfile::validate() const
{
    if (ipcBase <= 0.0 || ipcBase > 8.0)
        MS_PANIC("profile '", name, "': ipcBase ", ipcBase, " out of range");
    if (branchMpki < 0.0 || icacheMpki < 0.0 || l3Apki < 0.0)
        MS_PANIC("profile '", name, "': negative per-kinstr rate");
    if (wssBytes < 0.0)
        MS_PANIC("profile '", name, "': negative working set");
    if (smtYield < 0.5 || smtYield > 1.0)
        MS_PANIC("profile '", name, "': smtYield ", smtYield,
                 " outside [0.5, 1]");
    if (kernelShare < 0.0 || kernelShare > 1.0)
        MS_PANIC("profile '", name, "': kernelShare outside [0, 1]");
}

WorkProfile
computeBoundProfile()
{
    WorkProfile p;
    p.name = "compute-bound";
    p.ipcBase = 2.2;
    p.branchMpki = 1.0;
    p.icacheMpki = 0.3;
    p.l3Apki = 0.4;
    p.wssBytes = 1.0 * 1024 * 1024;
    p.smtYield = 0.55;
    p.kernelShare = 0.01;
    return p;
}

WorkProfile
memoryBoundProfile()
{
    WorkProfile p;
    p.name = "memory-bound";
    p.ipcBase = 1.4;
    p.branchMpki = 2.0;
    p.icacheMpki = 0.5;
    p.l3Apki = 22.0;
    p.wssBytes = 64.0 * 1024 * 1024;
    p.smtYield = 0.75;
    p.kernelShare = 0.01;
    return p;
}

} // namespace microscale::cpu
