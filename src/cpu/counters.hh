/**
 * @file
 * PerfCounters: the hardware-performance-counter analogue. Filled by
 * the execution engine (instructions, cycles, cache/branch events) and
 * by the OS layer (context switches, migrations), then aggregated per
 * thread, per service, or per CPU by the perf module.
 */

#ifndef MICROSCALE_CPU_COUNTERS_HH
#define MICROSCALE_CPU_COUNTERS_HH

#include <cstdint>

namespace microscale::cpu
{

/**
 * Accumulated event counts for one measurement interval.
 * Instruction-derived values are doubles because the model retires
 * fractional instruction quantities when banking partial execution.
 */
struct PerfCounters
{
    double instructions = 0;
    /** Core cycles spent while scheduled (busy cycles). */
    double cycles = 0;
    /** Wall-clock nanoseconds spent scheduled on a CPU. */
    double busyNs = 0;
    double l3Accesses = 0;
    double l3Misses = 0;
    double branchMisses = 0;
    double icacheMisses = 0;
    double kernelInstructions = 0;
    /** Busy time during which the SMT sibling was also busy. */
    double smtBusyNs = 0;
    /** Busy time spent with a cold (post-migration) cache. */
    double coldNs = 0;

    std::uint64_t contextSwitches = 0;
    /** Cross-CPU moves; `ccxMigrations` counts the cross-CCX subset. */
    std::uint64_t migrations = 0;
    std::uint64_t ccxMigrations = 0;
    std::uint64_t wakeups = 0;

    /** Instructions per cycle over the interval. */
    double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }

    /** Average frequency in GHz (cycles per busy nanosecond). */
    double ghz() const { return busyNs > 0 ? cycles / busyNs : 0.0; }

    /** L3 misses per kilo-instruction. */
    double l3Mpki() const
    {
        return instructions > 0 ? l3Misses / instructions * 1000.0 : 0.0;
    }

    /** Fraction of L3 accesses that miss to DRAM. */
    double l3MissRatio() const
    {
        return l3Accesses > 0 ? l3Misses / l3Accesses : 0.0;
    }

    /** Branch mispredictions per kilo-instruction. */
    double branchMpki() const
    {
        return instructions > 0 ? branchMisses / instructions * 1000.0
                                : 0.0;
    }

    /** I-cache misses per kilo-instruction. */
    double icacheMpki() const
    {
        return instructions > 0 ? icacheMisses / instructions * 1000.0
                                : 0.0;
    }

    /** Fraction of instructions retired in kernel mode. */
    double kernelShare() const
    {
        return instructions > 0 ? kernelInstructions / instructions : 0.0;
    }

    /** Fraction of busy time with the SMT sibling active. */
    double smtShare() const
    {
        return busyNs > 0 ? smtBusyNs / busyNs : 0.0;
    }

    /** Add another interval's events into this one. */
    void merge(const PerfCounters &o);

    /** Per-field difference (this minus `earlier`), for window deltas. */
    PerfCounters delta(const PerfCounters &earlier) const;

    /** Zero everything. */
    void reset() { *this = PerfCounters(); }
};

} // namespace microscale::cpu

#endif // MICROSCALE_CPU_COUNTERS_HH
