/**
 * @file
 * The execution engine: piecewise-constant-rate instruction retirement.
 *
 * An ExecContext is the CPU-side of a schedulable thread. The OS layer
 * assigns work (a WorkProfile plus an instruction budget) and places
 * the context on logical CPUs; the engine converts dynamic machine
 * conditions into a retire rate and fires a completion callback when
 * the budget is exhausted.
 *
 * Rate = freq(socket) / CPI / smt, where
 *   CPI = 1/ipcBase
 *       + branchMpki/1000 * branchPenalty
 *       + icacheMpki/1000 * l2Latency
 *       + l3Apki/1000 * [ miss * memLatencyCycles(NUMA)
 *                       + (1-miss) * l3LatencyCycles ]
 * and the L3 miss ratio follows a proportional-share occupancy model
 * over the threads currently running on the same CCX, with a cold-cache
 * surcharge after cross-CCX migrations.
 *
 * Whenever conditions change (SMT sibling start/stop, CCX occupancy
 * change, socket frequency bucket crossing), affected contexts bank
 * their progress at the old rate and reschedule at the new one.
 */

#ifndef MICROSCALE_CPU_EXEC_HH
#define MICROSCALE_CPU_EXEC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "cpu/counters.hh"
#include "cpu/work.hh"
#include "sim/simulation.hh"
#include "topo/machine.hh"

namespace microscale::cpu
{

class ExecEngine;

/** Tunables of the performance model beyond topology parameters. */
struct PerfModelParams
{
    /** Cycles lost per mispredicted branch. */
    double branchPenaltyCycles = 16.0;
    /** Miss ratio floor (compulsory misses) when fully L3-resident. */
    double missFloor = 0.03;
    /** Miss ratio while refilling after a cross-CCX migration. */
    double coldMissRatio = 0.95;
    /** Minimum L3 share a workload can be squeezed to (bytes). */
    double minL3ShareBytes = 512.0 * 1024;
    /**
     * Bytes a migrating thread must refill before its cache is warm
     * (its private hot data; the service-shared portion may already be
     * resident on the target CCX).
     */
    double coldRefillBytes = 2.0 * 1024 * 1024;
    /**
     * Extra throughput multiplier (on top of smtYield) when the SMT
     * sibling runs a *different* profile: heterogeneous pairs thrash
     * the private caches and partitioned core resources harder than
     * homogeneous pairs.
     */
    double smtHeteroFactor = 0.92;
};

/**
 * CPU-side state of one schedulable thread.
 *
 * Mutable execution fields are owned by the ExecEngine; users only set
 * identity and read counters.
 */
class ExecContext
{
  public:
    ExecContext(std::string name, NodeId home_node)
        : name_(std::move(name)), home_node_(home_node)
    {
    }

    ExecContext(const ExecContext &) = delete;
    ExecContext &operator=(const ExecContext &) = delete;

    const std::string &name() const { return name_; }

    /** NUMA node where this thread's memory is homed. */
    NodeId homeNode() const { return home_node_; }
    /** Re-home memory (models migration of pages, used by policies). */
    void setHomeNode(NodeId node) { home_node_ = node; }

    /** Counters accumulated since construction (or last reset). */
    PerfCounters &counters() { return counters_; }
    const PerfCounters &counters() const { return counters_; }

    /** True while a work item is attached (complete or not). */
    bool hasWork() const { return profile_ != nullptr; }
    /** Instructions left in the current work item. */
    double remainingInstructions() const { return remaining_; }
    /** Currently scheduled CPU, or kInvalidCpu. */
    CpuId cpu() const { return cpu_; }
    /** True while placed on a CPU. */
    bool running() const { return cpu_ != kInvalidCpu; }
    /** CPU this context last ran on (for wake placement). */
    CpuId lastCpu() const { return last_cpu_; }

  private:
    friend class ExecEngine;

    std::string name_;
    NodeId home_node_;
    PerfCounters counters_;

    // Current work item.
    const WorkProfile *profile_ = nullptr;
    double remaining_ = 0.0;
    sim::EventFn on_complete_;

    // Execution state managed by the engine.
    CpuId cpu_ = kInvalidCpu;
    CpuId last_cpu_ = kInvalidCpu;
    CcxId last_ccx_ = ~CcxId(0);
    bool ever_ran_ = false;
    double cold_accesses_left_ = 0.0;
    Tick last_bank_ = 0;
    double rate_ = 0.0;       // instructions per ns at last computation
    double miss_ratio_ = 0.0; // L3 miss ratio at last computation
    bool sibling_busy_ = false;
    sim::EventHandle completion_;
};

/**
 * The machine-wide execution engine. One instance per simulation.
 */
class ExecEngine
{
  public:
    ExecEngine(sim::Simulation &sim, const topo::Machine &machine,
               PerfModelParams params = {});

    const topo::Machine &machine() const { return machine_; }
    const PerfModelParams &params() const { return params_; }

    /**
     * Attach a work item to an idle context. The callback fires (from
     * the event loop) once the instruction budget retires; by then the
     * context has already been removed from its CPU.
     */
    void setWork(ExecContext &ctx, const WorkProfile &profile,
                 double instructions, sim::EventFn on_complete);

    /** Begin executing the context's work on an idle CPU. */
    void startRun(ExecContext &ctx, CpuId cpu);

    /**
     * Preempt: bank progress and free the CPU. The work item stays
     * attached and resumes at the next startRun.
     */
    void stopRun(ExecContext &ctx);

    /** Context currently on `cpu`, or nullptr. */
    ExecContext *runningOn(CpuId cpu) const { return running_[cpu]; }

    /**
     * Charge non-retiring busy time (e.g. a context-switch) to a CPU;
     * counted as kernel cycles in `attribute_to` when given.
     */
    void chargeOverhead(CpuId cpu, Tick duration,
                        PerfCounters *attribute_to);

    /**
     * Bank the progress of every running context up to now. Counters
     * are otherwise only updated at events; call this before taking
     * measurement snapshots so windows are exact.
     */
    void bankAll();

    /** Busy nanoseconds accumulated on a CPU (work + overhead). */
    double cpuBusyNs(CpuId cpu) const { return cpu_busy_ns_[cpu]; }

    /** Snapshot of all per-CPU busy counters. */
    std::vector<double> cpuBusySnapshot() const { return cpu_busy_ns_; }

    /**
     * Instantaneous retire rate (instructions/ns) the engine would give
     * this context on this CPU under current conditions. Exposed for
     * tests and for what-if queries by placement policies.
     */
    double rateOn(const ExecContext &ctx, CpuId cpu) const;

    /** Current socket frequency in GHz. */
    double socketFreqGhz(SocketId socket) const;

    /** Number of cores with at least one busy hardware thread. */
    unsigned activeCores(SocketId socket) const
    {
        return active_cores_[socket];
    }

  private:
    /** Bank progress of a running context up to now at its old rate. */
    void bank(ExecContext &ctx);

    /** Recompute rate and reschedule the completion event. */
    void reprice(ExecContext &ctx);

    /** Bank + reprice every running context in a CCX. */
    void repriceCcx(CcxId ccx);

    /** Bank + reprice every running context in a socket. */
    void repriceSocket(SocketId socket);

    /** Completion event body. */
    void complete(ExecContext &ctx);

    /** Detach from CPU and update occupancy (shared by stop/complete). */
    void detach(ExecContext &ctx);

    double missRatio(const ExecContext &ctx, CcxId ccx, bool cold) const;
    double computeRate(const ExecContext &ctx, CpuId cpu,
                       bool sibling_busy) const;
    bool siblingBusy(CpuId cpu) const;

    /** Refresh socket frequency; returns true if it changed. */
    bool updateSocketFreq(SocketId socket);

    sim::Simulation &sim_;
    const topo::Machine &machine_;
    PerfModelParams params_;

    std::vector<ExecContext *> running_;  // per cpu
    std::vector<unsigned> core_busy_;     // busy hw threads per core
    std::vector<unsigned> active_cores_;  // per socket
    std::vector<double> socket_freq_ghz_; // per socket (quantized)
    std::vector<double> cpu_busy_ns_;     // per cpu
};

} // namespace microscale::cpu

#endif // MICROSCALE_CPU_EXEC_HH
