/**
 * @file
 * WorkProfile: the microarchitectural fingerprint of a class of
 * computation, expressed in counter-space quantities (base IPC, miss
 * rates per kilo-instruction, working-set size). The execution engine
 * turns a profile plus dynamic conditions (SMT sibling activity, L3
 * occupancy, NUMA distance, frequency) into an instruction retire rate.
 */

#ifndef MICROSCALE_CPU_WORK_HH
#define MICROSCALE_CPU_WORK_HH

#include <string>

namespace microscale::cpu
{

/**
 * Static description of a computation class. Values are per-thread.
 */
struct WorkProfile
{
    std::string name = "generic";

    /** IPC with warm private caches and no contention. */
    double ipcBase = 1.0;

    /** Mispredicted branches per kilo-instruction. */
    double branchMpki = 4.0;

    /** Instruction-cache misses (to L2) per kilo-instruction. */
    double icacheMpki = 8.0;

    /**
     * Data accesses that miss L2 and reach the L3 per kilo-instruction;
     * the L3 occupancy model decides how many continue to DRAM.
     */
    double l3Apki = 4.0;

    /** Per-thread working set competing for the shared L3 slice. */
    double wssBytes = 8.0 * 1024 * 1024;

    /**
     * Per-thread throughput multiplier when the SMT sibling is busy.
     * 0.5 means SMT adds nothing; ~0.62 is typical of mixed server
     * code (two threads yield ~1.24x a single thread).
     */
    double smtYield = 0.62;

    /** Fraction of instructions retired in kernel mode (reported). */
    double kernelShare = 0.15;

    /** Validate ranges; panics on nonsensical values. */
    void validate() const;
};

/** A compute-bound profile for calibration tests and SPEC-like kernels. */
WorkProfile computeBoundProfile();

/** A memory-bound profile for calibration tests. */
WorkProfile memoryBoundProfile();

} // namespace microscale::cpu

#endif // MICROSCALE_CPU_WORK_HH
