#include "cpu/counters.hh"

namespace microscale::cpu
{

void
PerfCounters::merge(const PerfCounters &o)
{
    instructions += o.instructions;
    cycles += o.cycles;
    busyNs += o.busyNs;
    l3Accesses += o.l3Accesses;
    l3Misses += o.l3Misses;
    branchMisses += o.branchMisses;
    icacheMisses += o.icacheMisses;
    kernelInstructions += o.kernelInstructions;
    smtBusyNs += o.smtBusyNs;
    coldNs += o.coldNs;
    contextSwitches += o.contextSwitches;
    migrations += o.migrations;
    ccxMigrations += o.ccxMigrations;
    wakeups += o.wakeups;
}

PerfCounters
PerfCounters::delta(const PerfCounters &earlier) const
{
    PerfCounters d;
    d.instructions = instructions - earlier.instructions;
    d.cycles = cycles - earlier.cycles;
    d.busyNs = busyNs - earlier.busyNs;
    d.l3Accesses = l3Accesses - earlier.l3Accesses;
    d.l3Misses = l3Misses - earlier.l3Misses;
    d.branchMisses = branchMisses - earlier.branchMisses;
    d.icacheMisses = icacheMisses - earlier.icacheMisses;
    d.kernelInstructions = kernelInstructions - earlier.kernelInstructions;
    d.smtBusyNs = smtBusyNs - earlier.smtBusyNs;
    d.coldNs = coldNs - earlier.coldNs;
    d.contextSwitches = contextSwitches - earlier.contextSwitches;
    d.migrations = migrations - earlier.migrations;
    d.ccxMigrations = ccxMigrations - earlier.ccxMigrations;
    d.wakeups = wakeups - earlier.wakeups;
    return d;
}

} // namespace microscale::cpu
