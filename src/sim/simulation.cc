#include "sim/simulation.hh"

#include <utility>

namespace microscale::sim
{

std::uint32_t
Simulation::allocSlot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = slots_[slot].next_free;
        slots_[slot].next_free = kNoSlot;
        return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
Simulation::releaseSlot(std::uint32_t slot)
{
    EventSlot &s = slots_[slot];
    s.fn.reset();
    s.live = false;
    s.cancelled = false;
    // Stale handles must observe a different generation from now on.
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = slot;
}

bool
Simulation::handlePending(std::uint32_t slot, std::uint32_t gen) const
{
    const EventSlot &s = slots_[slot];
    return s.gen == gen && s.live && !s.cancelled;
}

Tick
Simulation::handleWhen(std::uint32_t slot, std::uint32_t gen) const
{
    const EventSlot &s = slots_[slot];
    return (s.gen == gen && s.live) ? s.when : 0;
}

void
Simulation::cancelEvent(std::uint32_t slot, std::uint32_t gen)
{
    EventSlot &s = slots_[slot];
    if (s.gen != gen || !s.live || s.cancelled)
        return;
    s.cancelled = true;
    // Destroy the callback eagerly so captured resources are freed at
    // cancel time; the heap shell is dropped lazily at pop time.
    s.fn.reset();
    if (!s.background)
        --foreground_pending_;
    --live_events_;
    ++cancelled_shells_;
    maybeCompact();
}

void
Simulation::heapPush(Tick when, std::uint64_t seq, std::uint32_t slot)
{
    heap_when_.push_back(when);
    heap_seq_.push_back(seq);
    heap_slot_.push_back(slot);
    std::size_t i = heap_when_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!heapLess(i, parent))
            break;
        heapSwap(i, parent);
        i = parent;
    }
}

void
Simulation::siftDown(std::size_t i)
{
    const std::size_t n = heap_when_.size();
    for (;;) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = l + 1;
        std::size_t best = i;
        if (l < n && heapLess(l, best))
            best = l;
        if (r < n && heapLess(r, best))
            best = r;
        if (best == i)
            return;
        heapSwap(i, best);
        i = best;
    }
}

void
Simulation::heapPopTop()
{
    const std::size_t n = heap_when_.size();
    heapSwap(0, n - 1);
    heap_when_.pop_back();
    heap_seq_.pop_back();
    heap_slot_.pop_back();
    if (heap_when_.size() > 1)
        siftDown(0);
}

void
Simulation::maybeCompact()
{
    // Rebuild once cancelled shells dominate; the threshold keeps the
    // amortized cost O(1) per cancel, and the trigger depends only on
    // event counts so compaction points are deterministic. Rebuilding
    // cannot change pop order: (when, seq) keys are unique.
    if (cancelled_shells_ < 64 ||
        cancelled_shells_ * 2 < heap_when_.size())
        return;
    std::size_t out = 0;
    for (std::size_t i = 0; i < heap_when_.size(); ++i) {
        const std::uint32_t slot = heap_slot_[i];
        if (slots_[slot].cancelled) {
            releaseSlot(slot);
            continue;
        }
        heap_when_[out] = heap_when_[i];
        heap_seq_[out] = heap_seq_[i];
        heap_slot_[out] = heap_slot_[i];
        ++out;
    }
    heap_when_.resize(out);
    heap_seq_.resize(out);
    heap_slot_.resize(out);
    cancelled_shells_ = 0;
    // Floyd heapify: O(n) bottom-up restoration of the heap property.
    for (std::size_t i = out / 2; i-- > 0;)
        siftDown(i);
}

bool
Simulation::step()
{
    while (!heap_when_.empty()) {
        const std::uint32_t slot = heap_slot_[0];
        EventSlot &s = slots_[slot];
        if (s.cancelled) {
            heapPopTop();
            --cancelled_shells_;
            releaseSlot(slot);
            continue;
        }
        now_ = heap_when_[0];
        heapPopTop();
        if (!s.background)
            --foreground_pending_;
        --live_events_;
        // Move the callback out and release the slot BEFORE invoking:
        // the callback may schedule events, growing slots_ and
        // invalidating `s`.
        EventFn fn = std::move(s.fn);
        releaseSlot(slot);
        ++events_processed_;
        fn();
        return true;
    }
    return false;
}

Tick
Simulation::run()
{
    stopping_ = false;
    while (!stopping_ && foreground_pending_ > 0 && step()) {
    }
    return now_;
}

Tick
Simulation::runUntil(Tick until)
{
    if (until < now_)
        MS_PANIC("runUntil into the past: ", until, " < ", now_);
    stopping_ = false;
    while (!stopping_) {
        // Skip cancelled shells so the time check sees a live event.
        while (!heap_when_.empty()) {
            const std::uint32_t slot = heap_slot_[0];
            if (!slots_[slot].cancelled)
                break;
            heapPopTop();
            --cancelled_shells_;
            releaseSlot(slot);
        }
        if (heap_when_.empty() || heap_when_[0] > until)
            break;
        step();
    }
    if (!stopping_)
        now_ = until;
    return now_;
}

void
PeriodicEvent::start(Simulation &sim, Tick period,
                     std::function<void()> fn, Tick phase)
{
    if (period == 0)
        MS_PANIC("PeriodicEvent with zero period");
    stop();
    sim_ = &sim;
    period_ = period;
    fn_ = std::move(fn);
    active_ = true;
    if (phase == 0)
        phase = period_;
    handle_ = sim_->scheduleAfter(
        phase, [this] { arm(); }, /*background=*/true);
}

void
PeriodicEvent::stop()
{
    active_ = false;
    handle_.cancel();
}

void
PeriodicEvent::arm()
{
    if (!active_)
        return;
    fn_();
    if (active_) {
        handle_ = sim_->scheduleAfter(
            period_, [this] { arm(); }, /*background=*/true);
    }
}

} // namespace microscale::sim
