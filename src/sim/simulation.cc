#include "sim/simulation.hh"

#include <utility>

#include "base/logging.hh"

namespace microscale::sim
{

EventHandle
Simulation::scheduleAt(Tick when, std::function<void()> fn,
                       bool background)
{
    if (when < now_)
        MS_PANIC("scheduling event in the past: ", when, " < ", now_);
    if (!fn)
        MS_PANIC("scheduling empty callback");
    auto rec = std::make_shared<EventRecord>();
    rec->when = when;
    rec->seq = next_seq_++;
    rec->fn = std::move(fn);
    rec->background = background;
    if (!background)
        ++foreground_pending_;
    queue_.push(QueueEntry{rec->when, rec->seq, rec});
    return EventHandle(rec);
}

EventHandle
Simulation::scheduleAfter(Tick delay, std::function<void()> fn,
                          bool background)
{
    return scheduleAt(now_ + delay, std::move(fn), background);
}

bool
Simulation::step()
{
    while (!queue_.empty()) {
        QueueEntry top = queue_.top();
        queue_.pop();
        if (!top.rec->background)
            --foreground_pending_;
        if (top.rec->cancelled)
            continue;
        now_ = top.when;
        ++events_processed_;
        // Move the callback out so captured state dies with the event.
        auto fn = std::move(top.rec->fn);
        top.rec->fn = nullptr;
        fn();
        return true;
    }
    return false;
}

Tick
Simulation::run()
{
    stopping_ = false;
    while (!stopping_ && foreground_pending_ > 0 && step()) {
    }
    return now_;
}

Tick
Simulation::runUntil(Tick until)
{
    if (until < now_)
        MS_PANIC("runUntil into the past: ", until, " < ", now_);
    stopping_ = false;
    while (!stopping_) {
        // Peek: skip cancelled shells without advancing time.
        bool ran = false;
        while (!queue_.empty() && queue_.top().rec->cancelled)
            queue_.pop();
        if (queue_.empty() || queue_.top().when > until)
            break;
        ran = step();
        if (!ran)
            break;
    }
    if (!stopping_)
        now_ = until;
    return now_;
}

void
PeriodicEvent::start(Simulation &sim, Tick period, std::function<void()> fn,
                     Tick phase)
{
    if (period == 0)
        MS_PANIC("PeriodicEvent with zero period");
    stop();
    sim_ = &sim;
    period_ = period;
    fn_ = std::move(fn);
    active_ = true;
    if (phase == 0)
        phase = period;
    handle_ = sim_->scheduleAfter(phase, [this] { arm(); },
                                  /*background=*/true);
}

void
PeriodicEvent::arm()
{
    if (!active_)
        return;
    fn_();
    if (active_) {
        handle_ = sim_->scheduleAfter(period_, [this] { arm(); },
                                      /*background=*/true);
    }
}

void
PeriodicEvent::stop()
{
    active_ = false;
    handle_.cancel();
}

} // namespace microscale::sim
