/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulation owns a time-ordered event queue. Events are arbitrary
 * callbacks scheduled at absolute ticks; ties are broken by insertion
 * order (FIFO), which makes runs fully deterministic. Events can be
 * cancelled through the handle returned at scheduling time.
 */

#ifndef MICROSCALE_SIM_SIMULATION_HH
#define MICROSCALE_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace microscale::sim
{

/** Internal record for one scheduled event. */
struct EventRecord
{
    Tick when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool cancelled = false;
    /** Background events do not keep run() alive (periodic ticks). */
    bool background = false;
};

/**
 * Handle to a scheduled event; allows cancellation and liveness query.
 * Copies share the underlying event. A default-constructed handle is
 * inert.
 */
class EventHandle
{
  public:
    EventHandle() = default;
    explicit EventHandle(std::shared_ptr<EventRecord> rec)
        : rec_(std::move(rec))
    {
    }

    /** Cancel the event if it has not fired yet. */
    void cancel()
    {
        if (rec_)
            rec_->cancelled = true;
        rec_.reset();
    }

    /** True while the event is scheduled and not cancelled. */
    bool pending() const { return rec_ && !rec_->cancelled && rec_->fn; }

    /** Scheduled tick (only meaningful while pending). */
    Tick when() const { return rec_ ? rec_->when : 0; }

  private:
    std::shared_ptr<EventRecord> rec_;
};

/**
 * The event-driven simulation kernel.
 */
class Simulation
{
  public:
    Simulation() = default;
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule `fn` at absolute time `when` (must be >= now).
     * @param background background events (periodic ticks, samplers)
     *        do not keep run() alive: run() returns once only
     *        background events remain.
     */
    EventHandle scheduleAt(Tick when, std::function<void()> fn,
                           bool background = false);

    /** Schedule `fn` after `delay` ticks from now. */
    EventHandle scheduleAfter(Tick delay, std::function<void()> fn,
                              bool background = false);

    /**
     * Run until no foreground events remain or stop() is called.
     * Pending background events (periodic ticks) do not keep the
     * simulation alive.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Process all events with tick <= `until`, then set now to `until`.
     * @return the final simulated time (== until unless stopped).
     */
    Tick runUntil(Tick until);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopping_ = true; }

    /** Number of events executed so far. */
    std::uint64_t eventsProcessed() const { return events_processed_; }

    /** Number of events currently pending (including cancelled shells). */
    std::size_t queuedEvents() const { return queue_.size(); }

  private:
    struct QueueEntry
    {
        Tick when;
        std::uint64_t seq;
        std::shared_ptr<EventRecord> rec;
    };

    struct Later
    {
        bool operator()(const QueueEntry &a, const QueueEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop and run a single event. @return false if queue was empty. */
    bool step();

    std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_processed_ = 0;
    std::uint64_t foreground_pending_ = 0;
    bool stopping_ = false;
};

/**
 * Utility that reschedules a callback at a fixed period until stopped.
 * Used for scheduler ticks, load-balancing passes and samplers.
 */
class PeriodicEvent
{
  public:
    PeriodicEvent() = default;

    /**
     * Start firing `fn` every `period`, with the first firing at
     * now + phase (phase defaults to one full period). Periodic
     * events are background: they do not keep Simulation::run()
     * alive on their own.
     */
    void start(Simulation &sim, Tick period, std::function<void()> fn,
               Tick phase = 0);

    /** Stop firing. Safe to call when not started. */
    void stop();

    /** True while active. */
    bool active() const { return active_; }

  private:
    void arm();

    Simulation *sim_ = nullptr;
    Tick period_ = 0;
    std::function<void()> fn_;
    EventHandle handle_;
    bool active_ = false;
};

} // namespace microscale::sim

#endif // MICROSCALE_SIM_SIMULATION_HH
