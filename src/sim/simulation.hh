/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulation owns a time-ordered event queue. Events are arbitrary
 * callbacks scheduled at absolute ticks; ties are broken by insertion
 * order (FIFO), which makes runs fully deterministic. Events can be
 * cancelled in O(1) through the handle returned at scheduling time.
 *
 * Engine internals (see DESIGN.md "engine internals" for the full
 * story): event state lives in a slab of reusable slots (freelist, no
 * per-event heap allocation on the steady path), callbacks are stored
 * in a fixed-size inline buffer (EventFn) instead of std::function,
 * and the ready queue is a flat binary heap over struct-of-arrays
 * (when, seq, slot) keys. Handles are generation-tagged slot
 * references, so a stale handle to a fired or cancelled event can
 * never touch a recycled slot.
 */

#ifndef MICROSCALE_SIM_SIMULATION_HH
#define MICROSCALE_SIM_SIMULATION_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace microscale::sim
{

/**
 * A non-allocating move-only callable of signature void().
 *
 * Callables up to kInlineBytes that are nothrow-move-constructible are
 * stored inline; anything larger falls back to a single heap box. The
 * dominant event kinds (compute completions, timers, arrivals, network
 * deliveries, context switches) capture a few pointers and integers
 * and always take the inline path, which is what makes the steady
 * state of the event core allocation-free.
 */
class EventFn
{
  public:
    /** Inline capture budget; sized for the hot-path lambdas. */
    static constexpr std::size_t kInlineBytes = 48;

    EventFn() = default;
    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    ~EventFn() { reset(); }

    /** Construct from any void() callable. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        emplace(std::forward<F>(f));
    }

    /** Replace the callable (destroying any current one). */
    template <typename F>
    void emplace(F &&f)
    {
        reset();
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= kInlineBytes &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>) {
            new (buf_) D(std::forward<F>(f));
            invoke_ = [](void *p) { (*asObj<D>(p))(); };
            if constexpr (!std::is_trivially_copyable_v<D>) {
                move_ = [](void *dst, void *src) {
                    D *s = asObj<D>(src);
                    new (dst) D(std::move(*s));
                    s->~D();
                };
            }
            if constexpr (!std::is_trivially_destructible_v<D>) {
                destroy_ = [](void *p) { asObj<D>(p)->~D(); };
            }
        } else {
            // Oversized or throwing-move capture: one heap box.
            D *box = new D(std::forward<F>(f));
            std::memcpy(buf_, &box, sizeof(box));
            invoke_ = [](void *p) {
                D *b;
                std::memcpy(&b, p, sizeof(b));
                (*b)();
            };
            destroy_ = [](void *p) {
                D *b;
                std::memcpy(&b, p, sizeof(b));
                delete b;
            };
        }
    }

    /** Destroy the callable; the EventFn becomes empty. */
    void reset()
    {
        if (destroy_)
            destroy_(buf_);
        invoke_ = nullptr;
        move_ = nullptr;
        destroy_ = nullptr;
    }

    /** True while a callable is held. */
    explicit operator bool() const { return invoke_ != nullptr; }

    /** Invoke. The callable stays valid until reset/destruction. */
    void operator()() { invoke_(buf_); }

  private:
    template <typename D>
    static D *asObj(void *p)
    {
        return std::launder(reinterpret_cast<D *>(p));
    }

    void moveFrom(EventFn &o) noexcept
    {
        invoke_ = o.invoke_;
        move_ = o.move_;
        destroy_ = o.destroy_;
        if (invoke_) {
            if (move_)
                move_(buf_, o.buf_);
            else
                std::memcpy(buf_, o.buf_, kInlineBytes);
        }
        o.invoke_ = nullptr;
        o.move_ = nullptr;
        o.destroy_ = nullptr;
    }

    using InvokeFn = void (*)(void *);
    using MoveFn = void (*)(void *, void *);
    using DestroyFn = void (*)(void *);

    InvokeFn invoke_ = nullptr;
    /** Non-null only for inline callables that need a real move. */
    MoveFn move_ = nullptr;
    /** Non-null only when destruction is non-trivial (or heap-boxed). */
    DestroyFn destroy_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

class Simulation;

/**
 * Handle to a scheduled event; allows O(1) cancellation and liveness
 * query. Copies share the underlying event via the (slot, generation)
 * tag: once the event fires or is cancelled the slot's generation
 * moves on and every outstanding handle reports not-pending. A
 * default-constructed handle is inert. Handles do not keep the
 * Simulation alive; do not use one after its Simulation is destroyed.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. */
    inline void cancel();

    /** True while the event is scheduled and not cancelled. */
    inline bool pending() const;

    /** Scheduled tick (0 once fired/cancelled or when inert). */
    inline Tick when() const;

  private:
    friend class Simulation;
    EventHandle(Simulation *sim, std::uint32_t slot, std::uint32_t gen)
        : sim_(sim), slot_(slot), gen_(gen)
    {
    }

    Simulation *sim_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * The event-driven simulation kernel.
 */
class Simulation
{
  public:
    Simulation() = default;
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule `fn` at absolute time `when` (must be >= now).
     * @param background background events (periodic ticks, samplers)
     *        do not keep run() alive: run() returns once only
     *        background events remain.
     */
    template <typename F>
    EventHandle scheduleAt(Tick when, F &&fn, bool background = false)
    {
        if (when < now_)
            MS_PANIC("scheduling event in the past: ", when, " < ", now_);
        if (callableEmpty(fn))
            MS_PANIC("scheduling empty callback");
        const std::uint32_t slot = allocSlot();
        EventSlot &s = slots_[slot];
        // An EventFn argument (call sites that take the callback as a
        // parameter and forward it) moves straight into the slot;
        // nesting it through emplace() would heap-box it.
        if constexpr (std::is_same_v<std::decay_t<F>, EventFn>)
            s.fn = std::move(fn);
        else
            s.fn.emplace(std::forward<F>(fn));
        s.when = when;
        s.background = background;
        s.cancelled = false;
        s.live = true;
        const std::uint32_t gen = s.gen;
        ++live_events_;
        if (!background)
            ++foreground_pending_;
        heapPush(when, next_seq_++, slot);
        return EventHandle(this, slot, gen);
    }

    /** Schedule `fn` after `delay` ticks from now. */
    template <typename F>
    EventHandle scheduleAfter(Tick delay, F &&fn, bool background = false)
    {
        return scheduleAt(now_ + delay, std::forward<F>(fn), background);
    }

    /**
     * Run until no foreground events remain or stop() is called.
     * Pending background events (periodic ticks) do not keep the
     * simulation alive.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Process all events with tick <= `until`, then set now to `until`.
     * @return the final simulated time (== until unless stopped).
     */
    Tick runUntil(Tick until);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopping_ = true; }

    /** Number of events executed so far. */
    std::uint64_t eventsProcessed() const { return events_processed_; }

    /**
     * Number of live pending events: scheduled, not yet fired and not
     * cancelled. Cancelled shells still awaiting lazy removal from the
     * heap are NOT counted (they are bookkeeping, not behavior).
     */
    std::size_t queuedEvents() const { return live_events_; }

    /**
     * Live pending foreground events — the ones that keep run() going.
     * Zero after run() returns: the chaos harness asserts this as its
     * drained-world invariant (background timers may still be queued).
     */
    std::uint64_t foregroundQueued() const { return foreground_pending_; }

    /** Event slots currently allocated in the slab (capacity probe). */
    std::size_t slabSlots() const { return slots_.size(); }

  private:
    friend class EventHandle;

    struct EventSlot
    {
        EventFn fn;
        Tick when = 0;
        /** Bumped on release; stale handles compare unequal. */
        std::uint32_t gen = 0;
        std::uint32_t next_free = kNoSlot;
        bool background = false;
        bool cancelled = false;
        /** Scheduled (heap shell exists) and not yet released. */
        bool live = false;
    };

    static constexpr std::uint32_t kNoSlot = ~std::uint32_t(0);

    template <typename F>
    static bool callableEmpty(const F &f)
    {
        if constexpr (std::is_constructible_v<bool, const F &>)
            return !static_cast<bool>(f);
        else
            return false;
    }

    std::uint32_t allocSlot();
    void releaseSlot(std::uint32_t slot);

    /** Handle plumbing (generation-checked). */
    bool handlePending(std::uint32_t slot, std::uint32_t gen) const;
    Tick handleWhen(std::uint32_t slot, std::uint32_t gen) const;
    void cancelEvent(std::uint32_t slot, std::uint32_t gen);

    /** Flat binary heap over (when, seq) with slot payload. */
    void heapPush(Tick when, std::uint64_t seq, std::uint32_t slot);
    void heapPopTop();
    void siftDown(std::size_t i);
    bool heapLess(std::size_t a, std::size_t b) const
    {
        if (heap_when_[a] != heap_when_[b])
            return heap_when_[a] < heap_when_[b];
        return heap_seq_[a] < heap_seq_[b];
    }
    void heapSwap(std::size_t a, std::size_t b)
    {
        std::swap(heap_when_[a], heap_when_[b]);
        std::swap(heap_seq_[a], heap_seq_[b]);
        std::swap(heap_slot_[a], heap_slot_[b]);
    }

    /**
     * Drop cancelled shells when they dominate the heap, releasing
     * their slots. Triggered by counts only, so it is deterministic;
     * rebuilding cannot reorder pops because (when, seq) keys are
     * unique.
     */
    void maybeCompact();

    /** Pop and run a single event. @return false if queue was empty. */
    bool step();

    /** Event slab. */
    std::vector<EventSlot> slots_;
    std::uint32_t free_head_ = kNoSlot;

    /** Ready queue: struct-of-arrays keys of the binary heap. */
    std::vector<Tick> heap_when_;
    std::vector<std::uint64_t> heap_seq_;
    std::vector<std::uint32_t> heap_slot_;
    /** Cancelled shells still inside the heap (lazy deletion). */
    std::size_t cancelled_shells_ = 0;

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_processed_ = 0;
    std::uint64_t foreground_pending_ = 0;
    std::size_t live_events_ = 0;
    bool stopping_ = false;
};

inline void
EventHandle::cancel()
{
    if (sim_)
        sim_->cancelEvent(slot_, gen_);
    sim_ = nullptr;
}

inline bool
EventHandle::pending() const
{
    return sim_ && sim_->handlePending(slot_, gen_);
}

inline Tick
EventHandle::when() const
{
    return sim_ ? sim_->handleWhen(slot_, gen_) : 0;
}

/**
 * Utility that reschedules a callback at a fixed period until stopped.
 * Used for scheduler ticks, load-balancing passes and samplers.
 */
class PeriodicEvent
{
  public:
    PeriodicEvent() = default;

    /**
     * Start firing `fn` every `period`, with the first firing at
     * now + phase (phase defaults to one full period). Periodic
     * events are background: they do not keep Simulation::run()
     * alive on their own.
     */
    void start(Simulation &sim, Tick period, std::function<void()> fn,
               Tick phase = 0);

    /** Stop firing. Safe to call when not started. */
    void stop();

    /** True while active. */
    bool active() const { return active_; }

  private:
    void arm();

    Simulation *sim_ = nullptr;
    Tick period_ = 0;
    std::function<void()> fn_;
    EventHandle handle_;
    bool active_ = false;
};

} // namespace microscale::sim

#endif // MICROSCALE_SIM_SIMULATION_HH
