#include "core/tuner.hh"

#include "base/logging.hh"

namespace microscale::core
{

namespace
{

const std::vector<std::string> &
tunableServices()
{
    static const std::vector<std::string> names = {
        teastore::names::kWebui, teastore::names::kAuth,
        teastore::names::kPersistence, teastore::names::kRecommender,
        teastore::names::kImage};
    return names;
}

} // namespace

TunerResult
tuneReplicas(ExperimentConfig config, TunerParams params)
{
    TunerResult result;
    result.best = config.sizing;

    auto evaluate = [&](const BaselineSizing &sizing) {
        ExperimentConfig c = config;
        c.sizing = sizing;
        return runExperiment(c).throughputRps;
    };

    result.throughputRps = evaluate(result.best);
    result.steps.push_back(
        TunerStep{"", 0, result.throughputRps, true});

    for (unsigned round = 0; round < params.maxRounds; ++round) {
        std::string best_service;
        double best_tput = result.throughputRps;
        for (const auto &name : tunableServices()) {
            BaselineSizing candidate = result.best;
            auto &cfg = candidate.byName(name);
            if (cfg.replicas >= params.maxReplicasPerService)
                continue;
            ++cfg.replicas;
            const double tput = evaluate(candidate);
            result.steps.push_back(TunerStep{
                name, cfg.replicas, tput, false});
            if (tput > best_tput) {
                best_tput = tput;
                best_service = name;
            }
        }
        const double gain =
            (best_tput - result.throughputRps) /
            std::max(result.throughputRps, 1.0);
        if (best_service.empty() || gain < params.minGain)
            break;
        ++result.best.byName(best_service).replicas;
        result.throughputRps = best_tput;
        result.steps.back().accepted = false; // marker fixed below
        for (auto it = result.steps.rbegin(); it != result.steps.rend();
             ++it) {
            if (it->changedService == best_service &&
                it->replicas ==
                    result.best.byName(best_service).replicas) {
                it->accepted = true;
                break;
            }
        }
    }
    return result;
}

} // namespace microscale::core
