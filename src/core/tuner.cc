#include "core/tuner.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/sweep.hh"

namespace microscale::core
{

namespace
{

const std::vector<std::string> &
tunableServices()
{
    static const std::vector<std::string> names = {
        teastore::names::kWebui, teastore::names::kAuth,
        teastore::names::kPersistence, teastore::names::kRecommender,
        teastore::names::kImage};
    return names;
}

} // namespace

TunerResult
tuneReplicas(ExperimentConfig config, TunerParams params)
{
    TunerResult result;
    result.best = config.sizing;

    SweepOptions so;
    so.jobs = params.jobs;
    so.progress = false;
    const SweepRunner runner(so);

    auto pointFor = [&](const std::string &label,
                        const BaselineSizing &sizing) {
        SweepPoint p;
        p.label = label;
        p.config = config;
        p.config.sizing = sizing;
        return p;
    };

    {
        const std::vector<SweepOutcome> initial =
            runner.run({pointFor("tuner/initial", result.best)});
        if (!initial[0].ok)
            fatal("tuner: initial run failed: ", initial[0].error);
        result.throughputRps = initial[0].result.throughputRps;
    }
    result.steps.push_back(TunerStep{"", 0, result.throughputRps, true});

    for (unsigned round = 0; round < params.maxRounds; ++round) {
        // All +1-replica candidates of a round are independent: build
        // them up front and evaluate the batch on the thread pool.
        std::vector<SweepPoint> points;
        std::vector<std::pair<std::string, unsigned>> candidates;
        for (const std::string &name : tunableServices()) {
            BaselineSizing candidate = result.best;
            auto &cfg = candidate.byName(name);
            if (cfg.replicas >= params.maxReplicasPerService)
                continue;
            ++cfg.replicas;
            points.push_back(pointFor(
                "tuner/" + name + "x" + std::to_string(cfg.replicas),
                candidate));
            candidates.emplace_back(name, cfg.replicas);
        }
        if (points.empty())
            break;
        const std::vector<SweepOutcome> outcomes = runner.run(points);

        std::string best_service;
        double best_tput = result.throughputRps;
        std::size_t best_step = 0;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (!outcomes[i].ok) {
                fatal("tuner: candidate ", points[i].label,
                      " failed: ", outcomes[i].error);
            }
            const double tput = outcomes[i].result.throughputRps;
            result.steps.push_back(TunerStep{candidates[i].first,
                                             candidates[i].second, tput,
                                             false});
            if (tput > best_tput) {
                best_tput = tput;
                best_service = candidates[i].first;
                best_step = result.steps.size() - 1;
            }
        }
        const double gain = (best_tput - result.throughputRps) /
                            std::max(result.throughputRps, 1.0);
        if (best_service.empty() || gain < params.minGain)
            break;
        ++result.best.byName(best_service).replicas;
        result.throughputRps = best_tput;
        result.steps[best_step].accepted = true;
    }
    return result;
}

} // namespace microscale::core
