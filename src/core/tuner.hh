/**
 * @file
 * Greedy per-service replica tuner: the "performance-tuned baseline"
 * in the paper is obtained by tuning replica counts before applying
 * topology-aware placement. The tuner hill-climbs on throughput,
 * adding one replica at a time to the service whose addition helps
 * most.
 */

#ifndef MICROSCALE_CORE_TUNER_HH
#define MICROSCALE_CORE_TUNER_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace microscale::core
{

/** One tuner evaluation. */
struct TunerStep
{
    std::string changedService; ///< empty for the initial point
    unsigned replicas = 0;      ///< new replica count of that service
    double throughputRps = 0.0;
    bool accepted = false;
};

/** Tuner output. */
struct TunerResult
{
    BaselineSizing best;
    double throughputRps = 0.0;
    std::vector<TunerStep> steps;
};

/** Tuner options. */
struct TunerParams
{
    unsigned maxReplicasPerService = 8;
    unsigned maxRounds = 8;
    /** Minimum relative improvement to accept a step. */
    double minGain = 0.01;
    /** Worker threads for candidate evaluation (core::resolveJobs). */
    unsigned jobs = 0;
};

/**
 * Tune replica counts starting from config.sizing. Every evaluation is
 * a full runExperiment of `config` (shorten its windows for speed).
 * Each round's candidate evaluations are independent and run in
 * parallel on a core::SweepRunner; the search trajectory is identical
 * to the serial greedy search.
 */
TunerResult tuneReplicas(ExperimentConfig config, TunerParams params);

} // namespace microscale::core

#endif // MICROSCALE_CORE_TUNER_HH
