/**
 * @file
 * The scale-up experiment runner: assembles machine + OS + application
 * + load, runs warmup and measurement windows, and returns the metrics
 * the paper reports (throughput, latency percentiles, per-service
 * microarchitectural counters, scheduler activity, utilization).
 */

#ifndef MICROSCALE_CORE_EXPERIMENT_HH
#define MICROSCALE_CORE_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "core/placement.hh"
#include "loadgen/driver.hh"
#include "net/network.hh"
#include "os/kernel.hh"
#include "perf/report.hh"
#include "svc/fault.hh"
#include "svc/mesh.hh"
#include "svc/overload.hh"
#include "svc/resilience.hh"
#include "teastore/app.hh"
#include "topo/presets.hh"
#include "trace/critical_path.hh"
#include "trace/trace.hh"

namespace microscale::chaos
{
class RequestLedger;
}

namespace microscale::core
{

struct RunResult;

/** Everything one run needs. */
struct ExperimentConfig
{
    topo::MachineParams machine = topo::rome128();

    /** Physical cores in the budget; 0 = all. */
    unsigned cores = 0;
    /** Include SMT siblings of the budget cores. */
    bool smt = true;

    PlacementKind placement = PlacementKind::OsDefault;
    DemandShares demand;
    BaselineSizing sizing;

    teastore::AppParams app;

    /** Request mix driving either load generator. */
    loadgen::BrowseMix mix{};

    /** Closed-loop load (the default). */
    loadgen::ClosedLoopParams load{/*users=*/768,
                                   /*meanThink=*/250 * kMillisecond,
                                   /*rampTime=*/100 * kMillisecond};

    /** When > 0, use an open-loop driver at this arrival rate instead. */
    double openLoopRps = 0.0;

    Tick warmup = 500 * kMillisecond;
    Tick measure = 2 * kSecond;

    os::SchedParams sched;
    net::NetParams net;
    svc::RpcCostParams rpc;

    /** Resilience policy for the mesh (inactive by default). */
    svc::ResilienceConfig resilience;

    /** Overload-control layer (inactive by default). */
    svc::OverloadConfig overload;

    /** Scripted faults applied during the run (empty = none). */
    svc::FaultScript faults;

    /** Per-request tracing (off by default; off = byte-identical). */
    trace::TraceParams trace;

    /**
     * Request-conservation ledger handed to the load driver (chaos
     * harness). Null (default) records nothing.
     */
    chaos::RequestLedger *ledger = nullptr;

    /**
     * After harvesting, stop the drivers and run the simulation until
     * every foreground event has drained (in-flight requests complete
     * or time out). Measurement results are window-gated and therefore
     * unchanged; this only exists so end-of-run invariants (ledger
     * conservation, zero queued work) can be checked against a
     * quiesced world. Off by default.
     */
    bool drainAtEnd = false;

    /**
     * Inspection hook invoked after the drain (requires drainAtEnd),
     * before teardown, with the quiesced world. The chaos harness uses
     * it to check breaker/ejection consistency and zero-queue
     * invariants while the mesh still exists.
     */
    std::function<void(sim::Simulation &, svc::Mesh &, teastore::App &)>
        postDrain;

    /**
     * Rate schedule for the open-loop driver (requires openLoopRps > 0
     * to select it). Empty (the default) keeps the constant-rate
     * arrival sequence bit-identical; non-empty modulates arrivals by
     * thinning against openLoopRps as the peak.
     */
    loadgen::LoadSchedule loadSchedule;

    /**
     * Placement override: when set, used instead of buildPlacement to
     * produce the plan the app is built and pinned from. The cluster
     * layer uses it to merge per-machine placements. Unset = the
     * standard single-machine path, untouched.
     */
    std::function<PlacementPlan(const topo::Machine &, const CpuMask &)>
        planOverride;

    /**
     * Construction hook invoked after the app, mesh and brownout are
     * built but before the fault injector arms and the load driver is
     * created. The cluster layer uses it to add shard/cache services,
     * install the NodeRouter and start the node scaler. Unset = no-op.
     */
    std::function<void(sim::Simulation &, svc::Mesh &, teastore::App &)>
        postBuild;

    /**
     * Harvest hook invoked after the standard result harvest (before
     * the optional drain), with the world still alive. The cluster
     * layer fills RunResult::scaleout from it. Unset = no-op.
     */
    std::function<void(sim::Simulation &, svc::Mesh &, teastore::App &,
                       RunResult &)>
        harvestExtra;

    std::uint64_t seed = 42;
};

/** Per-op latency summary in milliseconds. */
struct OpLatency
{
    std::uint64_t count = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
};

/**
 * Where one service op's time goes (means over the window, ms):
 * waiting for a worker, computing on a CPU, or stalled (blocked on
 * downstream calls / preempted).
 */
struct OpBreakdown
{
    std::uint64_t count = 0;
    double serviceTimeMeanMs = 0.0;
    double queueWaitMeanMs = 0.0;
    double computeMeanMs = 0.0;
    double stallMeanMs = 0.0;
    double serviceTimeP99Ms = 0.0;
    /** Outcomes by status (counts shed/dropped/rejected requests too). */
    std::uint64_t okCount = 0;
    std::uint64_t timeoutCount = 0;
    std::uint64_t overloadCount = 0;
    std::uint64_t unavailableCount = 0;
};

/**
 * Resilience outcome of one run. `active` only when the run used a
 * resilience policy, a fault script or degraded fallbacks; inactive
 * summaries are elided from reports so healthy-baseline output is
 * unchanged.
 */
struct ResilienceSummary
{
    bool active = false;
    /** OK responses per second of window time. */
    double goodputRps = 0.0;
    /** Non-OK share of all window responses. */
    double errorRate = 0.0;
    /** Degraded share of OK window responses. */
    double degradedShare = 0.0;
    std::uint64_t okCount = 0;
    std::uint64_t timeoutCount = 0;
    std::uint64_t overloadCount = 0;
    std::uint64_t unavailableCount = 0;
    /** Admission/CoDel rejections seen by clients (overload layer). */
    std::uint64_t rejectedCount = 0;
    std::uint64_t degradedCount = 0;
    /** Mesh-level retry accounting (whole run). */
    std::uint64_t retries = 0;
    std::uint64_t retriesDenied = 0;
    std::uint64_t clientTimeouts = 0;
    /** Service-level shedding/drop accounting summed over services. */
    std::uint64_t shed = 0;
    std::uint64_t deadlineDrops = 0;
    std::uint64_t breakerOpens = 0;
};

/**
 * Overload-control outcome of one run. `active` only when the run
 * enabled any part of the overload layer (admission, CoDel,
 * criticality-aware shedding or brownout); inactive summaries are
 * elided from reports so pre-existing output is unchanged.
 */
struct OverloadSummary
{
    bool active = false;
    /** Admission limiter family ("off", "aimd", "gradient"). */
    std::string admission;
    bool codel = false;
    bool adaptiveLifo = false;
    bool criticalityAware = false;
    bool brownout = false;
    /** Admission rejections by criticality tier, summed over services. */
    std::uint64_t shedCritical = 0;
    std::uint64_t shedNormal = 0;
    std::uint64_t shedSheddable = 0;
    /** CoDel head drops, summed over services. */
    std::uint64_t codelDrops = 0;
    /** Requests served newest-first while CoDel was dropping. */
    std::uint64_t lifoDequeues = 0;
    /** Client-visible Rejected responses in the window. */
    std::uint64_t rejectedTotal = 0;
    /** WebUI concurrency-limit trajectory (0 = limiter never built). */
    double limitInitial = 0.0;
    double limitMin = 0.0;
    double limitMax = 0.0;
    double limitFinal = 0.0;
    /** Fraction of the window the dimmer spent below 1. */
    double brownoutDutyCycle = 0.0;
    double dimmerMin = 1.0;
    double dimmerFinal = 1.0;
    /** Optional page legs skipped by the dimmer (whole run). */
    std::uint64_t brownoutSkips = 0;
};

/**
 * Elasticity outcome of one run (filled by autoscale::runElastic).
 * `active` only when the run used a load schedule or an autoscaler;
 * inactive summaries are elided from reports so fixed-rate baseline
 * output is unchanged.
 */
struct ElasticSummary
{
    bool active = false;
    /** Schedule driving the open-loop arrivals ("spike", ...). */
    std::string schedule;
    /** Scaling policy ("static", "threshold", "queue-law", ...). */
    std::string policy;
    /** Replica placement flavor ("topology-aware", "os-default"). */
    std::string placer;
    /** Mean / peak offered rate over the measurement window, rps. */
    double offeredMeanRps = 0.0;
    double offeredPeakRps = 0.0;
    /** The p99 bound the SLO monitor enforced, ms. */
    double sloP99Ms = 0.0;
    /** Window seconds spent in SLO violation. */
    double sloViolationSeconds = 0.0;
    /** Integral of granted capacity over the window, CPU-seconds. */
    double coreSecondsGranted = 0.0;
    /** Lowest granted-capacity level in the window, CPUs. */
    double steadyStateCpus = 0.0;
    /** Mean decision-to-Active lag over all scale-outs, ms (0 = none). */
    double scaleOutLagMeanMs = 0.0;
    std::uint64_t scaleOuts = 0;
    std::uint64_t scaleIns = 0;
    /** Max concurrent (active + warming) replicas, per service. */
    std::map<std::string, unsigned> peakReplicas;
};

/**
 * Tracing outcome of one run. `active` only when the run enabled
 * tracing; inactive summaries are elided from reports so untraced
 * output is unchanged. The attribution covers root requests that
 * completed inside the measurement window; its per-service components
 * plus `unattributedNs` sum exactly to `e2eNs` (see
 * trace/critical_path.hh for the partition).
 */
struct TraceSummary
{
    bool active = false;
    double sampleRate = 0.0;
    /** External requests seen while tracing was installed. */
    std::uint64_t rootsSeen = 0;
    /** Traces actually sampled (≤ rootsSeen). */
    std::uint64_t tracesSampled = 0;
    /** Sampled traces whose root completed inside the window. */
    std::uint64_t tracesAnalyzed = 0;
    /** Spans recorded across all sampled traces. */
    std::uint64_t spanCount = 0;
    /** Mean end-to-end latency of the analyzed traces, ms. */
    double meanE2eMs = 0.0;
    /** Critical-path attribution totals (ns, summed over traces). */
    trace::Attribution attribution;
    /** The raw store, for exporters (Chrome trace). */
    std::shared_ptr<const trace::TraceStore> store;
};

/**
 * Gray-failure outcome of one run. `active` only when the run enabled
 * outlier ejection or scripted a gray fault (replica-slow, packet
 * loss/dup, partition, correlated crash); inactive summaries are
 * elided from reports so pre-existing output is unchanged.
 */
struct GrayFailSummary
{
    bool active = false;
    bool ejectionEnabled = false;
    /** Outlier-ejection events summed over services (whole run). */
    std::uint64_t ejections = 0;
    std::uint64_t unejections = 0;
    std::uint64_t ejectionsDenied = 0;
    /** Replicas still ejected when the run ended. */
    std::uint64_t ejectedAtEnd = 0;
    /** Link-fault transport accounting (whole run). */
    std::uint64_t packetsDropped = 0;
    std::uint64_t packetsDuplicated = 0;
    std::uint64_t packetsBlackholed = 0;
    /** Fault-script apply/skip accounting. */
    std::uint64_t faultsApplied = 0;
    std::uint64_t faultsSkipped = 0;
};

/**
 * Cluster scale-out outcome of one run (filled by
 * cluster::runScaleout's harvest hook). `active` only when the run
 * modeled a multi-machine cluster with cache/shard tiers; inactive
 * summaries are elided from reports so single-machine output is
 * unchanged.
 */
struct ScaleoutSummary
{
    bool active = false;
    /** Machines in the cluster (provisioned pool, including cold). */
    unsigned nodes = 0;
    /** Machines serving traffic when the run ended. */
    unsigned activeNodesEnd = 0;
    unsigned shards = 0;
    unsigned cacheNodes = 0;
    /** Fabric transport accounting (whole run). */
    std::uint64_t fabricMessages = 0;
    std::uint64_t fabricBytes = 0;
    /** Fabric share of all transported messages. */
    double fabricShare = 0.0;
    /** Cache tier accounting (whole run). */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheInvalidations = 0;
    std::uint64_t cacheEvictions = 0;
    double cacheHitRate = 0.0;
    /** Requests the shard tier actually served (cache misses+writes). */
    std::uint64_t shardRequests = 0;
    /** Coefficient of variation of per-shard request counts (ring
     * balance; 0 = perfectly even). */
    double shardLoadCv = 0.0;
    /** Node-scaler accounting (0s when the scaler was off). */
    std::uint64_t nodesProvisioned = 0;
    std::uint64_t warmProvisions = 0;
    std::uint64_t coldProvisions = 0;
    /** Mean decision-to-serving lag over node provisions, ms. */
    double provisionLagMeanMs = 0.0;
};

/**
 * Replicated-data-tier outcome of one cluster run (filled by the
 * cluster quorum coordinator; `active` only when the replication
 * factor exceeds 1, so R=1 runs stay byte-identical to FIG-17).
 */
struct ReplicationSummary
{
    bool active = false;
    unsigned factor = 0;
    unsigned writeQuorum = 0;
    unsigned readQuorum = 0;
    /** Quorum write path (whole run). */
    std::uint64_t quorumWrites = 0;
    std::uint64_t writeFailures = 0; ///< acks < W (Unavailable)
    double writeAckP50Ms = 0.0;
    double writeAckP99Ms = 0.0;
    /** Quorum read path (whole run). */
    std::uint64_t quorumReads = 0;
    std::uint64_t readFailures = 0; ///< reachable < R_q
    std::uint64_t readRepairs = 0;  ///< stale replicas repaired
    std::uint64_t readRefetches = 0; ///< primary stale, refetched
    double readP50Ms = 0.0;
    double readP99Ms = 0.0;
    /** Hinted handoff. */
    std::uint64_t hintsQueued = 0;
    std::uint64_t hintsReplayed = 0;
    std::uint64_t hintsDropped = 0; ///< queue-cap overflow
    std::uint64_t hintDepthPeak = 0;
    /** Scale-event rebalancing. */
    std::uint64_t rebalancesStarted = 0;
    std::uint64_t rebalancesCompleted = 0;
    std::uint64_t rebalanceBatches = 0;
    std::uint64_t rebalanceBytes = 0;
    std::uint64_t dualReads = 0;
    double rebalanceMsTotal = 0.0;
    /** Post-drain invariant verification (consistencyChecked gates the
     * two violation counters: both must be 0 on a correct run). */
    bool consistencyChecked = false;
    std::uint64_t ackedWrites = 0;
    std::uint64_t lostAckedWrites = 0;
    std::uint64_t staleQuorumReads = 0;
};

/**
 * Deep-fan-out app-graph run (src/apps/socialnet): graph shape,
 * hedged-request accounting and the tail-amplification metrics the
 * FIG-19 sweep asserts on. Inactive (and absent from the JSON) for
 * every TeaStore run.
 */
struct FanoutSummary
{
    bool active = false;
    /** App graph the run modeled ("socialnet"). */
    std::string app;
    /** Maximum call-chain depth of the (possibly truncated) graph. */
    unsigned depth = 0;
    /** Services in the graph. */
    unsigned services = 0;
    /** Parallel storage legs per timeline read. */
    unsigned fanWidth = 0;
    /** Hedging enabled on the fan-out edges. */
    bool hedged = false;
    double hedgeDelayMs = 0.0;
    double hedgeQuantile = 0.0;
    double hedgeBudgetRatio = 0.0;
    /** Mesh hedge accounting (see svc::HedgeStats). */
    std::uint64_t firstAttempts = 0;
    std::uint64_t hedgesLaunched = 0;
    std::uint64_t hedgeWins = 0;
    std::uint64_t hedgesDenied = 0;
    std::uint64_t hedgesCancelled = 0;
    /** hedgesLaunched / firstAttempts (the realized hedge rate). */
    double hedgeShare = 0.0;
    /** Client latency of the fan-out read path (the timeline read op),
     * not the overall mix: the write/compose ops have separate latency
     * modes that would mask the synchronization tail. */
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    /** Tail amplification of the read path: p99 / p50. */
    double amplification = 0.0;
};

/** Results of one run. */
struct RunResult
{
    double throughputRps = 0.0;
    OpLatency latency; ///< over all ops
    std::map<std::string, OpLatency> perOp;

    std::map<std::string, perf::PerfRow> servicePerf;
    perf::PerfRow total; ///< aggregate over all services

    /** Per service, per op: where the time goes (window only). */
    std::map<std::string, std::map<std::string, OpBreakdown>> breakdown;

    ResilienceSummary resilience;
    OverloadSummary overload;
    ElasticSummary elastic;
    TraceSummary trace;
    GrayFailSummary grayfail;
    ScaleoutSummary scaleout;
    ReplicationSummary replication;
    FanoutSummary fanout;

    os::SchedStats sched;
    /** Busy fraction of the CPU budget during the window. */
    double cpuUtilization = 0.0;
    double avgFreqGhz = 0.0;
    unsigned budgetCpus = 0;
    std::uint64_t eventsProcessed = 0;
    PlacementPlan plan;
};

/** Run one experiment end to end. */
RunResult runExperiment(const ExperimentConfig &config);

/**
 * Fill result.overload (and the resilience summary's rejectedCount)
 * from a finished run. Shared by runExperiment and
 * autoscale::runElastic so the two runners stay in sync.
 */
void harvestOverload(const ExperimentConfig &config, teastore::App &app,
                     const loadgen::Measurement &measurement,
                     const svc::BrownoutController *brownout,
                     RunResult &result);

/**
 * Fill result.trace from a finished run's mesh: critical-path
 * attribution of sampled root requests completing inside
 * [windowStart, windowEnd). No-op when tracing was off.
 */
void harvestTrace(const ExperimentConfig &config, const svc::Mesh &mesh,
                  Tick windowStart, Tick windowEnd, RunResult &result);

/**
 * Measure per-service demand shares with a short OsDefault run of the
 * given configuration (placement/duration overridden internally).
 */
DemandShares measureDemand(ExperimentConfig config);

/**
 * Demand shares implied by a finished run: each service's CPU time
 * per completed request, normalized. Taken from a *pinned* run these
 * reflect pinned-regime IPC, which differs per service (cache-bound
 * services speed up more under CCX affinity than frontend-bound ones).
 */
DemandShares demandFromRun(const RunResult &result);

/**
 * What runRefined learned: the demand shares each refinement round
 * partitioned with, and the shares implied by the final run.
 */
struct RefineTrace
{
    /** Shares used to build round i's partition (round 0 = seed). */
    std::vector<DemandShares> perRound;
    /** Shares implied by the final run (demandFromRun of it). */
    DemandShares final;
};

/**
 * Run a pinned placement with iterative partition refinement: run,
 * re-derive demand from the observed per-service CPU cost, re-
 * partition, repeat. `rounds` extra runs (1-2 is enough to converge).
 * The returned result is the final run; config.demand seeds round 0.
 * One working copy of the config is built up front and reused across
 * rounds; only its demand shares change between runs.
 */
RunResult runRefined(const ExperimentConfig &config, unsigned rounds = 2,
                     RefineTrace *trace = nullptr);

/** One-line summary: "tput=... p50=... p99=...". */
std::string summarize(const RunResult &r);

} // namespace microscale::core

#endif // MICROSCALE_CORE_EXPERIMENT_HH
