/**
 * @file
 * Topology-aware service placement - the paper's primary contribution.
 *
 * Given a CPU budget, a machine topology and per-service CPU demand
 * shares, the planner produces per-replica affinity masks and memory
 * homes:
 *
 *  - OsDefault: the performance-tuned baseline; every worker may run
 *    anywhere in the budget and memory is first-touch. The general-
 *    purpose scheduler spreads services across CCXs and NUMA nodes.
 *  - CcxAware: CCXs are partitioned among services proportionally to
 *    demand; each service runs one replica per assigned CCX, pinned
 *    there, with memory homed on the CCX's node. This is the paper's
 *    headline optimization (+22% throughput, -18% latency).
 *  - NodeAware: the same idea at NUMA-node granularity (coarser).
 *  - CcxStripedMem: ablation - CCX pinning but memory striped across
 *    nodes, isolating the cache-affinity benefit from NUMA locality.
 */

#ifndef MICROSCALE_CORE_PLACEMENT_HH
#define MICROSCALE_CORE_PLACEMENT_HH

#include <map>
#include <string>
#include <vector>

#include "base/cpumask.hh"
#include "base/types.hh"
#include "teastore/app.hh"
#include "topo/machine.hh"

namespace microscale::core
{

/** Placement policies under study. */
enum class PlacementKind
{
    OsDefault,
    NodeAware,
    CcxAware,
    CcxStripedMem,
};

/** Short identifier, e.g. "ccx-aware". */
const char *placementName(PlacementKind kind);

/** All policies in presentation order. */
std::vector<PlacementKind> allPlacements();

/**
 * Per-service CPU demand shares used to size CCX/node partitions.
 * Values are normalized internally; obtain measured values with
 * measureDemand() or use the calibrated defaults.
 */
struct DemandShares
{
    double webui = 0.31;
    double auth = 0.08;
    double persistence = 0.18;
    double recommender = 0.08;
    double image = 0.35;

    /** Scale so the five shares sum to 1. */
    void normalize();

    /** Share by canonical service name; fatal() on unknown names. */
    double of(const std::string &service) const;
};

/** Baseline replica/worker sizing (the "performance-tuned" baseline). */
struct BaselineSizing
{
    teastore::ServiceConfig webui{4, 64};
    teastore::ServiceConfig auth{2, 32};
    teastore::ServiceConfig persistence{4, 48};
    teastore::ServiceConfig recommender{2, 24};
    teastore::ServiceConfig image{4, 64};
    teastore::ServiceConfig registry{1, 2};

    teastore::ServiceConfig &byName(const std::string &service);
    const teastore::ServiceConfig &byName(const std::string &service) const;
};

/** Placement decision for one service. */
struct ServicePlan
{
    unsigned replicas = 1;
    unsigned workers = 16;
    /** Affinity per replica. */
    std::vector<CpuMask> masks;
    /** Memory home per replica (kInvalidNode = first-touch). */
    std::vector<NodeId> homes;
};

/** Placement decisions for the whole application. */
struct PlacementPlan
{
    PlacementKind kind = PlacementKind::OsDefault;
    std::map<std::string, ServicePlan> services;

    /** Human-readable multi-line description. */
    std::string describe() const;
};

/**
 * One partitionable unit of the machine: the CPUs of a CCX or NUMA
 * node (intersected with a budget) plus the node its memory lives on.
 * The planner partitions these statically; autoscale::ReplicaPlacer
 * grants and releases them at runtime.
 */
struct PlacementGroup
{
    CpuMask mask;
    NodeId node = kInvalidNode;
};

/** CCX-granularity groups inside `budget` (empty groups dropped). */
std::vector<PlacementGroup> ccxPlacementGroups(const topo::Machine &machine,
                                               const CpuMask &budget);

/** NUMA-node-granularity groups inside `budget`. */
std::vector<PlacementGroup> nodePlacementGroups(const topo::Machine &machine,
                                                const CpuMask &budget);

/**
 * The CPU budget for an experiment: the first `cores` physical cores
 * (0 = all), optionally including their SMT siblings.
 */
CpuMask budgetMask(const topo::Machine &machine, unsigned cores,
                   bool smt);

/**
 * Build the placement plan.
 * @param budget must be non-empty and within the machine.
 */
PlacementPlan buildPlacement(PlacementKind kind,
                             const topo::Machine &machine,
                             const CpuMask &budget,
                             const DemandShares &demand,
                             const BaselineSizing &sizing);

/** Apply a plan to a constructed application. */
void applyPlacement(teastore::App &app, const PlacementPlan &plan);

/**
 * Translate a plan into per-service replica/worker counts for
 * AppParams (must be applied before App construction).
 */
void sizeAppFromPlan(teastore::AppParams &params,
                     const PlacementPlan &plan);

} // namespace microscale::core

#endif // MICROSCALE_CORE_PLACEMENT_HH
