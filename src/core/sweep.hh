/**
 * @file
 * SweepRunner: the shared multi-threaded core every experiment sweep
 * (bench binaries, msim, examples, the replica tuner) runs on.
 *
 * A sweep is a list of labeled, independent ExperimentConfig points.
 * The runner executes them on a host thread pool and returns results
 * in submission order, so parallel output is bit-identical to a
 * serial run: every point is an isolated, deterministic simulation
 * whose seed comes only from its config, and no model layer shares
 * mutable state between Simulation instances (base/logging is the one
 * global, and it is mutex-guarded and tagged per point).
 */

#ifndef MICROSCALE_CORE_SWEEP_HH
#define MICROSCALE_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace microscale::core
{

/** One labeled point of a sweep. */
struct SweepPoint
{
    /** Display label; also tags log lines emitted while it runs. */
    std::string label;
    ExperimentConfig config;
    /** Partition-refinement rounds (runRefined); 0 = plain run. */
    unsigned refineRounds = 0;
    /**
     * Optional custom runner replacing runExperiment/runRefined, for
     * sweeps over non-standard experiments (e.g. fig03's leaf-service
     * driver). Must be callable concurrently with other points.
     */
    std::function<RunResult(const ExperimentConfig &)> runner;
};

/** Outcome of one point. `ok` is false when the runner threw. */
struct SweepOutcome
{
    std::string label;
    bool ok = false;
    /** Exception text when !ok; other points are unaffected. */
    std::string error;
    RunResult result;
    /** Refinement history when refineRounds > 0. */
    RefineTrace refine;
};

/** Runner options. */
struct SweepOptions
{
    /**
     * Worker threads; 0 resolves MICROSCALE_BENCH_JOBS, then
     * hardware_concurrency (see resolveJobs).
     */
    unsigned jobs = 0;
    /** Emit a progress line on stderr as each point completes. */
    bool progress = true;
};

/**
 * Resolve a job-count request: an explicit value wins, else the
 * MICROSCALE_BENCH_JOBS environment variable, else the host's
 * hardware_concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested);

/**
 * Executes sweeps on a host thread pool. Stateless between run()
 * calls; one runner can serve several sweeps.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /** The resolved worker-thread count. */
    unsigned jobs() const { return jobs_; }

    /**
     * Run all points, returning outcomes in submission order. An
     * exception in one point is captured in its outcome and does not
     * poison the others.
     */
    std::vector<SweepOutcome>
    run(const std::vector<SweepPoint> &points) const;

  private:
    SweepOptions options_;
    unsigned jobs_;
};

} // namespace microscale::core

#endif // MICROSCALE_CORE_SWEEP_HH
