#include "core/json.hh"

#include <iomanip>
#include <sstream>

namespace microscale::core
{

namespace
{

/** Minimal JSON writer: objects/arrays with correct comma placement. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os)
    {
        os_ << std::setprecision(10);
    }

    void
    beginObject()
    {
        comma();
        os_ << "{";
        first_ = true;
    }

    void
    endObject()
    {
        os_ << "}";
        first_ = false;
    }

    void
    beginArray(const std::string &key)
    {
        this->key(key);
        os_ << "[";
        first_ = true;
    }

    void
    endArray()
    {
        os_ << "]";
        first_ = false;
    }

    void
    key(const std::string &k)
    {
        comma();
        os_ << '"' << k << "\":";
        first_ = true; // value follows without comma
    }

    void
    value(double v)
    {
        comma();
        os_ << v;
    }

    void
    value(std::uint64_t v)
    {
        comma();
        os_ << v;
    }

    void
    value(const std::string &v)
    {
        comma();
        os_ << '"' << v << '"';
    }

    void
    field(const std::string &k, double v)
    {
        key(k);
        value(v);
    }

    void
    field(const std::string &k, std::uint64_t v)
    {
        key(k);
        value(v);
    }

    void
    field(const std::string &k, unsigned v)
    {
        key(k);
        value(static_cast<std::uint64_t>(v));
    }

    void
    field(const std::string &k, const std::string &v)
    {
        key(k);
        value(v);
    }

  private:
    void
    comma()
    {
        if (!first_)
            os_ << ",";
        first_ = false;
    }

    std::ostream &os_;
    bool first_ = true;
};

void
writeOpLatency(JsonWriter &w, const OpLatency &l)
{
    w.beginObject();
    w.field("count", l.count);
    w.field("mean_ms", l.meanMs);
    w.field("p50_ms", l.p50Ms);
    w.field("p95_ms", l.p95Ms);
    w.field("p99_ms", l.p99Ms);
    w.endObject();
}

void
writePerfRow(JsonWriter &w, const perf::PerfRow &r)
{
    w.beginObject();
    w.field("cpus_busy", r.utilizationCpus);
    w.field("ipc", r.ipc);
    w.field("ghz", r.ghz);
    w.field("l3_mpki", r.l3Mpki);
    w.field("l3_miss_ratio", r.l3MissRatio);
    w.field("branch_mpki", r.branchMpki);
    w.field("icache_mpki", r.icacheMpki);
    w.field("kernel_share", r.kernelShare);
    w.field("smt_share", r.smtShare);
    w.field("cs_per_sec", r.csPerSec);
    w.field("migrations_per_sec", r.migrationsPerSec);
    w.field("ccx_migrations_per_sec", r.ccxMigrationsPerSec);
    w.field("mips", r.mips);
    w.endObject();
}

} // namespace

void
writeJson(std::ostream &os, const RunResult &result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("placement", std::string(placementName(result.plan.kind)));
    w.field("throughput_rps", result.throughputRps);
    w.field("budget_cpus", result.budgetCpus);
    w.field("cpu_utilization", result.cpuUtilization);
    w.field("avg_freq_ghz", result.avgFreqGhz);
    w.field("events_processed", result.eventsProcessed);

    w.key("latency");
    writeOpLatency(w, result.latency);

    w.key("per_op");
    w.beginObject();
    for (const auto &[name, lat] : result.perOp) {
        w.key(name);
        writeOpLatency(w, lat);
    }
    w.endObject();

    w.key("services");
    w.beginObject();
    for (const auto &[name, row] : result.servicePerf) {
        w.key(name);
        writePerfRow(w, row);
    }
    w.endObject();

    w.key("total");
    writePerfRow(w, result.total);

    w.key("sched");
    w.beginObject();
    w.field("wakeups", result.sched.wakeups);
    w.field("context_switches", result.sched.contextSwitches);
    w.field("preemptions", result.sched.preemptions);
    w.field("migrations", result.sched.migrations);
    w.field("ccx_migrations", result.sched.ccxMigrations);
    w.field("balance_pulls", result.sched.balancePulls);
    w.field("new_idle_pulls", result.sched.newIdlePulls);
    w.endObject();

    w.key("breakdown");
    w.beginObject();
    for (const auto &[svc_name, ops] : result.breakdown) {
        w.key(svc_name);
        w.beginObject();
        for (const auto &[op, b] : ops) {
            w.key(op);
            w.beginObject();
            w.field("count", b.count);
            w.field("service_time_mean_ms", b.serviceTimeMeanMs);
            w.field("queue_wait_mean_ms", b.queueWaitMeanMs);
            w.field("compute_mean_ms", b.computeMeanMs);
            w.field("stall_mean_ms", b.stallMeanMs);
            w.field("service_time_p99_ms", b.serviceTimeP99Ms);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << "\n";
}

std::string
toJson(const RunResult &result)
{
    std::ostringstream os;
    writeJson(os, result);
    return os.str();
}

} // namespace microscale::core
