#include "core/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace microscale::core
{

namespace
{

/** Minimal JSON writer: objects/arrays with correct comma placement. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os)
    {
        os_ << std::setprecision(10);
    }

    void
    beginObject()
    {
        comma();
        os_ << "{";
        first_ = true;
    }

    void
    endObject()
    {
        os_ << "}";
        first_ = false;
    }

    void
    beginArray(const std::string &key)
    {
        this->key(key);
        os_ << "[";
        first_ = true;
    }

    void
    endArray()
    {
        os_ << "]";
        first_ = false;
    }

    void
    key(const std::string &k)
    {
        comma();
        os_ << '"' << k << "\":";
        first_ = true; // value follows without comma
    }

    void
    value(double v)
    {
        comma();
        // JSON has no NaN/Inf literals; a raw `os_ << v` would print
        // "nan"/"inf" and corrupt the document. Emit null so parsers
        // survive and validators can flag the broken metric.
        if (!std::isfinite(v)) {
            os_ << "null";
            return;
        }
        os_ << v;
    }

    void
    value(std::uint64_t v)
    {
        comma();
        os_ << v;
    }

    void
    value(const std::string &v)
    {
        comma();
        os_ << '"' << v << '"';
    }

    void
    field(const std::string &k, double v)
    {
        key(k);
        value(v);
    }

    void
    field(const std::string &k, std::uint64_t v)
    {
        key(k);
        value(v);
    }

    void
    field(const std::string &k, unsigned v)
    {
        key(k);
        value(static_cast<std::uint64_t>(v));
    }

    void
    field(const std::string &k, const std::string &v)
    {
        key(k);
        value(v);
    }

  private:
    void
    comma()
    {
        if (!first_)
            os_ << ",";
        first_ = false;
    }

    std::ostream &os_;
    bool first_ = true;
};

void
writeOpLatency(JsonWriter &w, const OpLatency &l)
{
    w.beginObject();
    w.field("count", l.count);
    w.field("mean_ms", l.meanMs);
    w.field("p50_ms", l.p50Ms);
    w.field("p95_ms", l.p95Ms);
    w.field("p99_ms", l.p99Ms);
    w.endObject();
}

void
writePerfRow(JsonWriter &w, const perf::PerfRow &r)
{
    w.beginObject();
    w.field("cpus_busy", r.utilizationCpus);
    w.field("ipc", r.ipc);
    w.field("ghz", r.ghz);
    w.field("l3_mpki", r.l3Mpki);
    w.field("l3_miss_ratio", r.l3MissRatio);
    w.field("branch_mpki", r.branchMpki);
    w.field("icache_mpki", r.icacheMpki);
    w.field("kernel_share", r.kernelShare);
    w.field("smt_share", r.smtShare);
    w.field("cs_per_sec", r.csPerSec);
    w.field("migrations_per_sec", r.migrationsPerSec);
    w.field("ccx_migrations_per_sec", r.ccxMigrationsPerSec);
    w.field("mips", r.mips);
    w.endObject();
}

} // namespace

void
writeJson(std::ostream &os, const RunResult &result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("placement", std::string(placementName(result.plan.kind)));
    w.field("throughput_rps", result.throughputRps);
    w.field("budget_cpus", result.budgetCpus);
    w.field("cpu_utilization", result.cpuUtilization);
    w.field("avg_freq_ghz", result.avgFreqGhz);
    w.field("events_processed", result.eventsProcessed);

    w.key("latency");
    writeOpLatency(w, result.latency);

    w.key("per_op");
    w.beginObject();
    for (const auto &[name, lat] : result.perOp) {
        w.key(name);
        writeOpLatency(w, lat);
    }
    w.endObject();

    w.key("services");
    w.beginObject();
    for (const auto &[name, row] : result.servicePerf) {
        w.key(name);
        writePerfRow(w, row);
    }
    w.endObject();

    w.key("total");
    writePerfRow(w, result.total);

    w.key("sched");
    w.beginObject();
    w.field("wakeups", result.sched.wakeups);
    w.field("context_switches", result.sched.contextSwitches);
    w.field("preemptions", result.sched.preemptions);
    w.field("migrations", result.sched.migrations);
    w.field("ccx_migrations", result.sched.ccxMigrations);
    w.field("balance_pulls", result.sched.balancePulls);
    w.field("new_idle_pulls", result.sched.newIdlePulls);
    w.endObject();

    w.key("breakdown");
    w.beginObject();
    for (const auto &[svc_name, ops] : result.breakdown) {
        w.key(svc_name);
        w.beginObject();
        for (const auto &[op, b] : ops) {
            w.key(op);
            w.beginObject();
            w.field("count", b.count);
            w.field("service_time_mean_ms", b.serviceTimeMeanMs);
            w.field("queue_wait_mean_ms", b.queueWaitMeanMs);
            w.field("compute_mean_ms", b.computeMeanMs);
            w.field("stall_mean_ms", b.stallMeanMs);
            w.field("service_time_p99_ms", b.serviceTimeP99Ms);
            if (result.resilience.active) {
                w.field("ok", b.okCount);
                w.field("timeout", b.timeoutCount);
                w.field("overload", b.overloadCount);
                w.field("unavailable", b.unavailableCount);
            }
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();

    // Only runs that exercised the resilience layer (policy, fault
    // script, or degraded fallbacks) carry the block, so healthy
    // baseline JSON stays byte-identical.
    if (result.resilience.active) {
        const ResilienceSummary &rs = result.resilience;
        w.key("resilience");
        w.beginObject();
        w.field("goodput_rps", rs.goodputRps);
        w.field("error_rate", rs.errorRate);
        w.field("degraded_share", rs.degradedShare);
        w.field("ok", rs.okCount);
        w.field("timeout", rs.timeoutCount);
        w.field("overload", rs.overloadCount);
        w.field("unavailable", rs.unavailableCount);
        // Only overload-controlled runs shed with Rejected, so the
        // field appears only for them (FIG-12 output is unchanged).
        if (result.overload.active)
            w.field("rejected", rs.rejectedCount);
        w.field("degraded", rs.degradedCount);
        w.field("retries", rs.retries);
        w.field("retries_denied", rs.retriesDenied);
        w.field("client_timeouts", rs.clientTimeouts);
        w.field("shed", rs.shed);
        w.field("deadline_drops", rs.deadlineDrops);
        w.field("breaker_opens", rs.breakerOpens);
        w.endObject();
    }

    // Same gating again: only runs with an active overload layer
    // carry the block, keeping pre-existing FIG output byte-identical.
    if (result.overload.active) {
        const OverloadSummary &ov = result.overload;
        w.key("overload");
        w.beginObject();
        w.field("admission", ov.admission);
        w.field("codel", static_cast<std::uint64_t>(ov.codel ? 1 : 0));
        w.field("adaptive_lifo",
                static_cast<std::uint64_t>(ov.adaptiveLifo ? 1 : 0));
        w.field("criticality_aware",
                static_cast<std::uint64_t>(ov.criticalityAware ? 1 : 0));
        w.field("brownout",
                static_cast<std::uint64_t>(ov.brownout ? 1 : 0));
        w.field("shed_critical", ov.shedCritical);
        w.field("shed_normal", ov.shedNormal);
        w.field("shed_sheddable", ov.shedSheddable);
        w.field("codel_drops", ov.codelDrops);
        w.field("lifo_dequeues", ov.lifoDequeues);
        w.field("rejected_total", ov.rejectedTotal);
        w.field("limit_initial", ov.limitInitial);
        w.field("limit_min", ov.limitMin);
        w.field("limit_max", ov.limitMax);
        w.field("limit_final", ov.limitFinal);
        w.field("brownout_duty_cycle", ov.brownoutDutyCycle);
        w.field("dimmer_min", ov.dimmerMin);
        w.field("dimmer_final", ov.dimmerFinal);
        w.field("brownout_skips", ov.brownoutSkips);
        w.endObject();
    }

    // Same gating as the resilience block: only elastic runs (load
    // schedule or autoscaler) carry it, keeping FIG-1..12 output
    // byte-identical.
    if (result.elastic.active) {
        const ElasticSummary &es = result.elastic;
        w.key("elastic");
        w.beginObject();
        w.field("schedule", es.schedule);
        w.field("policy", es.policy);
        w.field("placer", es.placer);
        w.field("offered_mean_rps", es.offeredMeanRps);
        w.field("offered_peak_rps", es.offeredPeakRps);
        w.field("slo_p99_ms", es.sloP99Ms);
        w.field("slo_violation_seconds", es.sloViolationSeconds);
        w.field("core_seconds_granted", es.coreSecondsGranted);
        w.field("steady_state_cpus", es.steadyStateCpus);
        w.field("scale_out_lag_mean_ms", es.scaleOutLagMeanMs);
        w.field("scale_outs", es.scaleOuts);
        w.field("scale_ins", es.scaleIns);
        w.key("peak_replicas");
        w.beginObject();
        for (const auto &[name, peak] : es.peakReplicas)
            w.field(name, peak);
        w.endObject();
        w.endObject();
    }

    // Same gating once more: only traced runs carry the block, so
    // FIG-01..14 output with tracing off stays byte-identical.
    if (result.trace.active) {
        const TraceSummary &tr = result.trace;
        // Per-trace means in ms; with nothing analyzed everything
        // below is zero and the divisor is moot.
        const double toMs =
            tr.attribution.traces
                ? 1.0 / (static_cast<double>(tr.attribution.traces) *
                         1e6)
                : 0.0;
        w.key("trace");
        w.beginObject();
        w.field("sample_rate", tr.sampleRate);
        w.field("roots_seen", tr.rootsSeen);
        w.field("traces_sampled", tr.tracesSampled);
        w.field("traces_analyzed", tr.tracesAnalyzed);
        w.field("spans", tr.spanCount);
        w.field("mean_e2e_ms", tr.attribution.e2eNs * toMs);
        w.field("unattributed_ms", tr.attribution.unattributedNs * toMs);
        w.key("attribution");
        w.beginObject();
        for (const auto &[name, a] : tr.attribution.services) {
            w.key(name);
            w.beginObject();
            w.field("queue_ms", a.queueNs * toMs);
            w.field("compute_ms", a.computeNs * toMs);
            w.field("stall_ms", a.stallNs * toMs);
            w.field("fanout_wait_ms", a.fanoutNs * toMs);
            w.field("retry_backoff_ms", a.backoffNs * toMs);
            w.field("shed_ms", a.shedNs * toMs);
            w.field("network_ms", a.networkNs * toMs);
            // Fabric time is the cross-machine slice of network_ms,
            // not an eighth component; only cluster runs report it so
            // single-machine trace JSON stays byte-identical.
            if (result.scaleout.active)
                w.field("fabric_ms", a.fabricNs * toMs);
            w.field("total_ms", a.totalNs() * toMs);
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }

    // Same gating as every block above: only gray-failure runs
    // (ejection policy, link faults, or replica slowdowns) carry it,
    // so FIG-01..15 output stays byte-identical.
    if (result.grayfail.active) {
        const GrayFailSummary &gf = result.grayfail;
        w.key("grayfail");
        w.beginObject();
        w.field("ejection_enabled",
                static_cast<std::uint64_t>(gf.ejectionEnabled ? 1 : 0));
        w.field("ejections", gf.ejections);
        w.field("unejections", gf.unejections);
        w.field("ejections_denied", gf.ejectionsDenied);
        w.field("ejected_at_end", gf.ejectedAtEnd);
        w.field("packets_dropped", gf.packetsDropped);
        w.field("packets_duplicated", gf.packetsDuplicated);
        w.field("packets_blackholed", gf.packetsBlackholed);
        w.field("faults_applied", gf.faultsApplied);
        w.field("faults_skipped", gf.faultsSkipped);
        w.endObject();
    }

    // Same gating: only cluster runs carry the block, so every
    // single-machine FIG capture stays byte-identical.
    if (result.scaleout.active) {
        const ScaleoutSummary &so = result.scaleout;
        w.key("scaleout");
        w.beginObject();
        w.field("nodes", so.nodes);
        w.field("active_nodes_end", so.activeNodesEnd);
        w.field("shards", so.shards);
        w.field("cache_nodes", so.cacheNodes);
        w.field("fabric_messages", so.fabricMessages);
        w.field("fabric_bytes", so.fabricBytes);
        w.field("fabric_share", so.fabricShare);
        w.field("cache_hits", so.cacheHits);
        w.field("cache_misses", so.cacheMisses);
        w.field("cache_invalidations", so.cacheInvalidations);
        w.field("cache_evictions", so.cacheEvictions);
        w.field("cache_hit_rate", so.cacheHitRate);
        w.field("shard_requests", so.shardRequests);
        w.field("shard_load_cv", so.shardLoadCv);
        w.field("nodes_provisioned", so.nodesProvisioned);
        w.field("warm_provisions", so.warmProvisions);
        w.field("cold_provisions", so.coldProvisions);
        w.field("provision_lag_mean_ms", so.provisionLagMeanMs);
        w.endObject();
    }

    // Gated on R>1: an R=1 cluster run carries no replication block,
    // keeping the FIG-17 data-tier capture byte-identical.
    if (result.replication.active) {
        const ReplicationSummary &rp = result.replication;
        w.key("replication");
        w.beginObject();
        w.field("factor", rp.factor);
        w.field("write_quorum", rp.writeQuorum);
        w.field("read_quorum", rp.readQuorum);
        w.field("quorum_writes", rp.quorumWrites);
        w.field("write_failures", rp.writeFailures);
        w.field("write_ack_p50_ms", rp.writeAckP50Ms);
        w.field("write_ack_p99_ms", rp.writeAckP99Ms);
        w.field("quorum_reads", rp.quorumReads);
        w.field("read_failures", rp.readFailures);
        w.field("read_repairs", rp.readRepairs);
        w.field("read_refetches", rp.readRefetches);
        w.field("read_p50_ms", rp.readP50Ms);
        w.field("read_p99_ms", rp.readP99Ms);
        w.field("hints_queued", rp.hintsQueued);
        w.field("hints_replayed", rp.hintsReplayed);
        w.field("hints_dropped", rp.hintsDropped);
        w.field("hint_depth_peak", rp.hintDepthPeak);
        w.field("rebalances_started", rp.rebalancesStarted);
        w.field("rebalances_completed", rp.rebalancesCompleted);
        w.field("rebalance_batches", rp.rebalanceBatches);
        w.field("rebalance_bytes", rp.rebalanceBytes);
        w.field("dual_reads", rp.dualReads);
        w.field("rebalance_ms_total", rp.rebalanceMsTotal);
        w.field("consistency_checked",
                static_cast<unsigned>(rp.consistencyChecked ? 1 : 0));
        w.field("acked_writes", rp.ackedWrites);
        w.field("lost_acked_writes", rp.lostAckedWrites);
        w.field("stale_quorum_reads", rp.staleQuorumReads);
        w.endObject();
    }

    // Gated on the deep-fan-out app runner: TeaStore runs never carry
    // the block, keeping every pre-existing FIG capture byte-identical.
    if (result.fanout.active) {
        const FanoutSummary &fo = result.fanout;
        w.key("fanout");
        w.beginObject();
        w.field("app", fo.app);
        w.field("depth", fo.depth);
        w.field("services", fo.services);
        w.field("fan_width", fo.fanWidth);
        w.field("hedged", static_cast<unsigned>(fo.hedged ? 1 : 0));
        w.field("hedge_delay_ms", fo.hedgeDelayMs);
        w.field("hedge_quantile", fo.hedgeQuantile);
        w.field("hedge_budget_ratio", fo.hedgeBudgetRatio);
        w.field("first_attempts", fo.firstAttempts);
        w.field("hedges_launched", fo.hedgesLaunched);
        w.field("hedge_wins", fo.hedgeWins);
        w.field("hedges_denied", fo.hedgesDenied);
        w.field("hedges_cancelled", fo.hedgesCancelled);
        w.field("hedge_share", fo.hedgeShare);
        w.field("p50_ms", fo.p50Ms);
        w.field("p99_ms", fo.p99Ms);
        w.field("amplification", fo.amplification);
        w.endObject();
    }

    w.endObject();
    os << "\n";
}

std::string
toJson(const RunResult &result)
{
    std::ostringstream os;
    writeJson(os, result);
    return os.str();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (const JsonValue *v = find(key))
        return *v;
    throw std::out_of_range("no JSON member '" + key + "'");
}

namespace
{

/** Recursive-descent parser over the full supported grammar. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("bad literal");
        pos_ += word.size();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                const unsigned code = static_cast<unsigned>(std::strtoul(
                    std::string(text_.substr(pos_, 4)).c_str(), nullptr,
                    16));
                pos_ += 4;
                // Only the codepoints jsonEscape emits (< 0x80).
                out += static_cast<char>(code & 0x7f);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("bad number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.numberValue =
            std::strtod(std::string(text_.substr(start, pos_ - start))
                            .c_str(),
                        nullptr);
        return v;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        JsonValue v;
        switch (c) {
          case '{': {
            ++pos_;
            v.kind = JsonValue::Kind::Object;
            if (consume('}'))
                return v;
            do {
                std::string key = (skipSpace(), parseString());
                expect(':');
                v.members.emplace_back(std::move(key), parseValue());
            } while (consume(','));
            expect('}');
            return v;
          }
          case '[': {
            ++pos_;
            v.kind = JsonValue::Kind::Array;
            if (consume(']'))
                return v;
            do {
                v.elements.push_back(parseValue());
            } while (consume(','));
            expect(']');
            return v;
          }
          case '"':
            v.kind = JsonValue::Kind::String;
            v.stringValue = parseString();
            return v;
          case 't':
            literal("true");
            v.kind = JsonValue::Kind::Bool;
            v.boolValue = true;
            return v;
          case 'f':
            literal("false");
            v.kind = JsonValue::Kind::Bool;
            v.boolValue = false;
            return v;
          case 'n':
            literal("null");
            v.kind = JsonValue::Kind::Null;
            return v;
          default:
            return parseNumber();
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return JsonParser(text).parse();
}

} // namespace microscale::core
