#include "core/placement.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "base/logging.hh"

namespace microscale::core
{

namespace ts = teastore;

const char *
placementName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::OsDefault:
        return "os-default";
      case PlacementKind::NodeAware:
        return "node-aware";
      case PlacementKind::CcxAware:
        return "ccx-aware";
      case PlacementKind::CcxStripedMem:
        return "ccx-striped-mem";
    }
    MS_PANIC("invalid PlacementKind");
}

std::vector<PlacementKind>
allPlacements()
{
    return {PlacementKind::OsDefault, PlacementKind::NodeAware,
            PlacementKind::CcxAware, PlacementKind::CcxStripedMem};
}

void
DemandShares::normalize()
{
    const double sum = webui + auth + persistence + recommender + image;
    if (sum <= 0.0)
        fatal("demand shares sum to zero");
    webui /= sum;
    auth /= sum;
    persistence /= sum;
    recommender /= sum;
    image /= sum;
}

double
DemandShares::of(const std::string &service) const
{
    if (service == ts::names::kWebui)
        return webui;
    if (service == ts::names::kAuth)
        return auth;
    if (service == ts::names::kPersistence)
        return persistence;
    if (service == ts::names::kRecommender)
        return recommender;
    if (service == ts::names::kImage)
        return image;
    fatal("no demand share for service '", service, "'");
}

teastore::ServiceConfig &
BaselineSizing::byName(const std::string &service)
{
    if (service == ts::names::kWebui)
        return webui;
    if (service == ts::names::kAuth)
        return auth;
    if (service == ts::names::kPersistence)
        return persistence;
    if (service == ts::names::kRecommender)
        return recommender;
    if (service == ts::names::kImage)
        return image;
    if (service == ts::names::kRegistry)
        return registry;
    fatal("no sizing for service '", service, "'");
}

const teastore::ServiceConfig &
BaselineSizing::byName(const std::string &service) const
{
    return const_cast<BaselineSizing *>(this)->byName(service);
}

std::string
PlacementPlan::describe() const
{
    std::ostringstream os;
    os << "placement: " << placementName(kind) << "\n";
    for (const auto &[name, plan] : services) {
        os << "  " << name << ": " << plan.replicas << " replica(s) x "
           << plan.workers << " workers\n";
        for (unsigned r = 0; r < plan.replicas; ++r) {
            os << "    r" << r << " cpus " << plan.masks[r].toString();
            if (plan.homes[r] != kInvalidNode)
                os << " mem-node " << plan.homes[r];
            else
                os << " mem first-touch";
            os << "\n";
        }
    }
    return os.str();
}

CpuMask
budgetMask(const topo::Machine &machine, unsigned cores, bool smt)
{
    if (cores == 0 || cores > machine.numCores())
        cores = machine.numCores();
    CpuMask m = CpuMask::firstN(cores);
    if (smt && machine.threadsPerCore() == 2) {
        for (CpuId c = 0; c < cores; ++c)
            m.set(c + machine.numCores());
    }
    return m;
}

namespace
{

/** The five worker services in canonical planning order. */
const std::vector<std::string> &
workerServices()
{
    static const std::vector<std::string> names = {
        ts::names::kWebui, ts::names::kAuth, ts::names::kPersistence,
        ts::names::kRecommender, ts::names::kImage};
    return names;
}

/**
 * Allocate `total` group slots to the given demand shares so that the
 * worst per-slot load (share_i / count_i) is minimized: everyone gets
 * one slot, then each further slot goes to the service with the
 * highest remaining per-slot load. Proportional rounding (largest
 * remainder) can starve a mid-sized service by one slot and turn its
 * partition into the end-to-end bottleneck; this greedy rule cannot.
 */
std::vector<unsigned>
allocateCounts(const std::vector<double> &shares, unsigned total)
{
    const std::size_t n = shares.size();
    std::vector<unsigned> counts(n, 0);
    if (total >= n) {
        for (std::size_t i = 0; i < n; ++i)
            counts[i] = 1;
        for (unsigned granted = static_cast<unsigned>(n);
             granted < total; ++granted) {
            std::size_t best = 0;
            double best_ratio = -1.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double ratio = shares[i] / counts[i];
                if (ratio > best_ratio) {
                    best_ratio = ratio;
                    best = i;
                }
            }
            ++counts[best];
        }
    } else {
        // Fewer slots than services: dedicate them to the largest
        // shares; the rest will share (handled by the caller).
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return shares[a] > shares[b];
                  });
        for (unsigned k = 0; k < total; ++k)
            counts[order[k]] = 1;
    }
    return counts;
}

using Group = PlacementGroup;

/**
 * Partition `groups` among the worker services by demand and emit the
 * pinned plan. Services that receive no dedicated group share the
 * group of the smallest-demand owning service.
 */
void
planPinned(PlacementPlan &plan, const std::vector<Group> &groups,
           const DemandShares &demand, const BaselineSizing &sizing,
           bool striped_memory, unsigned num_nodes)
{
    const auto &names = workerServices();
    std::vector<double> shares;
    shares.reserve(names.size());
    for (const auto &n : names)
        shares.push_back(demand.of(n));

    const auto counts =
        allocateCounts(shares, static_cast<unsigned>(groups.size()));

    // Hand groups out in id order, largest demand first, so each
    // service's groups are contiguous (and thus NUMA-compact).
    std::vector<std::size_t> order(names.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return shares[a] > shares[b];
    });

    std::size_t next_group = 0;
    std::vector<std::vector<const Group *>> assigned(names.size());
    for (std::size_t oi : order) {
        for (unsigned k = 0; k < counts[oi] && next_group < groups.size();
             ++k) {
            assigned[oi].push_back(&groups[next_group++]);
        }
    }
    // Zero-count services (possible when groups < services even after
    // lifting) share the group of the smallest owning service.
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (assigned[i].empty()) {
            const Group *fallback = nullptr;
            for (auto it = order.rbegin(); it != order.rend(); ++it) {
                if (!assigned[*it].empty()) {
                    fallback = assigned[*it].back();
                    break;
                }
            }
            if (!fallback)
                fatal("placement: no CPU groups available");
            assigned[i].push_back(fallback);
        }
    }

    unsigned replica_seq = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        ServicePlan sp;
        sp.replicas = static_cast<unsigned>(assigned[i].size());
        sp.workers = sizing.byName(names[i]).workers;
        for (const Group *g : assigned[i]) {
            sp.masks.push_back(g->mask);
            NodeId home = g->node;
            if (striped_memory && num_nodes > 1)
                home = replica_seq % num_nodes;
            sp.homes.push_back(home);
            ++replica_seq;
        }
        plan.services[names[i]] = std::move(sp);
    }

    // The registry is tiny: co-locate it with auth's first replica.
    const ServicePlan &auth_plan = plan.services[ts::names::kAuth];
    ServicePlan reg;
    reg.replicas = 1;
    reg.workers = sizing.registry.workers;
    reg.masks.push_back(auth_plan.masks.front());
    reg.homes.push_back(auth_plan.homes.front());
    plan.services[ts::names::kRegistry] = std::move(reg);
}

} // namespace

std::vector<PlacementGroup>
ccxPlacementGroups(const topo::Machine &machine, const CpuMask &budget)
{
    std::vector<PlacementGroup> groups;
    for (CcxId x = 0; x < machine.numCcxs(); ++x) {
        const CpuMask m = machine.cpusOfCcx(x) & budget;
        if (!m.empty())
            groups.push_back(PlacementGroup{m, machine.nodeOfCcx(x)});
    }
    return groups;
}

std::vector<PlacementGroup>
nodePlacementGroups(const topo::Machine &machine, const CpuMask &budget)
{
    std::vector<PlacementGroup> groups;
    for (NodeId n = 0; n < machine.numNodes(); ++n) {
        const CpuMask m = machine.cpusOfNode(n) & budget;
        if (!m.empty())
            groups.push_back(PlacementGroup{m, n});
    }
    return groups;
}

PlacementPlan
buildPlacement(PlacementKind kind, const topo::Machine &machine,
               const CpuMask &budget, const DemandShares &demand,
               const BaselineSizing &sizing)
{
    if (budget.empty())
        fatal("placement with empty CPU budget");
    if (!budget.subsetOf(machine.allCpus()))
        fatal("placement budget exceeds the machine");

    DemandShares norm = demand;
    norm.normalize();

    PlacementPlan plan;
    plan.kind = kind;

    switch (kind) {
      case PlacementKind::OsDefault: {
        auto add = [&](const std::string &name) {
            const auto &cfg = sizing.byName(name);
            ServicePlan sp;
            sp.replicas = cfg.replicas;
            sp.workers = cfg.workers;
            sp.masks.assign(cfg.replicas, budget);
            sp.homes.assign(cfg.replicas, kInvalidNode);
            plan.services[name] = std::move(sp);
        };
        for (const auto &n : workerServices())
            add(n);
        add(ts::names::kRegistry);
        break;
      }
      case PlacementKind::NodeAware: {
        // Soft NUMA affinity (numactl-per-instance style): baseline
        // replica counts, each replica confined to one node with local
        // memory; the scheduler stays free within the node. Replicas
        // round-robin over nodes so load stays balanced.
        const auto groups = nodePlacementGroups(machine, budget);
        if (groups.empty())
            fatal("placement: budget covers no NUMA node");
        unsigned next = 0;
        auto add = [&](const std::string &name) {
            const auto &cfg = sizing.byName(name);
            ServicePlan sp;
            sp.replicas = cfg.replicas;
            sp.workers = cfg.workers;
            for (unsigned r = 0; r < cfg.replicas; ++r) {
                const Group &g = groups[next++ % groups.size()];
                sp.masks.push_back(g.mask);
                sp.homes.push_back(g.node);
            }
            plan.services[name] = std::move(sp);
        };
        for (const auto &n : workerServices())
            add(n);
        add(ts::names::kRegistry);
        break;
      }
      case PlacementKind::CcxAware:
        planPinned(plan, ccxPlacementGroups(machine, budget), norm, sizing,
                   false, machine.numNodes());
        break;
      case PlacementKind::CcxStripedMem:
        planPinned(plan, ccxPlacementGroups(machine, budget), norm, sizing,
                   true, machine.numNodes());
        break;
    }
    return plan;
}

void
sizeAppFromPlan(teastore::AppParams &params, const PlacementPlan &plan)
{
    auto apply = [&](const std::string &name,
                     teastore::ServiceConfig &cfg) {
        auto it = plan.services.find(name);
        if (it == plan.services.end())
            fatal("plan has no service '", name, "'");
        cfg.replicas = it->second.replicas;
        cfg.workers = it->second.workers;
    };
    apply(ts::names::kWebui, params.webui);
    apply(ts::names::kAuth, params.auth);
    apply(ts::names::kPersistence, params.persistence);
    apply(ts::names::kRecommender, params.recommender);
    apply(ts::names::kImage, params.image);
    apply(ts::names::kRegistry, params.registry);
}

void
applyPlacement(teastore::App &app, const PlacementPlan &plan)
{
    for (svc::Service *svc : app.services()) {
        auto it = plan.services.find(svc->name());
        if (it == plan.services.end())
            fatal("plan has no service '", svc->name(), "'");
        const ServicePlan &sp = it->second;
        if (sp.replicas != svc->replicaCount()) {
            fatal("plan/app replica mismatch for '", svc->name(), "': ",
                  sp.replicas, " vs ", svc->replicaCount());
        }
        for (unsigned r = 0; r < sp.replicas; ++r)
            svc->setReplicaPlacement(r, sp.masks[r], sp.homes[r]);
    }
}

} // namespace microscale::core
