#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/table.hh"

namespace microscale::core
{

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("MICROSCALE_BENCH_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace
{

SweepOutcome
runPoint(const SweepPoint &point)
{
    SweepOutcome out;
    out.label = point.label;
    LogScope scope(point.label);
    try {
        if (point.runner)
            out.result = point.runner(point.config);
        else if (point.refineRounds > 0)
            out.result = runRefined(point.config, point.refineRounds,
                                    &out.refine);
        else
            out.result = runExperiment(point.config);
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    return out;
}

/**
 * Progress goes to stderr in completion order (which is scheduling-
 * dependent); stdout stays bit-identical between serial and parallel
 * runs.
 */
void
progressLine(std::size_t done, std::size_t total,
             const SweepOutcome &out, double wall_s)
{
    std::ostringstream os;
    os << "sweep: [" << done << "/" << total << "] " << out.label;
    if (out.ok) {
        os << " tput=" << formatDouble(out.result.throughputRps, 0)
           << " req/s";
    } else {
        os << " FAILED: " << out.error;
    }
    os << " (" << formatDouble(wall_s, 1) << "s)\n";
    const std::string line = os.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), jobs_(resolveJobs(options.jobs))
{
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    std::vector<SweepOutcome> outcomes(points.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            const auto start = std::chrono::steady_clock::now();
            outcomes[i] = runPoint(points[i]);
            const double wall_s =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const std::size_t n = done.fetch_add(1) + 1;
            if (options_.progress)
                progressLine(n, points.size(), outcomes[i], wall_s);
        }
    };

    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(points.size(), 1)));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return outcomes;
}

} // namespace microscale::core
