/**
 * @file
 * JSON export of experiment results, for scripting and plotting
 * pipelines (msim --json, notebooks, CI dashboards).
 */

#ifndef MICROSCALE_CORE_JSON_HH
#define MICROSCALE_CORE_JSON_HH

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.hh"

namespace microscale::core
{

/**
 * Serialize a RunResult as a single JSON object: headline metrics,
 * per-op latency, per-service counters, scheduler stats, and the
 * per-op breakdowns. Deterministic key order (maps are sorted).
 */
void writeJson(std::ostream &os, const RunResult &result);

/** Convenience: writeJson into a string. */
std::string toJson(const RunResult &result);

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * A parsed JSON document node, for validating and consuming the
 * harness's own emissions (round-trip tests, bench_smoke checks).
 * Object member order is preserved.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object
    std::vector<JsonValue> elements;                        ///< Array

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Object member access; throws std::out_of_range when absent. */
    const JsonValue &at(const std::string &key) const;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed).
 * Throws std::runtime_error with a position message on malformed
 * input.
 */
JsonValue parseJson(std::string_view text);

} // namespace microscale::core

#endif // MICROSCALE_CORE_JSON_HH
