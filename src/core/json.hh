/**
 * @file
 * JSON export of experiment results, for scripting and plotting
 * pipelines (msim --json, notebooks, CI dashboards).
 */

#ifndef MICROSCALE_CORE_JSON_HH
#define MICROSCALE_CORE_JSON_HH

#include <ostream>
#include <string>

#include "core/experiment.hh"

namespace microscale::core
{

/**
 * Serialize a RunResult as a single JSON object: headline metrics,
 * per-op latency, per-service counters, scheduler stats, and the
 * per-op breakdowns. Deterministic key order (maps are sorted).
 */
void writeJson(std::ostream &os, const RunResult &result);

/** Convenience: writeJson into a string. */
std::string toJson(const RunResult &result);

} // namespace microscale::core

#endif // MICROSCALE_CORE_JSON_HH
