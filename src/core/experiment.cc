#include "core/experiment.hh"

#include <memory>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "cpu/exec.hh"
#include "sim/simulation.hh"

namespace microscale::core
{

namespace
{

OpLatency
summarizeHistogram(const QuantileHistogram &h)
{
    OpLatency l;
    l.count = h.count();
    l.meanMs = h.mean() / static_cast<double>(kMillisecond);
    l.p50Ms = h.p50() / static_cast<double>(kMillisecond);
    l.p95Ms = h.p95() / static_cast<double>(kMillisecond);
    l.p99Ms = h.p99() / static_cast<double>(kMillisecond);
    return l;
}

os::SchedStats
schedDelta(const os::SchedStats &end, const os::SchedStats &start)
{
    os::SchedStats d;
    d.wakeups = end.wakeups - start.wakeups;
    d.contextSwitches = end.contextSwitches - start.contextSwitches;
    d.preemptions = end.preemptions - start.preemptions;
    d.migrations = end.migrations - start.migrations;
    d.ccxMigrations = end.ccxMigrations - start.ccxMigrations;
    d.balancePulls = end.balancePulls - start.balancePulls;
    d.newIdlePulls = end.newIdlePulls - start.newIdlePulls;
    return d;
}

} // namespace

RunResult
runExperiment(const ExperimentConfig &config)
{
    sim::Simulation sim;
    topo::Machine machine(config.machine);
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, config.sched, config.seed);
    net::Network network(sim, config.net, config.seed);
    svc::Mesh mesh(kernel, network, config.rpc, config.seed);
    mesh.setResilience(config.resilience);
    mesh.setOverload(config.overload);
    mesh.setTrace(config.trace);

    const CpuMask budget = budgetMask(machine, config.cores, config.smt);
    PlacementPlan plan =
        config.planOverride
            ? config.planOverride(machine, budget)
            : buildPlacement(config.placement, machine, budget,
                             config.demand, config.sizing);

    teastore::AppParams app_params = config.app;
    sizeAppFromPlan(app_params, plan);
    teastore::App app(mesh, app_params, config.seed);
    applyPlacement(app, plan);

    std::unique_ptr<svc::BrownoutController> brownout;
    if (config.overload.brownout.enabled) {
        brownout = std::make_unique<svc::BrownoutController>(
            app.webui(), config.overload.brownout);
        brownout->setAccountingWindow(config.warmup,
                                      config.warmup + config.measure);
        app.setBrownout(brownout.get());
    }

    // Cluster construction (shard/cache services, node router, node
    // scaler) happens before the fault injector arms so cluster fault
    // scripts validate against the full service registry.
    if (config.postBuild)
        config.postBuild(sim, mesh, app);

    std::unique_ptr<svc::FaultInjector> injector;
    if (!config.faults.empty()) {
        injector =
            std::make_unique<svc::FaultInjector>(mesh, config.faults);
        injector->arm();
    }

    const loadgen::BrowseMix &mix = config.mix;
    std::unique_ptr<loadgen::ClosedLoopDriver> closed;
    std::unique_ptr<loadgen::OpenLoopDriver> open;
    loadgen::Measurement *measurement = nullptr;
    if (config.openLoopRps > 0.0) {
        loadgen::OpenLoopParams p;
        p.arrivalRps = config.openLoopRps;
        p.schedule = config.loadSchedule;
        p.ledger = config.ledger;
        open = std::make_unique<loadgen::OpenLoopDriver>(app, mix, p,
                                                         config.seed);
        measurement = &open->measurement();
    } else {
        loadgen::ClosedLoopParams lp = config.load;
        lp.ledger = config.ledger;
        closed = std::make_unique<loadgen::ClosedLoopDriver>(
            app, mix, lp, config.seed);
        measurement = &closed->measurement();
    }
    measurement->setWindow(config.warmup, config.warmup + config.measure);

    kernel.start();
    app.start();
    if (brownout)
        brownout->start();
    if (closed)
        closed->start();
    else
        open->start();

    // Warmup, then snapshot everything.
    sim.runUntil(config.warmup);
    engine.bankAll();
    std::map<std::string, cpu::PerfCounters> at_warmup;
    for (svc::Service *s : app.services())
        at_warmup[s->name()] = s->aggregateCounters();
    const os::SchedStats sched_at_warmup = kernel.stats();
    const std::vector<double> busy_at_warmup = engine.cpuBusySnapshot();
    // Per-op histograms restart at the window so breakdowns are clean.
    for (svc::Service *s : app.services())
        s->resetStats();

    // Measurement window.
    sim.runUntil(config.warmup + config.measure);
    engine.bankAll();

    RunResult result;
    result.plan = plan;
    result.budgetCpus = budget.count();
    result.eventsProcessed = sim.eventsProcessed();

    result.throughputRps = measurement->throughputRps();
    result.latency = summarizeHistogram(measurement->latencyNs());
    for (teastore::OpType op : teastore::allOps()) {
        result.perOp[teastore::opName(op)] =
            summarizeHistogram(measurement->latencyNsFor(op));
    }

    cpu::PerfCounters total;
    for (svc::Service *s : app.services()) {
        const cpu::PerfCounters delta =
            s->aggregateCounters().delta(at_warmup[s->name()]);
        result.servicePerf[s->name()] =
            perf::makeRow(s->name(), delta, config.measure);
        total.merge(delta);
    }
    result.total = perf::makeRow("total", total, config.measure);
    result.sched = schedDelta(kernel.stats(), sched_at_warmup);
    result.avgFreqGhz = total.ghz();

    constexpr double kMs = static_cast<double>(kMillisecond);
    for (svc::Service *s : app.services()) {
        for (const auto &[op, stats] : s->opStats()) {
            OpBreakdown b;
            b.count = stats.requests;
            b.serviceTimeMeanMs = stats.serviceTimeNs.mean() / kMs;
            b.queueWaitMeanMs = stats.queueWaitNs.mean() / kMs;
            b.computeMeanMs = stats.computeNs.mean() / kMs;
            b.stallMeanMs = stats.stallNs.mean() / kMs;
            b.serviceTimeP99Ms = stats.serviceTimeNs.p99() / kMs;
            b.okCount = stats.statusCounts[svc::statusIndex(svc::Status::Ok)];
            b.timeoutCount =
                stats.statusCounts[svc::statusIndex(svc::Status::Timeout)];
            b.overloadCount =
                stats.statusCounts[svc::statusIndex(svc::Status::Overload)];
            b.unavailableCount = stats.statusCounts[svc::statusIndex(
                svc::Status::Unavailable)];
            result.breakdown[s->name()][op] = b;
        }
    }

    {
        ResilienceSummary &rs = result.resilience;
        rs.active = config.resilience.active() || !config.faults.empty() ||
                    app_params.degradedFallbacks ||
                    config.overload.active();
        rs.goodputRps = measurement->goodputRps();
        const std::uint64_t completed = measurement->completed();
        rs.okCount = measurement->statusCount(svc::Status::Ok);
        rs.timeoutCount = measurement->statusCount(svc::Status::Timeout);
        rs.overloadCount = measurement->statusCount(svc::Status::Overload);
        rs.unavailableCount =
            measurement->statusCount(svc::Status::Unavailable);
        rs.rejectedCount = measurement->statusCount(svc::Status::Rejected);
        rs.degradedCount = measurement->degradedCount();
        rs.errorRate =
            completed > 0 ? static_cast<double>(measurement->errorCount()) /
                                static_cast<double>(completed)
                          : 0.0;
        rs.degradedShare =
            rs.okCount > 0 ? static_cast<double>(rs.degradedCount) /
                                 static_cast<double>(rs.okCount)
                           : 0.0;
        rs.retries = mesh.retryStats().retries;
        rs.retriesDenied = mesh.retryStats().budgetDenied;
        rs.clientTimeouts = mesh.retryStats().clientTimeouts;
        for (svc::Service *s : app.services()) {
            const svc::ResilienceCounters &c = s->resilienceCounters();
            rs.shed += c.shed;
            rs.deadlineDrops += c.deadlineDrops;
            rs.breakerOpens += c.breakerOpens;
        }
    }

    harvestOverload(config, app, *measurement, brownout.get(), result);
    harvestTrace(config, mesh, config.warmup,
                 config.warmup + config.measure, result);

    {
        GrayFailSummary &gf = result.grayfail;
        bool gray_script = false;
        for (const svc::FaultEvent &e : config.faults.events) {
            switch (e.kind) {
            case svc::FaultEvent::Kind::ReplicaSlow:
            case svc::FaultEvent::Kind::PacketLoss:
            case svc::FaultEvent::Kind::PacketDup:
            case svc::FaultEvent::Kind::Partition:
            case svc::FaultEvent::Kind::PartitionHeal:
            case svc::FaultEvent::Kind::CorrelatedDown:
            case svc::FaultEvent::Kind::CorrelatedUp:
            case svc::FaultEvent::Kind::NodeDown:
            case svc::FaultEvent::Kind::NodeUp:
            case svc::FaultEvent::Kind::FabricLoss:
            case svc::FaultEvent::Kind::FabricPartition:
            case svc::FaultEvent::Kind::FabricHeal:
                gray_script = true;
                break;
            default:
                break;
            }
        }
        gf.ejectionEnabled = config.resilience.outlier.enabled;
        gf.active = gf.ejectionEnabled || gray_script;
        if (gf.active) {
            for (svc::Service *s : app.services()) {
                const svc::ResilienceCounters &c = s->resilienceCounters();
                gf.ejections += c.outlierEjections;
                gf.unejections += c.outlierUnejections;
                gf.ejectionsDenied += c.outlierEjectionsDenied;
                gf.ejectedAtEnd += s->ejectedReplicaCount();
            }
            gf.packetsDropped = network.stats().dropped;
            gf.packetsDuplicated = network.stats().duplicated;
            gf.packetsBlackholed = network.stats().blackholed;
            if (injector) {
                gf.faultsApplied = injector->applied();
                gf.faultsSkipped = injector->skipped();
            }
        }
    }

    const std::vector<double> busy_at_end = engine.cpuBusySnapshot();
    double busy = 0.0;
    for (CpuId c : budget)
        busy += busy_at_end[c] - busy_at_warmup[c];
    result.cpuUtilization =
        busy / (static_cast<double>(budget.count()) *
                static_cast<double>(config.measure));

    if (config.harvestExtra)
        config.harvestExtra(sim, mesh, app, result);

    // Optional quiesce: stop the drivers and let in-flight work finish
    // (complete or time out). Every periodic timer in the system is a
    // background event, so run() terminates once the last foreground
    // request settles. Harvesting already happened — results are
    // unaffected; this exists for end-of-run invariant checks.
    if (config.drainAtEnd) {
        if (closed)
            closed->stopIssuing();
        if (open)
            open->stopIssuing();
        sim.run();
        if (config.postDrain)
            config.postDrain(sim, mesh, app);
    }

    // Orderly teardown: stop sources before the world is destroyed.
    if (closed)
        closed->stopIssuing();
    if (open)
        open->stopIssuing();
    if (brownout) {
        app.setBrownout(nullptr);
        brownout->stop();
    }
    app.stop();
    kernel.stop();
    return result;
}

void
harvestOverload(const ExperimentConfig &config, teastore::App &app,
                const loadgen::Measurement &measurement,
                const svc::BrownoutController *brownout,
                RunResult &result)
{
    OverloadSummary &ov = result.overload;
    ov.active = config.overload.active();
    if (!ov.active)
        return;
    ov.admission = svc::admissionName(config.overload.admission.kind);
    ov.codel = config.overload.codel.enabled;
    ov.adaptiveLifo = config.overload.codel.lifoUnderOverload;
    ov.criticalityAware = config.overload.criticalityAware;
    ov.brownout = config.overload.brownout.enabled;
    using svc::Criticality;
    for (svc::Service *s : app.services()) {
        const svc::OverloadCounters &c = s->overloadCounters();
        ov.shedCritical +=
            c.admissionRejects[svc::criticalityIndex(Criticality::Critical)];
        ov.shedNormal +=
            c.admissionRejects[svc::criticalityIndex(Criticality::Normal)];
        ov.shedSheddable +=
            c.admissionRejects[svc::criticalityIndex(Criticality::Sheddable)];
        ov.codelDrops += c.codelDrops;
        ov.lifoDequeues += c.lifoDequeues;
    }
    ov.rejectedTotal = measurement.statusCount(svc::Status::Rejected);
    const svc::LimiterTrace trace = app.webui().limiterSummary();
    if (trace.valid) {
        ov.limitInitial = trace.initial;
        ov.limitMin = trace.minSeen;
        ov.limitMax = trace.maxSeen;
        ov.limitFinal = trace.last;
    }
    if (brownout) {
        const auto &t = brownout->telemetry();
        ov.brownoutDutyCycle = t.windowSeconds > 0.0
                                   ? t.dutyCycleSeconds / t.windowSeconds
                                   : 0.0;
        ov.dimmerMin = t.dimmerMin;
        ov.dimmerFinal = t.dimmerLast;
        ov.brownoutSkips = t.skips;
    }
}

void
harvestTrace(const ExperimentConfig &config, const svc::Mesh &mesh,
             Tick windowStart, Tick windowEnd, RunResult &result)
{
    TraceSummary &tr = result.trace;
    const std::shared_ptr<trace::TraceStore> &store = mesh.traceStore();
    tr.active = static_cast<bool>(store);
    if (!tr.active)
        return;
    tr.sampleRate = config.trace.sampleRate;
    tr.rootsSeen = store->rootsSeen();
    tr.tracesSampled = store->traces().size();
    tr.spanCount = store->spanCount();
    tr.attribution = trace::attributeTraces(
        *store, teastore::names::kWebui, windowStart, windowEnd);
    tr.tracesAnalyzed = tr.attribution.traces;
    tr.meanE2eMs = tr.tracesAnalyzed
                       ? tr.attribution.e2eNs /
                             (static_cast<double>(tr.tracesAnalyzed) *
                              static_cast<double>(kMillisecond))
                       : 0.0;
    tr.store = store;
}

DemandShares
measureDemand(ExperimentConfig config)
{
    config.placement = PlacementKind::OsDefault;
    config.warmup = 300 * kMillisecond;
    config.measure = 700 * kMillisecond;
    const RunResult r = runExperiment(config);

    DemandShares d;
    d.webui = r.servicePerf.at(teastore::names::kWebui).utilizationCpus;
    d.auth = r.servicePerf.at(teastore::names::kAuth).utilizationCpus;
    d.persistence =
        r.servicePerf.at(teastore::names::kPersistence).utilizationCpus;
    d.recommender =
        r.servicePerf.at(teastore::names::kRecommender).utilizationCpus;
    d.image = r.servicePerf.at(teastore::names::kImage).utilizationCpus;
    d.normalize();
    return d;
}

DemandShares
demandFromRun(const RunResult &result)
{
    DemandShares d;
    d.webui =
        result.servicePerf.at(teastore::names::kWebui).utilizationCpus;
    d.auth =
        result.servicePerf.at(teastore::names::kAuth).utilizationCpus;
    d.persistence = result.servicePerf.at(teastore::names::kPersistence)
                        .utilizationCpus;
    d.recommender = result.servicePerf.at(teastore::names::kRecommender)
                        .utilizationCpus;
    d.image =
        result.servicePerf.at(teastore::names::kImage).utilizationCpus;
    d.normalize();
    return d;
}

RunResult
runRefined(const ExperimentConfig &config, unsigned rounds,
           RefineTrace *trace)
{
    // One working copy for all rounds; only the demand shares change
    // between runs.
    ExperimentConfig work = config;
    if (trace) {
        trace->perRound.clear();
        trace->perRound.push_back(work.demand);
    }
    RunResult result = runExperiment(work);
    for (unsigned i = 0; i < rounds; ++i) {
        work.demand = demandFromRun(result);
        if (trace)
            trace->perRound.push_back(work.demand);
        result = runExperiment(work);
    }
    if (trace)
        trace->final = demandFromRun(result);
    return result;
}

std::string
summarize(const RunResult &r)
{
    std::ostringstream os;
    os << "tput=" << formatDouble(r.throughputRps, 0) << " req/s"
       << "  p50=" << formatDouble(r.latency.p50Ms, 2) << "ms"
       << "  p95=" << formatDouble(r.latency.p95Ms, 2) << "ms"
       << "  p99=" << formatDouble(r.latency.p99Ms, 2) << "ms"
       << "  util=" << formatDouble(r.cpuUtilization * 100.0, 1) << "%"
       << "  freq=" << formatDouble(r.avgFreqGhz, 2) << "GHz";
    return os.str();
}

} // namespace microscale::core
