#include "apps/socialnet/app.hh"

#include <string>
#include <vector>

#include "base/logging.hh"

namespace microscale::socialnet
{

namespace
{

// Nominal instruction budgets (before AppParams::workScale),
// calibrated to the same latency scale as the TeaStore model: a full
// timeline read costs a few ms of CPU across the chain, with the bulk
// in the orchestrators and the storage fan-out.

// Frontend page assembly / api-gateway auth + routing.
constexpr double kFrontendRender = 1.8e6;
constexpr double kGatewayWork = 0.5e6;

// Orchestrators.
constexpr double kTimelineMerge = 1.2e6;
constexpr double kComposeLogic = 1.0e6;
constexpr double kWriteFanout = 0.4e6;

// Mid-tier services.
constexpr double kGraphLogic = 0.4e6;
constexpr double kCacheLogic = 0.12e6;
constexpr double kStorageMget = 0.5e6;
constexpr double kStoragePut = 0.6e6;
constexpr double kTextProcess = 0.8e6;
constexpr double kUniqueId = 0.08e6;
constexpr double kMediaProcess = 1.5e6;
constexpr double kUserLogic = 0.3e6;

// Leaves.
constexpr double kUrlShorten = 0.25e6;
constexpr double kUserMention = 0.3e6;
constexpr double kCacheGet = 0.12e6;
constexpr double kCachePut = 0.15e6;
constexpr double kDbGet = 0.7e6;
constexpr double kDbPut = 0.9e6;
constexpr double kMediaStorePut = 1.2e6;

// Payload sizes.
constexpr std::uint32_t kSmallReq = 400;
constexpr std::uint32_t kComposeReq = 2 * 1024;
constexpr std::uint32_t kTimelineBytes = 20 * 1024;
constexpr std::uint32_t kPostBytes = 2 * 1024;
constexpr std::uint32_t kAckBytes = 256;

// Work profiles, following the paper's characterization of
// microservice code (low IPC, big instruction footprints, large
// kernel-mode share): the same qualitative families as TeaStore's,
// re-weighted for this graph's tiers.

const cpu::WorkProfile &
frontendProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "sn-frontend";
        q.ipcBase = 0.75;
        q.branchMpki = 7.0;
        q.icacheMpki = 18.0;
        q.l3Apki = 3.5;
        q.wssBytes = 8.0 * 1024 * 1024;
        q.smtYield = 0.68;
        q.kernelShare = 0.30;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
gatewayProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "sn-gateway";
        q.ipcBase = 0.90;
        q.branchMpki = 5.0;
        q.icacheMpki = 14.0;
        q.l3Apki = 2.0;
        q.wssBytes = 2.0 * 1024 * 1024;
        q.smtYield = 0.65;
        q.kernelShare = 0.60;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
logicProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "sn-logic";
        q.ipcBase = 1.00;
        q.branchMpki = 5.0;
        q.icacheMpki = 12.0;
        q.l3Apki = 2.5;
        q.wssBytes = 4.0 * 1024 * 1024;
        q.smtYield = 0.62;
        q.kernelShare = 0.20;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
cacheProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "sn-cache";
        q.ipcBase = 1.20;
        q.branchMpki = 3.0;
        q.icacheMpki = 6.0;
        q.l3Apki = 4.0;
        q.wssBytes = 16.0 * 1024 * 1024;
        q.smtYield = 0.72;
        q.kernelShare = 0.50;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
storageProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "sn-storage";
        q.ipcBase = 0.85;
        q.branchMpki = 6.0;
        q.icacheMpki = 12.0;
        q.l3Apki = 5.5;
        q.wssBytes = 12.0 * 1024 * 1024;
        q.smtYield = 0.70;
        q.kernelShare = 0.30;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
dbProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "sn-db";
        q.ipcBase = 0.80;
        q.branchMpki = 6.5;
        q.icacheMpki = 10.0;
        q.l3Apki = 6.5;
        q.wssBytes = 20.0 * 1024 * 1024;
        q.smtYield = 0.72;
        q.kernelShare = 0.25;
        return q;
    }();
    return p;
}

const cpu::WorkProfile &
mediaProfile()
{
    static const cpu::WorkProfile p = [] {
        cpu::WorkProfile q;
        q.name = "sn-media";
        q.ipcBase = 1.35;
        q.branchMpki = 2.0;
        q.icacheMpki = 3.0;
        q.l3Apki = 3.0;
        q.wssBytes = 6.0 * 1024 * 1024;
        q.smtYield = 0.55;
        q.kernelShare = 0.10;
        return q;
    }();
    return p;
}

svc::Payload
small(std::uint64_t arg0)
{
    svc::Payload p;
    p.bytes = kSmallReq;
    p.arg0 = arg0;
    return p;
}

/**
 * Run an absorbed subtree budget as a chain of leaf-sized compute
 * draws. Truncated depths replace downstream services with local
 * work; a single compute over the whole budget would take one
 * lognormal draw (computeCv on the full amount) and give the shallow
 * graphs a far wider tail than the sequential sum of per-service
 * draws they stand in for, skewing depth sweeps.
 */
void
absorbCompute(svc::HandlerCtx &ctx, double remaining,
              std::function<void()> done)
{
    constexpr double kAbsorbChunk = 0.6e6;
    const double step = std::min(remaining, kAbsorbChunk);
    ctx.compute(step, [&ctx, remaining, step,
                       done = std::move(done)]() mutable {
        if (remaining - step <= 0.0) {
            done();
            return;
        }
        absorbCompute(ctx, remaining - step, std::move(done));
    });
}

} // namespace

const char *
opName(OpType op)
{
    switch (op) {
      case OpType::ReadHome:
        return "readHome";
      case OpType::ComposePost:
        return "composePost";
      case OpType::ReadUser:
        return "readUser";
      case OpType::Follow:
        return "follow";
    }
    MS_PANIC("invalid OpType");
}

std::array<OpType, kNumOps>
allOps()
{
    return {OpType::ReadHome, OpType::ComposePost, OpType::ReadUser,
            OpType::Follow};
}

std::vector<svc::CriticalityRule>
criticalityRules()
{
    using svc::Criticality;
    return {
        {names::kComposePost, "*", Criticality::Critical},
        {names::kWriteHomeTimeline, "*", Criticality::Critical},
        {names::kPostStorage, "put", Criticality::Critical},
        {names::kSocialGraph, "follow", Criticality::Critical},
        {names::kMedia, "*", Criticality::Sheddable},
        {names::kMediaStore, "*", Criticality::Sheddable},
    };
}

App::App(svc::Mesh &mesh, AppParams params, std::uint64_t seed)
    : mesh_(mesh), params_(params)
{
    (void)seed;
    if (params_.depth < 1 || params_.depth > 5)
        fatal("socialnet depth must be in 1..5, got ", params_.depth);
    if (params_.fanWidth < 1)
        fatal("socialnet fanWidth must be >= 1");

    auto make = [&](const char *name, const cpu::WorkProfile &profile,
                    const TierConfig &cfg) {
        svc::ServiceParams sp;
        sp.name = name;
        sp.profile = profile;
        sp.replicas = cfg.replicas;
        sp.workersPerReplica = cfg.workers;
        sp.batchedTiming = params_.batchedTiming;
        services_.push_back(mesh_.createService(sp));
        return services_.back();
    };

    make(names::kFrontend, frontendProfile(), params_.frontend);
    make(names::kApiGateway, gatewayProfile(), params_.gateway);
    make(names::kHomeTimeline, logicProfile(), params_.logic);
    make(names::kUserTimeline, logicProfile(), params_.logic);
    make(names::kComposePost, logicProfile(), params_.logic);
    make(names::kWriteHomeTimeline, logicProfile(), params_.logic);
    make(names::kText, logicProfile(), params_.logic);
    make(names::kUniqueId, logicProfile(), params_.logic);
    make(names::kMedia, mediaProfile(), params_.logic);
    make(names::kUser, logicProfile(), params_.logic);
    make(names::kSocialGraph, logicProfile(), params_.logic);
    make(names::kPostStorage, storageProfile(), params_.storage);
    make(names::kUrlShorten, logicProfile(), params_.leaf);
    make(names::kUserMention, logicProfile(), params_.leaf);
    make(names::kMediaStore, mediaProfile(), params_.leaf);
    make(names::kUserDb, dbProfile(), params_.leaf);
    make(names::kGraphDb, dbProfile(), params_.leaf);
    make(names::kPostCache, cacheProfile(), params_.leaf);
    make(names::kPostDb, dbProfile(), params_.leaf);
    make(names::kTimelineCache, cacheProfile(), params_.leaf);
    make(names::kTimelineDb, dbProfile(), params_.leaf);

    installFrontend();
    installApiGateway();
    installTimelines();
    installCompose();
    installSocialGraph();
    installStorage();
    installLeaves();
}

OpType
App::sampleOp(Rng &rng) const
{
    static const std::vector<double> weights = {60, 25, 10, 5};
    return allOps()[rng.weightedIndex(weights)];
}

svc::Payload
App::sampleRequest(OpType op, Rng &rng) const
{
    svc::Payload p;
    p.bytes = op == OpType::ComposePost ? kComposeReq : kSmallReq;
    p.arg0 = rng.uniformInt(1, params_.users);
    if (op == OpType::Follow)
        p.arg1 = rng.uniformInt(1, params_.users);
    return p;
}

void
App::installFrontend()
{
    using svc::HandlerCtx;
    using svc::Payload;
    svc::Service &fe = mesh_.service(names::kFrontend);

    // Per-op absorbed budgets when the graph is cut at depth 1: the
    // frontend performs a coarse approximation of the whole
    // downstream tree locally, keeping total work roughly flat so
    // depth sweeps isolate the fan-out synchronization effect.
    const double read_tree =
        kGatewayWork + kTimelineMerge + kGraphLogic + kDbGet +
        kCacheLogic + kCacheGet +
        static_cast<double>(params_.fanWidth) *
            (kStorageMget + kCacheGet + params_.cacheMissRatio * kDbGet);
    const double compose_tree =
        kGatewayWork + kComposeLogic + kTextProcess + kUrlShorten +
        kUserMention + kUniqueId + kMediaProcess + kMediaStorePut +
        kUserLogic + kDbGet + kStoragePut + kCachePut + kDbPut +
        kWriteFanout + kGraphLogic + kDbGet + kCacheLogic + kDbPut;
    const double follow_tree = kGatewayWork + kGraphLogic + kDbPut;

    auto page = [this, &fe](const char *op, const char *gw_op,
                            double absorbed, std::uint32_t bytes) {
        fe.addOp(op, [this, gw_op, absorbed, bytes](HandlerCtx &ctx) {
            if (!reaches(1)) {
                ctx.compute(scaled(kFrontendRender),
                            [this, &ctx, absorbed, bytes] {
                                absorbCompute(ctx, scaled(absorbed),
                                              [&ctx, bytes] {
                                                  ctx.response().bytes =
                                                      bytes;
                                                  ctx.done();
                                              });
                            });
                return;
            }
            Payload req = ctx.request();
            ctx.call(names::kApiGateway, gw_op, req,
                     [this, &ctx, bytes](const Payload &) {
                         ctx.compute(scaled(kFrontendRender),
                                     [&ctx, bytes] {
                                         ctx.response().bytes = bytes;
                                         ctx.done();
                                     });
                     });
        });
    };

    page("readHome", "homeTimeline", read_tree, kTimelineBytes);
    page("composePost", "composePost", compose_tree, kAckBytes);
    page("readUser", "userTimeline", read_tree, kTimelineBytes);
    page("follow", "follow", follow_tree, kAckBytes);
}

void
App::installApiGateway()
{
    using svc::HandlerCtx;
    using svc::Payload;
    svc::Service &gw = mesh_.service(names::kApiGateway);

    const double read_tree =
        kTimelineMerge + kGraphLogic + kDbGet + kCacheLogic + kCacheGet +
        static_cast<double>(params_.fanWidth) *
            (kStorageMget + kCacheGet + params_.cacheMissRatio * kDbGet);
    const double compose_tree =
        kComposeLogic + kTextProcess + kUrlShorten + kUserMention +
        kUniqueId + kMediaProcess + kMediaStorePut + kUserLogic + kDbGet +
        kStoragePut + kCachePut + kDbPut + kWriteFanout + kGraphLogic +
        kDbGet + kCacheLogic + kDbPut;
    const double follow_tree = kGraphLogic + kDbPut;

    auto route = [this, &gw](const char *op, const char *target,
                             const char *target_op, double absorbed,
                             std::uint32_t bytes) {
        gw.addOp(op, [this, target, target_op, absorbed,
                      bytes](HandlerCtx &ctx) {
            Payload req = ctx.request();
            ctx.compute(
                scaled(kGatewayWork),
                [this, &ctx, target, target_op, absorbed, bytes, req] {
                    if (!reaches(2)) {
                        absorbCompute(ctx, scaled(absorbed),
                                      [&ctx, bytes] {
                                          ctx.response().bytes = bytes;
                                          ctx.done();
                                      });
                        return;
                    }
                    ctx.call(target, target_op, req,
                             [&ctx, bytes](const Payload &) {
                                 ctx.response().bytes = bytes;
                                 ctx.done();
                             });
                });
        });
    };

    route("homeTimeline", names::kHomeTimeline, "read", read_tree,
          kTimelineBytes);
    route("composePost", names::kComposePost, "compose", compose_tree,
          kAckBytes);
    route("userTimeline", names::kUserTimeline, "read", read_tree,
          kTimelineBytes);
    route("follow", names::kSocialGraph, "follow", follow_tree,
          kAckBytes);
}

void
App::installTimelines()
{
    using svc::HandlerCtx;
    using svc::Payload;

    const double subtree =
        kGraphLogic + kDbGet + kCacheLogic + kCacheGet +
        static_cast<double>(params_.fanWidth) *
            (kStorageMget + kCacheGet + params_.cacheMissRatio * kDbGet);

    // Both timelines share the same shape: resolve the id set (graph
    // or user profile + cache), then mget posts fanWidth-wide from
    // post-storage — the barrier where one slow leg gates the page.
    auto timeline = [this, subtree](const char *svc_name,
                                    const char *pre_service,
                                    const char *pre_op) {
        mesh_.service(svc_name)
            .addOp("read", [this, subtree, pre_service,
                            pre_op](HandlerCtx &ctx) {
                if (!reaches(3)) {
                    ctx.compute(scaled(kTimelineMerge),
                                [this, &ctx, subtree] {
                                    absorbCompute(
                                        ctx, scaled(subtree), [&ctx] {
                                            ctx.response().bytes =
                                                kTimelineBytes;
                                            ctx.done();
                                        });
                                });
                    return;
                }
                const std::uint64_t uid = ctx.request().arg0;
                std::vector<HandlerCtx::CallSpec> pre;
                pre.push_back({pre_service, pre_op, small(uid)});
                pre.push_back({names::kTimelineCache, "get", small(uid)});
                ctx.callAll(
                    std::move(pre),
                    [this, &ctx, uid](const std::vector<Payload> &) {
                        std::vector<HandlerCtx::CallSpec> gets;
                        for (unsigned i = 0; i < params_.fanWidth; ++i) {
                            svc::Payload req = small(uid);
                            req.arg1 = i;
                            gets.push_back({names::kPostStorage, "mget",
                                            req});
                        }
                        ctx.callAll(
                            std::move(gets),
                            [this, &ctx](const std::vector<Payload> &) {
                                ctx.compute(scaled(kTimelineMerge),
                                            [&ctx] {
                                                ctx.response().bytes =
                                                    kTimelineBytes;
                                                ctx.done();
                                            });
                            });
                    });
            });
    };

    timeline(names::kHomeTimeline, names::kSocialGraph, "following");
    timeline(names::kUserTimeline, names::kUser, "lookup");
}

void
App::installCompose()
{
    using svc::HandlerCtx;
    using svc::Payload;

    const double subtree =
        kTextProcess + kUrlShorten + kUserMention + kUniqueId +
        kMediaProcess + kMediaStorePut + kUserLogic + kDbGet +
        kStoragePut + kCachePut + kDbPut + kWriteFanout + kGraphLogic +
        kDbGet + kCacheLogic + kDbPut;

    mesh_.service(names::kComposePost)
        .addOp("compose", [this, subtree](HandlerCtx &ctx) {
            if (!reaches(3)) {
                ctx.compute(scaled(kComposeLogic), [this, &ctx, subtree] {
                    absorbCompute(ctx, scaled(subtree), [&ctx] {
                        ctx.response().bytes = kAckBytes;
                        ctx.done();
                    });
                });
                return;
            }
            const std::uint64_t uid = ctx.request().arg0;
            std::vector<HandlerCtx::CallSpec> enrich;
            svc::Payload text_req = small(uid);
            text_req.bytes = kComposeReq;
            enrich.push_back({names::kText, "process", text_req});
            enrich.push_back({names::kUniqueId, "gen", small(uid)});
            svc::Payload media_req = small(uid);
            media_req.bytes = kComposeReq;
            enrich.push_back({names::kMedia, "upload", media_req});
            enrich.push_back({names::kUser, "lookup", small(uid)});
            ctx.callAll(
                std::move(enrich),
                [this, &ctx, uid](const std::vector<Payload> &) {
                    std::vector<HandlerCtx::CallSpec> persist;
                    svc::Payload post = small(uid);
                    post.bytes = kPostBytes;
                    persist.push_back({names::kPostStorage, "put", post});
                    persist.push_back(
                        {names::kWriteHomeTimeline, "fanout", small(uid)});
                    ctx.callAll(
                        std::move(persist),
                        [this, &ctx](const std::vector<Payload> &) {
                            ctx.compute(scaled(kComposeLogic), [&ctx] {
                                ctx.response().bytes = kAckBytes;
                                ctx.done();
                            });
                        });
                });
        });

    mesh_.service(names::kWriteHomeTimeline)
        .addOp("fanout", [this](HandlerCtx &ctx) {
            const std::uint64_t uid = ctx.request().arg0;
            ctx.compute(scaled(kWriteFanout), [this, &ctx, uid] {
                if (!reaches(4)) {
                    absorbCompute(ctx,
                                  scaled(kGraphLogic + kDbGet +
                                         kCacheLogic + kDbPut),
                                  [&ctx] {
                                      ctx.response().bytes = kAckBytes;
                                      ctx.done();
                                  });
                    return;
                }
                std::vector<HandlerCtx::CallSpec> legs;
                legs.push_back(
                    {names::kSocialGraph, "followers", small(uid)});
                legs.push_back(
                    {names::kTimelineCache, "put", small(uid)});
                ctx.callAll(std::move(legs),
                            [&ctx](const std::vector<Payload> &) {
                                ctx.response().bytes = kAckBytes;
                                ctx.done();
                            });
            });
        });

    mesh_.service(names::kText).addOp(
        "process", [this](HandlerCtx &ctx) {
            ctx.compute(scaled(kTextProcess), [this, &ctx] {
                if (!reaches(4)) {
                    absorbCompute(ctx, scaled(kUrlShorten + kUserMention),
                                  [&ctx] { ctx.done(); });
                    return;
                }
                const std::uint64_t uid = ctx.request().arg0;
                std::vector<HandlerCtx::CallSpec> legs;
                legs.push_back(
                    {names::kUrlShorten, "shorten", small(uid)});
                legs.push_back(
                    {names::kUserMention, "resolve", small(uid)});
                ctx.callAll(std::move(legs),
                            [&ctx](const std::vector<Payload> &) {
                                ctx.done();
                            });
            });
        });

    mesh_.service(names::kUniqueId).addOp("gen", [this](HandlerCtx &ctx) {
        ctx.compute(scaled(kUniqueId), [&ctx] { ctx.done(); });
    });

    mesh_.service(names::kMedia).addOp(
        "upload", [this](HandlerCtx &ctx) {
            ctx.compute(scaled(kMediaProcess), [this, &ctx] {
                if (!reaches(4)) {
                    absorbCompute(ctx, scaled(kMediaStorePut),
                                  [&ctx] { ctx.done(); });
                    return;
                }
                svc::Payload req = small(ctx.request().arg0);
                req.bytes = kPostBytes;
                ctx.call(names::kMediaStore, "put", req,
                         [&ctx](const Payload &) { ctx.done(); });
            });
        });

    mesh_.service(names::kUser).addOp(
        "lookup", [this](HandlerCtx &ctx) {
            ctx.compute(scaled(kUserLogic), [this, &ctx] {
                if (!reaches(4)) {
                    absorbCompute(ctx, scaled(kDbGet),
                                  [&ctx] { ctx.done(); });
                    return;
                }
                ctx.call(names::kUserDb, "get",
                         small(ctx.request().arg0),
                         [&ctx](const Payload &) { ctx.done(); });
            });
        });
}

void
App::installSocialGraph()
{
    using svc::HandlerCtx;
    using svc::Payload;
    svc::Service &sg = mesh_.service(names::kSocialGraph);

    auto read = [this, &sg](const char *op) {
        sg.addOp(op, [this](HandlerCtx &ctx) {
            ctx.compute(scaled(kGraphLogic), [this, &ctx] {
                if (!reaches(4)) {
                    absorbCompute(ctx, scaled(kDbGet),
                                  [&ctx] { ctx.done(); });
                    return;
                }
                ctx.call(names::kGraphDb, "get",
                         small(ctx.request().arg0),
                         [&ctx](const Payload &) { ctx.done(); });
            });
        });
    };
    read("following");
    read("followers");

    sg.addOp("follow", [this](HandlerCtx &ctx) {
        ctx.compute(scaled(kGraphLogic), [this, &ctx] {
            if (!reaches(4)) {
                absorbCompute(ctx, scaled(kDbPut), [&ctx] {
                    ctx.response().bytes = kAckBytes;
                    ctx.done();
                });
                return;
            }
            ctx.call(names::kGraphDb, "put", small(ctx.request().arg0),
                     [&ctx](const Payload &) {
                         ctx.response().bytes = kAckBytes;
                         ctx.done();
                     });
        });
    });
}

void
App::installStorage()
{
    using svc::HandlerCtx;
    using svc::Payload;
    svc::Service &ps = mesh_.service(names::kPostStorage);

    ps.addOp("mget", [this](HandlerCtx &ctx) {
        // The miss draw happens at every depth so the per-request RNG
        // sequence — and with it cross-depth determinism comparisons —
        // does not depend on where the graph is cut.
        const bool miss = ctx.rng().uniform01() < params_.cacheMissRatio;
        ctx.compute(scaled(kStorageMget), [this, &ctx, miss] {
            if (!reaches(4)) {
                absorbCompute(ctx,
                              scaled(kCacheGet + (miss ? kDbGet : 0.0)),
                              [&ctx] {
                                  ctx.response().bytes = kPostBytes;
                                  ctx.done();
                              });
                return;
            }
            const std::uint64_t key = ctx.request().arg0;
            ctx.call(names::kPostCache, "get", small(key),
                     [this, &ctx, miss, key](const Payload &) {
                         if (!miss) {
                             ctx.response().bytes = kPostBytes;
                             ctx.done();
                             return;
                         }
                         ctx.call(names::kPostDb, "get", small(key),
                                  [&ctx](const Payload &) {
                                      ctx.response().bytes = kPostBytes;
                                      ctx.done();
                                  });
                     });
        });
    });

    ps.addOp("put", [this](HandlerCtx &ctx) {
        ctx.compute(scaled(kStoragePut), [this, &ctx] {
            if (!reaches(4)) {
                absorbCompute(ctx, scaled(kCachePut + kDbPut), [&ctx] {
                    ctx.response().bytes = kAckBytes;
                    ctx.done();
                });
                return;
            }
            const std::uint64_t key = ctx.request().arg0;
            std::vector<HandlerCtx::CallSpec> legs;
            legs.push_back({names::kPostCache, "put", small(key)});
            svc::Payload row = small(key);
            row.bytes = kPostBytes;
            legs.push_back({names::kPostDb, "put", row});
            ctx.callAll(std::move(legs),
                        [&ctx](const std::vector<Payload> &) {
                            ctx.response().bytes = kAckBytes;
                            ctx.done();
                        });
        });
    });

    svc::Service &tc = mesh_.service(names::kTimelineCache);
    tc.addOp("get", [this](HandlerCtx &ctx) {
        const bool miss = ctx.rng().uniform01() < params_.cacheMissRatio;
        ctx.compute(scaled(kCacheLogic), [this, &ctx, miss] {
            if (!miss) {
                ctx.done();
                return;
            }
            if (!reaches(4)) {
                absorbCompute(ctx, scaled(kDbGet),
                              [&ctx] { ctx.done(); });
                return;
            }
            ctx.call(names::kTimelineDb, "get", small(ctx.request().arg0),
                     [&ctx](const Payload &) { ctx.done(); });
        });
    });
    tc.addOp("put", [this](HandlerCtx &ctx) {
        ctx.compute(scaled(kCacheLogic), [this, &ctx] {
            if (!reaches(4)) {
                absorbCompute(ctx, scaled(kDbPut),
                              [&ctx] { ctx.done(); });
                return;
            }
            ctx.call(names::kTimelineDb, "put", small(ctx.request().arg0),
                     [&ctx](const Payload &) { ctx.done(); });
        });
    });
}

void
App::installLeaves()
{
    using svc::HandlerCtx;

    auto leaf = [this](const char *svc_name, const char *op, double work,
                       std::uint32_t bytes) {
        mesh_.service(svc_name)
            .addOp(op, [this, work, bytes](HandlerCtx &ctx) {
                ctx.compute(scaled(work), [&ctx, bytes] {
                    ctx.response().bytes = bytes;
                    ctx.done();
                });
            });
    };

    leaf(names::kUrlShorten, "shorten", kUrlShorten, kAckBytes);
    leaf(names::kUserMention, "resolve", kUserMention, kAckBytes);
    leaf(names::kMediaStore, "put", kMediaStorePut, kAckBytes);
    leaf(names::kUserDb, "get", kDbGet, kSmallReq);
    leaf(names::kGraphDb, "get", kDbGet, kSmallReq);
    leaf(names::kGraphDb, "put", kDbPut, kAckBytes);
    leaf(names::kPostCache, "get", kCacheGet, kPostBytes);
    leaf(names::kPostCache, "put", kCachePut, kAckBytes);
    leaf(names::kPostDb, "get", kDbGet, kPostBytes);
    leaf(names::kPostDb, "put", kDbPut, kAckBytes);
    leaf(names::kTimelineDb, "get", kDbGet, kSmallReq);
    leaf(names::kTimelineDb, "put", kDbPut, kAckBytes);
}

} // namespace microscale::socialnet
