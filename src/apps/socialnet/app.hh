/**
 * @file
 * Socialnet: a DeathStarBench-style social-network application graph.
 *
 * Where TeaStore is a shallow six-service graph (the paper's subject),
 * socialnet models the deep fan-out topology of Gan et al.'s
 * social-network benchmark: 21 services, call chains up to five levels
 * deep, and wide parallel fan-out on the read path. One slow leg at
 * the bottom of the tree gates the whole page — the regime where
 * tail-latency amplification and hedged requests matter.
 *
 *   client -> frontend -> api-gateway
 *     readHome:    -> home-timeline -> {social-graph -> graph-db,
 *                                       timeline-cache -> timeline-db}
 *                                   -> post-storage x fanWidth
 *                                        -> post-cache | post-db
 *     composePost: -> compose-post -> {text -> {url-shorten,
 *                                               user-mention},
 *                                      unique-id, media -> media-store,
 *                                      user -> user-db}
 *                                  -> {post-storage -> post-cache+post-db,
 *                                      write-home-timeline
 *                                        -> {social-graph -> graph-db,
 *                                            timeline-cache -> timeline-db}}
 *     readUser:    -> user-timeline -> {user -> user-db,
 *                                       timeline-cache -> timeline-db}
 *                                   -> post-storage x fanWidth
 *     follow:      -> social-graph -> graph-db
 *
 * The `depth` knob truncates the graph: a handler at depth d issues
 * its downstream calls only while d < depth, absorbing the pruned
 * subtree's CPU budget locally. Total work stays roughly constant
 * across depths; what grows with depth is the number of
 * synchronization barriers and straggler-exposed legs.
 *
 * The module is deliberately free of src/svc and src/trace coupling
 * beyond the public Mesh/HandlerCtx API: mesh, overload, autoscaling
 * and tracing stay app-agnostic by construction.
 */

#ifndef MICROSCALE_APPS_SOCIALNET_APP_HH
#define MICROSCALE_APPS_SOCIALNET_APP_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "svc/mesh.hh"

namespace microscale::socialnet
{

/** The user-facing frontend operations. */
enum class OpType : unsigned
{
    ReadHome = 0,
    ComposePost,
    ReadUser,
    Follow,
};

/** Number of OpType values. */
constexpr unsigned kNumOps = 4;

/** Frontend op name for an OpType (also the handler key). */
const char *opName(OpType op);

/** All op types in declaration order. */
std::array<OpType, kNumOps> allOps();

/** Replica/worker sizing for one service tier. */
struct TierConfig
{
    unsigned replicas = 1;
    unsigned workers = 8;
};

/** Application parameters. */
struct AppParams
{
    /**
     * Maximum call-chain depth (1..5). 5 = the full graph; smaller
     * values truncate: services at the cut absorb their pruned
     * subtree's CPU budget locally.
     */
    unsigned depth = 5;
    /** Parallel post-storage mget legs per timeline read. */
    unsigned fanWidth = 4;
    /** Modeled user population (entity id space). */
    unsigned users = 1000;
    /** Timeline/post cache miss probability (miss = extra DB hop). */
    double cacheMissRatio = 0.1;
    /** Global multiplier on all service work budgets (calibration). */
    double workScale = 1.0;
    /** Forwarded to every service (see ServiceParams::batchedTiming). */
    bool batchedTiming = false;

    /** Sizing by tier (all services of a tier share it). */
    TierConfig frontend{2, 16};
    TierConfig gateway{2, 16};
    TierConfig logic{2, 8};
    /** post-storage: the straggler-exposed wide-fan-out tier. */
    TierConfig storage{3, 8};
    TierConfig leaf{2, 8};
};

/** Canonical service names. */
namespace names
{
inline constexpr const char *kFrontend = "frontend";
inline constexpr const char *kApiGateway = "api-gateway";
inline constexpr const char *kHomeTimeline = "home-timeline";
inline constexpr const char *kUserTimeline = "user-timeline";
inline constexpr const char *kComposePost = "compose-post";
inline constexpr const char *kWriteHomeTimeline = "write-home-timeline";
inline constexpr const char *kText = "text";
inline constexpr const char *kUrlShorten = "url-shorten";
inline constexpr const char *kUserMention = "user-mention";
inline constexpr const char *kUniqueId = "unique-id";
inline constexpr const char *kMedia = "media";
inline constexpr const char *kMediaStore = "media-store";
inline constexpr const char *kUser = "user";
inline constexpr const char *kUserDb = "user-db";
inline constexpr const char *kSocialGraph = "social-graph";
inline constexpr const char *kGraphDb = "graph-db";
inline constexpr const char *kPostStorage = "post-storage";
inline constexpr const char *kPostCache = "post-cache";
inline constexpr const char *kPostDb = "post-db";
inline constexpr const char *kTimelineCache = "timeline-cache";
inline constexpr const char *kTimelineDb = "timeline-db";
} // namespace names

/**
 * Per-edge criticality rules for the graph: the compose/write path is
 * Critical (user-visible data loss if shed), timeline reads Normal,
 * and media handling Sheddable (a post without its image still
 * renders). Consumed by OverloadConfig::rules when the overload layer
 * is criticality-aware.
 */
std::vector<svc::CriticalityRule> criticalityRules();

/**
 * The assembled application. Construction registers all services and
 * handlers with the mesh. Stateless beyond its parameters: no
 * background activity, so start()/stop() are trivial.
 */
class App
{
  public:
    App(svc::Mesh &mesh, AppParams params, std::uint64_t seed);

    App(const App &) = delete;
    App &operator=(const App &) = delete;

    svc::Mesh &mesh() { return mesh_; }
    const AppParams &params() const { return params_; }

    /** No background activity; present for runner symmetry. */
    void start() {}
    void stop() {}

    /** All services in registration order. */
    const std::vector<svc::Service *> &services() const
    {
        return services_;
    }

    /** Number of services in the graph. */
    unsigned serviceCount() const
    {
        return static_cast<unsigned>(services_.size());
    }

    /** Sample an op from the mix (readHome-heavy read/write blend). */
    OpType sampleOp(Rng &rng) const;

    /**
     * Build a request payload for a frontend op, sampling entity ids
     * with the supplied RNG (the load generator's stream).
     */
    svc::Payload sampleRequest(OpType op, Rng &rng) const;

    /** Scale a nominal instruction budget by params().workScale. */
    double scaled(double instructions) const
    {
        return instructions * params_.workScale;
    }

  private:
    /** True when handlers at `at` may call one level deeper. */
    bool reaches(unsigned at) const { return params_.depth > at; }

    void installFrontend();
    void installApiGateway();
    void installTimelines();
    void installCompose();
    void installSocialGraph();
    void installStorage();
    void installLeaves();

    svc::Mesh &mesh_;
    AppParams params_;

    std::vector<svc::Service *> services_;
};

} // namespace microscale::socialnet

#endif // MICROSCALE_APPS_SOCIALNET_APP_HH
