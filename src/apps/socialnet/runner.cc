#include "apps/socialnet/runner.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <memory>

#include "base/logging.hh"
#include "cpu/exec.hh"
#include "sim/simulation.hh"

namespace microscale::socialnet
{

namespace
{

core::OpLatency
summarizeHistogram(const QuantileHistogram &h)
{
    core::OpLatency l;
    l.count = h.count();
    l.meanMs = h.mean() / static_cast<double>(kMillisecond);
    l.p50Ms = h.p50() / static_cast<double>(kMillisecond);
    l.p95Ms = h.p95() / static_cast<double>(kMillisecond);
    l.p99Ms = h.p99() / static_cast<double>(kMillisecond);
    return l;
}

os::SchedStats
schedDelta(const os::SchedStats &end, const os::SchedStats &start)
{
    os::SchedStats d;
    d.wakeups = end.wakeups - start.wakeups;
    d.contextSwitches = end.contextSwitches - start.contextSwitches;
    d.preemptions = end.preemptions - start.preemptions;
    d.migrations = end.migrations - start.migrations;
    d.ccxMigrations = end.ccxMigrations - start.ccxMigrations;
    d.balancePulls = end.balancePulls - start.balancePulls;
    d.newIdlePulls = end.newIdlePulls - start.newIdlePulls;
    return d;
}

/** Open-loop measurement state shared with the event closures. */
struct LoadState
{
    explicit LoadState(std::uint64_t seed) : rng(seed, "socialnet.load")
    {
    }

    Rng rng;
    bool stopped = false;
    Tick winStart = 0;
    Tick winEnd = 0;
    QuantileHistogram latency;
    std::array<QuantileHistogram, kNumOps> perOp;
    std::array<std::uint64_t, svc::kNumStatuses> statusCounts{};
    std::uint64_t completed = 0;
    std::uint64_t okCount = 0;
    std::uint64_t errors = 0;
};

} // namespace

core::RunResult
runSocialnet(const core::ExperimentConfig &config, const RunOptions &opts)
{
    if (config.openLoopRps <= 0.0)
        fatal("socialnet runner requires open-loop load "
              "(config.openLoopRps > 0)");

    sim::Simulation sim;
    topo::Machine machine(config.machine);
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, config.sched, config.seed);
    net::Network network(sim, config.net, config.seed);
    svc::Mesh mesh(kernel, network, config.rpc, config.seed);

    // Base policy from the config, plus hedging on the wide fan-out
    // edges: the timeline mget legs are idempotent reads, the textbook
    // hedge candidates.
    svc::ResilienceConfig rc = config.resilience;
    if (opts.hedge) {
        rc.hedgeBudgetRatio = opts.hedgeBudget;
        svc::EdgePolicy hp;
        hp.hedge.delay = opts.hedgeDelay;
        hp.hedge.delayQuantile = opts.hedgeQuantile;
        hp.hedge.maxHedges = opts.maxHedges;
        rc.edges.push_back(
            {names::kHomeTimeline, names::kPostStorage, hp});
        rc.edges.push_back(
            {names::kUserTimeline, names::kPostStorage, hp});
    }
    mesh.setResilience(rc);
    mesh.setOverload(config.overload);
    mesh.setTrace(config.trace);

    App app(mesh, opts.app, config.seed);

    // Plant the gray straggler in the fan-out tier: the last
    // post-storage replica computes slower but keeps answering, so
    // round-robin keeps routing ~1/replicas of the mget legs into it.
    if (opts.stragglerFactor > 1.0 && opts.app.storage.replicas >= 2) {
        mesh.service(names::kPostStorage)
            .setReplicaSlow(opts.app.storage.replicas - 1,
                            opts.stragglerFactor);
    }

    auto state = std::make_shared<LoadState>(config.seed);
    state->winStart = config.warmup;
    state->winEnd = config.warmup + config.measure;
    const double mean_gap_ns =
        static_cast<double>(kSecond) / config.openLoopRps;

    // Self-scheduling Poisson arrivals; the closure lives in `arrive`
    // (outlives the simulation, destroyed after it).
    auto arrive = std::make_shared<std::function<void()>>();
    *arrive = [state, &sim, &mesh, &app, mean_gap_ns,
               ap = arrive.get()]() {
        if (state->stopped)
            return;
        const OpType op = app.sampleOp(state->rng);
        svc::Payload req = app.sampleRequest(op, state->rng);
        const Tick t0 = sim.now();
        mesh.callExternalS(
            names::kFrontend, opName(op), std::move(req),
            [state, &sim, t0, op](const svc::Payload &, svc::Status st) {
                const Tick done = sim.now();
                if (done < state->winStart || done >= state->winEnd)
                    return;
                ++state->completed;
                ++state->statusCounts[svc::statusIndex(st)];
                if (st == svc::Status::Ok) {
                    ++state->okCount;
                    const double ns = static_cast<double>(done - t0);
                    state->latency.add(ns);
                    state->perOp[static_cast<unsigned>(op)].add(ns);
                } else {
                    ++state->errors;
                }
            });
        const double gap = state->rng.exponential(mean_gap_ns);
        sim.scheduleAfter(
            std::max<Tick>(1, static_cast<Tick>(std::llround(gap))),
            [ap] { (*ap)(); });
    };

    kernel.start();
    app.start();
    sim.scheduleAfter(1, [ap = arrive.get()] { (*ap)(); });

    // Warmup, then snapshot everything (same protocol as the TeaStore
    // runner: per-op histograms restart at the window).
    sim.runUntil(config.warmup);
    engine.bankAll();
    std::map<std::string, cpu::PerfCounters> at_warmup;
    for (svc::Service *s : app.services())
        at_warmup[s->name()] = s->aggregateCounters();
    const os::SchedStats sched_at_warmup = kernel.stats();
    const std::vector<double> busy_at_warmup = engine.cpuBusySnapshot();
    for (svc::Service *s : app.services())
        s->resetStats();

    sim.runUntil(config.warmup + config.measure);
    engine.bankAll();
    state->stopped = true;

    const double measure_s = ticksToSeconds(config.measure);

    core::RunResult result;
    result.eventsProcessed = sim.eventsProcessed();
    const CpuMask budget =
        core::budgetMask(machine, config.cores, config.smt);
    result.budgetCpus = budget.count();

    result.throughputRps =
        static_cast<double>(state->completed) / measure_s;
    result.latency = summarizeHistogram(state->latency);
    for (OpType op : allOps()) {
        result.perOp[opName(op)] = summarizeHistogram(
            state->perOp[static_cast<unsigned>(op)]);
    }

    cpu::PerfCounters total;
    for (svc::Service *s : app.services()) {
        const cpu::PerfCounters delta =
            s->aggregateCounters().delta(at_warmup[s->name()]);
        result.servicePerf[s->name()] =
            perf::makeRow(s->name(), delta, config.measure);
        total.merge(delta);
    }
    result.total = perf::makeRow("total", total, config.measure);
    result.sched = schedDelta(kernel.stats(), sched_at_warmup);
    result.avgFreqGhz = total.ghz();

    constexpr double kMs = static_cast<double>(kMillisecond);
    for (svc::Service *s : app.services()) {
        for (const auto &[op, stats] : s->opStats()) {
            core::OpBreakdown b;
            b.count = stats.requests;
            b.serviceTimeMeanMs = stats.serviceTimeNs.mean() / kMs;
            b.queueWaitMeanMs = stats.queueWaitNs.mean() / kMs;
            b.computeMeanMs = stats.computeNs.mean() / kMs;
            b.stallMeanMs = stats.stallNs.mean() / kMs;
            b.serviceTimeP99Ms = stats.serviceTimeNs.p99() / kMs;
            b.okCount =
                stats.statusCounts[svc::statusIndex(svc::Status::Ok)];
            b.timeoutCount = stats.statusCounts[svc::statusIndex(
                svc::Status::Timeout)];
            b.overloadCount = stats.statusCounts[svc::statusIndex(
                svc::Status::Overload)];
            b.unavailableCount = stats.statusCounts[svc::statusIndex(
                svc::Status::Unavailable)];
            result.breakdown[s->name()][op] = b;
        }
    }

    {
        core::ResilienceSummary &rs = result.resilience;
        rs.active = rc.active();
        rs.goodputRps = static_cast<double>(state->okCount) / measure_s;
        rs.okCount = state->statusCounts[svc::statusIndex(
            svc::Status::Ok)];
        rs.timeoutCount = state->statusCounts[svc::statusIndex(
            svc::Status::Timeout)];
        rs.overloadCount = state->statusCounts[svc::statusIndex(
            svc::Status::Overload)];
        rs.unavailableCount = state->statusCounts[svc::statusIndex(
            svc::Status::Unavailable)];
        rs.rejectedCount = state->statusCounts[svc::statusIndex(
            svc::Status::Rejected)];
        rs.errorRate = state->completed > 0
                           ? static_cast<double>(state->errors) /
                                 static_cast<double>(state->completed)
                           : 0.0;
        rs.retries = mesh.retryStats().retries;
        rs.retriesDenied = mesh.retryStats().budgetDenied;
        rs.clientTimeouts = mesh.retryStats().clientTimeouts;
        for (svc::Service *s : app.services()) {
            const svc::ResilienceCounters &c = s->resilienceCounters();
            rs.shed += c.shed;
            rs.deadlineDrops += c.deadlineDrops;
            rs.breakerOpens += c.breakerOpens;
        }
    }

    {
        // Trace attribution rooted at the socialnet frontend — the
        // core harvest is TeaStore-rooted, so the app brings its own.
        core::TraceSummary &tr = result.trace;
        const std::shared_ptr<trace::TraceStore> &store =
            mesh.traceStore();
        tr.active = static_cast<bool>(store);
        if (tr.active) {
            tr.sampleRate = config.trace.sampleRate;
            tr.rootsSeen = store->rootsSeen();
            tr.tracesSampled = store->traces().size();
            tr.spanCount = store->spanCount();
            tr.attribution = trace::attributeTraces(
                *store, names::kFrontend, config.warmup,
                config.warmup + config.measure);
            tr.tracesAnalyzed = tr.attribution.traces;
            tr.meanE2eMs =
                tr.tracesAnalyzed
                    ? tr.attribution.e2eNs /
                          (static_cast<double>(tr.tracesAnalyzed) * kMs)
                    : 0.0;
            tr.store = store;
        }
    }

    {
        core::FanoutSummary &fo = result.fanout;
        fo.active = true;
        fo.app = "socialnet";
        fo.depth = opts.app.depth;
        fo.services = app.serviceCount();
        fo.fanWidth = opts.app.fanWidth;
        fo.hedged = opts.hedge;
        fo.hedgeDelayMs = static_cast<double>(opts.hedgeDelay) / kMs;
        fo.hedgeQuantile = opts.hedgeQuantile;
        fo.hedgeBudgetRatio = opts.hedge ? opts.hedgeBudget : 0.0;
        const svc::HedgeStats &hs = mesh.hedgeStats();
        fo.firstAttempts = hs.firstAttempts;
        fo.hedgesLaunched = hs.launched;
        fo.hedgeWins = hs.wins;
        fo.hedgesDenied = hs.budgetDenied;
        fo.hedgesCancelled = hs.cancelled;
        fo.hedgeShare =
            hs.firstAttempts > 0
                ? static_cast<double>(hs.launched) /
                      static_cast<double>(hs.firstAttempts)
                : 0.0;
        // Tail amplification is read off the fan-out read path, not
        // the overall mix: the write/compose ops have their own
        // latency modes that would mask the synchronization tail.
        const QuantileHistogram &read =
            state->perOp[static_cast<unsigned>(OpType::ReadHome)];
        fo.p50Ms = read.p50() / kMs;
        fo.p99Ms = read.p99() / kMs;
        fo.amplification =
            fo.p50Ms > 0.0 ? fo.p99Ms / fo.p50Ms : 0.0;
    }

    const std::vector<double> busy_at_end = engine.cpuBusySnapshot();
    double busy = 0.0;
    for (CpuId c : budget)
        busy += busy_at_end[c] - busy_at_warmup[c];
    result.cpuUtilization =
        busy / (static_cast<double>(budget.count()) *
                static_cast<double>(config.measure));

    app.stop();
    kernel.stop();
    return result;
}

} // namespace microscale::socialnet
