/**
 * @file
 * End-to-end runner for the socialnet application graph.
 *
 * The TeaStore runner (core::runExperiment) is wired to the
 * TeaStore-typed load generator and demand model; socialnet brings its
 * own open-loop Poisson driver on dedicated RNG streams and fills the
 * same RunResult shape, including the trace attribution (rooted at the
 * socialnet frontend) and the `fanout` summary block. That keeps every
 * lower layer — mesh, overload, tracing, the JSON schema — shared
 * between the two apps without the core runner learning app names.
 */

#ifndef MICROSCALE_APPS_SOCIALNET_RUNNER_HH
#define MICROSCALE_APPS_SOCIALNET_RUNNER_HH

#include "apps/socialnet/app.hh"
#include "core/experiment.hh"

namespace microscale::socialnet
{

/** Socialnet-specific run options (graph shape, hedging, straggler). */
struct RunOptions
{
    AppParams app;

    /** Hedge the wide fan-out edges (timeline -> post-storage). */
    bool hedge = false;
    /** Fixed hedge delay (used until the quantile trigger warms up). */
    Tick hedgeDelay = 0;
    /** Hedge after this observed-latency quantile (0 = fixed only). */
    double hedgeQuantile = 0.0;
    /** Hedge tokens accrued per first attempt (see ResilienceConfig). */
    double hedgeBudget = 0.2;
    /** Extra legs beyond the first per call. */
    unsigned maxHedges = 1;

    /**
     * Plant a straggler: the last post-storage replica runs its
     * compute this many times slower (a gray replica in the fan-out
     * tier — the pathology hedging exists for). 1.0 disables.
     */
    double stragglerFactor = 6.0;
};

/**
 * Run the socialnet graph under open-loop Poisson load. Uses
 * config.machine/seed/warmup/measure/openLoopRps/net/rpc/sched/trace
 * and config.resilience as the base mesh policy (hedge edges are
 * appended per `opts`); fatal() when config.openLoopRps <= 0.
 */
core::RunResult runSocialnet(const core::ExperimentConfig &config,
                             const RunOptions &opts);

} // namespace microscale::socialnet

#endif // MICROSCALE_APPS_SOCIALNET_RUNNER_HH
