#include "svc/service.hh"

#include <algorithm>

#include "base/logging.hh"
#include "svc/mesh.hh"
#include "topo/machine.hh"

namespace microscale::svc
{

namespace
{

/**
 * CCX a worker is effectively pinned to: the common CCX of its
 * affinity mask, or -1 when the mask spans CCXs (e.g. machine-wide
 * OS-default affinity).
 */
int
workerCcx(const topo::Machine &machine, const CpuMask &affinity)
{
    const CpuId first = affinity.first();
    if (first == kInvalidCpu)
        return -1;
    const CcxId ccx = machine.ccxOf(first);
    for (CpuId c = affinity.next(first); c != kInvalidCpu;
         c = affinity.next(c)) {
        if (machine.ccxOf(c) != ccx)
            return -1;
    }
    return static_cast<int>(ccx);
}

} // namespace

HandlerCtx::HandlerCtx(Service &service, Worker &worker, Envelope envelope)
    : service_(service), worker_(worker), envelope_(std::move(envelope))
{
}

Rng &
HandlerCtx::rng()
{
    return service_.rng_;
}

Tick
HandlerCtx::now() const
{
    return service_.mesh_.kernel().sim().now();
}

void
HandlerCtx::compute(double instructions, sim::EventFn next)
{
    computeProfile(service_.params_.profile, instructions,
                   std::move(next));
}

void
HandlerCtx::computeProfile(const cpu::WorkProfile &profile,
                           double instructions,
                           sim::EventFn next)
{
    if (finished_)
        MS_PANIC("compute after done() in ", service_.name());
    // Brownout faults scale the budget; at the default 1.0 the multiply
    // is an exact identity and the draw below is unchanged.
    double actual = instructions * service_.slowdown_;
    // Replicas added at runtime run colder for a while; replicas from
    // construction have coldUntil == 0 and skip this entirely.
    const Replica &rep = service_.replicas_[worker_.replica];
    // Gray failure: this replica alone is slow. Same exact-identity
    // guarantee at the default 1.0.
    actual *= rep.slowFactor;
    if (rep.coldUntil != 0)
        actual *= service_.coldComputeFactor(worker_.replica, now());
    if (service_.params_.computeCv > 0.0 && actual > 0.0) {
        if (service_.timing_batch_)
            actual *= service_.timing_batch_->next();
        else
            actual = rng().lognormal(actual, service_.params_.computeCv);
    }
    if (actual <= 0.0) {
        // Degenerate budget: continue without occupying a CPU.
        service_.mesh_.kernel().sim().scheduleAfter(1, std::move(next));
        return;
    }
    worker_.thread->run(profile, actual, std::move(next));
}

void
HandlerCtx::call(const std::string &service, const std::string &op,
                 Payload request_payload,
                 std::function<void(const Payload &)> next)
{
    call(service, op, std::move(request_payload),
         [this, next = std::move(next)](const Payload &resp,
                                        Status status) {
             if (status != Status::Ok) {
                 fail(status);
                 return;
             }
             next(resp);
         });
}

void
HandlerCtx::call(const std::string &service, const std::string &op,
                 Payload request_payload,
                 std::function<void(const Payload &, Status)> next)
{
    if (finished_)
        MS_PANIC("call after done() in ", service_.name());
    Mesh &mesh = service_.mesh_;
    Worker &worker = worker_;

    // Serialize on this worker, ship the request, and when the response
    // arrives deserialize on this worker before continuing. A failure
    // outcome skips the deserialization charge (no body arrived).
    const double ser = mesh.rpcInstructions(request_payload.bytes);
    RespondFn after = [&mesh, &worker, next = std::move(next)](
                          const Payload &resp, Status status) {
        if (status != Status::Ok) {
            next(resp, status);
            return;
        }
        const double deser = mesh.rpcInstructions(resp.bytes);
        // Copy the payload so the continuation owns it.
        Payload resp_copy = resp;
        worker.thread->run(
            mesh.netstackProfile(), deser,
            [next, resp_copy] { next(resp_copy, Status::Ok); });
    };
    const std::string client = service_.name();
    const Tick deadline = envelope_.deadline;
    const Criticality tier = envelope_.criticality;
    // Downstream calls originate from this replica's machine.
    const int my_node =
        service_.replicas_[worker_.replica].clusterNode;
    const unsigned src_node =
        my_node >= 0 ? static_cast<unsigned>(my_node) : 0;
    // Each call() is its own fan-out group in the request's trace.
    trace::TraceLink tlink;
    if (envelope_.trace)
        tlink = {envelope_.trace.trace, envelope_.trace.span,
                 ++trace_groups_};
    worker_.thread->run(
        mesh.netstackProfile(), ser,
        [&mesh, client, service, op,
         request_payload = std::move(request_payload), deadline, tier,
         tlink, src_node, after = std::move(after)]() mutable {
            mesh.sendRpc(client, service, op, std::move(request_payload),
                         deadline, tier, std::move(after), tlink,
                         src_node);
        });
}

void
HandlerCtx::callAll(std::vector<CallSpec> calls,
                    std::function<void(const std::vector<Payload> &)> next)
{
    callAll(std::move(calls),
            [this, next = std::move(next)](
                const std::vector<Payload> &responses,
                const std::vector<Status> &statuses) {
                for (Status status : statuses) {
                    if (status != Status::Ok) {
                        fail(status);
                        return;
                    }
                }
                next(responses);
            });
}

void
HandlerCtx::callAll(std::vector<CallSpec> calls,
                    std::function<void(const std::vector<Payload> &,
                                       const std::vector<Status> &)>
                        next)
{
    if (finished_)
        MS_PANIC("callAll after done() in ", service_.name());
    Mesh &mesh = service_.mesh_;
    if (calls.empty()) {
        mesh.kernel().sim().scheduleAfter(
            1, [next = std::move(next)] { next({}, {}); });
        return;
    }

    struct FanOut
    {
        std::vector<Payload> responses;
        std::vector<Status> statuses;
        std::size_t pending = 0;
        std::function<void(const std::vector<Payload> &,
                           const std::vector<Status> &)>
            next;
        Worker *worker = nullptr;
        Mesh *mesh = nullptr;
    };
    auto state = std::make_shared<FanOut>();
    state->responses.resize(calls.size());
    state->statuses.assign(calls.size(), Status::Ok);
    state->pending = calls.size();
    state->next = std::move(next);
    state->worker = &worker_;
    state->mesh = &mesh;

    double ser = 0.0;
    for (const CallSpec &c : calls)
        ser += mesh.rpcInstructions(c.request.bytes);

    const std::string client = service_.name();
    const Tick deadline = envelope_.deadline;
    const Criticality tier = envelope_.criticality;
    const int my_node =
        service_.replicas_[worker_.replica].clusterNode;
    const unsigned src_node =
        my_node >= 0 ? static_cast<unsigned>(my_node) : 0;
    // All legs of one callAll share one fan-out group.
    trace::TraceLink tlink;
    if (envelope_.trace)
        tlink = {envelope_.trace.trace, envelope_.trace.span,
                 ++trace_groups_};
    worker_.thread->run(
        mesh.netstackProfile(), ser,
        [calls = std::move(calls), state, client, deadline, tier,
         tlink, src_node] {
            for (std::size_t i = 0; i < calls.size(); ++i) {
                const CallSpec &spec = calls[i];
                RespondFn on_response = [state, i](const Payload &resp,
                                                   Status status) {
                    state->responses[i] = resp;
                    state->statuses[i] = status;
                    if (--state->pending > 0)
                        return;
                    // All legs in: one deserialization batch on the
                    // (blocked) worker, then the continuation. Failed
                    // legs delivered no body, so they charge nothing.
                    double deser = 0.0;
                    for (std::size_t j = 0; j < state->responses.size();
                         ++j) {
                        if (state->statuses[j] == Status::Ok)
                            deser += state->mesh->rpcInstructions(
                                state->responses[j].bytes);
                    }
                    auto fire = [state] {
                        state->next(state->responses, state->statuses);
                    };
                    if (deser > 0.0) {
                        state->worker->thread->run(
                            state->mesh->netstackProfile(), deser,
                            std::move(fire));
                    } else {
                        state->mesh->kernel().sim().scheduleAfter(
                            1, std::move(fire));
                    }
                };
                state->mesh->sendRpc(client, spec.service, spec.op,
                                     spec.request, deadline, tier,
                                     std::move(on_response), tlink,
                                     src_node);
            }
        });
}

void
HandlerCtx::traceAnnotate(const std::string &note)
{
    if (!envelope_.trace)
        return;
    trace::Span &span =
        envelope_.trace.trace->span(envelope_.trace.span);
    if (!span.annotation.empty())
        span.annotation += ';';
    span.annotation += note;
}

void
HandlerCtx::fail(Status status)
{
    if (status == Status::Ok)
        MS_PANIC("fail(Ok) in ", service_.name());
    status_ = status;
    response_ = Payload{};
    response_.bytes = 64; // minimal error body
    done();
}

void
HandlerCtx::done()
{
    if (finished_)
        MS_PANIC("double done() in ", service_.name());
    finished_ = true;

    Mesh &mesh = service_.mesh_;
    const double ser = mesh.rpcInstructions(response_.bytes);
    worker_.thread->run(mesh.netstackProfile(), ser, [this, &mesh] {
        // Copy everything we need out of the context before it dies.
        Service &svc = service_;
        Worker &worker = worker_;
        RespondFn respond = std::move(envelope_.respond);
        const Payload resp = response_;
        const Status status = status_;
        const bool probe = envelope_.probe;
        const Tick arrived = envelope_.arrived;
        const std::string op = envelope_.op;
        const std::string client = envelope_.client;
        const unsigned src_node = envelope_.srcNode;
        const unsigned dst_node = envelope_.dstNode;
        const trace::SpanRef tref = envelope_.trace;

        const Tick now = mesh.kernel().sim().now();
        auto &stats = svc.op_stats_[op];
        const double service_time = static_cast<double>(now - arrived);
        const double queue_wait =
            static_cast<double>(dispatched_ - arrived);
        const double compute =
            worker.thread->ec().counters().busyNs - busy_at_dispatch_;
        stats.serviceTimeNs.add(service_time);
        stats.queueWaitNs.add(queue_wait);
        stats.computeNs.add(compute);
        stats.stallNs.add(
            std::max(0.0, service_time - queue_wait - compute));
        stats.statusCounts[statusIndex(status)]++;
        if (envelope_.trace) {
            trace::Span &span =
                envelope_.trace.trace->span(envelope_.trace.span);
            span.finish = now;
            span.status = status;
            span.computeNs = compute;
            span.degraded = resp.degraded;
        }
        svc.breakerRecord(worker.replica, status == Status::Ok, probe);
        svc.limiterObserve(worker.replica, service_time,
                           status == Status::Timeout);
        svc.outlierObserve(worker.replica, service_time,
                           status != Status::Ok);
        for (const auto &observer : svc.completion_observers_)
            observer(op, service_time, status);

        if (respond) {
            // Link-aware: the response travels the same faultable link
            // the request came in on — and, under a cluster router,
            // back across the fabric to the caller's machine. A
            // duplicated delivery (PacketDup) invokes the callback
            // twice; only the first may respond.
            mesh.sendResponse(
                resp.bytes, svc.name(), client, dst_node, src_node, tref,
                [respond = std::move(respond), resp, status]() mutable {
                    if (!respond)
                        return;
                    RespondFn once = std::move(respond);
                    respond = nullptr;
                    once(resp, status);
                });
        }
        // This destroys the HandlerCtx (and this lambda's captures were
        // already copied to locals); do not touch members afterwards.
        svc.workerDone(worker);
    });
}

Service::Service(Mesh &mesh, ServiceParams params)
    : mesh_(mesh),
      params_(std::move(params)),
      rng_(mesh.seed(), "svc." + params_.name)
{
    if (params_.name.empty())
        fatal("service with empty name");
    if (params_.replicas == 0 || params_.workersPerReplica == 0)
        fatal("service '", params_.name,
              "' needs at least one replica and worker");
    params_.profile.validate();
    if (params_.batchedTiming && params_.computeCv > 0.0) {
        timing_rng_ = std::make_unique<Rng>(
            mesh.seed(), "svc." + params_.name + ".timing");
        timing_batch_ = std::make_unique<SampleBatch>(
            *timing_rng_, SampleBatch::Kind::LognormalUnit,
            params_.computeCv);
    }

    replicas_.resize(params_.replicas);
    for (unsigned r = 0; r < params_.replicas; ++r)
        spawnWorkers(r);
}

void
Service::spawnWorkers(unsigned replica)
{
    os::Kernel &kernel = mesh_.kernel();
    const CpuMask everywhere = kernel.machine().allCpus();
    for (unsigned w = 0; w < params_.workersPerReplica; ++w) {
        Worker worker;
        worker.replica = replica;
        worker.thread = kernel.createThread(
            params_.name + ".r" + std::to_string(replica) + ".w" +
                std::to_string(w),
            everywhere, kInvalidNode);
        replicas_[replica].workerIndexes.push_back(workers_.size());
        workers_.push_back(std::move(worker));
    }
}

const char *
replicaStateName(ReplicaState state)
{
    switch (state) {
    case ReplicaState::Active:
        return "active";
    case ReplicaState::Warming:
        return "warming";
    case ReplicaState::Draining:
        return "draining";
    case ReplicaState::Retired:
        return "retired";
    }
    return "?";
}

unsigned
Service::activeReplicaCount() const
{
    unsigned n = 0;
    for (const Replica &r : replicas_) {
        if (r.state == ReplicaState::Active)
            ++n;
    }
    return n;
}

unsigned
Service::addReplica(const WarmupParams &warmup)
{
    if (warmup.coldFactor < 1.0)
        fatal("service '", params_.name, "': cold factor must be >= 1");
    const unsigned r = replicaCount();
    replicas_.emplace_back();
    replicas_.back().state = ReplicaState::Warming;
    spawnWorkers(r);
    ++replicas_added_;
    mesh_.kernel().sim().scheduleAfter(
        std::max<Tick>(1, warmup.registrationDelay), [this, r, warmup] {
            Replica &rep = replicas_[r];
            if (rep.state != ReplicaState::Warming)
                return; // drained before it ever registered
            const Tick now = mesh_.kernel().sim().now();
            rep.state = ReplicaState::Active;
            rep.warmedAt = now;
            rep.coldUntil =
                warmup.coldWindow > 0 ? now + warmup.coldWindow : 0;
            rep.coldFactor = warmup.coldFactor;
        });
    return r;
}

void
Service::drainReplica(unsigned replica)
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    Replica &rep = replicas_[replica];
    if (rep.state == ReplicaState::Retired)
        fatal("service '", params_.name, "': replica ", replica,
              " already retired");
    if (rep.state == ReplicaState::Draining)
        return;
    unsigned routable = 0;
    for (const Replica &other : replicas_) {
        if (other.state == ReplicaState::Active ||
            other.state == ReplicaState::Warming)
            ++routable;
    }
    if (routable <= 1)
        fatal("service '", params_.name,
              "': refusing to drain the last replica");
    rep.state = ReplicaState::Draining;
    maybeRetire(replica);
}

void
Service::maybeRetire(unsigned replica)
{
    Replica &rep = replicas_[replica];
    if (rep.state != ReplicaState::Draining || !rep.queue.empty())
        return;
    for (std::size_t idx : rep.workerIndexes) {
        if (workers_[idx].current)
            return;
    }
    rep.state = ReplicaState::Retired;
    ++replicas_retired_;
}

ReplicaState
Service::replicaState(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    return replicas_[replica].state;
}

double
Service::coldComputeFactor(unsigned replica, Tick now) const
{
    const Replica &rep = replicas_[replica];
    if (rep.coldUntil <= rep.warmedAt || now >= rep.coldUntil)
        return 1.0;
    if (now <= rep.warmedAt)
        return rep.coldFactor;
    const double f = static_cast<double>(now - rep.warmedAt) /
                     static_cast<double>(rep.coldUntil - rep.warmedAt);
    return rep.coldFactor + f * (1.0 - rep.coldFactor);
}

void
Service::addOp(const std::string &op,
               std::function<void(HandlerCtx &)> handler)
{
    if (!handler)
        MS_PANIC("empty handler for ", params_.name, ".", op);
    if (!ops_.emplace(op, std::move(handler)).second)
        MS_PANIC("duplicate op ", params_.name, ".", op);
}

void
Service::submit(Envelope envelope)
{
    if (envelope.arrived == 0)
        envelope.arrived = mesh_.kernel().sim().now();
    if (envelope.trace)
        envelope.trace.trace->span(envelope.trace.span).arrived =
            envelope.arrived;
    bool probe = false;
    const int picked = pickReplica(probe, mesh_.router() != nullptr,
                                   envelope.dstNode,
                                   envelope.avoidReplica);
    if (envelope.pickedReplica)
        *envelope.pickedReplica = picked;
    if (picked < 0) {
        ++resilience_counters_.noReplica;
        op_stats_[envelope.op]
            .statusCounts[statusIndex(Status::Unavailable)]++;
        rejectEnvelope(envelope, Status::Unavailable);
        return;
    }
    const unsigned r = static_cast<unsigned>(picked);
    Replica &rep = replicas_[r];
    if (rep.down) {
        // Blind round-robin routed onto a crashed replica: connection
        // refused, no worker consumed.
        ++resilience_counters_.downRejects;
        op_stats_[envelope.op]
            .statusCounts[statusIndex(Status::Unavailable)]++;
        rejectEnvelope(envelope, Status::Unavailable);
        return;
    }
    if (!admissionAdmits(rep, envelope)) {
        // Adaptive admission: the limiter (scaled by the request's
        // criticality tier) refused this request. A deliberate shed,
        // not replica ill-health: no breaker outcome is recorded, and
        // the mesh never retries a Rejected response.
        ++overload_counters_
              .admissionRejects[criticalityIndex(envelope.criticality)];
        op_stats_[envelope.op]
            .statusCounts[statusIndex(Status::Rejected)]++;
        rejectEnvelope(envelope, Status::Rejected);
        return;
    }
    const std::size_t cap = mesh_.resilience().maxQueueDepth;
    if (cap > 0 && rep.queue.size() >= cap && !hasIdleWorker(rep)) {
        // Bounded queue: shed at the door. The request never occupies
        // a worker and costs the replica nothing but this bookkeeping.
        ++resilience_counters_.shed;
        op_stats_[envelope.op]
            .statusCounts[statusIndex(Status::Overload)]++;
        breakerRecord(r, false, probe);
        rejectEnvelope(envelope, Status::Overload);
        return;
    }
    envelope.probe = probe;
    rep.queue.push_back(std::move(envelope));
    rep.maxQueueDepth = std::max(rep.maxQueueDepth, rep.queue.size());
    pump(r);
}

int
Service::pickReplica(bool &probe, bool constrained, unsigned node,
                     int avoid)
{
    probe = false;
    const unsigned n = replicaCount();
    const ResilienceConfig &rc = mesh_.resilience();
    const int want = static_cast<int>(node);
    if (constrained && node >= rr_by_node_.size())
        rr_by_node_.resize(node + 1, 0);
    if (!rc.healthAwareBalancing && !rc.outlier.enabled) {
        if (!constrained) {
            // Blind round-robin over Active replicas. With every
            // replica Active (no elasticity) the first iteration
            // accepts, which is exactly the legacy rr_next_++ % n
            // sequence. Down replicas stay eligible:
            // connection-refused is modeled at submit. An avoided
            // replica (hedge anti-affinity) yields to any other
            // Active one but still serves as the last resort.
            int fallback = -1;
            for (unsigned i = 0; i < n; ++i) {
                const unsigned r = rr_next_++ % n;
                if (replicas_[r].state != ReplicaState::Active)
                    continue;
                if (static_cast<int>(r) == avoid) {
                    fallback = static_cast<int>(r);
                    continue;
                }
                return static_cast<int>(r);
            }
            return fallback;
        }
        // Node-constrained blind round-robin: the message was
        // delivered to one machine, so only that machine's replicas
        // may serve it. Each machine rotates independently.
        unsigned &rr = rr_by_node_[node];
        int fallback = -1;
        for (unsigned i = 0; i < n; ++i) {
            const unsigned r = rr++ % n;
            const Replica &rep = replicas_[r];
            if (rep.state != ReplicaState::Active ||
                rep.clusterNode != want)
                continue;
            if (static_cast<int>(r) == avoid) {
                fallback = static_cast<int>(r);
                continue;
            }
            return static_cast<int>(r);
        }
        return fallback;
    }
    const Tick now = mesh_.kernel().sim().now();
    if (!rc.outlier.enabled) {
        unsigned &cursor = constrained ? rr_by_node_[node] : rr_next_;
        // Two passes so the anti-affinity hint never consumes a
        // half-open breaker probe it then declines: pass 0 skips the
        // avoided replica before touching breaker state, pass 1 (only
        // reached with a hint set) accepts it as the last resort.
        for (int pass = 0; pass < 2; ++pass) {
            for (unsigned i = 0; i < n; ++i) {
                const unsigned r = (cursor + i) % n;
                Replica &rep = replicas_[r];
                if (rep.down || rep.state != ReplicaState::Active)
                    continue;
                if (constrained && rep.clusterNode != want)
                    continue;
                if (pass == 0 && static_cast<int>(r) == avoid)
                    continue;
                if (rc.breaker.enabled &&
                    !breakerAdmits(rep.breaker, now, probe))
                    continue;
                cursor = r + 1;
                return static_cast<int>(r);
            }
            if (avoid < 0)
                break;
        }
        return -1;
    }

    // Outlier-ejection path: health-weighted smooth round-robin.
    // First return any ejected replica whose sit-out has elapsed to
    // the rotation (with fresh EWMAs: its past sins are forgiven).
    for (Replica &rep : replicas_) {
        if (rep.ejected && now >= rep.ejectedUntil) {
            rep.ejected = false;
            rep.ejectedUntil = 0;
            rep.outLatEwma = 0.0;
            rep.outErrEwma = 0.0;
            rep.outSamples = 0;
            ++resilience_counters_.outlierUnejections;
        }
    }
    // Score candidates without touching breaker state (the mutating
    // admit runs on the winner only), accumulate smooth-WRR credit,
    // and pick the highest-credit replica. Healthy replicas share
    // weight 1.0 and the pick degenerates to round-robin; a gray
    // replica's weight shrinks with its EWMA latency excess.
    int picked = -1;
    double total_weight = 0.0;
    double best_credit = 0.0;
    for (unsigned r = 0; r < n; ++r) {
        Replica &rep = replicas_[r];
        if (rep.down || rep.ejected ||
            rep.state != ReplicaState::Active)
            continue;
        if (constrained && rep.clusterNode != want)
            continue;
        if (static_cast<int>(r) == avoid)
            continue; // anti-affinity; last-resort check below
        if (rc.breaker.enabled && !breakerWouldAdmit(rep.breaker, now))
            continue;
        double weight = 1.0;
        if (rep.outSamples >= rc.outlier.minSamples &&
            rep.outLatEwma > 0.0 && out_svc_lat_ewma_ > 0.0) {
            weight = std::clamp(out_svc_lat_ewma_ / rep.outLatEwma,
                                0.1, 10.0);
        }
        rep.wrrCredit += weight;
        total_weight += weight;
        if (picked < 0 || rep.wrrCredit > best_credit) {
            picked = static_cast<int>(r);
            best_credit = rep.wrrCredit;
        }
    }
    if (picked < 0) {
        // Only the avoided replica is left (if even that): accept it
        // rather than fail the call. Smooth-WRR credit is skipped for
        // this rare path; the rotation re-balances on the next pick.
        if (avoid >= 0 && static_cast<unsigned>(avoid) < n) {
            Replica &rep = replicas_[static_cast<unsigned>(avoid)];
            if (!rep.down && !rep.ejected &&
                rep.state == ReplicaState::Active &&
                (!constrained || rep.clusterNode == want) &&
                (!rc.breaker.enabled ||
                 breakerAdmits(rep.breaker, now, probe)))
                return avoid;
        }
        return -1;
    }
    Replica &winner = replicas_[static_cast<unsigned>(picked)];
    winner.wrrCredit -= total_weight;
    if (rc.breaker.enabled &&
        !breakerAdmits(winner.breaker, now, probe)) {
        // Cannot happen: the preview above mirrors breakerAdmits
        // exactly and time has not advanced since.
        return -1;
    }
    return picked;
}

bool
Service::breakerAdmits(BreakerState &breaker, Tick now, bool &probe)
{
    switch (breaker.state) {
    case BreakerState::State::Closed:
        return true;
    case BreakerState::State::Open:
        if (now >= breaker.openedAt + mesh_.resilience().breaker.openFor) {
            breaker.state = BreakerState::State::HalfOpen;
            breaker.probeInFlight = true;
            probe = true;
            return true;
        }
        return false;
    case BreakerState::State::HalfOpen:
        if (!breaker.probeInFlight) {
            breaker.probeInFlight = true;
            probe = true;
            return true;
        }
        return false;
    }
    return false;
}

bool
Service::breakerWouldAdmit(const BreakerState &breaker, Tick now) const
{
    switch (breaker.state) {
    case BreakerState::State::Closed:
        return true;
    case BreakerState::State::Open:
        return now >=
               breaker.openedAt + mesh_.resilience().breaker.openFor;
    case BreakerState::State::HalfOpen:
        return !breaker.probeInFlight;
    }
    return false;
}

void
Service::outlierObserve(unsigned replica, double latency_ns, bool failed)
{
    const OutlierEjectionParams &oe = mesh_.resilience().outlier;
    if (!oe.enabled)
        return;
    Replica &rep = replicas_[replica];
    const double a = oe.ewmaAlpha;
    const double err = failed ? 1.0 : 0.0;
    if (rep.outSamples == 0) {
        rep.outLatEwma = latency_ns;
        rep.outErrEwma = err;
    } else {
        rep.outLatEwma = (1.0 - a) * rep.outLatEwma + a * latency_ns;
        rep.outErrEwma = (1.0 - a) * rep.outErrEwma + a * err;
    }
    ++rep.outSamples;
    out_svc_lat_ewma_ =
        out_svc_samples_ == 0
            ? latency_ns
            : (1.0 - a) * out_svc_lat_ewma_ + a * latency_ns;
    ++out_svc_samples_;

    if (rep.ejected || rep.down || rep.state != ReplicaState::Active)
        return;
    if (rep.outSamples < oe.minSamples ||
        out_svc_samples_ < oe.minSamples)
        return;
    const bool lat_outlier =
        out_svc_lat_ewma_ > 0.0 &&
        rep.outLatEwma > oe.latencyFactor * out_svc_lat_ewma_;
    const bool err_outlier = rep.outErrEwma >= oe.errorThreshold;
    if (!lat_outlier && !err_outlier)
        return;
    // Bounded ejection: never pull more than the configured fraction
    // of active replicas out of rotation at once. A mostly-gray fleet
    // is still a fleet; shrinking it to nothing would convert a
    // partial failure into a self-inflicted total one. Small fleets
    // need a floor: fraction * active truncates to 0 for e.g. two
    // replicas at 0.45, which would leave a fully-gray replica
    // permanently in rotation.
    unsigned cap = static_cast<unsigned>(
        oe.maxEjectFraction * static_cast<double>(activeReplicaCount()));
    if (cap == 0 && oe.maxEjectFraction > 0.0 && activeReplicaCount() >= 2)
        cap = 1;
    if (ejectedReplicaCount() >= cap) {
        ++resilience_counters_.outlierEjectionsDenied;
        return;
    }
    rep.ejected = true;
    rep.ejectedUntil = mesh_.kernel().sim().now() + oe.ejectFor;
    ++resilience_counters_.outlierEjections;
}

void
Service::breakerRecord(unsigned replica, bool ok, bool probe)
{
    const BreakerParams &bp = mesh_.resilience().breaker;
    if (!bp.enabled)
        return;
    BreakerState &b = replicas_[replica].breaker;
    const Tick now = mesh_.kernel().sim().now();
    switch (b.state) {
    case BreakerState::State::Open:
        // Outcome of a request dispatched before the breaker opened;
        // it carries no information about recovery.
        return;
    case BreakerState::State::HalfOpen:
        if (!probe)
            return; // stale pre-open outcome; only the probe decides
        b.probeInFlight = false;
        if (ok) {
            b = BreakerState{}; // close with a fresh window
        } else {
            b.state = BreakerState::State::Open;
            b.openedAt = now;
            ++resilience_counters_.breakerOpens;
        }
        return;
    case BreakerState::State::Closed:
        break;
    }
    if (ok)
        b.consecutiveFailures = 0;
    else
        ++b.consecutiveFailures;
    b.window.push_back(!ok);
    if (!ok)
        ++b.windowFailures;
    if (b.window.size() > bp.windowSize) {
        if (b.window.front())
            --b.windowFailures;
        b.window.pop_front();
    }
    const bool tripped =
        b.consecutiveFailures >= bp.consecutiveFailures ||
        (b.window.size() >= bp.windowMin &&
         static_cast<double>(b.windowFailures) /
                 static_cast<double>(b.window.size()) >=
             bp.errorRateThreshold);
    if (tripped) {
        b = BreakerState{};
        b.state = BreakerState::State::Open;
        b.openedAt = now;
        ++resilience_counters_.breakerOpens;
    }
}

void
Service::rejectEnvelope(Envelope &envelope, Status status)
{
    if (envelope.trace) {
        // The request dies here without a worker: dispatched stays 0,
        // so the analyzer books its whole residency as shed time.
        trace::Span &span =
            envelope.trace.trace->span(envelope.trace.span);
        span.finish = mesh_.kernel().sim().now();
        span.status = status;
    }
    if (!envelope.respond)
        return;
    // Fail-fast: rejections are synchronous (no response network hop),
    // modeling a refused connection rather than a served error.
    Payload resp;
    resp.bytes = 64;
    RespondFn respond = std::move(envelope.respond);
    respond(resp, status);
}

bool
Service::hasIdleWorker(const Replica &replica) const
{
    for (std::size_t idx : replica.workerIndexes) {
        if (!workers_[idx].current)
            return true;
    }
    return false;
}

unsigned
Service::busyWorkerCount(const Replica &replica) const
{
    unsigned n = 0;
    for (std::size_t idx : replica.workerIndexes) {
        if (workers_[idx].current)
            ++n;
    }
    return n;
}

bool
Service::admissionAdmits(Replica &replica, const Envelope &envelope)
{
    const OverloadConfig &oc = mesh_.overload();
    if (oc.admission.kind == AdmissionKind::Off)
        return true;
    if (!replica.limiter) {
        replica.limiter = makeLimiter(oc.admission);
        replica.limiterTrace.observe(replica.limiter->limit());
    }
    // Each tier may fill only a fraction of the limit, so sheddable
    // work hits the wall first and headroom survives for critical
    // work as pressure builds.
    double frac = 1.0;
    if (oc.criticalityAware) {
        switch (envelope.criticality) {
        case Criticality::Critical:
            break;
        case Criticality::Normal:
            frac = oc.normalFrac;
            break;
        case Criticality::Sheddable:
            frac = oc.sheddableFrac;
            break;
        }
    }
    const double occupancy = static_cast<double>(
        replica.queue.size() + busyWorkerCount(replica));
    return occupancy < replica.limiter->limit() * frac;
}

void
Service::limiterObserve(unsigned replica, double latency_ns, bool dropped)
{
    Replica &rep = replicas_[replica];
    if (!rep.limiter)
        return;
    rep.limiter->onSample(latency_ns, dropped);
    rep.limiterTrace.observe(rep.limiter->limit());
}

LimiterTrace
Service::limiterSummary() const
{
    LimiterTrace total;
    for (const Replica &r : replicas_)
        total.merge(r.limiterTrace);
    return total;
}

double
Service::replicaLimit(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    const Replica &rep = replicas_[replica];
    return rep.limiter ? rep.limiter->limit() : 0.0;
}

void
Service::pump(unsigned replica)
{
    Replica &rep = replicas_[replica];
    const Tick now = mesh_.kernel().sim().now();
    const CoDelParams &cd = mesh_.overload().codel;
    while (!rep.queue.empty()) {
        // Adaptive LIFO: while CoDel is in its dropping state, serve
        // the newest request first so fresh work still meets its
        // deadline while the stale backlog drains through drops.
        const bool lifo =
            cd.enabled && cd.lifoUnderOverload && rep.codel.dropping;
        Envelope &next = lifo ? rep.queue.back() : rep.queue.front();
        if (next.deadline != kTickNever && now >= next.deadline) {
            // The caller has already given up on this request; don't
            // waste a worker on it.
            ++resilience_counters_.deadlineDrops;
            op_stats_[next.op]
                .statusCounts[statusIndex(Status::Timeout)]++;
            breakerRecord(replica, false, next.probe);
            limiterObserve(replica,
                           static_cast<double>(now - next.arrived), true);
            outlierObserve(replica,
                           static_cast<double>(now - next.arrived), true);
            rejectEnvelope(next, Status::Timeout);
            if (lifo)
                rep.queue.pop_back();
            else
                rep.queue.pop_front();
            continue;
        }
        Worker *idle = nullptr;
        for (std::size_t idx : rep.workerIndexes) {
            if (!workers_[idx].current) {
                idle = &workers_[idx];
                break;
            }
        }
        if (!idle)
            return;
        if (cd.enabled) {
            const Tick sojourn = now - next.arrived;
            if (codelShouldDrop(rep.codel, cd, sojourn, now)) {
                ++overload_counters_.codelDrops;
                op_stats_[next.op]
                    .statusCounts[statusIndex(Status::Rejected)]++;
                limiterObserve(replica, static_cast<double>(sojourn),
                               true);
                rejectEnvelope(next, Status::Rejected);
                if (lifo)
                    rep.queue.pop_back();
                else
                    rep.queue.pop_front();
                continue;
            }
        }
        if (lifo)
            ++overload_counters_.lifoDequeues;
        Envelope env = std::move(next);
        if (lifo)
            rep.queue.pop_back();
        else
            rep.queue.pop_front();
        dispatch(*idle, std::move(env));
    }
}

void
Service::dispatch(Worker &worker, Envelope envelope)
{
    auto it = ops_.find(envelope.op);
    if (it == ops_.end())
        fatal("service '", params_.name, "' has no op '", envelope.op,
              "'");
    ++requests_;
    ++op_stats_[envelope.op].requests;
    const Tick now = mesh_.kernel().sim().now();
    queue_wait_ns_.add(static_cast<double>(now - envelope.arrived));

    const double deser = mesh_.rpcInstructions(envelope.request.bytes);
    worker.current.reset(
        new HandlerCtx(*this, worker, std::move(envelope)));
    HandlerCtx *ctx = worker.current.get();
    ctx->dispatched_ = now;
    ctx->busy_at_dispatch_ = worker.thread->ec().counters().busyNs;
    if (ctx->envelope_.trace) {
        trace::Span &span = ctx->envelope_.trace.trace->span(
            ctx->envelope_.trace.span);
        span.dispatched = now;
        span.replica = static_cast<int>(worker.replica);
        span.ccx = workerCcx(mesh_.kernel().machine(),
                             worker.thread->affinity());
        const NodeId home = worker.thread->ec().homeNode();
        span.node = home != kInvalidNode
                        ? static_cast<int>(home)
                        : (span.ccx >= 0
                               ? static_cast<int>(
                                     mesh_.kernel().machine().nodeOfCcx(
                                         static_cast<CcxId>(span.ccx)))
                               : -1);
        span.clusterNode = replicas_[worker.replica].clusterNode;
    }
    auto &handler = it->second;
    worker.thread->run(mesh_.netstackProfile(), deser,
                       [&handler, ctx] { handler(*ctx); });
}

void
Service::workerDone(Worker &worker)
{
    const unsigned r = worker.replica;
    worker.current.reset();
    pump(r);
    if (replicas_[r].state == ReplicaState::Draining)
        maybeRetire(r);
}

void
Service::setReplicaPlacement(unsigned replica, const CpuMask &affinity,
                             NodeId home_node)
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    for (std::size_t idx : replicas_[replica].workerIndexes) {
        Worker &w = workers_[idx];
        w.thread->ec().setHomeNode(home_node);
        w.thread->setAffinity(affinity);
    }
}

void
Service::setReplicaDown(unsigned replica, bool down)
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    Replica &rep = replicas_[replica];
    if (rep.down == down)
        return;
    rep.down = down;
    rep.breaker = BreakerState{};
    if (down) {
        // Crash: everything queued dies with the replica. Handlers
        // already on workers run to completion (no mid-handler abort
        // is modeled).
        std::deque<Envelope> doomed;
        doomed.swap(rep.queue);
        for (Envelope &e : doomed) {
            op_stats_[e.op]
                .statusCounts[statusIndex(Status::Unavailable)]++;
            rejectEnvelope(e, Status::Unavailable);
        }
    }
    for (const auto &observer : availability_observers_)
        observer(replica, down);
}

bool
Service::replicaDown(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    return replicas_[replica].down;
}

void
Service::setSlowdown(double factor)
{
    if (factor <= 0.0)
        fatal("service '", params_.name, "': slowdown must be positive");
    slowdown_ = factor;
}

void
Service::setReplicaSlow(unsigned replica, double factor)
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    if (factor <= 0.0)
        fatal("service '", params_.name,
              "': replica slow factor must be positive");
    replicas_[replica].slowFactor = factor;
}

double
Service::replicaSlow(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    return replicas_[replica].slowFactor;
}

int
Service::replicaCcx(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    int ccx = -1;
    for (std::size_t idx : replicas_[replica].workerIndexes) {
        const int c = workerCcx(mesh_.kernel().machine(),
                                workers_[idx].thread->affinity());
        if (c < 0 || (ccx >= 0 && c != ccx))
            return -1;
        ccx = c;
    }
    return ccx;
}

void
Service::setReplicaClusterNode(unsigned replica, int node)
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    replicas_[replica].clusterNode = node;
}

int
Service::replicaClusterNode(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    return replicas_[replica].clusterNode;
}

unsigned
Service::activeReplicasOnNode(int node) const
{
    unsigned n = 0;
    for (const Replica &r : replicas_) {
        if (r.state == ReplicaState::Active && r.clusterNode == node)
            ++n;
    }
    return n;
}

bool
Service::replicaEjected(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    return replicas_[replica].ejected;
}

unsigned
Service::ejectedReplicaCount() const
{
    unsigned n = 0;
    for (const Replica &r : replicas_) {
        if (r.ejected)
            ++n;
    }
    return n;
}

const BreakerState &
Service::breakerState(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    return replicas_[replica].breaker;
}

cpu::PerfCounters
Service::aggregateCounters() const
{
    cpu::PerfCounters total;
    for (const Worker &w : workers_)
        total.merge(w.thread->ec().counters());
    return total;
}

unsigned
Service::busyWorkers() const
{
    unsigned n = 0;
    for (const Worker &w : workers_) {
        if (w.current)
            ++n;
    }
    return n;
}

std::uint64_t
Service::queuedRequests() const
{
    std::uint64_t n = 0;
    for (const Replica &r : replicas_)
        n += r.queue.size();
    return n;
}

std::uint64_t
Service::queuedRequests(unsigned replica) const
{
    if (replica >= replicaCount())
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    return replicas_[replica].queue.size();
}

void
Service::resetStats()
{
    op_stats_.clear();
    queue_wait_ns_.reset();
    requests_ = 0;
    for (Replica &r : replicas_)
        r.maxQueueDepth = r.queue.size();
}

} // namespace microscale::svc
