#include "svc/service.hh"

#include <algorithm>

#include "base/logging.hh"
#include "svc/mesh.hh"

namespace microscale::svc
{

HandlerCtx::HandlerCtx(Service &service, Worker &worker, Envelope envelope)
    : service_(service), worker_(worker), envelope_(std::move(envelope))
{
}

Rng &
HandlerCtx::rng()
{
    return service_.rng_;
}

Tick
HandlerCtx::now() const
{
    return service_.mesh_.kernel().sim().now();
}

void
HandlerCtx::compute(double instructions, std::function<void()> next)
{
    computeProfile(service_.params_.profile, instructions,
                   std::move(next));
}

void
HandlerCtx::computeProfile(const cpu::WorkProfile &profile,
                           double instructions,
                           std::function<void()> next)
{
    if (finished_)
        MS_PANIC("compute after done() in ", service_.name());
    double actual = instructions;
    if (service_.params_.computeCv > 0.0 && instructions > 0.0)
        actual = rng().lognormal(instructions, service_.params_.computeCv);
    if (actual <= 0.0) {
        // Degenerate budget: continue without occupying a CPU.
        service_.mesh_.kernel().sim().scheduleAfter(1, std::move(next));
        return;
    }
    worker_.thread->run(profile, actual, std::move(next));
}

void
HandlerCtx::call(const std::string &service, const std::string &op,
                 Payload request_payload,
                 std::function<void(const Payload &)> next)
{
    if (finished_)
        MS_PANIC("call after done() in ", service_.name());
    Mesh &mesh = service_.mesh_;
    Service &target = mesh.service(service);
    Worker &worker = worker_;

    // Serialize on this worker, ship the request, and when the response
    // arrives deserialize on this worker before continuing.
    const double ser = mesh.rpcInstructions(request_payload.bytes);
    auto after_response = [&mesh, &worker,
                           next = std::move(next)](const Payload &resp) {
        const double deser = mesh.rpcInstructions(resp.bytes);
        // Copy the payload so the continuation owns it.
        Payload resp_copy = resp;
        worker.thread->run(
            mesh.netstackProfile(), deser,
            [next, resp_copy] { next(resp_copy); });
    };
    worker_.thread->run(
        mesh.netstackProfile(), ser,
        [&mesh, &target, op, request_payload,
         after_response = std::move(after_response)]() mutable {
            net::Network &net = mesh.network();
            net.send(request_payload.bytes,
                     [&target, op, request_payload,
                      after_response = std::move(after_response),
                      &mesh]() mutable {
                         Envelope env;
                         env.op = op;
                         env.request = request_payload;
                         env.respond = std::move(after_response);
                         env.arrived = mesh.kernel().sim().now();
                         target.submit(std::move(env));
                     });
        });
}

void
HandlerCtx::callAll(std::vector<CallSpec> calls,
                    std::function<void(const std::vector<Payload> &)> next)
{
    if (finished_)
        MS_PANIC("callAll after done() in ", service_.name());
    Mesh &mesh = service_.mesh_;
    if (calls.empty()) {
        mesh.kernel().sim().scheduleAfter(
            1, [next = std::move(next)] { next({}); });
        return;
    }

    struct FanOut
    {
        std::vector<Payload> responses;
        std::size_t pending = 0;
        std::function<void(const std::vector<Payload> &)> next;
        Worker *worker = nullptr;
        Mesh *mesh = nullptr;
    };
    auto state = std::make_shared<FanOut>();
    state->responses.resize(calls.size());
    state->pending = calls.size();
    state->next = std::move(next);
    state->worker = &worker_;
    state->mesh = &mesh;

    double ser = 0.0;
    for (const CallSpec &c : calls)
        ser += mesh.rpcInstructions(c.request.bytes);

    worker_.thread->run(
        mesh.netstackProfile(), ser,
        [calls = std::move(calls), state, &mesh] {
            for (std::size_t i = 0; i < calls.size(); ++i) {
                const CallSpec &spec = calls[i];
                Service &target = mesh.service(spec.service);
                auto on_response = [state, i](const Payload &resp) {
                    state->responses[i] = resp;
                    if (--state->pending > 0)
                        return;
                    // All responses in: one deserialization batch on
                    // the (blocked) worker, then the continuation.
                    double deser = 0.0;
                    for (const Payload &r : state->responses)
                        deser += state->mesh->rpcInstructions(r.bytes);
                    state->worker->thread->run(
                        state->mesh->netstackProfile(), deser, [state] {
                            state->next(state->responses);
                        });
                };
                mesh.network().send(
                    spec.request.bytes,
                    [&mesh, &target, spec,
                     on_response = std::move(on_response)]() mutable {
                        Envelope env;
                        env.op = spec.op;
                        env.request = spec.request;
                        env.respond = std::move(on_response);
                        env.arrived = mesh.kernel().sim().now();
                        target.submit(std::move(env));
                    });
            }
        });
}

void
HandlerCtx::done()
{
    if (finished_)
        MS_PANIC("double done() in ", service_.name());
    finished_ = true;

    Mesh &mesh = service_.mesh_;
    const double ser = mesh.rpcInstructions(response_.bytes);
    worker_.thread->run(mesh.netstackProfile(), ser, [this, &mesh] {
        // Copy everything we need out of the context before it dies.
        Service &svc = service_;
        Worker &worker = worker_;
        ResponseFn respond = std::move(envelope_.respond);
        const Payload resp = response_;
        const Tick arrived = envelope_.arrived;
        const std::string op = envelope_.op;

        const Tick now = mesh.kernel().sim().now();
        auto &stats = svc.op_stats_[op];
        const double service_time = static_cast<double>(now - arrived);
        const double queue_wait =
            static_cast<double>(dispatched_ - arrived);
        const double compute =
            worker.thread->ec().counters().busyNs - busy_at_dispatch_;
        stats.serviceTimeNs.add(service_time);
        stats.queueWaitNs.add(queue_wait);
        stats.computeNs.add(compute);
        stats.stallNs.add(
            std::max(0.0, service_time - queue_wait - compute));

        if (respond) {
            mesh.network().send(resp.bytes, [respond = std::move(respond),
                                             resp] { respond(resp); });
        }
        // This destroys the HandlerCtx (and this lambda's captures were
        // already copied to locals); do not touch members afterwards.
        svc.workerDone(worker);
    });
}

Service::Service(Mesh &mesh, ServiceParams params)
    : mesh_(mesh),
      params_(std::move(params)),
      rng_(mesh.seed(), "svc." + params_.name)
{
    if (params_.name.empty())
        fatal("service with empty name");
    if (params_.replicas == 0 || params_.workersPerReplica == 0)
        fatal("service '", params_.name,
              "' needs at least one replica and worker");
    params_.profile.validate();

    os::Kernel &kernel = mesh_.kernel();
    const CpuMask everywhere = kernel.machine().allCpus();
    replicas_.resize(params_.replicas);
    workers_.reserve(static_cast<std::size_t>(params_.replicas) *
                     params_.workersPerReplica);
    for (unsigned r = 0; r < params_.replicas; ++r) {
        for (unsigned w = 0; w < params_.workersPerReplica; ++w) {
            Worker worker;
            worker.replica = r;
            worker.thread = kernel.createThread(
                params_.name + ".r" + std::to_string(r) + ".w" +
                    std::to_string(w),
                everywhere, kInvalidNode);
            replicas_[r].workerIndexes.push_back(workers_.size());
            workers_.push_back(std::move(worker));
        }
    }
}

void
Service::addOp(const std::string &op,
               std::function<void(HandlerCtx &)> handler)
{
    if (!handler)
        MS_PANIC("empty handler for ", params_.name, ".", op);
    if (!ops_.emplace(op, std::move(handler)).second)
        MS_PANIC("duplicate op ", params_.name, ".", op);
}

void
Service::submit(Envelope envelope)
{
    if (envelope.arrived == 0)
        envelope.arrived = mesh_.kernel().sim().now();
    const unsigned r = rr_next_++ % params_.replicas;
    Replica &rep = replicas_[r];
    rep.queue.push_back(std::move(envelope));
    rep.maxQueueDepth = std::max(rep.maxQueueDepth, rep.queue.size());
    pump(r);
}

void
Service::pump(unsigned replica)
{
    Replica &rep = replicas_[replica];
    while (!rep.queue.empty()) {
        Worker *idle = nullptr;
        for (std::size_t idx : rep.workerIndexes) {
            if (!workers_[idx].current) {
                idle = &workers_[idx];
                break;
            }
        }
        if (!idle)
            return;
        Envelope env = std::move(rep.queue.front());
        rep.queue.pop_front();
        dispatch(*idle, std::move(env));
    }
}

void
Service::dispatch(Worker &worker, Envelope envelope)
{
    auto it = ops_.find(envelope.op);
    if (it == ops_.end())
        fatal("service '", params_.name, "' has no op '", envelope.op,
              "'");
    ++requests_;
    ++op_stats_[envelope.op].requests;
    const Tick now = mesh_.kernel().sim().now();
    queue_wait_ns_.add(static_cast<double>(now - envelope.arrived));

    const double deser = mesh_.rpcInstructions(envelope.request.bytes);
    worker.current.reset(
        new HandlerCtx(*this, worker, std::move(envelope)));
    HandlerCtx *ctx = worker.current.get();
    ctx->dispatched_ = now;
    ctx->busy_at_dispatch_ = worker.thread->ec().counters().busyNs;
    auto &handler = it->second;
    worker.thread->run(mesh_.netstackProfile(), deser,
                       [&handler, ctx] { handler(*ctx); });
}

void
Service::workerDone(Worker &worker)
{
    const unsigned r = worker.replica;
    worker.current.reset();
    pump(r);
}

void
Service::setReplicaPlacement(unsigned replica, const CpuMask &affinity,
                             NodeId home_node)
{
    if (replica >= params_.replicas)
        fatal("service '", params_.name, "': replica ", replica,
              " out of range");
    for (std::size_t idx : replicas_[replica].workerIndexes) {
        Worker &w = workers_[idx];
        w.thread->ec().setHomeNode(home_node);
        w.thread->setAffinity(affinity);
    }
}

cpu::PerfCounters
Service::aggregateCounters() const
{
    cpu::PerfCounters total;
    for (const Worker &w : workers_)
        total.merge(w.thread->ec().counters());
    return total;
}

unsigned
Service::busyWorkers() const
{
    unsigned n = 0;
    for (const Worker &w : workers_) {
        if (w.current)
            ++n;
    }
    return n;
}

std::uint64_t
Service::queuedRequests() const
{
    std::uint64_t n = 0;
    for (const Replica &r : replicas_)
        n += r.queue.size();
    return n;
}

void
Service::resetStats()
{
    op_stats_.clear();
    queue_wait_ns_.reset();
    requests_ = 0;
    for (Replica &r : replicas_)
        r.maxQueueDepth = r.queue.size();
}

} // namespace microscale::svc
