#include "svc/mesh.hh"

#include "base/logging.hh"

namespace microscale::svc
{

Mesh::Mesh(os::Kernel &kernel, net::Network &network,
           RpcCostParams rpc_params, std::uint64_t seed)
    : kernel_(kernel),
      network_(network),
      rpc_params_(rpc_params),
      seed_(seed)
{
    netstack_.name = "netstack";
    netstack_.ipcBase = 0.9;
    netstack_.branchMpki = 6.0;
    netstack_.icacheMpki = 14.0;
    netstack_.l3Apki = 2.2;
    netstack_.wssBytes = 1.0 * 1024 * 1024;
    netstack_.smtYield = 0.65;
    netstack_.kernelShare = 0.85;
}

Service *
Mesh::createService(ServiceParams params)
{
    if (by_name_.count(params.name))
        fatal("duplicate service name '", params.name, "'");
    services_.push_back(std::make_unique<Service>(*this, params));
    Service *svc = services_.back().get();
    by_name_[svc->name()] = svc;
    return svc;
}

Service &
Mesh::service(const std::string &name)
{
    auto it = by_name_.find(name);
    if (it == by_name_.end())
        fatal("unknown service '", name, "'");
    return *it->second;
}

bool
Mesh::hasService(const std::string &name) const
{
    return by_name_.count(name) != 0;
}

void
Mesh::callExternal(const std::string &service, const std::string &op,
                   Payload payload, ResponseFn respond)
{
    Service &target = this->service(service);
    network_.send(payload.bytes, [this, &target, op, payload,
                                  respond = std::move(respond)]() mutable {
        Envelope env;
        env.op = op;
        env.request = payload;
        env.respond = std::move(respond);
        env.arrived = kernel_.sim().now();
        target.submit(std::move(env));
    });
}

double
Mesh::rpcInstructions(std::uint32_t bytes) const
{
    return rpc_params_.fixedInstructions +
           rpc_params_.perKibInstructions *
               (static_cast<double>(bytes) / 1024.0);
}

} // namespace microscale::svc
