#include "svc/mesh.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "sim/simulation.hh"

namespace microscale::svc
{

/**
 * State of one logical RPC across its attempts. Kept alive by the
 * shared_ptr captured in the transport/timer closures.
 */
struct Mesh::RpcCall
{
    Service *target = nullptr;
    std::string op;
    Payload payload;
    /** Propagated absolute deadline (kTickNever = none). */
    Tick deadline = kTickNever;
    EdgePolicy policy;
    Criticality criticality = Criticality::Normal;
    RespondFn respond;
    /** Timeout timer of the attempt in flight (cancelled on settle). */
    sim::EventHandle timer;
    /** Caller's name (span labeling; kExternalClient for roots). */
    std::string client;
    /** Trace link of the logical call; null when untraced. */
    trace::TraceLink link;
    /** Span of the first attempt (retry lineage). */
    trace::SpanId firstSpan = trace::kNoSpan;
    /** Span of the attempt currently in flight. */
    trace::SpanId currentSpan = trace::kNoSpan;
    /** Backoff delay preceding the next attempt (recorded into its
     * span, then cleared). */
    Tick pendingBackoff = 0;
    /** Machine the caller runs on (0 unless a router is installed). */
    unsigned srcNode = 0;
};

/**
 * State of one hedged RPC: up to 1 + maxHedges concurrent legs racing
 * to a first-response-wins settle. Kept alive by the shared_ptr
 * captured in the transport/timer closures. Hedging replaces the
 * sequential retry ladder on its edge: an edge with both hedge and
 * retry configured hedges only.
 */
struct Mesh::HedgedCall
{
    Service *target = nullptr;
    std::string op;
    Payload payload;
    /** Propagated absolute deadline (kTickNever = none). */
    Tick deadline = kTickNever;
    EdgePolicy policy;
    Criticality criticality = Criticality::Normal;
    RespondFn respond;
    /** Caller's name (span labeling; kExternalClient for roots). */
    std::string client;
    /** Trace link of the logical call; null when untraced. */
    trace::TraceLink link;
    /** Span of the first leg (hedge legs point at it via retryOf). */
    trace::SpanId firstSpan = trace::kNoSpan;
    /** Replica the first leg landed on (anti-affinity for hedge legs);
     * -1 until the first leg is dispatched. */
    std::shared_ptr<int> firstReplica;
    /** Machine the caller runs on (0 unless a router is installed). */
    unsigned srcNode = 0;
    /** Call settled: exactly one respond() has fired. */
    bool done = false;
    /** Legs still racing (launched, not yet settled or cancelled). */
    unsigned legsOpen = 0;
    /** Timer that launches the next hedge leg. */
    sim::EventHandle hedgeTimer;
    /** Hedge delay the timer was armed with (re-arm uses the same). */
    Tick hedgeDelay = 0;
    /** Outcome of the most recent failed leg (final answer when every
     * leg fails). */
    Payload lastResponse;
    Status lastStatus = Status::Unavailable;

    struct Leg {
        /** Per-leg timeout timer (cancelled on settle). */
        sim::EventHandle timer;
        /** Span of this leg; kNoSpan when untraced. */
        trace::SpanId span = trace::kNoSpan;
        /** Issue tick (latency sample on Ok, without needing a trace). */
        Tick issued = 0;
        /** Settle-once guard shared with the transport closure. */
        std::shared_ptr<bool> settled;
        /** Still racing (not settled, not cancelled). */
        bool open = false;
    };
    std::vector<Leg> legs;
};

Mesh::Mesh(os::Kernel &kernel, net::Network &network,
           RpcCostParams rpc_params, std::uint64_t seed)
    : kernel_(kernel),
      network_(network),
      rpc_params_(rpc_params),
      seed_(seed),
      retry_rng_(seed, "mesh.retry"),
      hedge_rng_(seed, "mesh.hedge"),
      trace_rng_(seed, "mesh.trace")
{
    netstack_.name = "netstack";
    netstack_.ipcBase = 0.9;
    netstack_.branchMpki = 6.0;
    netstack_.icacheMpki = 14.0;
    netstack_.l3Apki = 2.2;
    netstack_.wssBytes = 1.0 * 1024 * 1024;
    netstack_.smtYield = 0.65;
    netstack_.kernelShare = 0.85;
}

Service *
Mesh::createService(ServiceParams params)
{
    if (by_name_.count(params.name))
        fatal("duplicate service name '", params.name, "'");
    services_.push_back(std::make_unique<Service>(*this, params));
    Service *svc = services_.back().get();
    by_name_[svc->name()] = svc;
    return svc;
}

Service &
Mesh::service(const std::string &name)
{
    auto it = by_name_.find(name);
    if (it == by_name_.end())
        fatal("unknown service '", name, "'");
    return *it->second;
}

bool
Mesh::hasService(const std::string &name) const
{
    return by_name_.count(name) != 0;
}

void
Mesh::setResilience(ResilienceConfig config)
{
    resilience_ = std::move(config);
}

void
Mesh::setOverload(OverloadConfig config)
{
    overload_ = std::move(config);
}

void
Mesh::setTrace(const trace::TraceParams &params)
{
    trace_store_ =
        params.enabled ? std::make_shared<trace::TraceStore>(params)
                       : nullptr;
}

trace::TraceLink
Mesh::maybeStartTrace()
{
    if (!trace_store_)
        return {};
    trace_store_->noteRoot();
    if (trace_store_->full())
        return {};
    const double rate = trace_store_->params().sampleRate;
    if (rate <= 0.0)
        return {};
    if (rate < 1.0 && !(trace_rng_.uniform01() < rate))
        return {};
    return {trace_store_->newTrace(), trace::kNoSpan, 0};
}

trace::SpanRef
Mesh::startSpan(const trace::TraceLink &link, const std::string &client,
                const std::string &service, const std::string &op,
                unsigned attempt_no, trace::SpanId retry_of,
                Tick backoff)
{
    const trace::SpanId id = link.trace->addSpan();
    trace::Span &span = link.trace->span(id);
    span.parent = link.parent;
    span.group = link.group;
    span.attempt = attempt_no;
    span.retryOf = retry_of;
    span.client = client;
    span.service = service;
    span.op = op;
    span.clientIssue = kernel_.sim().now();
    span.backoffBefore = backoff;
    return {link.trace, id};
}

RespondFn
Mesh::traceWrap(trace::SpanRef ref, RespondFn inner)
{
    return [this, ref, inner = std::move(inner)](const Payload &resp,
                                                 Status status) {
        trace::Span &span = ref.trace->span(ref.span);
        span.clientComplete = kernel_.sim().now();
        span.clientStatus = status;
        inner(resp, status);
    };
}

void
Mesh::callExternal(const std::string &service, const std::string &op,
                   Payload payload, ResponseFn respond)
{
    RespondFn wrapped;
    if (respond) {
        wrapped = [respond = std::move(respond)](const Payload &resp,
                                                 Status) { respond(resp); };
    }
    callExternalS(service, op, std::move(payload), std::move(wrapped));
}

void
Mesh::callExternalS(const std::string &service, const std::string &op,
                    Payload payload, RespondFn respond)
{
    // Every external request is a potential trace root; with tracing
    // off maybeStartTrace returns the null link for free.
    sendRpc(kExternalClient, service, op, std::move(payload), kTickNever,
            Criticality::Normal, std::move(respond), maybeStartTrace());
}

void
Mesh::sendRpc(const std::string &client, const std::string &service,
              const std::string &op, Payload payload, Tick deadline,
              Criticality inherited, RespondFn respond,
              trace::TraceLink link, unsigned src_node)
{
    Service &target = this->service(service);
    const EdgePolicy &pol = resilience_.policyFor(client, service);

    // Cluster routing: resolve the caller's machine (external traffic
    // enters at the router's ingress) and the target machine for this
    // call. Without a router both stay 0 and nothing below changes.
    unsigned src = 0;
    unsigned dst = 0;
    if (router_) {
        src = src_node == kNoNode ? router_->ingress() : src_node;
        dst = router_->route(src, target);
    }

    // Criticality-aware admission reclassifies the request at the
    // server's door; otherwise the caller's tier rides along untouched
    // (and is ignored downstream, keeping inactive runs identical).
    const Criticality tier =
        overload_.criticalityAware
            ? overload_.classify(service, op, inherited)
            : inherited;

    if (!pol.hasTimeout() && !pol.canRetry() && !pol.hedge.enabled() &&
        deadline == kTickNever) {
        // No policy, no inherited deadline: the legacy transport path
        // (identical events, no timers, no per-call allocation). A
        // sampled trace only adds the span bookkeeping: no events, no
        // RNG draws, and fire-and-forget calls stay unwrapped.
        trace::SpanRef ref;
        if (link) {
            ref = startSpan(link, client, service, op, /*attempt_no=*/1,
                            trace::kNoSpan, /*backoff=*/0);
            if (respond)
                respond = traceWrap(ref, std::move(respond));
        }
        if (ref && src != dst) {
            ref.trace->span(ref.span).fabricNs += static_cast<double>(
                network_.fabricLatencyNominal(payload.bytes, src, dst));
        }
        network_.sendVia(
            payload.bytes, client, service, src, dst,
            [this, &target, client, op, payload, tier, ref, src, dst,
             respond = std::move(respond)]() mutable {
                Envelope env;
                env.op = op;
                env.request = payload;
                env.respond = std::move(respond);
                // A duplicated delivery (PacketDup) invokes
                // this again: hand the responder to the first
                // copy only, the dup becomes fire-and-forget.
                respond = nullptr;
                env.client = client;
                env.arrived = kernel_.sim().now();
                env.criticality = tier;
                env.trace = ref;
                env.srcNode = src;
                env.dstNode = dst;
                target.submit(std::move(env));
            });
        return;
    }

    if (pol.hedge.enabled()) {
        // Hedged path: concurrent first-response-wins legs instead of
        // the sequential retry ladder. Hedge tokens accrue per first
        // attempt; each launched hedge spends one.
        hedge_tokens_ = std::min(
            hedge_tokens_ + resilience_.hedgeBudgetRatio, 50.0);
        ++hedge_stats_.firstAttempts;
        auto call = std::make_shared<HedgedCall>();
        call->target = &target;
        call->op = op;
        call->payload = std::move(payload);
        call->deadline = deadline;
        call->policy = pol;
        call->criticality = tier;
        call->respond = std::move(respond);
        call->client = client;
        call->link = link;
        call->srcNode = src;
        sendHedged(std::move(call));
        return;
    }

    // Retry tokens accrue on first attempts of retry-capable edges and
    // are spent one per retry; the cap bounds burst retries after idle.
    if (pol.canRetry()) {
        retry_tokens_ = std::min(
            retry_tokens_ + resilience_.retryBudgetRatio, 50.0);
    }

    auto call = std::make_shared<RpcCall>();
    call->target = &target;
    call->op = op;
    call->payload = std::move(payload);
    call->deadline = deadline;
    call->policy = pol;
    call->criticality = tier;
    call->respond = std::move(respond);
    call->client = client;
    call->link = link;
    call->srcNode = src;
    attempt(call, 1);
}

void
Mesh::attempt(std::shared_ptr<RpcCall> call, unsigned attempt_no)
{
    const Tick now = kernel_.sim().now();
    trace::SpanRef ref;
    if (call->link) {
        ref = startSpan(call->link, call->client,
                        call->target->name(), call->op, attempt_no,
                        attempt_no == 1 ? trace::kNoSpan
                                        : call->firstSpan,
                        call->pendingBackoff);
        call->pendingBackoff = 0;
        if (attempt_no == 1)
            call->firstSpan = ref.span;
        call->currentSpan = ref.span;
    }
    // Effective deadline of this attempt: the propagated deadline
    // capped by the per-attempt edge timeout.
    Tick eff = call->deadline;
    if (call->policy.hasTimeout())
        eff = std::min(eff, now + call->policy.timeout);
    if (ref) {
        // Deadline monotonicity invariant (checked by chaos search):
        // a child span's deadline never exceeds its parent's.
        ref.trace->span(ref.span).deadline = eff;
    }
    if (eff != kTickNever && now >= eff) {
        if (ref) {
            trace::Span &span = ref.trace->span(ref.span);
            span.clientComplete = now;
            span.clientStatus = Status::Timeout;
        }
        if (call->respond)
            call->respond(Payload{}, Status::Timeout);
        return;
    }

    // Both the response and the timer race to settle the attempt; the
    // flag makes whichever fires second a no-op.
    auto settled = std::make_shared<bool>(false);
    if (eff != kTickNever) {
        call->timer = kernel_.sim().scheduleAt(
            eff, [this, call, attempt_no, settled] {
                if (*settled)
                    return;
                *settled = true;
                ++retry_stats_.clientTimeouts;
                finishAttempt(call, attempt_no, Payload{},
                              Status::Timeout);
            });
    }
    RespondFn on_response = [this, call, attempt_no, settled,
                             eff](const Payload &resp, Status status) {
        if (*settled)
            return;
        *settled = true;
        if (eff != kTickNever)
            call->timer.cancel();
        finishAttempt(call, attempt_no, resp, status);
    };

    // Each attempt re-routes: after a node loss the router may steer
    // the retry to a surviving machine.
    unsigned dst = 0;
    if (router_)
        dst = router_->route(call->srcNode, *call->target);
    if (ref && call->srcNode != dst) {
        ref.trace->span(ref.span).fabricNs += static_cast<double>(
            network_.fabricLatencyNominal(call->payload.bytes,
                                          call->srcNode, dst));
    }
    network_.sendVia(call->payload.bytes, call->client,
                     call->target->name(), call->srcNode, dst,
                     [this, call, eff, ref, dst,
                      on_response = std::move(on_response)]() mutable {
                         Envelope env;
                         env.op = call->op;
                         env.request = call->payload;
                         env.respond = std::move(on_response);
                         // Duplicated deliveries (PacketDup) re-run
                         // this: only the first copy may settle the
                         // attempt.
                         on_response = nullptr;
                         env.client = call->client;
                         env.arrived = kernel_.sim().now();
                         env.deadline = eff;
                         env.criticality = call->criticality;
                         env.trace = ref;
                         env.srcNode = call->srcNode;
                         env.dstNode = dst;
                         call->target->submit(std::move(env));
                     });
}

void
Mesh::finishAttempt(std::shared_ptr<RpcCall> call, unsigned attempt_no,
                    const Payload &response, Status status)
{
    if (call->link) {
        // This attempt settled (response or client timeout): stamp the
        // client-side view. Settles once per attempt (settled flag).
        trace::Span &span = call->link.trace->span(call->currentSpan);
        span.clientComplete = kernel_.sim().now();
        span.clientStatus = status;
    }
    if (status == Status::Ok) {
        if (call->respond)
            call->respond(response, status);
        return;
    }
    if (status == Status::Rejected) {
        // Admission rejection is a deliberate shed by the overload
        // layer: retrying it would convert rejected work into
        // amplified offered load (a retry storm). Fail fast instead.
        ++retry_stats_.rejectedNoRetry;
        if (call->respond)
            call->respond(response, status);
        return;
    }
    const Tick now = kernel_.sim().now();
    const bool deadline_open =
        call->deadline == kTickNever || now < call->deadline;
    if (attempt_no >= call->policy.maxAttempts || !deadline_open) {
        if (call->respond)
            call->respond(response, status);
        return;
    }
    if (!takeRetryToken()) {
        ++retry_stats_.budgetDenied;
        if (call->respond)
            call->respond(response, status);
        return;
    }
    ++retry_stats_.retries;
    double backoff =
        static_cast<double>(call->policy.backoffBase) *
        std::pow(call->policy.backoffMult,
                 static_cast<double>(attempt_no - 1));
    if (call->policy.jitterFrac > 0.0) {
        // Deterministic jitter from a dedicated stream: healthy runs
        // never draw from it, so adding it cannot perturb them.
        const double f = call->policy.jitterFrac;
        backoff *= (1.0 - f) + 2.0 * f * retry_rng_.uniform01();
    }
    const Tick delay =
        std::max<Tick>(1, static_cast<Tick>(std::llround(backoff)));
    call->pendingBackoff = delay;
    kernel_.sim().scheduleAfter(delay, [this, call, attempt_no] {
        attempt(call, attempt_no + 1);
    });
}

Tick
Mesh::hedgeDelayFor(const std::string &client,
                    const std::string &service,
                    const HedgePolicy &policy)
{
    if (policy.delayQuantile > 0.0) {
        // Quantile trigger: hedge after the edge's observed latency
        // quantile. Needs a warm histogram; until then fall back to
        // the fixed delay (0 = don't hedge yet).
        auto it = hedge_latency_.find(client + "|" + service);
        constexpr std::uint64_t kMinSamples = 32;
        if (it != hedge_latency_.end() &&
            it->second.count() >= kMinSamples) {
            const double q = it->second.quantile(policy.delayQuantile);
            return std::max<Tick>(1, static_cast<Tick>(std::llround(q)));
        }
    }
    return policy.delay;
}

void
Mesh::sendHedged(std::shared_ptr<HedgedCall> call)
{
    launchLeg(call);
    if (call->done)
        return;
    call->hedgeDelay = hedgeDelayFor(call->client, call->target->name(),
                                     call->policy.hedge);
    if (call->hedgeDelay > 0)
        armHedgeTimer(call);
}

void
Mesh::armHedgeTimer(std::shared_ptr<HedgedCall> call)
{
    Tick delay = call->hedgeDelay;
    if (call->policy.jitterFrac > 0.0) {
        // Deterministic jitter from the dedicated hedge stream: runs
        // without hedge-enabled edges never draw from it.
        const double f = call->policy.jitterFrac;
        const double jittered =
            static_cast<double>(delay) *
            ((1.0 - f) + 2.0 * f * hedge_rng_.uniform01());
        delay = std::max<Tick>(1,
                               static_cast<Tick>(std::llround(jittered)));
    }
    call->hedgeTimer = kernel_.sim().scheduleAfter(delay, [this, call] {
        if (call->done)
            return;
        const Tick now = kernel_.sim().now();
        const bool deadline_open =
            call->deadline == kTickNever || now < call->deadline;
        bool launched = false;
        if (deadline_open &&
            call->legs.size() <= call->policy.hedge.maxHedges) {
            if (takeHedgeToken()) {
                ++hedge_stats_.launched;
                launchLeg(call);
                launched = true;
                if (!call->done &&
                    call->legs.size() <= call->policy.hedge.maxHedges)
                    armHedgeTimer(call);
            } else {
                ++hedge_stats_.budgetDenied;
            }
        }
        // Every leg already failed and no new one is coming: the
        // deferred settle (finishLeg waits on this timer) fires here.
        if (!launched && !call->done && call->legsOpen == 0) {
            call->done = true;
            if (call->respond)
                call->respond(call->lastResponse, call->lastStatus);
        }
    });
}

void
Mesh::launchLeg(std::shared_ptr<HedgedCall> call)
{
    const Tick now = kernel_.sim().now();
    const unsigned leg_index =
        static_cast<unsigned>(call->legs.size());
    call->legs.emplace_back();
    HedgedCall::Leg &leg = call->legs.back();
    leg.issued = now;
    leg.settled = std::make_shared<bool>(false);
    leg.open = true;
    ++call->legsOpen;

    trace::SpanRef ref;
    if (call->link) {
        ref = startSpan(call->link, call->client, call->target->name(),
                        call->op, leg_index + 1,
                        leg_index == 0 ? trace::kNoSpan : call->firstSpan,
                        /*backoff=*/0);
        if (leg_index == 0)
            call->firstSpan = ref.span;
        else
            ref.trace->span(ref.span).hedge = true;
        leg.span = ref.span;
    }

    // Effective deadline of this leg: the propagated deadline capped
    // by the per-attempt edge timeout.
    Tick eff = call->deadline;
    if (call->policy.hasTimeout())
        eff = std::min(eff, now + call->policy.timeout);
    if (ref)
        ref.trace->span(ref.span).deadline = eff;
    if (eff != kTickNever && now >= eff) {
        leg.open = false;
        --call->legsOpen;
        *leg.settled = true;
        finishLeg(call, leg_index, Payload{}, Status::Timeout);
        return;
    }

    auto settled = leg.settled;
    if (eff != kTickNever) {
        leg.timer = kernel_.sim().scheduleAt(
            eff, [this, call, leg_index, settled] {
                if (*settled)
                    return;
                *settled = true;
                ++retry_stats_.clientTimeouts;
                finishLeg(call, leg_index, Payload{}, Status::Timeout);
            });
    }
    RespondFn on_response = [this, call, leg_index, settled,
                             eff](const Payload &resp, Status status) {
        if (*settled)
            return;
        *settled = true;
        if (eff != kTickNever)
            call->legs[leg_index].timer.cancel();
        finishLeg(call, leg_index, resp, status);
    };

    // Each leg re-routes, like retry attempts: after a node loss the
    // hedge may land on a surviving machine.
    unsigned dst = 0;
    if (router_)
        dst = router_->route(call->srcNode, *call->target);
    if (ref && call->srcNode != dst) {
        ref.trace->span(ref.span).fabricNs += static_cast<double>(
            network_.fabricLatencyNominal(call->payload.bytes,
                                          call->srcNode, dst));
    }
    // Anti-affinity across legs: the first leg reports the replica it
    // lands on, and every hedge leg steers away from it — duplicating
    // onto the replica being hedged against would waste the token and
    // add load exactly where it hurts.
    if (leg_index == 0)
        call->firstReplica = std::make_shared<int>(-1);
    network_.sendVia(call->payload.bytes, call->client,
                     call->target->name(), call->srcNode, dst,
                     [this, call, eff, ref, dst, leg_index,
                      on_response = std::move(on_response)]() mutable {
                         Envelope env;
                         env.op = call->op;
                         env.request = call->payload;
                         env.respond = std::move(on_response);
                         // Duplicated deliveries (PacketDup) re-run
                         // this: only the first copy may settle the
                         // leg.
                         on_response = nullptr;
                         env.client = call->client;
                         env.arrived = kernel_.sim().now();
                         env.deadline = eff;
                         env.criticality = call->criticality;
                         env.trace = ref;
                         env.srcNode = call->srcNode;
                         env.dstNode = dst;
                         if (leg_index == 0)
                             env.pickedReplica = call->firstReplica;
                         else if (call->firstReplica)
                             env.avoidReplica = *call->firstReplica;
                         call->target->submit(std::move(env));
                     });
}

void
Mesh::finishLeg(std::shared_ptr<HedgedCall> call, unsigned leg_index,
                const Payload &response, Status status)
{
    const Tick now = kernel_.sim().now();
    HedgedCall::Leg &leg = call->legs[leg_index];
    if (leg.open) {
        leg.open = false;
        --call->legsOpen;
    }
    if (call->link) {
        trace::Span &span = call->link.trace->span(leg.span);
        span.clientComplete = now;
        span.clientStatus = status;
    }
    if (call->done)
        return;

    if (status == Status::Ok) {
        // First response wins: settle, cancel the losers' timers and
        // mark their spans cancelled so attribution never bills them.
        call->done = true;
        call->hedgeTimer.cancel();
        hedge_latency_[call->client + "|" + call->target->name()].add(
            static_cast<double>(now - leg.issued));
        if (leg_index > 0)
            ++hedge_stats_.wins;
        for (unsigned i = 0; i < call->legs.size(); ++i) {
            HedgedCall::Leg &other = call->legs[i];
            if (i == leg_index || !other.open)
                continue;
            other.open = false;
            --call->legsOpen;
            *other.settled = true;
            other.timer.cancel();
            ++hedge_stats_.cancelled;
            if (call->link) {
                trace::Span &span = call->link.trace->span(other.span);
                span.cancelled = true;
                span.clientComplete = now;
            }
        }
        if (call->respond)
            call->respond(response, status);
        return;
    }

    // Leg failed. If siblings are still racing (or a hedge launch is
    // pending) the call stays open; otherwise try to launch a fresh
    // leg immediately, and settle with the failure as a last resort.
    call->lastResponse = response;
    call->lastStatus = status;
    if (call->legsOpen > 0)
        return;
    const bool deadline_open =
        call->deadline == kTickNever || now < call->deadline;
    if (deadline_open &&
        call->legs.size() <= call->policy.hedge.maxHedges &&
        status != Status::Rejected) {
        // Rejected is a deliberate shed: duplicating it would amplify
        // offered load, exactly like retrying it (Status::Rejected).
        if (takeHedgeToken()) {
            call->hedgeTimer.cancel();
            ++hedge_stats_.launched;
            launchLeg(call);
            return;
        }
        ++hedge_stats_.budgetDenied;
    }
    if (call->hedgeTimer.pending())
        return;
    call->done = true;
    if (call->respond)
        call->respond(call->lastResponse, call->lastStatus);
}

bool
Mesh::takeHedgeToken()
{
    if (hedge_tokens_ < 1.0)
        return false;
    hedge_tokens_ -= 1.0;
    return true;
}

void
Mesh::sendResponse(std::uint32_t bytes, const std::string &from,
                   const std::string &to, unsigned from_node,
                   unsigned to_node, trace::SpanRef trace,
                   sim::EventFn deliver)
{
    if (!router_) {
        // Single-machine: exactly the legacy response leg.
        network_.send(bytes, from, to, std::move(deliver));
        return;
    }
    if (trace && from_node != to_node) {
        trace.trace->span(trace.span).fabricNs += static_cast<double>(
            network_.fabricLatencyNominal(bytes, from_node, to_node));
    }
    network_.sendVia(bytes, from, to, from_node, to_node,
                     std::move(deliver));
}

bool
Mesh::takeRetryToken()
{
    if (retry_tokens_ < 1.0)
        return false;
    retry_tokens_ -= 1.0;
    return true;
}

double
Mesh::rpcInstructions(std::uint32_t bytes) const
{
    return rpc_params_.fixedInstructions +
           rpc_params_.perKibInstructions *
               (static_cast<double>(bytes) / 1024.0);
}

} // namespace microscale::svc
