#include "svc/fault.hh"

#include "base/logging.hh"
#include "svc/mesh.hh"

namespace microscale::svc
{

const char *
faultKindName(FaultEvent::Kind kind)
{
    switch (kind) {
    case FaultEvent::Kind::ReplicaDown:
        return "replica-down";
    case FaultEvent::Kind::ReplicaUp:
        return "replica-up";
    case FaultEvent::Kind::Slowdown:
        return "slowdown";
    case FaultEvent::Kind::LatencyFactor:
        return "latency-factor";
    case FaultEvent::Kind::ReplicaSlow:
        return "replica-slow";
    case FaultEvent::Kind::PacketLoss:
        return "packet-loss";
    case FaultEvent::Kind::PacketDup:
        return "packet-dup";
    case FaultEvent::Kind::Partition:
        return "partition";
    case FaultEvent::Kind::PartitionHeal:
        return "partition-heal";
    case FaultEvent::Kind::CorrelatedDown:
        return "correlated-down";
    case FaultEvent::Kind::CorrelatedUp:
        return "correlated-up";
    case FaultEvent::Kind::NodeDown:
        return "node-down";
    case FaultEvent::Kind::NodeUp:
        return "node-up";
    case FaultEvent::Kind::FabricLoss:
        return "fabric-loss";
    case FaultEvent::Kind::FabricPartition:
        return "fabric-partition";
    case FaultEvent::Kind::FabricHeal:
        return "fabric-heal";
    }
    return "?";
}

bool
faultIsLinkKind(FaultEvent::Kind kind)
{
    switch (kind) {
    case FaultEvent::Kind::PacketLoss:
    case FaultEvent::Kind::PacketDup:
    case FaultEvent::Kind::Partition:
    case FaultEvent::Kind::PartitionHeal:
        return true;
    default:
        return false;
    }
}

namespace
{

/** Kinds whose `replica` field indexes a replica of `service`. */
bool
replicaTargeted(FaultEvent::Kind kind)
{
    return kind == FaultEvent::Kind::ReplicaDown ||
           kind == FaultEvent::Kind::ReplicaUp ||
           kind == FaultEvent::Kind::ReplicaSlow;
}

/** True when the name is a routable endpoint for a link fault. */
bool
validLinkEndpoint(Mesh &mesh, const std::string &name)
{
    return name == kExternalClient || mesh.hasService(name);
}

} // namespace

FaultInjector::FaultInjector(Mesh &mesh, FaultScript script)
    : mesh_(mesh), script_(std::move(script))
{
}

void
FaultInjector::arm()
{
    if (armed_)
        MS_PANIC("fault injector armed twice");
    armed_ = true;
    for (const FaultEvent &e : script_.events) {
        // Validate what is knowable now so a structurally bad script
        // fails at arm() time; replica indexes are re-checked at
        // apply-time (the autoscaler may add replicas mid-run).
        switch (e.kind) {
        case FaultEvent::Kind::ReplicaDown:
        case FaultEvent::Kind::ReplicaUp:
        case FaultEvent::Kind::ReplicaSlow:
        case FaultEvent::Kind::Slowdown:
            mesh_.service(e.service); // fatal() when absent
            break;
        case FaultEvent::Kind::PacketLoss:
        case FaultEvent::Kind::PacketDup:
        case FaultEvent::Kind::Partition:
        case FaultEvent::Kind::PartitionHeal:
            if (!validLinkEndpoint(mesh_, e.service) ||
                !validLinkEndpoint(mesh_, e.peer)) {
                fatal("fault script: link fault endpoint '", e.service,
                      "'<->'", e.peer, "' is not a service");
            }
            break;
        case FaultEvent::Kind::FabricLoss:
        case FaultEvent::Kind::FabricPartition:
        case FaultEvent::Kind::FabricHeal:
            // Fabric faults name cluster nodes, not services; a
            // self-link can never carry traffic.
            if (e.replica == e.peerReplica) {
                fatal("fault script: fabric fault needs two distinct "
                      "nodes, got ",
                      e.replica, "<->", e.peerReplica);
            }
            break;
        case FaultEvent::Kind::LatencyFactor:
        case FaultEvent::Kind::CorrelatedDown:
        case FaultEvent::Kind::CorrelatedUp:
        case FaultEvent::Kind::NodeDown:
        case FaultEvent::Kind::NodeUp:
            break;
        }
        switch (e.kind) {
        case FaultEvent::Kind::PacketLoss:
        case FaultEvent::Kind::PacketDup:
        case FaultEvent::Kind::FabricLoss:
            if (e.factor < 0.0 || e.factor > 1.0) {
                fatal("fault script: ", faultKindName(e.kind),
                      " probability must be in [0,1]");
            }
            break;
        case FaultEvent::Kind::Slowdown:
        case FaultEvent::Kind::LatencyFactor:
        case FaultEvent::Kind::ReplicaSlow:
            if (e.factor <= 0.0)
                fatal("fault script: factor must be positive");
            break;
        default:
            break;
        }
        // Background: a pending fault must not keep the simulation
        // alive once the workload has drained.
        mesh_.kernel().sim().scheduleAt(
            e.at, [this, &e] { apply(e); }, /*background=*/true);
    }
}

void
FaultInjector::apply(const FaultEvent &event)
{
    // A replica index may be stale by apply-time (scripted against a
    // sizing the autoscaler has since shrunk) or early (targets a
    // replica the autoscaler has not added yet). Warn and skip: chaos
    // schedules must stay applicable to any evolving topology.
    if (replicaTargeted(event.kind)) {
        Service &svc = mesh_.service(event.service);
        if (event.replica >= svc.replicaCount()) {
            ++skipped_;
            warn("fault: skipping ", faultKindName(event.kind), " ",
                 event.service, "#", event.replica, " (only ",
                 svc.replicaCount(), " replicas)");
            return;
        }
    }
    ++applied_;
    verbose("fault: ", faultKindName(event.kind), " ", event.service,
            replicaTargeted(event.kind)
                ? "#" + std::to_string(event.replica)
                : faultIsLinkKind(event.kind)
                      ? "<->" + event.peer
                      : "x" + std::to_string(event.factor));
    switch (event.kind) {
    case FaultEvent::Kind::ReplicaDown:
        mesh_.service(event.service).setReplicaDown(event.replica, true);
        break;
    case FaultEvent::Kind::ReplicaUp:
        mesh_.service(event.service).setReplicaDown(event.replica, false);
        break;
    case FaultEvent::Kind::Slowdown:
        mesh_.service(event.service).setSlowdown(event.factor);
        break;
    case FaultEvent::Kind::LatencyFactor:
        mesh_.network().setLatencyFactor(event.factor);
        break;
    case FaultEvent::Kind::ReplicaSlow:
        mesh_.service(event.service)
            .setReplicaSlow(event.replica, event.factor);
        break;
    case FaultEvent::Kind::PacketLoss:
        mesh_.network().setLinkLoss(event.service, event.peer,
                                    event.factor);
        break;
    case FaultEvent::Kind::PacketDup:
        mesh_.network().setLinkDup(event.service, event.peer,
                                   event.factor);
        break;
    case FaultEvent::Kind::Partition:
        mesh_.network().setPartition(event.service, event.peer, true);
        break;
    case FaultEvent::Kind::PartitionHeal:
        mesh_.network().setPartition(event.service, event.peer, false);
        break;
    case FaultEvent::Kind::CorrelatedDown:
        applyCorrelated(event.replica, true);
        break;
    case FaultEvent::Kind::CorrelatedUp:
        applyCorrelated(event.replica, false);
        break;
    case FaultEvent::Kind::NodeDown:
        applyNode(event.replica, true);
        break;
    case FaultEvent::Kind::NodeUp:
        applyNode(event.replica, false);
        break;
    case FaultEvent::Kind::FabricLoss:
        mesh_.network().setFabricLoss(event.replica, event.peerReplica,
                                      event.factor);
        break;
    case FaultEvent::Kind::FabricPartition:
        mesh_.network().setFabricPartition(event.replica,
                                           event.peerReplica, true);
        break;
    case FaultEvent::Kind::FabricHeal:
        mesh_.network().setFabricPartition(event.replica,
                                           event.peerReplica, false);
        break;
    }
}

void
FaultInjector::applyNode(unsigned node, bool down)
{
    // Whole-machine failure: every replica placed on the cluster node
    // goes down (or comes back) together. On a single-machine mesh no
    // replica carries a cluster node, so the event warns and skips —
    // the same stale-target policy replica faults follow.
    unsigned touched = 0;
    for (const auto &svc : mesh_.services()) {
        for (unsigned r = 0; r < svc->replicaCount(); ++r) {
            if (svc->replicaClusterNode(r) == static_cast<int>(node)) {
                svc->setReplicaDown(r, down);
                ++touched;
            }
        }
    }
    if (touched == 0) {
        --applied_;
        ++skipped_;
        warn("fault: ", down ? "node-down" : "node-up", " node ", node,
             " matched no replicas");
    }
}

void
FaultInjector::applyCorrelated(unsigned domain, bool down)
{
    // Every replica (of every service) whose workers are pinned to the
    // failed CCX domain goes down together. Replicas with machine-wide
    // affinity have no single home and are unaffected; a CorrelatedDown
    // against an OS-default placement is therefore a no-op.
    for (const auto &svc : mesh_.services()) {
        for (unsigned r = 0; r < svc->replicaCount(); ++r) {
            if (svc->replicaCcx(r) == static_cast<int>(domain))
                svc->setReplicaDown(r, down);
        }
    }
}

} // namespace microscale::svc
