#include "svc/fault.hh"

#include "base/logging.hh"
#include "svc/mesh.hh"

namespace microscale::svc
{

const char *
faultKindName(FaultEvent::Kind kind)
{
    switch (kind) {
    case FaultEvent::Kind::ReplicaDown:
        return "replica-down";
    case FaultEvent::Kind::ReplicaUp:
        return "replica-up";
    case FaultEvent::Kind::Slowdown:
        return "slowdown";
    case FaultEvent::Kind::LatencyFactor:
        return "latency-factor";
    }
    return "?";
}

FaultInjector::FaultInjector(Mesh &mesh, FaultScript script)
    : mesh_(mesh), script_(std::move(script))
{
}

void
FaultInjector::arm()
{
    if (armed_)
        MS_PANIC("fault injector armed twice");
    armed_ = true;
    for (const FaultEvent &e : script_.events) {
        // Validate the target now so a bad script fails at arm() time,
        // not mid-run.
        if (e.kind != FaultEvent::Kind::LatencyFactor) {
            Service &svc = mesh_.service(e.service);
            if ((e.kind == FaultEvent::Kind::ReplicaDown ||
                 e.kind == FaultEvent::Kind::ReplicaUp) &&
                e.replica >= svc.replicaCount()) {
                fatal("fault script: service '", e.service,
                      "' has no replica ", e.replica);
            }
        }
        if (e.factor <= 0.0)
            fatal("fault script: factor must be positive");
        // Background: a pending fault must not keep the simulation
        // alive once the workload has drained.
        mesh_.kernel().sim().scheduleAt(
            e.at, [this, &e] { apply(e); }, /*background=*/true);
    }
}

void
FaultInjector::apply(const FaultEvent &event)
{
    ++applied_;
    verbose("fault: ", faultKindName(event.kind), " ", event.service,
            event.kind == FaultEvent::Kind::ReplicaDown ||
                    event.kind == FaultEvent::Kind::ReplicaUp
                ? "#" + std::to_string(event.replica)
                : "x" + std::to_string(event.factor));
    switch (event.kind) {
    case FaultEvent::Kind::ReplicaDown:
        mesh_.service(event.service).setReplicaDown(event.replica, true);
        break;
    case FaultEvent::Kind::ReplicaUp:
        mesh_.service(event.service).setReplicaDown(event.replica, false);
        break;
    case FaultEvent::Kind::Slowdown:
        mesh_.service(event.service).setSlowdown(event.factor);
        break;
    case FaultEvent::Kind::LatencyFactor:
        mesh_.network().setLatencyFactor(event.factor);
        break;
    }
}

} // namespace microscale::svc
