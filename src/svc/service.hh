/**
 * @file
 * Service: a named microservice with replicas, worker threads and
 * string-keyed operation handlers written in continuation-passing
 * style against a HandlerCtx.
 *
 * Concurrency model mirrors a servlet container: each replica owns a
 * pool of worker threads; a worker processes one request at a time and
 * blocks (holding no CPU) while waiting on downstream calls. Requests
 * beyond the worker count wait in the replica's queue.
 *
 * The resilience layer adds (all off by default, see
 * svc/resilience.hh): bounded queues with OVERLOAD shedding, deadline
 * drops at dequeue, per-replica circuit breakers with half-open
 * probes, health-aware replica selection, scripted crash/restart
 * (setReplicaDown) and compute brownouts (setSlowdown).
 *
 * The elasticity layer (src/autoscale) adds runtime scale-out and
 * scale-in: addReplica() spawns a replica that warms up (registration
 * delay, then a decaying cold-cache compute penalty) before taking
 * traffic, and drainReplica() stops routing to a replica and retires
 * it once its queue and workers empty. Services that never scale keep
 * every replica Active and behave exactly as before.
 */

#ifndef MICROSCALE_SVC_SERVICE_HH
#define MICROSCALE_SVC_SERVICE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/cpumask.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "cpu/counters.hh"
#include "cpu/work.hh"
#include "os/thread.hh"
#include "svc/overload.hh"
#include "svc/payload.hh"
#include "svc/resilience.hh"

namespace microscale::svc
{

class Mesh;
class Service;
struct Worker;

/** Static configuration of one service. */
struct ServiceParams
{
    std::string name;
    /** Default compute profile for HandlerCtx::compute. */
    cpu::WorkProfile profile;
    unsigned replicas = 1;
    unsigned workersPerReplica = 16;
    /** Coefficient of variation applied to compute() budgets. */
    double computeCv = 0.15;
    /**
     * Draw compute-time jitter in batches of unit-mean lognormals
     * from a dedicated stream (scaled by each request's budget)
     * instead of a fresh scalar lognormal per request from the shared
     * service stream. Opt-in: the jitter sequence differs from the
     * legacy stream, so the default stays bit-identical.
     */
    bool batchedTiming = false;
};

/**
 * Per-invocation context handed to operation handlers. All async
 * primitives run their continuation from event context; a handler
 * chain must terminate with done() (fail() is done() with a non-OK
 * status).
 */
class HandlerCtx
{
  public:
    /** The request payload. */
    const Payload &request() const { return envelope_.request; }

    /** Response payload; mutate before calling done(). */
    Payload &response() { return response_; }

    /** Deterministic per-service RNG stream. */
    Rng &rng();

    /** Current simulated time. */
    Tick now() const;

    /** The service executing this handler. */
    Service &service() { return service_; }

    /** Absolute deadline propagated with this request (kTickNever = none). */
    Tick deadline() const { return envelope_.deadline; }

    /** Cluster node of the replica serving this request (0 on
     * single-machine runs, where no node placement exists). */
    unsigned clusterNode() const { return envelope_.dstNode; }

    /**
     * Execute `instructions` of the service's default profile on the
     * worker thread, then continue.
     */
    void compute(double instructions, sim::EventFn next);

    /** Execute work under an explicit profile. */
    void computeProfile(const cpu::WorkProfile &profile,
                        double instructions, sim::EventFn next);

    /**
     * Issue a downstream RPC; `next` receives the response payload.
     * Serialization work is charged to this worker before the message
     * leaves and after the response arrives. The caller's deadline and
     * the mesh's edge policy apply. On a non-OK outcome the handler
     * fails with that status (the continuation never runs); use the
     * status-aware overload to handle failures (e.g. degrade).
     */
    void call(const std::string &service, const std::string &op,
              Payload request_payload,
              std::function<void(const Payload &)> next);

    /** Status-aware variant: `next` always runs, with the outcome. */
    void call(const std::string &service, const std::string &op,
              Payload request_payload,
              std::function<void(const Payload &, Status)> next);

    /** One leg of a parallel fan-out. */
    struct CallSpec
    {
        std::string service;
        std::string op;
        Payload request;
    };

    /**
     * Issue several downstream RPCs concurrently; `next` receives the
     * responses in the order the calls were given, once all have
     * arrived. Serialization of all requests is charged up front,
     * deserialization of all responses before `next`. Any non-OK leg
     * fails the handler with the first failing status.
     */
    void callAll(std::vector<CallSpec> calls,
                 std::function<void(const std::vector<Payload> &)> next);

    /** Status-aware variant: `next` always runs, with per-leg status. */
    void callAll(std::vector<CallSpec> calls,
                 std::function<void(const std::vector<Payload> &,
                                    const std::vector<Status> &)>
                     next);

    /**
     * Append a note to this request's trace span ("brownout-dim" and
     * the like). No-op when the request is untraced.
     */
    void traceAnnotate(const std::string &note);

    /** True when this request records into a sampled trace. */
    bool traced() const
    {
        return static_cast<bool>(envelope_.trace);
    }

    /** Finish: serialize and send the response, release the worker. */
    void done();

    /**
     * Finish with a non-OK status: the caller's continuation sees
     * `status` and a minimal response payload.
     */
    void fail(Status status);

  private:
    friend class Service;

    HandlerCtx(Service &service, Worker &worker, Envelope envelope);

    Service &service_;
    Worker &worker_;
    Envelope envelope_;
    Payload response_;
    Status status_ = Status::Ok;
    bool finished_ = false;
    /** When the handler was dispatched to the worker. */
    Tick dispatched_ = 0;
    /** Worker busy-ns counter at dispatch (for compute attribution). */
    double busy_at_dispatch_ = 0.0;
    /** Fan-out groups issued so far (trace span grouping). */
    std::uint32_t trace_groups_ = 0;
};

/** One worker thread of a replica. */
struct Worker
{
    os::Thread *thread = nullptr;
    unsigned replica = 0;
    std::unique_ptr<HandlerCtx> current;
};

/** Circuit-breaker state of one replica. */
struct BreakerState
{
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    State state = State::Closed;
    unsigned consecutiveFailures = 0;
    /** Rolling outcome window (true = failure). */
    std::deque<bool> window;
    unsigned windowFailures = 0;
    Tick openedAt = 0;
    /** A half-open probe has been admitted and has not resolved. */
    bool probeInFlight = false;
};

/** Lifecycle of a replica under elasticity. */
enum class ReplicaState
{
    /** Serving traffic (the only state replicas reach without
     * elasticity). */
    Active,
    /** Spawned but still registering; receives no traffic yet. */
    Warming,
    /** Removed from routing; finishes queued/in-flight work. */
    Draining,
    /** Drained to empty; permanently out of service. */
    Retired,
};

const char *replicaStateName(ReplicaState state);

/** A replica: a queue plus its workers. */
struct Replica
{
    std::deque<Envelope> queue;
    std::vector<std::size_t> workerIndexes;
    std::size_t maxQueueDepth = 0;
    /** Crashed (scripted fault); rejects all traffic. */
    bool down = false;
    /**
     * Gray-failure compute multiplier for this replica alone (scripted
     * ReplicaSlow fault). 1.0 is an exact identity.
     */
    double slowFactor = 1.0;
    BreakerState breaker;
    /** Outlier-ejection EWMA of replica-side latency (ns). */
    double outLatEwma = 0.0;
    /** Outlier-ejection EWMA of the failure indicator (error rate). */
    double outErrEwma = 0.0;
    /** Samples folded into the EWMAs since (un)ejection. */
    unsigned outSamples = 0;
    /** Currently ejected by the outlier detector. */
    bool ejected = false;
    /** When an ejected replica may rejoin the rotation. */
    Tick ejectedUntil = 0;
    /** Smooth-weighted-round-robin credit (health-weighted pick). */
    double wrrCredit = 0.0;
    ReplicaState state = ReplicaState::Active;
    /** When a Warming replica became Active (cold window start). */
    Tick warmedAt = 0;
    /** End of the cold-cache window (<= warmedAt means never cold). */
    Tick coldUntil = 0;
    /** Compute multiplier at activation; decays linearly to 1. */
    double coldFactor = 1.0;
    /**
     * Cluster machine this replica runs on; -1 means unassigned
     * (single-machine runs never assign or consult it).
     */
    int clusterNode = -1;
    /**
     * Adaptive concurrency limiter (overload layer); created lazily on
     * the first submit when admission control is configured.
     */
    std::unique_ptr<ConcurrencyLimiter> limiter;
    /** Limit trajectory over the run (valid once the limiter exists). */
    LimiterTrace limiterTrace;
    /** CoDel controller state for this replica's queue. */
    CoDelState codel;
};

/** Operation-level statistics. */
struct OpStats
{
    std::uint64_t requests = 0;
    /** Arrival at replica to response handed to transport, in ns. */
    QuantileHistogram serviceTimeNs;
    /** Time the envelope waited for a free worker, in ns. */
    QuantileHistogram queueWaitNs;
    /**
     * CPU time the worker spent on this request (handler compute plus
     * RPC serialization), in ns.
     */
    QuantileHistogram computeNs;
    /**
     * Non-CPU time inside the handler: blocked on downstream calls or
     * preempted off-CPU (serviceTime - queueWait - compute), in ns.
     */
    QuantileHistogram stallNs;
    /** Outcomes by Status (includes shed/dropped/rejected requests). */
    std::array<std::uint64_t, kNumStatuses> statusCounts{};
};

/**
 * A microservice.
 */
class Service
{
  public:
    /**
     * Construct and register worker threads with the kernel. Workers
     * start with machine-wide affinity and first-touch memory; use
     * setReplicaPlacement to pin.
     */
    Service(Mesh &mesh, ServiceParams params);

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    const std::string &name() const { return params_.name; }
    const ServiceParams &params() const { return params_; }
    Mesh &mesh() { return mesh_; }

    /** All replicas ever created, including warming/draining/retired. */
    unsigned replicaCount() const
    {
        return static_cast<unsigned>(replicas_.size());
    }

    /** Replicas currently serving traffic. */
    unsigned activeReplicaCount() const;

    /** Register an operation handler. */
    void addOp(const std::string &op,
               std::function<void(HandlerCtx &)> handler);

    /**
     * Enqueue a request (round-robin over replicas; health-aware when
     * the mesh's resilience config enables it). Called by the Mesh
     * after transport delivery. May reject immediately with OVERLOAD
     * (bounded queue) or UNAVAILABLE (replica down / breaker open).
     */
    void submit(Envelope envelope);

    /**
     * Pin one replica's workers to a CPU set and home their memory on
     * `home_node` (kInvalidNode keeps first-touch).
     */
    void setReplicaPlacement(unsigned replica, const CpuMask &affinity,
                             NodeId home_node);

    /**
     * Crash or restart a replica. Crashing fails every queued request
     * with UNAVAILABLE; handlers already on workers run to completion
     * (the sim has no mid-handler abort). Restarting resets the
     * replica's breaker.
     */
    void setReplicaDown(unsigned replica, bool down);

    /** True when the replica is scripted down. */
    bool replicaDown(unsigned replica) const;

    /**
     * Gray failure: multiply one replica's compute budgets by `factor`
     * (1.0 restores nominal speed). Unlike setSlowdown this is
     * per-replica, modeling a degraded host rather than a brownout.
     */
    void setReplicaSlow(unsigned replica, double factor);

    /** Current gray-slowdown factor of one replica. */
    double replicaSlow(unsigned replica) const;

    /**
     * CCX the replica's workers are pinned to: the common CCX of all
     * worker affinities, or -1 when any worker spans CCXs (OS-default
     * placement). Used by correlated-failure injection.
     */
    int replicaCcx(unsigned replica) const;

    /**
     * Assign one replica to a cluster machine. The mesh's NodeRouter
     * (when installed) constrains routing to replicas on the message's
     * destination machine; -1 detaches the replica from any machine.
     */
    void setReplicaClusterNode(unsigned replica, int node);

    /** Cluster machine of one replica (-1 = unassigned). */
    int replicaClusterNode(unsigned replica) const;

    /** Replicas currently Active on cluster machine `node`. */
    unsigned activeReplicasOnNode(int node) const;

    /** True when the outlier detector currently ejects the replica. */
    bool replicaEjected(unsigned replica) const;

    /** Replicas currently ejected by the outlier detector. */
    unsigned ejectedReplicaCount() const;

    /** Warm-up model for replicas added at runtime. */
    struct WarmupParams
    {
        /** Delay between spawn and first routed request (registry
         * propagation, container start). */
        Tick registrationDelay = 2 * kSecond;
        /** After activation, compute budgets decay from coldFactor
         * down to 1.0 over this window (cold caches, JIT, pools). */
        Tick coldWindow = 5 * kSecond;
        /** Compute multiplier at the moment of activation (>= 1). */
        double coldFactor = 1.8;
    };

    /**
     * Spawn one replica at runtime. It starts Warming (no traffic),
     * becomes Active after the registration delay and then serves with
     * a decaying cold-cache compute penalty. Workers start with
     * machine-wide affinity; call setReplicaPlacement to pin them.
     * Returns the new replica's index.
     */
    unsigned addReplica(const WarmupParams &warmup);

    /**
     * Take a replica out of the routing rotation. Queued and in-flight
     * requests complete normally; once the replica is empty it retires
     * for good. Draining the last routable replica is refused.
     */
    void drainReplica(unsigned replica);

    ReplicaState replicaState(unsigned replica) const;

    /** Runtime scale-out/scale-in event counts (whole run). */
    std::uint64_t replicasAdded() const { return replicas_added_; }
    std::uint64_t replicasRetired() const { return replicas_retired_; }

    /**
     * Observer invoked once per completed request (after stats are
     * recorded) with the op, the replica-side service time in ns and
     * the outcome. None by default; observers stack, so
     * autoscale::MetricsBus and svc::BrownoutController can listen to
     * the same service independently.
     */
    using CompletionObserver = std::function<void(
        const std::string &op, double serviceTimeNs, Status status)>;

    void addCompletionObserver(CompletionObserver observer)
    {
        completion_observers_.push_back(std::move(observer));
    }

    /**
     * Observer invoked after a replica's availability actually changes
     * (setReplicaDown with a new value; repeated sets are filtered).
     * The cluster quorum layer uses this to start hinting on the down
     * edge and replay hints on the up edge.
     */
    using AvailabilityObserver =
        std::function<void(unsigned replica, bool down)>;

    void addAvailabilityObserver(AvailabilityObserver observer)
    {
        availability_observers_.push_back(std::move(observer));
    }

    /**
     * Brownout: multiply every compute() budget by `factor` (applied
     * before the lognormal draw). 1.0 restores nominal speed.
     */
    void setSlowdown(double factor);

    double slowdown() const { return slowdown_; }

    /** Sum of all worker thread counters. */
    cpu::PerfCounters aggregateCounters() const;

    /** Per-op statistics. */
    const std::map<std::string, OpStats> &opStats() const
    {
        return op_stats_;
    }

    /** Queue-wait distribution across all replicas. */
    const QuantileHistogram &queueWaitNs() const { return queue_wait_ns_; }

    /** Total requests processed. */
    std::uint64_t requestsProcessed() const { return requests_; }

    /** Resilience accounting (whole run; not reset by resetStats). */
    const ResilienceCounters &resilienceCounters() const
    {
        return resilience_counters_;
    }

    /** Overload-control accounting (whole run; not reset). */
    const OverloadCounters &overloadCounters() const
    {
        return overload_counters_;
    }

    /** Concurrency-limit trajectory aggregated over all replicas. */
    LimiterTrace limiterSummary() const;

    /** Current limit of one replica's limiter (tests; 0 = no limiter). */
    double replicaLimit(unsigned replica) const;

    /** Breaker state of one replica (tests/diagnostics). */
    const BreakerState &breakerState(unsigned replica) const;

    /** Worker threads (for perf attribution and tests). */
    const std::deque<Worker> &workers() const { return workers_; }

    /** Busy workers right now (for utilization probes). */
    unsigned busyWorkers() const;

    /** Requests waiting in replica queues right now. */
    std::uint64_t queuedRequests() const;

    /** Requests waiting in one replica's queue right now. */
    std::uint64_t queuedRequests(unsigned replica) const;

    /** Reset per-op and queue statistics (not thread counters). */
    void resetStats();

  private:
    friend class HandlerCtx;

    /** Hand the next queued envelope to an idle worker, if any. */
    void pump(unsigned replica);

    /** Worker finished its envelope. */
    void workerDone(Worker &worker);

    /** Begin handler execution on a worker. */
    void dispatch(Worker &worker, Envelope envelope);

    /**
     * Choose a replica for a new request. Plain round-robin unless
     * health-aware balancing is on, in which case down and
     * breaker-open replicas are skipped (half-open replicas admit one
     * probe). Returns -1 when no replica is admissible; `probe` is set
     * when the chosen replica admitted this as its half-open probe.
     * With `constrained` (a NodeRouter is installed) only replicas on
     * cluster machine `node` are eligible, with per-machine rotation.
     * `avoid` is the anti-affinity hint (-1 = none): that replica
     * yields to any other eligible one but still serves as the last
     * resort.
     */
    int pickReplica(bool &probe, bool constrained, unsigned node,
                    int avoid = -1);

    /**
     * True when the breaker admits traffic to the replica now; sets
     * `probe` when the admission is the half-open probe.
     */
    bool breakerAdmits(BreakerState &breaker, Tick now, bool &probe);

    /**
     * Side-effect-free preview of breakerAdmits: would the breaker
     * admit a (non-probe) request right now? Used by the health-
     * weighted picker to score candidates without mutating the breaker
     * of replicas that end up not picked.
     */
    bool breakerWouldAdmit(const BreakerState &breaker, Tick now) const;

    /**
     * Feed the outlier detector one completed-request sample for a
     * replica (latency in ns, failure flag) and eject it when its
     * EWMAs diverge from the service norm. No-op unless
     * resilience.outlier.enabled.
     */
    void outlierObserve(unsigned replica, double latency_ns, bool failed);

    /** Record a request outcome against the replica's breaker. */
    void breakerRecord(unsigned replica, bool ok, bool probe);

    /** Respond to an envelope with a failure status (no worker). */
    void rejectEnvelope(Envelope &envelope, Status status);

    /** True when the replica has an idle worker. */
    bool hasIdleWorker(const Replica &replica) const;

    /** Workers of this replica currently executing a handler. */
    unsigned busyWorkerCount(const Replica &replica) const;

    /**
     * Overload-layer admission decision for a new request: true admits.
     * False means the adaptive limiter (scaled by the request's
     * criticality tier) refused it; the caller rejects with
     * Status::Rejected and must not record a breaker outcome.
     */
    bool admissionAdmits(Replica &replica, const Envelope &envelope);

    /** Feed the replica's limiter one latency/drop sample. */
    void limiterObserve(unsigned replica, double latency_ns, bool dropped);

    /** Create one replica's workers (construction and addReplica). */
    void spawnWorkers(unsigned replica);

    /** Retire a Draining replica once its queue and workers are empty. */
    void maybeRetire(unsigned replica);

    /** Cold-cache compute multiplier of a worker's replica right now. */
    double coldComputeFactor(unsigned replica, Tick now) const;

    Mesh &mesh_;
    ServiceParams params_;
    Rng rng_;
    /** Batched-timing state (only with params_.batchedTiming). */
    std::unique_ptr<Rng> timing_rng_;
    std::unique_ptr<SampleBatch> timing_batch_;
    std::map<std::string, std::function<void(HandlerCtx &)>> ops_;
    /** Deque: HandlerCtx holds Worker&, so runtime scale-out must not
     * relocate existing workers. */
    std::deque<Worker> workers_;
    std::deque<Replica> replicas_;
    unsigned rr_next_ = 0;
    /** Per-machine rotation cursors (node-constrained routing only). */
    std::vector<unsigned> rr_by_node_;
    /** Service-wide outlier-detector latency EWMA (ns) and samples. */
    double out_svc_lat_ewma_ = 0.0;
    std::uint64_t out_svc_samples_ = 0;
    std::map<std::string, OpStats> op_stats_;
    QuantileHistogram queue_wait_ns_;
    std::uint64_t requests_ = 0;
    double slowdown_ = 1.0;
    ResilienceCounters resilience_counters_;
    OverloadCounters overload_counters_;
    std::uint64_t replicas_added_ = 0;
    std::uint64_t replicas_retired_ = 0;
    std::vector<CompletionObserver> completion_observers_;
    std::vector<AvailabilityObserver> availability_observers_;
};

} // namespace microscale::svc

#endif // MICROSCALE_SVC_SERVICE_HH
