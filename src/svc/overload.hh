/**
 * @file
 * Overload-control layer: adaptive per-replica concurrency limiters
 * (AIMD and gradient), CoDel-style queue management with an optional
 * adaptive-LIFO mode, criticality-aware admission, and a brownout
 * controller that dims optional page content from measured p99 vs SLO.
 *
 * Everything here defaults to "off": a default-constructed
 * OverloadConfig leaves the mesh behavior-identical (byte-identical
 * results) to a build without the layer. Admission and CoDel
 * rejections use Status::Rejected, which the mesh never retries.
 */

#ifndef MICROSCALE_SVC_OVERLOAD_HH
#define MICROSCALE_SVC_OVERLOAD_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "sim/simulation.hh"
#include "svc/resilience.hh"

namespace microscale::svc
{

class Service;

/** Which adaptive concurrency limiter runs at each replica. */
enum class AdmissionKind
{
    /** No limiter: admission falls back to the static queue bound. */
    Off = 0,
    /** Additive-increase / multiplicative-decrease on a latency target. */
    Aimd,
    /** Gradient (Vegas-style): limit tracks minRtt/sampleRtt ratio. */
    Gradient,
};

/** Short lowercase name of an admission kind ("off", "aimd", ...). */
const char *admissionName(AdmissionKind kind);

/** Parse an admission kind name; fatal on an unknown name. */
AdmissionKind admissionByName(const std::string &name);

/** Tuning for the adaptive concurrency limiters. */
struct AdmissionParams
{
    AdmissionKind kind = AdmissionKind::Off;
    /** Starting in-flight limit (queued + busy) per replica. */
    double initialLimit = 64.0;
    double minLimit = 4.0;
    double maxLimit = 1024.0;
    /**
     * AIMD: service latency above this triggers a multiplicative
     * decrease; below it the limit grows additively.
     */
    Tick latencyTarget = 80 * kMillisecond;
    /** AIMD: additive growth per latency-target's worth of samples. */
    double aimdIncrease = 2.0;
    /** AIMD: multiplicative decrease factor on a breach or drop. */
    double aimdBackoff = 0.95;
    /** Gradient: EWMA smoothing applied to the new limit estimate. */
    double gradientSmoothing = 0.2;
    /** Gradient: tolerated latency inflation over the observed floor. */
    double gradientTolerance = 2.0;
};

/**
 * An adaptive concurrency limiter. One instance lives per replica;
 * completed requests feed it their measured service latency and drops
 * (deadline, CoDel) feed it a congestion signal.
 */
class ConcurrencyLimiter
{
  public:
    virtual ~ConcurrencyLimiter() = default;
    /** Feed one sample: measured latency, and whether it was a drop. */
    virtual void onSample(double latencyNs, bool dropped) = 0;
    /** Current in-flight (queued + busy) limit. */
    virtual double limit() const = 0;
    virtual AdmissionKind kind() const = 0;
};

/** Factory mirroring autoscale::makePolicy; fatal on Off. */
std::unique_ptr<ConcurrencyLimiter> makeLimiter(const AdmissionParams &p);

/**
 * CoDel-style queue management parameters. When a dequeued request's
 * sojourn time has stayed above `target` for a full `interval`, the
 * queue enters a dropping state and sheds requests at an accelerating
 * rate (interval / sqrt(dropCount)) until sojourn recovers.
 */
struct CoDelParams
{
    bool enabled = false;
    /** Acceptable queue sojourn; sustained excess triggers drops. */
    Tick target = 20 * kMillisecond;
    /** How long sojourn must stay above target before dropping. */
    Tick interval = 100 * kMillisecond;
    /**
     * Serve the newest request first while in the dropping state
     * (adaptive LIFO): fresh requests still meet their deadlines while
     * the stale backlog drains through CoDel drops.
     */
    bool lifoUnderOverload = false;
};

/** Per-queue CoDel controller state (one per replica). */
struct CoDelState
{
    /** When the sojourn excursion becomes actionable; 0 = not above. */
    Tick firstAboveAt = 0;
    /** Next scheduled drop while in the dropping state. */
    Tick dropNextAt = 0;
    /** Drops in the current cycle (sets the acceleration). */
    unsigned dropCount = 0;
    bool dropping = false;
};

/**
 * Decide whether the request being dequeued now with the given sojourn
 * should be dropped, advancing the controller state. Called once per
 * dequeue attempt (a worker is available).
 */
bool codelShouldDrop(CoDelState &state, const CoDelParams &params,
                     Tick sojourn, Tick now);

/**
 * Brownout controller parameters: a periodic loop compares the front
 * service's measured p99 against the SLO and adjusts a dimmer in
 * [minDimmer, 1]; optional page legs (recommender, image) are served
 * with probability dimmer.
 */
struct BrownoutParams
{
    bool enabled = false;
    /** Latency SLO the dimmer defends (front-service p99). */
    double sloP99Ms = 100.0;
    /** Control period. */
    Tick period = 50 * kMillisecond;
    /** Dimmer step per unit of relative SLO error. */
    double gain = 0.4;
    /** Floor: never dim optional content out entirely. */
    double minDimmer = 0.1;
};

/**
 * One criticality rule: requests entering `server` for `op` ("*"
 * matches any op) are reclassified to `tier`; first match wins,
 * otherwise the caller's tier is inherited.
 */
struct CriticalityRule
{
    std::string server;
    std::string op;
    Criticality tier;
};

/**
 * Mesh-wide overload-control configuration. Default-constructed =
 * disabled; active() gates every code path so disabled runs stay
 * byte-identical.
 */
struct OverloadConfig
{
    AdmissionParams admission;
    CoDelParams codel;
    BrownoutParams brownout;
    /** Apply per-tier admission fractions and criticality rules. */
    bool criticalityAware = false;
    /**
     * Fraction of the concurrency limit each tier may fill: sheddable
     * work is turned away once the replica is half full, normal work
     * at 85 %, critical work only at the full limit.
     */
    double sheddableFrac = 0.5;
    double normalFrac = 0.85;
    /** Reclassification rules, first match wins. */
    std::vector<CriticalityRule> rules;

    bool active() const
    {
        return admission.kind != AdmissionKind::Off || codel.enabled ||
               brownout.enabled || criticalityAware;
    }

    /**
     * Tier of a request entering `server` for `op`: the first matching
     * rule's tier, else the inherited (caller's) tier.
     */
    Criticality classify(const std::string &server, const std::string &op,
                         Criticality inherited) const;
};

/** Service-level overload accounting (whole run, never reset). */
struct OverloadCounters
{
    /** Admission rejections by criticality tier. */
    std::array<std::uint64_t, kNumCriticalities> admissionRejects{};
    /** Requests shed by the CoDel controller at dequeue. */
    std::uint64_t codelDrops = 0;
    /** Dequeues served newest-first while in adaptive-LIFO mode. */
    std::uint64_t lifoDequeues = 0;
};

/** Min/max/endpoint trajectory of a limiter over a run. */
struct LimiterTrace
{
    double initial = 0.0;
    double minSeen = 0.0;
    double maxSeen = 0.0;
    double last = 0.0;
    bool valid = false;

    void observe(double limit);
    void merge(const LimiterTrace &other);
};

/**
 * Brownout controller: a periodic control loop on the front service.
 * Collects per-completion service latencies through a completion
 * observer, computes p99 each period, and moves the dimmer by
 * gain * (1 - p99/slo), clamped to [minDimmer, 1]. Handlers consult
 * shouldDegrade() before issuing optional legs; the RNG is only drawn
 * while the dimmer is engaged (< 1), so an idle controller leaves
 * the simulation's random streams untouched.
 */
class BrownoutController
{
  public:
    /** Aggregates harvested after a run. */
    struct Telemetry
    {
        /** Seconds of the accounting window spent with dimmer < 1. */
        double dutyCycleSeconds = 0.0;
        double windowSeconds = 0.0;
        double dimmerMin = 1.0;
        double dimmerLast = 1.0;
        /** Optional legs skipped by the dimmer. */
        std::uint64_t skips = 0;
        /** Control-loop adjustments executed. */
        std::uint64_t adjustments = 0;
    };

    BrownoutController(Service &front, BrownoutParams params);

    /** Begin the periodic control loop (registers the observer). */
    void start();
    void stop();

    double dimmer() const { return dimmer_; }

    /** Should this request's optional legs be skipped right now? */
    bool shouldDegrade();

    /** Restrict duty-cycle accounting to [start, end). */
    void setAccountingWindow(Tick start, Tick end);

    const Telemetry &telemetry() const { return telemetry_; }

  private:
    void tick();

    Service &front_;
    BrownoutParams params_;
    Rng rng_;
    std::vector<double> latencies_ns_;
    double dimmer_ = 1.0;
    sim::PeriodicEvent timer_;
    Tick window_start_ = 0;
    Tick window_end_ = kTickNever;
    Telemetry telemetry_;
};

} // namespace microscale::svc

#endif // MICROSCALE_SVC_OVERLOAD_HH
