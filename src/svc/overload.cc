#include "svc/overload.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "os/kernel.hh"
#include "svc/mesh.hh"
#include "svc/service.hh"

namespace microscale::svc
{

const char *
admissionName(AdmissionKind kind)
{
    switch (kind) {
    case AdmissionKind::Off:
        return "off";
    case AdmissionKind::Aimd:
        return "aimd";
    case AdmissionKind::Gradient:
        return "gradient";
    }
    return "?";
}

AdmissionKind
admissionByName(const std::string &name)
{
    if (name == "off")
        return AdmissionKind::Off;
    if (name == "aimd")
        return AdmissionKind::Aimd;
    if (name == "gradient")
        return AdmissionKind::Gradient;
    fatal("unknown admission kind '", name,
                "' (expected off, aimd or gradient)");
}

namespace
{

/**
 * AIMD limiter: every drop or above-target latency sample multiplies
 * the limit by `aimdBackoff`; each in-target sample adds
 * aimdIncrease / limit, i.e. roughly +aimdIncrease per limit's worth
 * of completions (one "round trip" of the pipeline).
 */
class AimdLimiter : public ConcurrencyLimiter
{
  public:
    explicit AimdLimiter(const AdmissionParams &p) : p_(p)
    {
        limit_ = std::clamp(p_.initialLimit, p_.minLimit, p_.maxLimit);
    }

    void onSample(double latency_ns, bool dropped) override
    {
        const bool breach =
            dropped || latency_ns > static_cast<double>(p_.latencyTarget);
        if (breach)
            limit_ = std::max(p_.minLimit, limit_ * p_.aimdBackoff);
        else
            limit_ = std::min(p_.maxLimit, limit_ + p_.aimdIncrease / limit_);
    }

    double limit() const override { return limit_; }
    AdmissionKind kind() const override { return AdmissionKind::Aimd; }

  private:
    AdmissionParams p_;
    double limit_ = 0.0;
};

/**
 * Gradient (Vegas-style) limiter: tracks the lowest latency ever seen
 * as the no-queueing floor and steers the limit toward
 * limit * min(1, tolerance * floor / sample) + sqrt(limit), smoothed.
 * When samples sit at the floor the sqrt term probes upward; when
 * latency inflates beyond `tolerance`, the ratio shrinks the limit to
 * the fixed point where queueing stops growing. Drops act like a
 * maximally-inflated sample.
 */
class GradientLimiter : public ConcurrencyLimiter
{
  public:
    explicit GradientLimiter(const AdmissionParams &p) : p_(p)
    {
        limit_ = std::clamp(p_.initialLimit, p_.minLimit, p_.maxLimit);
    }

    void onSample(double latency_ns, bool dropped) override
    {
        double gradient = 0.5;
        if (!dropped && latency_ns > 0.0) {
            if (floor_ns_ == 0.0 || latency_ns < floor_ns_)
                floor_ns_ = latency_ns;
            gradient = std::clamp(
                p_.gradientTolerance * floor_ns_ / latency_ns, 0.5, 1.0);
        }
        const double estimate = limit_ * gradient + std::sqrt(limit_);
        limit_ = std::clamp((1.0 - p_.gradientSmoothing) * limit_ +
                                p_.gradientSmoothing * estimate,
                            p_.minLimit, p_.maxLimit);
    }

    double limit() const override { return limit_; }
    AdmissionKind kind() const override { return AdmissionKind::Gradient; }

  private:
    AdmissionParams p_;
    double limit_ = 0.0;
    double floor_ns_ = 0.0;
};

/** Drop spacing while in the dropping state: interval / sqrt(count). */
Tick
controlLaw(Tick interval, unsigned count)
{
    const double spacing =
        static_cast<double>(interval) / std::sqrt(static_cast<double>(count));
    return std::max<Tick>(1, static_cast<Tick>(spacing));
}

} // namespace

std::unique_ptr<ConcurrencyLimiter>
makeLimiter(const AdmissionParams &p)
{
    switch (p.kind) {
    case AdmissionKind::Aimd:
        return std::make_unique<AimdLimiter>(p);
    case AdmissionKind::Gradient:
        return std::make_unique<GradientLimiter>(p);
    case AdmissionKind::Off:
        break;
    }
    fatal("makeLimiter: admission kind is off");
}

bool
codelShouldDrop(CoDelState &state, const CoDelParams &params, Tick sojourn,
                Tick now)
{
    if (sojourn < params.target) {
        // Sojourn recovered: leave the dropping state and reset the
        // excursion clock. dropNextAt is kept so a quick relapse
        // resumes near the old drop rate instead of restarting.
        state.firstAboveAt = 0;
        state.dropping = false;
        return false;
    }
    if (state.firstAboveAt == 0) {
        // First sample above target: actionable one interval from now.
        state.firstAboveAt = now + params.interval;
        return false;
    }
    if (now < state.firstAboveAt)
        return false;
    if (!state.dropping) {
        state.dropping = true;
        const bool relapse = state.dropNextAt != 0 && state.dropCount > 2 &&
                             now < state.dropNextAt + params.interval;
        state.dropCount = relapse ? state.dropCount - 2 : 1;
        state.dropNextAt = now + controlLaw(params.interval, state.dropCount);
        return true;
    }
    if (now >= state.dropNextAt) {
        ++state.dropCount;
        state.dropNextAt = now + controlLaw(params.interval, state.dropCount);
        return true;
    }
    return false;
}

Criticality
OverloadConfig::classify(const std::string &server, const std::string &op,
                         Criticality inherited) const
{
    for (const CriticalityRule &rule : rules) {
        const bool server_ok = rule.server == "*" || rule.server == server;
        const bool op_ok = rule.op == "*" || rule.op == op;
        if (server_ok && op_ok)
            return rule.tier;
    }
    return inherited;
}

void
LimiterTrace::observe(double limit)
{
    if (!valid) {
        initial = minSeen = maxSeen = last = limit;
        valid = true;
        return;
    }
    minSeen = std::min(minSeen, limit);
    maxSeen = std::max(maxSeen, limit);
    last = limit;
}

void
LimiterTrace::merge(const LimiterTrace &other)
{
    if (!other.valid)
        return;
    if (!valid) {
        *this = other;
        return;
    }
    // Aggregating replicas: report the mean endpoints and the extreme
    // excursions so the trajectory stays a single (initial, min, max,
    // final) tuple.
    initial = (initial + other.initial) / 2.0;
    last = (last + other.last) / 2.0;
    minSeen = std::min(minSeen, other.minSeen);
    maxSeen = std::max(maxSeen, other.maxSeen);
}

BrownoutController::BrownoutController(Service &front, BrownoutParams params)
    : front_(front),
      params_(params),
      rng_(front.mesh().seed(), "svc.brownout")
{
}

void
BrownoutController::start()
{
    front_.addCompletionObserver(
        [this](const std::string &, double service_time_ns, Status status) {
            if (status == Status::Ok)
                latencies_ns_.push_back(service_time_ns);
        });
    timer_.start(front_.mesh().kernel().sim(), params_.period,
                 [this] { tick(); });
}

void
BrownoutController::stop()
{
    timer_.stop();
}

bool
BrownoutController::shouldDegrade()
{
    if (dimmer_ >= 1.0)
        return false;
    const bool skip = !rng_.chance(dimmer_);
    if (skip)
        ++telemetry_.skips;
    return skip;
}

void
BrownoutController::setAccountingWindow(Tick start, Tick end)
{
    window_start_ = start;
    window_end_ = end;
}

void
BrownoutController::tick()
{
    sim::Simulation &sim = front_.mesh().kernel().sim();
    const Tick now = sim.now();

    // Duty-cycle accounting for the period that just elapsed, clipped
    // to the measurement window.
    const Tick begin = now > params_.period ? now - params_.period : 0;
    const Tick lo = std::max(begin, window_start_);
    const Tick hi = std::min(now, window_end_);
    if (hi > lo && dimmer_ < 1.0)
        telemetry_.dutyCycleSeconds += ticksToSeconds(hi - lo);

    double p99_ms = 0.0;
    if (!latencies_ns_.empty()) {
        std::vector<double> &v = latencies_ns_;
        const std::size_t idx =
            std::min(v.size() - 1,
                     static_cast<std::size_t>(0.99 * static_cast<double>(
                                                         v.size())));
        std::nth_element(v.begin(), v.begin() + static_cast<long>(idx),
                         v.end());
        p99_ms = v[idx] / 1e6;
        v.clear();
        // Control law: dimmer += gain * (1 - p99/slo). Above-SLO tails
        // dim optional content; in-SLO tails restore it.
        const double error = 1.0 - p99_ms / params_.sloP99Ms;
        dimmer_ = std::clamp(dimmer_ + params_.gain * error,
                             params_.minDimmer, 1.0);
        ++telemetry_.adjustments;
    }
    // An idle period (no completions) leaves the dimmer where it is.

    telemetry_.dimmerMin = std::min(telemetry_.dimmerMin, dimmer_);
    telemetry_.dimmerLast = dimmer_;
    if (now >= window_start_ && now <= window_end_)
        telemetry_.windowSeconds = ticksToSeconds(
            std::min(now, window_end_) - window_start_);
}

} // namespace microscale::svc
