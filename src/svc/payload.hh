/**
 * @file
 * Payload and request envelope types exchanged between services.
 */

#ifndef MICROSCALE_SVC_PAYLOAD_HH
#define MICROSCALE_SVC_PAYLOAD_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/types.hh"
#include "svc/resilience.hh"
#include "trace/trace.hh"

namespace microscale::svc
{

/**
 * An RPC payload: a modeled size plus up to three integer arguments
 * (entity ids and the like). The size drives network and serialization
 * cost; the arguments drive handler logic.
 */
struct Payload
{
    std::uint32_t bytes = 512;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
    /**
     * Set on responses assembled from a degraded fallback (e.g. a page
     * rendered without recommendations after a downstream failure).
     */
    bool degraded = false;
};

/** Callback type through which a response payload is returned. */
using ResponseFn = std::function<void(const Payload &)>;

/** Status-aware response callback (resilience-enabled paths). */
using RespondFn = std::function<void(const Payload &, Status)>;

/**
 * A request as queued inside a service replica.
 */
struct Envelope
{
    std::string op;
    Payload request;
    RespondFn respond;
    /**
     * Name of the calling service ("external" for loadgen traffic).
     * Identifies the network link the response travels on, so link
     * faults (loss/dup/partition) apply to the return path too.
     */
    std::string client;
    /** Arrival tick at the replica (queue-wait accounting). */
    Tick arrived = 0;
    /** Absolute deadline propagated from the caller; kTickNever = none. */
    Tick deadline = kTickNever;
    /** This request is a circuit-breaker half-open probe. */
    bool probe = false;
    /**
     * Criticality tier for priority-aware admission. Inherited from
     * the calling handler's request unless a criticality rule
     * reclassifies the edge (see svc/overload.hh).
     */
    Criticality criticality = Criticality::Normal;
    /**
     * Span this request records into when its trace was sampled; null
     * trace (the default) means untraced and costs nothing.
     */
    trace::SpanRef trace;
    /**
     * Replica anti-affinity hint: prefer any replica other than this
     * index (-1 = no preference). Hedge legs set it to the replica
     * that served their first attempt — duplicating onto the same
     * (possibly slow) replica wastes the hedge. A hint, not a
     * constraint: when no other replica is eligible the avoided one
     * still serves.
     */
    int avoidReplica = -1;
    /**
     * When set, the service stores the replica index it dispatched
     * this request to (for the caller's later anti-affinity hints).
     * Null (the default) costs nothing.
     */
    std::shared_ptr<int> pickedReplica;
    /**
     * Cluster node the request was issued from / delivered to. Both
     * stay 0 unless the mesh has a NodeRouter installed (single-node
     * runs never look at them); the response travels dstNode→srcNode
     * so fabric latency and faults apply to the return path too.
     */
    unsigned srcNode = 0;
    unsigned dstNode = 0;
};

} // namespace microscale::svc

#endif // MICROSCALE_SVC_PAYLOAD_HH
