/**
 * @file
 * Resilience policy types: RPC status codes, per-edge timeout/retry
 * policies, circuit-breaker parameters and the mesh-wide configuration
 * that bundles them.
 *
 * Everything here defaults to "off": a default-constructed
 * ResilienceConfig leaves the mesh behavior-identical to a build
 * without the resilience layer (no deadlines, single attempts,
 * unbounded queues, round-robin balancing).
 */

#ifndef MICROSCALE_SVC_RESILIENCE_HH
#define MICROSCALE_SVC_RESILIENCE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace microscale::svc
{

/** Outcome of an RPC as seen by the caller. */
enum class Status : unsigned
{
    Ok = 0,
    /** Deadline expired before a response arrived. */
    Timeout,
    /** Shed by a bounded replica queue. */
    Overload,
    /** No live replica (crashed, breaker-open, or handler failure). */
    Unavailable,
    /**
     * Rejected at admission by the overload-control layer (adaptive
     * limiter or CoDel drop) before occupying a worker. Unlike
     * Overload, a Rejected response is a deliberate load-shedding
     * decision and is never retried: retrying shed work would convert
     * the rejection into amplified offered load (a retry storm).
     */
    Rejected,
};

/** Number of distinct Status values (for counter arrays). */
constexpr unsigned kNumStatuses = 5;

/** Index of a status in a kNumStatuses-sized counter array. */
constexpr unsigned
statusIndex(Status status)
{
    return static_cast<unsigned>(status);
}

/** Short lowercase name of a status ("ok", "timeout", ...). */
const char *statusName(Status status);

/**
 * Criticality tier of a request, used by the overload-control layer
 * (svc/overload.hh) for priority-aware admission: under pressure,
 * Sheddable work is rejected first and Critical work last. Requests
 * default to Normal; the tier propagates to downstream calls unless a
 * CriticalityRule overrides it for the callee.
 */
enum class Criticality : unsigned
{
    Critical = 0,
    Normal,
    Sheddable,
};

/** Number of distinct Criticality values (for counter arrays). */
constexpr unsigned kNumCriticalities = 3;

/** Index of a tier in a kNumCriticalities-sized counter array. */
constexpr unsigned
criticalityIndex(Criticality tier)
{
    return static_cast<unsigned>(tier);
}

/** Short lowercase name of a tier ("critical", "normal", "sheddable"). */
const char *criticalityName(Criticality tier);

/**
 * Hedged-request policy for one edge (Dean & Barroso, "The Tail at
 * Scale"): after a hedge delay with no response, issue a duplicate
 * attempt to another replica and take whichever answers first, then
 * cancel the loser. Defaults to disabled; a default-constructed
 * policy leaves the mesh byte-identical to a build without hedging.
 */
struct HedgePolicy
{
    /** Fixed hedge delay; used while the edge has too few latency
     *  samples for the quantile trigger (or always, when
     *  delayQuantile is 0). 0 with delayQuantile 0 = disabled. */
    Tick delay = 0;
    /**
     * When > 0, hedge after the edge's observed latency quantile
     * (e.g. 0.95 hedges the slowest ~5 % of requests) instead of the
     * fixed delay. Falls back to `delay` until enough responses have
     * been observed on the edge.
     */
    double delayQuantile = 0.0;
    /** Extra attempts launched beyond the first (usually 1). */
    unsigned maxHedges = 1;

    bool enabled() const
    {
        return (delay > 0 || delayQuantile > 0.0) && maxHedges > 0;
    }
};

/**
 * Timeout/retry policy for one client→service edge. The defaults mean
 * "no policy": no deadline is attached and the call is attempted once.
 */
struct EdgePolicy
{
    /** Per-attempt timeout; 0 means no client-side deadline. */
    Tick timeout = 0;
    /** Total attempts including the first; 1 means never retry. */
    unsigned maxAttempts = 1;
    /** Backoff before retry n is backoffBase * backoffMult^(n-1). */
    Tick backoffBase = 1 * kMillisecond;
    double backoffMult = 2.0;
    /**
     * Uniform jitter applied to the backoff, as a fraction (0.2 means
     * ±20 %), drawn from the mesh's dedicated retry RNG stream.
     */
    double jitterFrac = 0.2;
    /** Hedged-request policy for the edge; disabled by default. */
    HedgePolicy hedge;

    bool hasTimeout() const { return timeout != 0; }
    bool canRetry() const { return maxAttempts > 1; }
};

/**
 * One policy rule. `client`/`server` name the edge; "*" matches any.
 * The external client (loadgen) is named by kExternalClient.
 */
struct EdgeRule
{
    std::string client;
    std::string server;
    EdgePolicy policy;
};

/** Client name used for calls that enter the mesh from outside. */
inline const char *const kExternalClient = "external";

/** Per-replica circuit breaker parameters. */
struct BreakerParams
{
    bool enabled = false;
    /** Trip after this many consecutive failures. */
    unsigned consecutiveFailures = 8;
    /** ... or when the rolling-window error rate crosses this. */
    double errorRateThreshold = 0.5;
    /** Rolling window length (outcomes) and minimum fill to judge. */
    unsigned windowSize = 32;
    unsigned windowMin = 16;
    /** How long an open breaker rejects before probing (half-open). */
    Tick openFor = 100 * kMillisecond;
};

/**
 * Passive outlier ejection: per-replica EWMA latency and error-rate
 * tracking that temporarily ejects replicas whose behavior is far from
 * the service-wide norm. Catches gray failures — replicas that answer
 * slowly or erratically without ever tripping a breaker's
 * consecutive-failure or error-rate thresholds.
 */
struct OutlierEjectionParams
{
    bool enabled = false;
    /** Eject when a replica's EWMA latency exceeds the service-wide
     *  EWMA by this factor. */
    double latencyFactor = 3.0;
    /** ... or when its EWMA error rate crosses this. */
    double errorThreshold = 0.5;
    /** EWMA smoothing weight of the newest sample. */
    double ewmaAlpha = 0.1;
    /** Samples a replica must accumulate before it can be judged. */
    unsigned minSamples = 20;
    /**
     * Never eject more than floor(maxEjectFraction * active replicas)
     * at once: mass ejection of a mostly-gray fleet would turn a
     * partial failure into a self-inflicted total one. Floored at one
     * ejection whenever the fraction is positive and at least two
     * replicas are active, so small fleets (where the product
     * truncates to zero) can still shed a gray replica.
     */
    double maxEjectFraction = 0.5;
    /** How long an ejected replica sits out before rejoining. */
    Tick ejectFor = 200 * kMillisecond;
};

/**
 * Mesh-wide resilience configuration. Default-constructed = disabled.
 */
struct ResilienceConfig
{
    /** Edge policies; first match wins, "*" wildcards allowed. */
    std::vector<EdgeRule> edges;
    BreakerParams breaker;
    /**
     * Bound on each replica's queue (requests beyond it are shed with
     * OVERLOAD when no worker is idle); 0 = unbounded.
     */
    std::size_t maxQueueDepth = 0;
    /**
     * Retry tokens accrued per first attempt; a retry spends one whole
     * token. 0.2 caps retries at ~20 % of traffic (retry budget).
     */
    double retryBudgetRatio = 0.2;
    /**
     * Hedge tokens accrued per first attempt on hedge-enabled edges;
     * launching a hedge spends one whole token. 0.2 caps hedges at
     * ~20 % of traffic, bounding the extra load hedging may add.
     */
    double hedgeBudgetRatio = 0.2;
    /** Skip down/open replicas when picking one (vs blind RR). */
    bool healthAwareBalancing = false;
    /** Passive outlier ejection (implies health-aware selection). */
    OutlierEjectionParams outlier;

    /** True when any mechanism above deviates from the defaults. */
    bool active() const
    {
        return !edges.empty() || breaker.enabled || maxQueueDepth > 0 ||
               healthAwareBalancing || outlier.enabled;
    }

    /**
     * Policy for a client→server edge: first rule whose client and
     * server fields match (exactly or via "*"), else the no-op policy.
     */
    const EdgePolicy &policyFor(const std::string &client,
                                const std::string &server) const;
};

/** Mesh-level retry accounting. */
struct RetryStats
{
    std::uint64_t retries = 0;
    /** Retries suppressed because the budget was exhausted. */
    std::uint64_t budgetDenied = 0;
    /** Client-side deadline expirations observed. */
    std::uint64_t clientTimeouts = 0;
    /**
     * Admission-rejected responses delivered without a retry (the
     * retry-storm guard; see Status::Rejected).
     */
    std::uint64_t rejectedNoRetry = 0;
};

/** Mesh-level hedged-request accounting. */
struct HedgeStats
{
    /** First attempts issued on hedge-enabled edges. */
    std::uint64_t firstAttempts = 0;
    /** Hedge attempts actually launched. */
    std::uint64_t launched = 0;
    /** Calls won by a hedge attempt (not the first leg). */
    std::uint64_t wins = 0;
    /** Hedges suppressed because the hedge budget was exhausted. */
    std::uint64_t budgetDenied = 0;
    /** Losing legs cancelled after first-response-wins settled. */
    std::uint64_t cancelled = 0;
};

/** Service-level resilience accounting (whole run, never reset). */
struct ResilienceCounters
{
    /** Requests shed by a full bounded queue. */
    std::uint64_t shed = 0;
    /** Requests dropped at dequeue because their deadline passed. */
    std::uint64_t deadlineDrops = 0;
    /** Requests rejected because the picked replica was down. */
    std::uint64_t downRejects = 0;
    /** Requests rejected because no replica was admissible. */
    std::uint64_t noReplica = 0;
    /** Closed/half-open → open transitions. */
    std::uint64_t breakerOpens = 0;
    /** Outlier-ejection events (replica pulled from rotation). */
    std::uint64_t outlierEjections = 0;
    /** Ejected replicas returned to rotation after ejectFor. */
    std::uint64_t outlierUnejections = 0;
    /** Ejections refused by the maxEjectFraction bound. */
    std::uint64_t outlierEjectionsDenied = 0;
};

} // namespace microscale::svc

#endif // MICROSCALE_SVC_RESILIENCE_HH
