/**
 * @file
 * Mesh: the service registry, transport glue and RPC cost model.
 *
 * Plays the role of TeaStore's registry plus client-side load
 * balancing: services look each other up by name and every message
 * crosses the loopback Network. The CPU cost of the protocol stack is
 * charged to the calling/serving worker threads via a dedicated
 * "netstack" work profile.
 *
 * The mesh also owns the resilience layer: per-edge timeout/retry
 * policies (sendRpc), the retry budget, and the ResilienceConfig that
 * services consult for queue bounds, breaker parameters and balancing
 * mode. With the default (inactive) config every call takes the legacy
 * fast path — identical event stream, identical RNG draws.
 */

#ifndef MICROSCALE_SVC_MESH_HH
#define MICROSCALE_SVC_MESH_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "cpu/work.hh"
#include "net/network.hh"
#include "os/kernel.hh"
#include "svc/overload.hh"
#include "svc/payload.hh"
#include "svc/resilience.hh"
#include "svc/service.hh"
#include "trace/trace.hh"

namespace microscale::svc
{

/** RPC stack cost model. */
struct RpcCostParams
{
    /** Instructions to serialize/deserialize a message, fixed part. */
    double fixedInstructions = 25e3;
    /** Additional instructions per KiB of payload. */
    double perKibInstructions = 6e3;
};

/**
 * Cluster routing policy: decides which machine a call to `target`
 * lands on. Installed by the cluster layer (src/cluster); with no
 * router the mesh never computes node ids and every message takes the
 * single-machine transport path unchanged.
 */
class NodeRouter
{
  public:
    virtual ~NodeRouter() = default;

    /** Machine a request from `src_node` to `target` is routed to. */
    virtual unsigned route(unsigned src_node, const Service &target) = 0;

    /** Machine external (loadgen) traffic enters the cluster on. */
    virtual unsigned ingress() = 0;
};

/**
 * The mesh. Owns the services and the netstack profile.
 */
class Mesh
{
  public:
    Mesh(os::Kernel &kernel, net::Network &network,
         RpcCostParams rpc_params = {}, std::uint64_t seed = 1);

    Mesh(const Mesh &) = delete;
    Mesh &operator=(const Mesh &) = delete;

    os::Kernel &kernel() { return kernel_; }
    net::Network &network() { return network_; }
    std::uint64_t seed() const { return seed_; }

    /** Create and register a service. */
    Service *createService(ServiceParams params);

    /** Lookup by name; fatal() when absent. */
    Service &service(const std::string &name);

    /** True when a service with this name exists. */
    bool hasService(const std::string &name) const;

    /** All services in registration order. */
    const std::vector<std::unique_ptr<Service>> &services() const
    {
        return services_;
    }

    /** Install the resilience configuration (before traffic starts). */
    void setResilience(ResilienceConfig config);

    const ResilienceConfig &resilience() const { return resilience_; }

    /** Install the overload-control configuration (before traffic). */
    void setOverload(OverloadConfig config);

    const OverloadConfig &overload() const { return overload_; }

    const RetryStats &retryStats() const { return retry_stats_; }

    const HedgeStats &hedgeStats() const { return hedge_stats_; }

    /**
     * Install the tracing configuration (before traffic starts). With
     * params.enabled false no store is created and the run is
     * byte-identical to an untraced one.
     */
    void setTrace(const trace::TraceParams &params);

    /** The run's trace store; null when tracing is off. */
    const std::shared_ptr<trace::TraceStore> &traceStore() const
    {
        return trace_store_;
    }

    /**
     * Client entry point: sends `payload` to `service`/`op` over the
     * transport; `respond` fires at the client when the response
     * arrives. No CPU is charged to any worker for the client side.
     * Failures are swallowed (legacy interface); use callExternalS to
     * observe the Status.
     */
    void callExternal(const std::string &service, const std::string &op,
                      Payload payload, ResponseFn respond);

    /** Status-aware client entry point. */
    void callExternalS(const std::string &service, const std::string &op,
                       Payload payload, RespondFn respond);

    /**
     * Issue one RPC on the `client`→`service` edge, applying that
     * edge's timeout/retry policy and the propagated `deadline`
     * (kTickNever = none). `respond` fires exactly once with the final
     * outcome. `inherited` is the caller's criticality tier; when the
     * overload layer is criticality-aware the request is reclassified
     * through its rules before admission. When the edge has no policy
     * and no deadline this is exactly the legacy transport path.
     * `link` ties the call into a sampled trace (a span is recorded
     * per attempt); the default null link records nothing.
     */
    void sendRpc(const std::string &client, const std::string &service,
                 const std::string &op, Payload payload, Tick deadline,
                 Criticality inherited, RespondFn respond,
                 trace::TraceLink link = {},
                 unsigned src_node = kNoNode);

    /**
     * Install the cluster routing policy (nullptr uninstalls). The
     * router must outlive the mesh's traffic. With no router the node
     * fields of every envelope stay 0 and transport is single-machine.
     */
    void setRouter(NodeRouter *router) { router_ = router; }

    NodeRouter *router() const { return router_; }

    /**
     * Ship a response back over the transport. With no router this is
     * exactly network().send(bytes, from, to, deliver); with one, the
     * response crosses the fabric from the serving machine back to the
     * caller's. `trace` accrues the nominal fabric latency of the
     * return hop into the span's fabricNs (untraced = free).
     */
    void sendResponse(std::uint32_t bytes, const std::string &from,
                      const std::string &to, unsigned from_node,
                      unsigned to_node, trace::SpanRef trace,
                      sim::EventFn deliver);

    /** Sentinel for sendRpc's src_node: resolve via router->ingress()
     *  (external traffic) or keep 0 when no router is installed. */
    static constexpr unsigned kNoNode = ~0u;

    /** The profile used for (de)serialization work. */
    const cpu::WorkProfile &netstackProfile() const { return netstack_; }

    /** Serialization instruction count for a payload size. */
    double rpcInstructions(std::uint32_t bytes) const;

  private:
    struct RpcCall;
    struct HedgedCall;

    /** Transport + submit for one attempt of a call. */
    void attempt(std::shared_ptr<RpcCall> call, unsigned attempt_no);

    /** Attempt finished; retry or deliver the final outcome. */
    void finishAttempt(std::shared_ptr<RpcCall> call, unsigned attempt_no,
                       const Payload &response, Status status);

    /** Start a hedged call: first leg plus the armed hedge timer. */
    void sendHedged(std::shared_ptr<HedgedCall> call);

    /** Transport + submit for one leg of a hedged call. */
    void launchLeg(std::shared_ptr<HedgedCall> call);

    /** Leg settled (response or leg timeout); race resolution. */
    void finishLeg(std::shared_ptr<HedgedCall> call, unsigned leg_index,
                   const Payload &response, Status status);

    /** Arm (or re-arm) the hedge-delay timer of a hedged call. */
    void armHedgeTimer(std::shared_ptr<HedgedCall> call);

    /** Hedge delay for an edge: observed latency quantile once the
     *  edge has enough samples, else the policy's fixed delay. */
    Tick hedgeDelayFor(const std::string &client,
                       const std::string &service,
                       const HedgePolicy &policy);

    /** Spend one retry token if the budget allows. */
    bool takeRetryToken();

    /** Spend one hedge token if the budget allows. */
    bool takeHedgeToken();

    /** Sample an external request; null link when untraced. */
    trace::TraceLink maybeStartTrace();

    /** Record a new span for one attempt of a linked call. */
    trace::SpanRef startSpan(const trace::TraceLink &link,
                             const std::string &client,
                             const std::string &service,
                             const std::string &op, unsigned attempt_no,
                             trace::SpanId retry_of, Tick backoff);

    /** Wrap `inner` to stamp the span's client completion first. */
    RespondFn traceWrap(trace::SpanRef ref, RespondFn inner);

    os::Kernel &kernel_;
    net::Network &network_;
    RpcCostParams rpc_params_;
    std::uint64_t seed_;
    cpu::WorkProfile netstack_;
    std::vector<std::unique_ptr<Service>> services_;
    std::map<std::string, Service *> by_name_;
    ResilienceConfig resilience_;
    OverloadConfig overload_;
    /** Cluster routing policy; null on single-machine runs. */
    NodeRouter *router_ = nullptr;
    /** Jitter for retry backoff; only drawn from when a retry fires. */
    Rng retry_rng_;
    /** Token-bucket retry budget (tokens accrue per first attempt). */
    double retry_tokens_ = 0.0;
    RetryStats retry_stats_;
    /** Jitter for hedge delays; only drawn from when a hedge timer is
     * armed on a hedge-enabled edge. */
    Rng hedge_rng_;
    /** Token-bucket hedge budget (tokens accrue per first attempt on
     * hedge-enabled edges, one spent per hedge launched). */
    double hedge_tokens_ = 0.0;
    HedgeStats hedge_stats_;
    /**
     * Observed Ok-response latency per hedge-enabled edge
     * ("client|service"), feeding the delay-quantile trigger. Only
     * populated by hedged calls, so inactive runs never touch it.
     */
    std::map<std::string, QuantileHistogram> hedge_latency_;
    /** Trace sampling; only drawn from when tracing is on and the
     * sampling rate is fractional. */
    Rng trace_rng_;
    /** Created by setTrace when tracing is enabled; null otherwise. */
    std::shared_ptr<trace::TraceStore> trace_store_;
};

} // namespace microscale::svc

#endif // MICROSCALE_SVC_MESH_HH
