#include "svc/resilience.hh"

namespace microscale::svc
{

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok:
        return "ok";
    case Status::Timeout:
        return "timeout";
    case Status::Overload:
        return "overload";
    case Status::Unavailable:
        return "unavailable";
    case Status::Rejected:
        return "rejected";
    }
    return "?";
}

const char *
criticalityName(Criticality tier)
{
    switch (tier) {
    case Criticality::Critical:
        return "critical";
    case Criticality::Normal:
        return "normal";
    case Criticality::Sheddable:
        return "sheddable";
    }
    return "?";
}

const EdgePolicy &
ResilienceConfig::policyFor(const std::string &client,
                            const std::string &server) const
{
    static const EdgePolicy none;
    for (const EdgeRule &rule : edges) {
        const bool client_ok =
            rule.client == "*" || rule.client == client;
        const bool server_ok =
            rule.server == "*" || rule.server == server;
        if (client_ok && server_ok)
            return rule.policy;
    }
    return none;
}

} // namespace microscale::svc
