/**
 * @file
 * Deterministic fault injection: a script of timed fault events applied
 * to the mesh from the simulation clock. Supported faults are replica
 * crash/restart, service-wide compute slowdown (brownout), link-latency
 * inflation, per-replica gray slowdowns, probabilistic per-link packet
 * loss/duplication, bidirectional link partitions, and correlated
 * CCX-domain crashes. Scripts are plain data so they ride inside
 * ExperimentConfig and hash/compare trivially; the injector schedules
 * one background sim event per script entry, so an empty script adds
 * nothing to the event stream.
 */

#ifndef MICROSCALE_SVC_FAULT_HH
#define MICROSCALE_SVC_FAULT_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace microscale::svc
{

class Mesh;

/** One scripted fault transition. */
struct FaultEvent
{
    enum class Kind
    {
        /** Mark `service` replica `replica` down (fails its queue). */
        ReplicaDown,
        /** Bring the replica back (breaker state reset). */
        ReplicaUp,
        /** Multiply `service` compute budgets by `factor` (1 = end). */
        Slowdown,
        /** Multiply network latency by `factor` (1 = end). */
        LatencyFactor,
        /**
         * Gray failure: multiply compute of `service` replica `replica`
         * alone by `factor` (1 = end). The replica stays registered and
         * keeps answering, just slowly.
         */
        ReplicaSlow,
        /**
         * Drop each message on the `service` <-> `peer` link with
         * probability `factor` (0 = end). Draws come from the dedicated
         * "net.chaos" RNG stream so healthy runs stay byte-identical.
         */
        PacketLoss,
        /** Duplicate each `service` <-> `peer` message with prob `factor`. */
        PacketDup,
        /** Blackhole the `service` <-> `peer` link in both directions. */
        Partition,
        /** Heal a previous Partition of the same link. */
        PartitionHeal,
        /**
         * Correlated crash: every replica (of every service) homed on
         * CCX domain `replica` goes down together, modeling a shared
         * power/cooling/NUMA-domain failure. Uses placement info, so it
         * requires a CCX-aware placement to have any effect.
         */
        CorrelatedDown,
        /** Bring the CCX domain `replica` replicas back up. */
        CorrelatedUp,
        /**
         * Cluster node crash: every replica (of every service) placed
         * on cluster node `replica` goes down together. Only
         * meaningful for scale-out runs; against a single-machine
         * mesh (no replica has a cluster node) it warns and skips.
         */
        NodeDown,
        /** Bring cluster node `replica`'s replicas back up. */
        NodeUp,
        /**
         * Drop each fabric message between cluster nodes `replica`
         * and `peerReplica` with probability `factor` (0 = end).
         */
        FabricLoss,
        /** Blackhole the `replica` <-> `peerReplica` fabric link. */
        FabricPartition,
        /** Heal a previous FabricPartition of the same node pair. */
        FabricHeal,
    };

    Kind kind = Kind::ReplicaDown;
    /** Absolute simulation tick at which the fault applies. */
    Tick at = 0;
    /** Target service; first link endpoint for link faults. */
    std::string service;
    /** Second link endpoint (PacketLoss/Dup/Partition[Heal] only). */
    std::string peer;
    /**
     * Target replica (ReplicaDown/Up/Slow); for CorrelatedDown/Up this
     * is the CCX domain id, for node/fabric kinds the cluster node id.
     */
    unsigned replica = 0;
    /** Second cluster node (FabricLoss/FabricPartition/FabricHeal). */
    unsigned peerReplica = 0;
    /** Multiplier (Slowdown/LatencyFactor/ReplicaSlow) or probability
     *  (PacketLoss/PacketDup). */
    double factor = 1.0;
};

/** A full fault script: events applied in `at` order. */
struct FaultScript
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }
};

/** Human-readable name of a fault kind (logging/tests). */
const char *faultKindName(FaultEvent::Kind kind);

/** True for kinds that act on a (service, peer) network link. */
bool faultIsLinkKind(FaultEvent::Kind kind);

/**
 * Applies a FaultScript to a mesh. Construct after the services exist,
 * then arm() once before the simulation runs; arming validates every
 * target and schedules one background event per script entry.
 *
 * Replica indexes are validated at apply-time, not arm-time: the
 * autoscaler may add replicas after arm(), so a script referencing a
 * not-yet-existing replica warns and skips instead of aborting.
 */
class FaultInjector
{
  public:
    FaultInjector(Mesh &mesh, FaultScript script);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Validate targets and schedule the script. Call exactly once. */
    void arm();

    const FaultScript &script() const { return script_; }

    /** Number of events already applied (tests/diagnostics). */
    unsigned applied() const { return applied_; }

    /** Events skipped at apply-time (stale replica index). */
    unsigned skipped() const { return skipped_; }

  private:
    void apply(const FaultEvent &event);
    void applyCorrelated(unsigned domain, bool down);
    void applyNode(unsigned node, bool down);

    Mesh &mesh_;
    FaultScript script_;
    bool armed_ = false;
    unsigned applied_ = 0;
    unsigned skipped_ = 0;
};

} // namespace microscale::svc

#endif // MICROSCALE_SVC_FAULT_HH
