/**
 * @file
 * Deterministic fault injection: a script of timed fault events applied
 * to the mesh from the simulation clock. Supported faults are replica
 * crash/restart, service-wide compute slowdown (brownout) and
 * link-latency inflation. Scripts are plain data so they ride inside
 * ExperimentConfig and hash/compare trivially; the injector schedules
 * one background sim event per script entry, so an empty script adds
 * nothing to the event stream.
 */

#ifndef MICROSCALE_SVC_FAULT_HH
#define MICROSCALE_SVC_FAULT_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace microscale::svc
{

class Mesh;

/** One scripted fault transition. */
struct FaultEvent
{
    enum class Kind
    {
        /** Mark `service` replica `replica` down (fails its queue). */
        ReplicaDown,
        /** Bring the replica back (breaker state reset). */
        ReplicaUp,
        /** Multiply `service` compute budgets by `factor` (1 = end). */
        Slowdown,
        /** Multiply network latency by `factor` (1 = end). */
        LatencyFactor,
    };

    Kind kind = Kind::ReplicaDown;
    /** Absolute simulation tick at which the fault applies. */
    Tick at = 0;
    /** Target service (unused for LatencyFactor). */
    std::string service;
    /** Target replica (ReplicaDown/ReplicaUp only). */
    unsigned replica = 0;
    /** Multiplier (Slowdown/LatencyFactor only). */
    double factor = 1.0;
};

/** A full fault script: events applied in `at` order. */
struct FaultScript
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }
};

/** Human-readable name of a fault kind (logging/tests). */
const char *faultKindName(FaultEvent::Kind kind);

/**
 * Applies a FaultScript to a mesh. Construct after the services exist,
 * then arm() once before the simulation runs; arming validates every
 * target and schedules one background event per script entry.
 */
class FaultInjector
{
  public:
    FaultInjector(Mesh &mesh, FaultScript script);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Validate targets and schedule the script. Call exactly once. */
    void arm();

    const FaultScript &script() const { return script_; }

    /** Number of events already applied (tests/diagnostics). */
    unsigned applied() const { return applied_; }

  private:
    void apply(const FaultEvent &event);

    Mesh &mesh_;
    FaultScript script_;
    bool armed_ = false;
    unsigned applied_ = 0;
};

} // namespace microscale::svc

#endif // MICROSCALE_SVC_FAULT_HH
