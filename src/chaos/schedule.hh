/**
 * @file
 * Seeded random fault-schedule generation over a declared fault space.
 *
 * A FaultSpace says what the chaos search may break: which services
 * (and how many replicas each has), which network links carry traffic,
 * and how many CCX failure domains the placement produced. From a
 * 64-bit seed randomSchedule() draws a reproducible FaultScript mixing
 * every fault family the injector supports (crash, brownout, latency
 * inflation, gray replica slowdown, packet loss/duplication, link
 * partition, correlated domain crash). Roughly a quarter of injected
 * faults never recover, so schedules exercise permanently-degraded
 * endgames too.
 *
 * Determinism: all draws come from a dedicated Rng stream
 * ("chaos.schedule") keyed only by the seed and the space, so the same
 * seed always yields a byte-identical script. Recovery events are
 * idempotent state transitions (restoring factor 1.0, probability 0.0,
 * heal, up), which keeps every subset of a script a valid script —
 * the property the ddmin shrinker (search.hh) relies on.
 */

#ifndef MICROSCALE_CHAOS_SCHEDULE_HH
#define MICROSCALE_CHAOS_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "svc/fault.hh"

namespace microscale::chaos
{

/** What the chaos search is allowed to break. */
struct FaultSpace
{
    struct ServiceInfo
    {
        std::string name;
        unsigned replicas = 1;
    };

    /** Services eligible for crash/slowdown/gray faults. */
    std::vector<ServiceInfo> services;

    /**
     * Links eligible for loss/duplication/partition, as endpoint
     * pairs. Only list links whose client edge carries a timeout:
     * blackholed messages on an untimed edge would block a worker
     * forever and the drain invariants would (correctly) scream.
     */
    std::vector<std::pair<std::string, std::string>> links;

    /** CCX failure domains for correlated crashes (0 = none). */
    unsigned ccxDomains = 0;

    /**
     * Machines in the cluster. 0 = single-machine harness: the node
     * and fabric fault families are never drawn and schedules stay
     * byte-identical to what pre-cluster builds produced. >= 2 also
     * arms fabric-link loss/partition between node pairs; every node
     * pair is a fabric link (see net::Network::sendVia).
     */
    unsigned clusterNodes = 0;

    /**
     * Persistence shards of a replicated data tier (R > 1). 0 = the
     * data-tier fault families (shard outage, hint pressure, quorum
     * split) are never drawn, so every pre-replication space keeps
     * producing byte-identical schedules per seed. Only set this when
     * the harness runs with replication enabled: the families exist
     * to drive the quorum/hint/read-repair machinery.
     */
    unsigned dataShards = 0;

    /**
     * Cluster node hosting each data shard (indexed by shard id).
     * Quorum-split faults partition the fabric between two distinct
     * shard-hosting nodes; with fewer than two distinct entries the
     * family degrades to a shard outage.
     */
    std::vector<unsigned> dataShardNodes;
};

/**
 * Draw a random fault schedule: up to maxEvents events whose `at`
 * ticks fall inside [windowStart, windowEnd]. Faults are injected as
 * on/off pairs (~25% of pairs skip the recovery event). Same seed and
 * inputs => byte-identical script.
 */
svc::FaultScript randomSchedule(std::uint64_t seed,
                                const FaultSpace &space,
                                unsigned maxEvents, Tick windowStart,
                                Tick windowEnd);

/**
 * Canonical human/machine-readable rendering of a script, one event
 * per line. Stable across runs (feeds the search fingerprint) and
 * precise enough to replay by hand.
 */
std::string describeFaultScript(const svc::FaultScript &script);

} // namespace microscale::chaos

#endif // MICROSCALE_CHAOS_SCHEDULE_HH
