#include "chaos/schedule.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "base/random.hh"

namespace microscale::chaos
{

namespace
{

/** Fault families the generator draws from. */
enum class Family
{
    Crash = 0,
    Brownout,
    LatencySpike,
    GraySlow,
    PacketLoss,
    PacketDup,
    Partition,
    CorrelatedCrash,
    // Cluster families, drawn only when the space has clusterNodes > 0
    // so single-machine schedules stay byte-identical per seed.
    NodeOutage,
    FabricLoss,
    FabricPartition,
    // Data-tier families, drawn only when the space has dataShards > 0
    // (a replicated data tier): crash one shard replica, hold one down
    // long enough to pressure its hint queue, or split the fabric
    // between two shard-hosting nodes so write and read quorums see
    // different replicas.
    ShardOutage,
    HintPressure,
    QuorumSplit,
};
constexpr unsigned kNumFamilies = 8;
constexpr unsigned kNumClusterFamilies = 11;
constexpr unsigned kNumDataFamilies = 14;

/** Shard service names follow the cluster's naming scheme. */
std::string
shardServiceName(unsigned shard)
{
    return "shard" + std::to_string(shard);
}

svc::FaultEvent
makeEvent(svc::FaultEvent::Kind kind, Tick at, std::string service,
          std::string peer, unsigned replica, double factor)
{
    svc::FaultEvent e;
    e.kind = kind;
    e.at = at;
    e.service = std::move(service);
    e.peer = std::move(peer);
    e.replica = replica;
    e.factor = factor;
    return e;
}

/** A distinct (a, b) fabric-link endpoint pair, a != b. */
std::pair<unsigned, unsigned>
drawNodePair(Rng &rng, unsigned nodes)
{
    const unsigned a =
        static_cast<unsigned>(rng.uniformInt(0, nodes - 1));
    unsigned b = static_cast<unsigned>(rng.uniformInt(0, nodes - 2));
    if (b >= a)
        ++b;
    return {a, b};
}

} // namespace

svc::FaultScript
randomSchedule(std::uint64_t seed, const FaultSpace &space,
               unsigned maxEvents, Tick windowStart, Tick windowEnd)
{
    if (space.services.empty())
        fatal("randomSchedule: fault space has no services");
    if (windowEnd <= windowStart)
        fatal("randomSchedule: empty fault window");

    Rng rng(seed, "chaos.schedule");
    svc::FaultScript script;

    const unsigned maxPairs = std::max(1u, maxEvents / 2);
    const unsigned pairs =
        static_cast<unsigned>(rng.uniformInt(1, maxPairs));

    using Kind = svc::FaultEvent::Kind;
    const unsigned num_families =
        space.dataShards > 0
            ? kNumDataFamilies
            : (space.clusterNodes > 0 ? kNumClusterFamilies
                                      : kNumFamilies);
    // Distinct shard-hosting nodes (quorum splits need two).
    std::vector<unsigned> shard_nodes = space.dataShardNodes;
    std::sort(shard_nodes.begin(), shard_nodes.end());
    shard_nodes.erase(
        std::unique(shard_nodes.begin(), shard_nodes.end()),
        shard_nodes.end());
    for (unsigned p = 0; p < pairs; ++p) {
        Family family = static_cast<Family>(
            rng.uniformInt(0, num_families - 1));
        // Degrade gracefully when the space lacks the target kind: link
        // faults need links, correlated crashes need CCX domains,
        // fabric faults need a node pair. The fallback choice is
        // data-driven (space is fixed per search), so determinism per
        // seed is unaffected.
        const bool link_family = family == Family::PacketLoss ||
                                 family == Family::PacketDup ||
                                 family == Family::Partition;
        if (link_family && space.links.empty())
            family = Family::Brownout;
        if (family == Family::CorrelatedCrash && space.ccxDomains == 0)
            family = Family::Crash;
        if ((family == Family::FabricLoss ||
             family == Family::FabricPartition) &&
            space.clusterNodes < 2)
            family = Family::NodeOutage;
        if (family == Family::QuorumSplit &&
            (shard_nodes.size() < 2 || space.clusterNodes < 2))
            family = Family::ShardOutage;

        const Tick onset = windowStart + static_cast<Tick>(rng.uniformInt(
                                             0, windowEnd - windowStart));
        const Tick recovery =
            onset + 1 +
            static_cast<Tick>(rng.uniformInt(
                0, windowEnd > onset ? windowEnd - onset : 0));
        const bool recover = rng.uniform01() >= 0.25;

        const auto &svc_info =
            space.services[rng.index(space.services.size())];
        const unsigned replica = static_cast<unsigned>(
            rng.uniformInt(0, svc_info.replicas > 0
                                  ? svc_info.replicas - 1
                                  : 0));

        switch (family) {
        case Family::Crash:
            script.events.push_back(makeEvent(Kind::ReplicaDown, onset,
                                              svc_info.name, "", replica,
                                              1.0));
            if (recover)
                script.events.push_back(makeEvent(Kind::ReplicaUp,
                                                  recovery, svc_info.name,
                                                  "", replica, 1.0));
            break;
        case Family::Brownout: {
            const double factor = rng.uniformReal(2.0, 16.0);
            script.events.push_back(makeEvent(Kind::Slowdown, onset,
                                              svc_info.name, "", 0,
                                              factor));
            if (recover)
                script.events.push_back(makeEvent(Kind::Slowdown,
                                                  recovery, svc_info.name,
                                                  "", 0, 1.0));
            break;
        }
        case Family::LatencySpike: {
            const double factor = rng.uniformReal(5.0, 500.0);
            script.events.push_back(
                makeEvent(Kind::LatencyFactor, onset, "", "", 0, factor));
            if (recover)
                script.events.push_back(makeEvent(Kind::LatencyFactor,
                                                  recovery, "", "", 0,
                                                  1.0));
            break;
        }
        case Family::GraySlow: {
            const double factor = rng.uniformReal(2.0, 16.0);
            script.events.push_back(makeEvent(Kind::ReplicaSlow, onset,
                                              svc_info.name, "", replica,
                                              factor));
            if (recover)
                script.events.push_back(makeEvent(Kind::ReplicaSlow,
                                                  recovery, svc_info.name,
                                                  "", replica, 1.0));
            break;
        }
        case Family::PacketLoss: {
            const auto &link = space.links[rng.index(space.links.size())];
            const double prob = rng.uniformReal(0.05, 0.9);
            script.events.push_back(makeEvent(Kind::PacketLoss, onset,
                                              link.first, link.second, 0,
                                              prob));
            if (recover)
                script.events.push_back(makeEvent(Kind::PacketLoss,
                                                  recovery, link.first,
                                                  link.second, 0, 0.0));
            break;
        }
        case Family::PacketDup: {
            const auto &link = space.links[rng.index(space.links.size())];
            const double prob = rng.uniformReal(0.05, 0.5);
            script.events.push_back(makeEvent(Kind::PacketDup, onset,
                                              link.first, link.second, 0,
                                              prob));
            if (recover)
                script.events.push_back(makeEvent(Kind::PacketDup,
                                                  recovery, link.first,
                                                  link.second, 0, 0.0));
            break;
        }
        case Family::Partition: {
            const auto &link = space.links[rng.index(space.links.size())];
            script.events.push_back(makeEvent(Kind::Partition, onset,
                                              link.first, link.second, 0,
                                              1.0));
            if (recover)
                script.events.push_back(makeEvent(Kind::PartitionHeal,
                                                  recovery, link.first,
                                                  link.second, 0, 1.0));
            break;
        }
        case Family::CorrelatedCrash: {
            const unsigned domain = static_cast<unsigned>(
                rng.uniformInt(0, space.ccxDomains - 1));
            script.events.push_back(makeEvent(Kind::CorrelatedDown, onset,
                                              "", "", domain, 1.0));
            if (recover)
                script.events.push_back(makeEvent(Kind::CorrelatedUp,
                                                  recovery, "", "",
                                                  domain, 1.0));
            break;
        }
        case Family::NodeOutage: {
            const unsigned node = static_cast<unsigned>(
                rng.uniformInt(0, space.clusterNodes - 1));
            script.events.push_back(makeEvent(Kind::NodeDown, onset, "",
                                              "", node, 1.0));
            if (recover)
                script.events.push_back(makeEvent(Kind::NodeUp, recovery,
                                                  "", "", node, 1.0));
            break;
        }
        case Family::FabricLoss: {
            const auto [a, b] = drawNodePair(rng, space.clusterNodes);
            const double prob = rng.uniformReal(0.05, 0.9);
            svc::FaultEvent on =
                makeEvent(Kind::FabricLoss, onset, "", "", a, prob);
            on.peerReplica = b;
            script.events.push_back(std::move(on));
            if (recover) {
                svc::FaultEvent off =
                    makeEvent(Kind::FabricLoss, recovery, "", "", a, 0.0);
                off.peerReplica = b;
                script.events.push_back(std::move(off));
            }
            break;
        }
        case Family::FabricPartition: {
            const auto [a, b] = drawNodePair(rng, space.clusterNodes);
            svc::FaultEvent on =
                makeEvent(Kind::FabricPartition, onset, "", "", a, 1.0);
            on.peerReplica = b;
            script.events.push_back(std::move(on));
            if (recover) {
                svc::FaultEvent off =
                    makeEvent(Kind::FabricHeal, recovery, "", "", a, 1.0);
                off.peerReplica = b;
                script.events.push_back(std::move(off));
            }
            break;
        }
        case Family::ShardOutage: {
            // Crash one shard replica: writes fall back to quorum
            // slack, hints queue for the victim, replay on recovery.
            const unsigned shard = static_cast<unsigned>(
                rng.uniformInt(0, space.dataShards - 1));
            script.events.push_back(
                makeEvent(Kind::ReplicaDown, onset,
                          shardServiceName(shard), "", 0, 1.0));
            if (recover)
                script.events.push_back(
                    makeEvent(Kind::ReplicaUp, recovery,
                              shardServiceName(shard), "", 0, 1.0));
            break;
        }
        case Family::HintPressure: {
            // Hold a shard down for the rest of the window and bring
            // it back right at the end: the longest hint buildup the
            // window allows, with the replay squeezed into the drain.
            const unsigned shard = static_cast<unsigned>(
                rng.uniformInt(0, space.dataShards - 1));
            script.events.push_back(
                makeEvent(Kind::ReplicaDown, onset,
                          shardServiceName(shard), "", 0, 1.0));
            script.events.push_back(
                makeEvent(Kind::ReplicaUp, windowEnd,
                          shardServiceName(shard), "", 0, 1.0));
            break;
        }
        case Family::QuorumSplit: {
            // Partition the fabric between two shard-hosting nodes:
            // replica legs crossing the split fail while both shards
            // stay up, separating write-ack from replication reach.
            const unsigned ai = static_cast<unsigned>(
                rng.uniformInt(0, shard_nodes.size() - 1));
            unsigned bi = static_cast<unsigned>(
                rng.uniformInt(0, shard_nodes.size() - 2));
            if (bi >= ai)
                ++bi;
            svc::FaultEvent on =
                makeEvent(Kind::FabricPartition, onset, "", "",
                          shard_nodes[ai], 1.0);
            on.peerReplica = shard_nodes[bi];
            script.events.push_back(std::move(on));
            if (recover) {
                svc::FaultEvent off =
                    makeEvent(Kind::FabricHeal, recovery, "", "",
                              shard_nodes[ai], 1.0);
                off.peerReplica = shard_nodes[bi];
                script.events.push_back(std::move(off));
            }
            break;
        }
        }
    }
    return script;
}

std::string
describeFaultScript(const svc::FaultScript &script)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < script.events.size(); ++i) {
        const svc::FaultEvent &e = script.events[i];
        os << "  [" << i << "] at=" << e.at << " "
           << svc::faultKindName(e.kind);
        if (svc::faultIsLinkKind(e.kind))
            os << " " << e.service << "<->" << e.peer;
        else if (e.kind == svc::FaultEvent::Kind::CorrelatedDown ||
                 e.kind == svc::FaultEvent::Kind::CorrelatedUp)
            os << " domain=" << e.replica;
        else if (e.kind == svc::FaultEvent::Kind::NodeDown ||
                 e.kind == svc::FaultEvent::Kind::NodeUp)
            os << " node=" << e.replica;
        else if (e.kind == svc::FaultEvent::Kind::FabricLoss ||
                 e.kind == svc::FaultEvent::Kind::FabricPartition ||
                 e.kind == svc::FaultEvent::Kind::FabricHeal)
            os << " nodes " << e.replica << "<->" << e.peerReplica;
        else if (!e.service.empty())
            os << " " << e.service << "#" << e.replica;
        else
            os << " global";
        os << " factor=" << e.factor << "\n";
    }
    if (script.events.empty())
        os << "  (empty script)\n";
    return os.str();
}

} // namespace microscale::chaos
