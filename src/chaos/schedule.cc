#include "chaos/schedule.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "base/random.hh"

namespace microscale::chaos
{

namespace
{

/** Fault families the generator draws from. */
enum class Family
{
    Crash = 0,
    Brownout,
    LatencySpike,
    GraySlow,
    PacketLoss,
    PacketDup,
    Partition,
    CorrelatedCrash,
};
constexpr unsigned kNumFamilies = 8;

svc::FaultEvent
makeEvent(svc::FaultEvent::Kind kind, Tick at, std::string service,
          std::string peer, unsigned replica, double factor)
{
    svc::FaultEvent e;
    e.kind = kind;
    e.at = at;
    e.service = std::move(service);
    e.peer = std::move(peer);
    e.replica = replica;
    e.factor = factor;
    return e;
}

} // namespace

svc::FaultScript
randomSchedule(std::uint64_t seed, const FaultSpace &space,
               unsigned maxEvents, Tick windowStart, Tick windowEnd)
{
    if (space.services.empty())
        fatal("randomSchedule: fault space has no services");
    if (windowEnd <= windowStart)
        fatal("randomSchedule: empty fault window");

    Rng rng(seed, "chaos.schedule");
    svc::FaultScript script;

    const unsigned maxPairs = std::max(1u, maxEvents / 2);
    const unsigned pairs =
        static_cast<unsigned>(rng.uniformInt(1, maxPairs));

    using Kind = svc::FaultEvent::Kind;
    for (unsigned p = 0; p < pairs; ++p) {
        Family family = static_cast<Family>(
            rng.uniformInt(0, kNumFamilies - 1));
        // Degrade gracefully when the space lacks the target kind: link
        // faults need links, correlated crashes need CCX domains. The
        // fallback choice is data-driven (space is fixed per search),
        // so determinism per seed is unaffected.
        const bool link_family = family == Family::PacketLoss ||
                                 family == Family::PacketDup ||
                                 family == Family::Partition;
        if (link_family && space.links.empty())
            family = Family::Brownout;
        if (family == Family::CorrelatedCrash && space.ccxDomains == 0)
            family = Family::Crash;

        const Tick onset = windowStart + static_cast<Tick>(rng.uniformInt(
                                             0, windowEnd - windowStart));
        const Tick recovery =
            onset + 1 +
            static_cast<Tick>(rng.uniformInt(
                0, windowEnd > onset ? windowEnd - onset : 0));
        const bool recover = rng.uniform01() >= 0.25;

        const auto &svc_info =
            space.services[rng.index(space.services.size())];
        const unsigned replica = static_cast<unsigned>(
            rng.uniformInt(0, svc_info.replicas > 0
                                  ? svc_info.replicas - 1
                                  : 0));

        switch (family) {
        case Family::Crash:
            script.events.push_back(makeEvent(Kind::ReplicaDown, onset,
                                              svc_info.name, "", replica,
                                              1.0));
            if (recover)
                script.events.push_back(makeEvent(Kind::ReplicaUp,
                                                  recovery, svc_info.name,
                                                  "", replica, 1.0));
            break;
        case Family::Brownout: {
            const double factor = rng.uniformReal(2.0, 16.0);
            script.events.push_back(makeEvent(Kind::Slowdown, onset,
                                              svc_info.name, "", 0,
                                              factor));
            if (recover)
                script.events.push_back(makeEvent(Kind::Slowdown,
                                                  recovery, svc_info.name,
                                                  "", 0, 1.0));
            break;
        }
        case Family::LatencySpike: {
            const double factor = rng.uniformReal(5.0, 500.0);
            script.events.push_back(
                makeEvent(Kind::LatencyFactor, onset, "", "", 0, factor));
            if (recover)
                script.events.push_back(makeEvent(Kind::LatencyFactor,
                                                  recovery, "", "", 0,
                                                  1.0));
            break;
        }
        case Family::GraySlow: {
            const double factor = rng.uniformReal(2.0, 16.0);
            script.events.push_back(makeEvent(Kind::ReplicaSlow, onset,
                                              svc_info.name, "", replica,
                                              factor));
            if (recover)
                script.events.push_back(makeEvent(Kind::ReplicaSlow,
                                                  recovery, svc_info.name,
                                                  "", replica, 1.0));
            break;
        }
        case Family::PacketLoss: {
            const auto &link = space.links[rng.index(space.links.size())];
            const double prob = rng.uniformReal(0.05, 0.9);
            script.events.push_back(makeEvent(Kind::PacketLoss, onset,
                                              link.first, link.second, 0,
                                              prob));
            if (recover)
                script.events.push_back(makeEvent(Kind::PacketLoss,
                                                  recovery, link.first,
                                                  link.second, 0, 0.0));
            break;
        }
        case Family::PacketDup: {
            const auto &link = space.links[rng.index(space.links.size())];
            const double prob = rng.uniformReal(0.05, 0.5);
            script.events.push_back(makeEvent(Kind::PacketDup, onset,
                                              link.first, link.second, 0,
                                              prob));
            if (recover)
                script.events.push_back(makeEvent(Kind::PacketDup,
                                                  recovery, link.first,
                                                  link.second, 0, 0.0));
            break;
        }
        case Family::Partition: {
            const auto &link = space.links[rng.index(space.links.size())];
            script.events.push_back(makeEvent(Kind::Partition, onset,
                                              link.first, link.second, 0,
                                              1.0));
            if (recover)
                script.events.push_back(makeEvent(Kind::PartitionHeal,
                                                  recovery, link.first,
                                                  link.second, 0, 1.0));
            break;
        }
        case Family::CorrelatedCrash: {
            const unsigned domain = static_cast<unsigned>(
                rng.uniformInt(0, space.ccxDomains - 1));
            script.events.push_back(makeEvent(Kind::CorrelatedDown, onset,
                                              "", "", domain, 1.0));
            if (recover)
                script.events.push_back(makeEvent(Kind::CorrelatedUp,
                                                  recovery, "", "",
                                                  domain, 1.0));
            break;
        }
        }
    }
    return script;
}

std::string
describeFaultScript(const svc::FaultScript &script)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < script.events.size(); ++i) {
        const svc::FaultEvent &e = script.events[i];
        os << "  [" << i << "] at=" << e.at << " "
           << svc::faultKindName(e.kind);
        if (svc::faultIsLinkKind(e.kind))
            os << " " << e.service << "<->" << e.peer;
        else if (e.kind == svc::FaultEvent::Kind::CorrelatedDown ||
                 e.kind == svc::FaultEvent::Kind::CorrelatedUp)
            os << " domain=" << e.replica;
        else if (!e.service.empty())
            os << " " << e.service << "#" << e.replica;
        else
            os << " global";
        os << " factor=" << e.factor << "\n";
    }
    if (script.events.empty())
        os << "  (empty script)\n";
    return os.str();
}

} // namespace microscale::chaos
