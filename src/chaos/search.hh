/**
 * @file
 * Deterministic chaos search: run seeded random fault schedules
 * against a fixed TeaStore harness and check a battery of
 * conservation/consistency invariants after every run.
 *
 * Each schedule runs a full experiment (warmup + measurement + drain)
 * with the request-conservation ledger attached; afterwards the
 * harness verifies:
 *
 *   1. Ledger conservation - every admitted request reached exactly
 *      one terminal state (no leaks, no double counting).
 *   2. Quiescence - the drained simulation holds zero foreground
 *      events, zero queued requests and zero busy workers.
 *   3. Breaker/ejection consistency - probe flags imply HalfOpen,
 *      rolling windows re-count exactly, Closed breakers sit below
 *      their trip threshold, ejections respect the configured bound.
 *   4. Deadline monotonicity - along every traced retry/call chain a
 *      child attempt's effective deadline never exceeds its parent's.
 *
 * Verdicts are deterministic: the same schedule seed produces a
 * byte-identical script, run and fingerprint. When a schedule
 * violates, the ddmin shrinker reduces it to a minimal replayable
 * repro (every subset of a script is valid; see schedule.hh).
 */

#ifndef MICROSCALE_CHAOS_SEARCH_HH
#define MICROSCALE_CHAOS_SEARCH_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"
#include "chaos/schedule.hh"
#include "svc/fault.hh"
#include "svc/resilience.hh"

namespace microscale::chaos
{

/** Per-run knobs of the chaos harness. */
struct ChaosRunOptions
{
    /** Turn on passive outlier ejection (teastore::ejectionPolicy). */
    bool eject = false;
    /**
     * Sabotage the ledger: swallow every Timeout terminal, the
     * "deliberately broken counter" the search must catch and the
     * shrinker must minimize.
     */
    bool injectBug = false;
    /**
     * Run the cluster harness instead: two small8 machines over a LAN
     * fabric with a sharded persistence tier behind one cache node
     * (cluster::runScaleout). Arms the node-outage and fabric
     * loss/partition fault families on top of the usual ones, so the
     * ledger must conserve requests across whole-node loss.
     */
    bool cluster = false;
    /** Experiment seed (fixed across schedules; the schedule seed is
     *  what varies). */
    std::uint64_t experimentSeed = 42;
};

/** Outcome of one schedule run. */
struct ChaosVerdict
{
    std::uint64_t issued = 0;
    std::uint64_t terminals = 0;
    /** Terminal counts by svc::Status index. */
    std::array<std::uint64_t, svc::kNumStatuses> byStatus{};
    std::uint64_t faultsApplied = 0;
    std::uint64_t faultsSkipped = 0;
    /** Replicated-data-tier tallies (cluster harness only; all zero
     * when the run had no quorum writes). */
    std::uint64_t ackedWrites = 0;
    std::uint64_t lostAckedWrites = 0;
    std::uint64_t staleQuorumReads = 0;
    /** One line per broken invariant; empty = clean run. */
    std::vector<std::string> violations;

    bool clean() const { return violations.empty(); }
};

/** The fault space matching the harness topology (see search.cc).
 * With `clusterHarness` the space describes the cluster harness (two
 * active nodes plus a scripted mid-window join): replica counts span
 * the machines, the node/fabric fault families are armed, and the
 * replicated data tier (R = 2) arms the shard-outage / hint-pressure
 * / quorum-split families. */
FaultSpace harnessFaultSpace(bool clusterHarness = false);

/** Fault-injection window of the harness run, for randomSchedule. */
void harnessWindow(Tick &start, Tick &end);

/** Run one schedule through the harness and judge it. */
ChaosVerdict runSchedule(const svc::FaultScript &script,
                         const ChaosRunOptions &opts);

/**
 * FNV-1a fingerprint over the canonical script rendering and the
 * verdict counters/violations. Two runs agree on the fingerprint iff
 * they saw the same schedule and the same outcome - the determinism
 * check `chaos_search --seed S` twice relies on this.
 */
std::uint64_t fingerprint(const svc::FaultScript &script,
                          const ChaosVerdict &verdict);

/**
 * ddmin schedule shrinker: the smallest sub-script of `script` that
 * still yields a violating run under `opts`. `runsOut` (optional)
 * receives the number of harness runs spent. Returns `script`
 * unchanged when it does not violate in the first place.
 */
svc::FaultScript shrinkSchedule(const svc::FaultScript &script,
                                const ChaosRunOptions &opts,
                                unsigned *runsOut = nullptr);

/** Search configuration (tools/chaos_search and msim --chaos-*). */
struct SearchOptions
{
    /** First schedule seed; schedule i uses seed + i. */
    std::uint64_t seed = 1;
    /** Schedules to run (inject-bug mode: stop at first violation). */
    unsigned schedules = 200;
    /** Max fault events per schedule. */
    unsigned maxEvents = 12;
    ChaosRunOptions run;
};

/** Aggregate outcome of a search. */
struct SearchResult
{
    unsigned ran = 0;
    unsigned violating = 0;
    /** FNV-1a over every run's fingerprint, in order. */
    std::uint64_t combinedFingerprint = 0;
    /** Events in the minimal repro (inject-bug mode; 0 = none found). */
    unsigned shrunkEvents = 0;
};

/**
 * Run the search, streaming one line per schedule to `os`. In
 * inject-bug mode the first violating schedule is shrunk and the
 * minimal FaultScript printed.
 */
SearchResult runSearch(const SearchOptions &opts, std::ostream &os);

} // namespace microscale::chaos

#endif // MICROSCALE_CHAOS_SEARCH_HH
