/**
 * @file
 * Request-conservation ledger: proves that every request admitted by a
 * load driver reaches exactly one terminal state — no leaks, no double
 * counting — no matter what fault schedule ran underneath.
 *
 * The driver opens an entry per issued request and closes it from the
 * response callback with the terminal Status. verify() then checks
 * conservation: issued == sum(terminals), zero open entries, zero
 * double-closes. Header-only so loadgen can depend on it without a
 * library cycle (chaos depends on core, core depends on loadgen).
 *
 * The two fault hooks (breakNextTerminal, setDropStatus) exist for the
 * chaos harness itself: they sabotage accounting on purpose so tests
 * can prove the ledger actually catches broken counters.
 */

#ifndef MICROSCALE_CHAOS_LEDGER_HH
#define MICROSCALE_CHAOS_LEDGER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "svc/resilience.hh"

namespace microscale::chaos
{

/** One request's lifetime as the ledger saw it. */
using RequestId = std::uint64_t;

/**
 * The conservation ledger. Cheap enough to stay always-on in chaos
 * runs: open() is a vector push_back, close() a flag flip.
 */
class RequestLedger
{
  public:
    /** Driver admitted a request; returns its ledger id. */
    RequestId open()
    {
        open_flags_.push_back(true);
        ++issued_;
        return open_flags_.size() - 1;
    }

    /** The request reached terminal state `status`. */
    void close(RequestId id, svc::Status status)
    {
        if (break_next_terminal_) {
            // Sabotage hook: silently drop this terminal so the entry
            // stays open and verify() must flag a leak.
            break_next_terminal_ = false;
            return;
        }
        if (drop_status_set_ && status == drop_status_)
            return;
        if (id >= open_flags_.size()) {
            ++bad_ids_;
            return;
        }
        if (!open_flags_[id]) {
            ++double_closes_;
            return;
        }
        open_flags_[id] = false;
        ++terminal_counts_[svc::statusIndex(status)];
        ++terminals_;
    }

    std::uint64_t issued() const { return issued_; }
    std::uint64_t terminals() const { return terminals_; }
    std::uint64_t doubleCloses() const { return double_closes_; }

    /** Terminal count for one status. */
    std::uint64_t terminals(svc::Status status) const
    {
        return terminal_counts_[svc::statusIndex(status)];
    }

    /** Entries still open (leaked requests once the sim drained). */
    std::uint64_t openCount() const
    {
        std::uint64_t n = 0;
        for (bool open : open_flags_) {
            if (open)
                ++n;
        }
        return n;
    }

    /**
     * Conservation check; call after the simulation drained. Returns
     * true when the books balance; otherwise `violations` receives a
     * line per broken invariant.
     */
    bool verify(std::vector<std::string> &violations) const
    {
        const std::uint64_t leaks = openCount();
        if (leaks > 0) {
            violations.push_back(
                "ledger: " + std::to_string(leaks) +
                " issued request(s) never reached a terminal state");
        }
        if (double_closes_ > 0) {
            violations.push_back("ledger: " +
                                 std::to_string(double_closes_) +
                                 " request(s) terminated twice");
        }
        if (bad_ids_ > 0) {
            violations.push_back("ledger: " + std::to_string(bad_ids_) +
                                 " terminal(s) for unknown request ids");
        }
        if (issued_ != terminals_ + leaks) {
            violations.push_back(
                "ledger: issued " + std::to_string(issued_) +
                " != terminals " + std::to_string(terminals_) +
                " + open " + std::to_string(leaks));
        }
        return leaks == 0 && double_closes_ == 0 && bad_ids_ == 0 &&
               issued_ == terminals_;
    }

    // ------------------------------------------------------------------
    // Write-ack ledger (replicated data tier).
    //
    // The quorum coordinator records every write it acknowledged to a
    // client (entity + version) and every quorum read that returned a
    // version older than a previously acked one. After drain the
    // cluster re-reads its replica version maps and reports any acked
    // write no longer readable at quorum strength. verifyReplication
    // turns those counters into violations: "no lost acknowledged
    // writes" and "no stale quorum reads" are the headline invariants
    // chaos_search --cluster enforces.
    // ------------------------------------------------------------------

    /** A write was acked to the client at `version` for `entity`. */
    void recordAckedWrite(const std::string &entity,
                          std::uint64_t version)
    {
        auto &v = acked_writes_[entity];
        if (version > v)
            v = version;
        ++acked_write_count_;
    }

    /** A quorum read observed a version older than an acked write. */
    void recordStaleQuorumRead() { ++stale_quorum_reads_; }

    /** Post-drain: an acked write is no longer quorum-readable. */
    void recordLostAckedWrite(const std::string &entity,
                              std::uint64_t version)
    {
        ++lost_acked_writes_;
        if (lost_write_lines_.size() < 8) {
            lost_write_lines_.push_back(
                "replication: acked write " + entity + "@v" +
                std::to_string(version) +
                " not quorum-readable after drain");
        }
    }

    /** Max acked version per entity, as recorded by the coordinator. */
    const std::map<std::string, std::uint64_t> &ackedWrites() const
    {
        return acked_writes_;
    }

    std::uint64_t ackedWriteCount() const { return acked_write_count_; }
    std::uint64_t staleQuorumReads() const { return stale_quorum_reads_; }
    std::uint64_t lostAckedWrites() const { return lost_acked_writes_; }

    /**
     * Replication invariant check; call after the cluster's post-drain
     * verification ran. True when no acked write was lost and no
     * quorum read went stale.
     */
    bool verifyReplication(std::vector<std::string> &violations) const
    {
        for (const std::string &line : lost_write_lines_)
            violations.push_back(line);
        if (lost_acked_writes_ > lost_write_lines_.size()) {
            violations.push_back(
                "replication: ... and " +
                std::to_string(lost_acked_writes_ -
                               lost_write_lines_.size()) +
                " more lost acked write(s)");
        }
        if (stale_quorum_reads_ > 0) {
            violations.push_back(
                "replication: " + std::to_string(stale_quorum_reads_) +
                " quorum read(s) returned a stale version");
        }
        return lost_acked_writes_ == 0 && stale_quorum_reads_ == 0;
    }

    /** Sabotage: swallow the next terminal (tests the leak check). */
    void breakNextTerminal() { break_next_terminal_ = true; }

    /**
     * Sabotage: swallow every terminal of one status — the "deliberately
     * broken counter" the chaos shrinker hunts for in --inject-bug mode.
     */
    void setDropStatus(svc::Status status)
    {
        drop_status_set_ = true;
        drop_status_ = status;
    }

  private:
    std::vector<bool> open_flags_;
    std::array<std::uint64_t, svc::kNumStatuses> terminal_counts_{};
    std::uint64_t issued_ = 0;
    std::uint64_t terminals_ = 0;
    std::uint64_t double_closes_ = 0;
    std::uint64_t bad_ids_ = 0;
    bool break_next_terminal_ = false;
    bool drop_status_set_ = false;
    svc::Status drop_status_ = svc::Status::Ok;
    std::map<std::string, std::uint64_t> acked_writes_;
    std::vector<std::string> lost_write_lines_;
    std::uint64_t acked_write_count_ = 0;
    std::uint64_t stale_quorum_reads_ = 0;
    std::uint64_t lost_acked_writes_ = 0;
};

} // namespace microscale::chaos

#endif // MICROSCALE_CHAOS_LEDGER_HH
