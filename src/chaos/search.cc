#include "chaos/search.hh"

#include <algorithm>
#include <ostream>
#include <utility>

#include "base/logging.hh"
#include "chaos/ledger.hh"
#include "cluster/cluster.hh"
#include "core/experiment.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"
#include "svc/service.hh"
#include "teastore/app.hh"
#include "teastore/chaos.hh"
#include "topo/machine.hh"
#include "topo/presets.hh"
#include "trace/trace.hh"

namespace microscale::chaos
{

namespace
{

/**
 * The fixed harness topology: rome128 with CCX-aware placement, so
 * every service gets several CCX-pinned replicas - per-replica gray
 * faults leave healthy peers to route around and correlated CCX
 * crashes have real blast domains. The load is light (the search
 * checks invariants, not saturation), so one schedule run stays a
 * fraction of a second.
 */
constexpr Tick kWarmup = 120 * kMillisecond;
constexpr Tick kMeasure = 500 * kMillisecond;
constexpr unsigned kUsers = 40;

/**
 * The cluster variant of the harness: two active small8 machines (a
 * third joins mid-window through the scripted scale event, streaming
 * a rebalance under fire) over a LAN fabric, persistence sharded two
 * ways at replication factor 2 behind a single cache node — so node
 * loss takes out stateful tier members, not just app replicas, and
 * every schedule exercises the quorum/hint/read-repair machinery. The
 * small hint queue makes overflow reachable. The scaler stays off -
 * schedules, not load, drive the run.
 */
cluster::ClusterParams
clusterHarnessParams()
{
    cluster::ClusterParams p;
    p.nodes = 3;
    p.initialNodes = 2;
    p.nodeMachine = topo::small8();
    cluster::applyFabricPreset(p, "lan");
    p.shards = 2;
    p.cacheNodes = 1;
    p.cacheCapacity = 256;
    p.shardWorkers = 4;
    p.cacheWorkers = 4;
    p.replication.factor = 2;
    p.replication.writeQuorum = 1;
    p.replication.hintQueueCap = 16;
    p.replication.scaleAddNodeAt = 250 * kMillisecond;
    p.replication.rebalanceBatchEntities = 8;
    return p;
}

core::ExperimentConfig
harnessConfig(const ChaosRunOptions &opts)
{
    core::ExperimentConfig c;
    c.machine = topo::rome128();
    c.placement = core::PlacementKind::CcxAware;
    c.app.store.categories = 4;
    c.app.store.productsPerCategory = 10;
    c.app.store.users = 20;
    c.app.degradedFallbacks = true;
    // Flatter-than-calibrated demand shares spread the 16 CCX groups
    // across all five services (several replicas each).
    c.demand.webui = 0.30;
    c.demand.auth = 0.15;
    c.demand.persistence = 0.25;
    c.demand.recommender = 0.10;
    c.demand.image = 0.20;
    c.sizing.webui.workers = 6;
    c.sizing.auth.workers = 4;
    c.sizing.persistence.workers = 6;
    c.sizing.recommender.workers = 2;
    c.sizing.image.workers = 6;
    c.sizing.registry = {1, 1};
    if (opts.cluster) {
        // Per-node sizing for the small8 node machine; runScaleout
        // ignores c.machine and builds 2 x small8 instead.
        c.sizing.webui = {1, 8};
        c.sizing.auth = {1, 4};
        c.sizing.persistence = {1, 8};
        c.sizing.recommender = {1, 2};
        c.sizing.image = {1, 8};
    }
    c.load.users = kUsers;
    c.load.meanThink = 50 * kMillisecond;
    c.warmup = kWarmup;
    c.measure = kMeasure;
    c.seed = opts.experimentSeed;

    c.resilience = opts.eject ? teastore::ejectionPolicy()
                              : teastore::resilientPolicy();
    // Every external request must terminate no matter which link the
    // schedule blackholes, so the external->webui edge carries the
    // top-level deadline (one attempt: retries against a dead frontend
    // only stretch the tail).
    svc::EdgeRule external;
    external.client = svc::kExternalClient;
    external.server = teastore::names::kWebui;
    external.policy.timeout = 500 * kMillisecond;
    external.policy.maxAttempts = 1;
    c.resilience.edges.push_back(std::move(external));

    // Fabric partitions blackhole EVERY edge crossing the node pair -
    // including the cache/shard tier calls, which have no specific
    // rule above. A catch-all timeout (first match wins, so it only
    // covers otherwise-unruled edges) keeps blackholed workers from
    // hanging past the drain.
    if (opts.cluster) {
        svc::EdgeRule any;
        any.client = "*";
        any.server = "*";
        any.policy.timeout = 500 * kMillisecond;
        any.policy.maxAttempts = 1;
        c.resilience.edges.push_back(std::move(any));
    }

    // Full tracing feeds the deadline-monotonicity invariant.
    c.trace.enabled = true;
    c.trace.sampleRate = 1.0;
    return c;
}

/** The quiescence / breaker / ejection / deadline invariants. */
void
checkWorldInvariants(sim::Simulation &sim, svc::Mesh &mesh,
                     std::vector<std::string> &out)
{
    if (sim.foregroundQueued() != 0) {
        out.push_back("drain: " + std::to_string(sim.foregroundQueued()) +
                      " foreground event(s) still queued");
    }

    const svc::ResilienceConfig &rc = mesh.resilience();
    for (const auto &svc_ptr : mesh.services()) {
        const svc::Service &s = *svc_ptr;
        if (s.busyWorkers() != 0) {
            out.push_back("drain: " + s.name() + " has " +
                          std::to_string(s.busyWorkers()) +
                          " busy worker(s) after drain");
        }
        if (s.queuedRequests() != 0) {
            out.push_back("drain: " + s.name() + " has " +
                          std::to_string(s.queuedRequests()) +
                          " queued request(s) after drain");
        }
        if (rc.breaker.enabled) {
            for (unsigned r = 0; r < s.replicaCount(); ++r) {
                const svc::BreakerState &b = s.breakerState(r);
                if (b.probeInFlight &&
                    b.state != svc::BreakerState::State::HalfOpen) {
                    out.push_back("breaker: " + s.name() + "#" +
                                  std::to_string(r) +
                                  " probeInFlight outside HalfOpen");
                }
                const unsigned fails = static_cast<unsigned>(
                    std::count(b.window.begin(), b.window.end(), true));
                if (fails != b.windowFailures) {
                    out.push_back(
                        "breaker: " + s.name() + "#" + std::to_string(r) +
                        " windowFailures " +
                        std::to_string(b.windowFailures) + " != recount " +
                        std::to_string(fails));
                }
                if (b.window.size() > rc.breaker.windowSize) {
                    out.push_back("breaker: " + s.name() + "#" +
                                  std::to_string(r) + " window overflow");
                }
                if (b.state == svc::BreakerState::State::Closed &&
                    b.consecutiveFailures >=
                        rc.breaker.consecutiveFailures) {
                    out.push_back("breaker: " + s.name() + "#" +
                                  std::to_string(r) +
                                  " Closed at/above trip threshold");
                }
            }
        }
        if (rc.outlier.enabled) {
            const unsigned cap =
                static_cast<unsigned>(rc.outlier.maxEjectFraction *
                                      s.activeReplicaCount());
            if (s.ejectedReplicaCount() > cap) {
                out.push_back("ejection: " + s.name() + " has " +
                              std::to_string(s.ejectedReplicaCount()) +
                              " ejected replica(s), bound " +
                              std::to_string(cap));
            }
        }
    }

    if (const auto &store = mesh.traceStore()) {
        std::uint64_t bad = 0;
        for (const auto &t : store->traces()) {
            for (const trace::Span &span : t->spans()) {
                if (span.parent == trace::kNoSpan)
                    continue;
                const trace::Span &parent = t->span(span.parent);
                if (span.deadline != kTickNever &&
                    parent.deadline != kTickNever &&
                    span.deadline > parent.deadline) {
                    ++bad;
                }
            }
        }
        if (bad > 0) {
            out.push_back("deadline: " + std::to_string(bad) +
                          " span(s) with deadline beyond their parent's");
        }
    }
}

std::uint64_t
fnv1a(const std::string &bytes, std::uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
verdictLine(const ChaosVerdict &v)
{
    std::string s = "issued=" + std::to_string(v.issued) +
                    " terminals=" + std::to_string(v.terminals);
    for (unsigned i = 0; i < svc::kNumStatuses; ++i) {
        if (v.byStatus[i] == 0)
            continue;
        s += std::string(" ") +
             svc::statusName(static_cast<svc::Status>(i)) + "=" +
             std::to_string(v.byStatus[i]);
    }
    s += " applied=" + std::to_string(v.faultsApplied);
    if (v.faultsSkipped > 0)
        s += " skipped=" + std::to_string(v.faultsSkipped);
    if (v.ackedWrites > 0) {
        s += " ackedWrites=" + std::to_string(v.ackedWrites) +
             " lostAcked=" + std::to_string(v.lostAckedWrites) +
             " staleReads=" + std::to_string(v.staleQuorumReads);
    }
    return s;
}

} // namespace

FaultSpace
harnessFaultSpace(bool clusterHarness)
{
    // Derive replica counts from the actual placement plan so the
    // space can never drift from what the harness builds. In cluster
    // mode the plan is built per node (runScaleout concatenates the
    // per-node plans node-major), so replica counts scale by the node
    // count and the node/fabric families are armed.
    ChaosRunOptions space_opts;
    space_opts.cluster = clusterHarness;
    const core::ExperimentConfig c = harnessConfig(space_opts);

    unsigned replica_scale = 1;
    unsigned cluster_nodes = 0;
    topo::MachineParams machine_params = c.machine;
    CpuMask plan_budget;
    if (clusterHarness) {
        const cluster::ClusterParams cp = clusterHarnessParams();
        machine_params = cluster::clusterMachine(cp);
        const topo::Machine super(machine_params);
        for (unsigned s = 0; s < cp.nodeMachine.sockets; ++s)
            plan_budget = plan_budget | super.cpusOfSocket(s);
        replica_scale = cp.nodes;
        cluster_nodes = cp.nodes;
    }
    const topo::Machine machine(machine_params);
    if (!clusterHarness)
        plan_budget = core::budgetMask(machine, c.cores, c.smt);
    const core::PlacementPlan plan = core::buildPlacement(
        c.placement, machine, plan_budget, c.demand, c.sizing);

    FaultSpace space;
    for (const char *name :
         {teastore::names::kWebui, teastore::names::kAuth,
          teastore::names::kPersistence, teastore::names::kRecommender,
          teastore::names::kImage}) {
        const auto it = plan.services.find(name);
        if (it == plan.services.end())
            fatal("harnessFaultSpace: plan lacks service '", name, "'");
        space.services.push_back(
            {name, it->second.replicas * replica_scale});
    }
    space.clusterNodes = cluster_nodes;
    if (clusterHarness) {
        const cluster::ClusterParams cp = clusterHarnessParams();
        if (cp.replication.factor > 1) {
            // Arm the data-tier families against the initial shards
            // (shard j lands on node j % initialNodes, matching
            // buildDataTier's round-robin placement).
            const unsigned initial = cp.initialNodes == 0
                                         ? cp.nodes
                                         : cp.initialNodes;
            space.dataShards = cp.shards;
            for (unsigned j = 0; j < cp.shards; ++j)
                space.dataShardNodes.push_back(j % initial);
        }
    }
    // Only edges whose client applies a timeout (see FaultSpace docs).
    space.links = {
        {svc::kExternalClient, teastore::names::kWebui},
        {teastore::names::kWebui, teastore::names::kAuth},
        {teastore::names::kWebui, teastore::names::kPersistence},
        {teastore::names::kWebui, teastore::names::kRecommender},
        {teastore::names::kWebui, teastore::names::kImage},
        {teastore::names::kAuth, teastore::names::kPersistence},
    };
    space.ccxDomains = machine.numCcxs();
    return space;
}

void
harnessWindow(Tick &start, Tick &end)
{
    start = kWarmup / 2;
    end = kWarmup + kMeasure;
}

ChaosVerdict
runSchedule(const svc::FaultScript &script, const ChaosRunOptions &opts)
{
    ChaosVerdict verdict;
    RequestLedger ledger;
    if (opts.injectBug)
        ledger.setDropStatus(svc::Status::Timeout);

    core::ExperimentConfig config = harnessConfig(opts);
    config.faults = script;
    config.ledger = &ledger;
    config.drainAtEnd = true;
    config.postDrain = [&verdict](sim::Simulation &sim, svc::Mesh &mesh,
                                  teastore::App &) {
        checkWorldInvariants(sim, mesh, verdict.violations);
    };

    const core::RunResult result =
        opts.cluster
            ? cluster::runScaleout(config, clusterHarnessParams())
            : core::runExperiment(config);

    ledger.verify(verdict.violations);
    // The replication invariants (no lost acked write, no stale quorum
    // read); trivially clean for runs without quorum writes.
    ledger.verifyReplication(verdict.violations);
    verdict.issued = ledger.issued();
    verdict.terminals = ledger.terminals();
    for (unsigned i = 0; i < svc::kNumStatuses; ++i)
        verdict.byStatus[i] =
            ledger.terminals(static_cast<svc::Status>(i));
    verdict.faultsApplied = result.grayfail.faultsApplied;
    verdict.faultsSkipped = result.grayfail.faultsSkipped;
    verdict.ackedWrites = ledger.ackedWriteCount();
    verdict.lostAckedWrites = ledger.lostAckedWrites();
    verdict.staleQuorumReads = ledger.staleQuorumReads();
    return verdict;
}

std::uint64_t
fingerprint(const svc::FaultScript &script, const ChaosVerdict &verdict)
{
    std::uint64_t h = fnv1a(describeFaultScript(script));
    h = fnv1a(verdictLine(verdict), h);
    for (const std::string &v : verdict.violations)
        h = fnv1a(v, h);
    return h;
}

svc::FaultScript
shrinkSchedule(const svc::FaultScript &script,
               const ChaosRunOptions &opts, unsigned *runsOut)
{
    unsigned runs = 0;
    auto violates = [&](const std::vector<svc::FaultEvent> &events) {
        svc::FaultScript s;
        s.events = events;
        ++runs;
        return !runSchedule(s, opts).clean();
    };

    std::vector<svc::FaultEvent> cur = script.events;
    if (cur.empty() || !violates(cur)) {
        if (runsOut)
            *runsOut = runs;
        return script;
    }

    // Classic ddmin over complements: split into n chunks and keep any
    // complement that still violates, refining granularity when stuck.
    std::size_t n = 2;
    while (cur.size() >= 2) {
        const std::size_t chunk = (cur.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t lo = i * chunk;
            if (lo >= cur.size())
                break;
            const std::size_t hi = std::min(cur.size(), lo + chunk);
            std::vector<svc::FaultEvent> complement;
            complement.reserve(cur.size() - (hi - lo));
            complement.insert(complement.end(), cur.begin(),
                              cur.begin() + lo);
            complement.insert(complement.end(), cur.begin() + hi,
                              cur.end());
            if (complement.empty())
                continue;
            if (violates(complement)) {
                cur = std::move(complement);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= cur.size())
                break;
            n = std::min(cur.size(), 2 * n);
        }
    }

    // Finish with a one-minimal pass: no single event is removable.
    bool changed = true;
    while (changed && cur.size() > 1) {
        changed = false;
        for (std::size_t i = 0; i < cur.size(); ++i) {
            std::vector<svc::FaultEvent> without = cur;
            without.erase(without.begin() +
                          static_cast<std::ptrdiff_t>(i));
            if (violates(without)) {
                cur = std::move(without);
                changed = true;
                break;
            }
        }
    }

    if (runsOut)
        *runsOut = runs;
    svc::FaultScript out;
    out.events = std::move(cur);
    return out;
}

SearchResult
runSearch(const SearchOptions &opts, std::ostream &os)
{
    SearchResult result;
    const FaultSpace space = harnessFaultSpace(opts.run.cluster);
    Tick window_start = 0;
    Tick window_end = 0;
    harnessWindow(window_start, window_end);

    std::uint64_t combined = 1469598103934665603ull;
    for (unsigned i = 0; i < opts.schedules; ++i) {
        const std::uint64_t schedule_seed = opts.seed + i;
        const svc::FaultScript script = randomSchedule(
            schedule_seed, space, opts.maxEvents, window_start,
            window_end);
        const ChaosVerdict verdict = runSchedule(script, opts.run);
        const std::uint64_t fp = fingerprint(script, verdict);
        combined = fnv1a(std::to_string(fp), combined);
        ++result.ran;

        os << "schedule seed=" << schedule_seed
           << " events=" << script.events.size() << " "
           << verdictLine(verdict) << " fp=" << std::hex << fp
           << std::dec
           << (verdict.clean() ? " CLEAN" : " VIOLATION") << "\n";
        if (!verdict.clean()) {
            ++result.violating;
            for (const std::string &v : verdict.violations)
                os << "  violation: " << v << "\n";
            os << describeFaultScript(script);
            if (opts.run.injectBug) {
                unsigned shrink_runs = 0;
                const svc::FaultScript minimal =
                    shrinkSchedule(script, opts.run, &shrink_runs);
                result.shrunkEvents =
                    static_cast<unsigned>(minimal.events.size());
                os << "minimal repro (" << minimal.events.size()
                   << " event(s), " << shrink_runs
                   << " shrink run(s)):\n"
                   << describeFaultScript(minimal);
                break;
            }
        }
    }
    result.combinedFingerprint = combined;
    os << "chaos search: " << result.ran << " schedule(s), "
       << result.violating << " violating, fingerprint=" << std::hex
       << result.combinedFingerprint << std::dec << "\n";
    return result;
}

} // namespace microscale::chaos
