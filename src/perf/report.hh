/**
 * @file
 * Derived performance-report rows: turns raw PerfCounters deltas into
 * the microarchitectural metrics the paper tabulates (IPC, MPKIs,
 * context-switch rates, kernel share, utilization).
 */

#ifndef MICROSCALE_PERF_REPORT_HH
#define MICROSCALE_PERF_REPORT_HH

#include <string>
#include <vector>

#include "base/table.hh"
#include "base/types.hh"
#include "cpu/counters.hh"

namespace microscale::perf
{

/** One subject's (service, kernel, ...) metrics over a window. */
struct PerfRow
{
    std::string name;
    /** Average CPUs' worth of busy time (busyNs / windowNs). */
    double utilizationCpus = 0.0;
    double ipc = 0.0;
    double ghz = 0.0;
    double l3Mpki = 0.0;
    double l3MissRatio = 0.0;
    double branchMpki = 0.0;
    double icacheMpki = 0.0;
    double kernelShare = 0.0;
    double smtShare = 0.0;
    double csPerSec = 0.0;
    double migrationsPerSec = 0.0;
    double ccxMigrationsPerSec = 0.0;
    /** Million instructions per second of wall time. */
    double mips = 0.0;
};

/** Build a row from a counter delta over a window of `window_ns`. */
PerfRow makeRow(std::string name, const cpu::PerfCounters &delta,
                Tick window_ns);

/** Standard microarchitecture table over a set of rows. */
TextTable microarchTable(const std::vector<PerfRow> &rows);

/** Utilization-focused table (CPUs, CS/s, migrations). */
TextTable activityTable(const std::vector<PerfRow> &rows);

} // namespace microscale::perf

#endif // MICROSCALE_PERF_REPORT_HH
