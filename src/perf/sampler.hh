/**
 * @file
 * TimeSeriesSampler: periodic snapshots of machine and application
 * state (utilization, frequency, run-queue depth, service queue
 * depth, instantaneous throughput) for stability analysis and
 * timeline plots.
 */

#ifndef MICROSCALE_PERF_SAMPLER_HH
#define MICROSCALE_PERF_SAMPLER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "base/types.hh"
#include "cpu/exec.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"

namespace microscale::perf
{

/** One snapshot. */
struct Sample
{
    Tick at = 0;
    /** CPUs' worth of busy time during the last interval. */
    double busyCpus = 0.0;
    /** Socket-0 frequency at sampling time, GHz. */
    double freqGhz = 0.0;
    /** Runnable-but-queued threads across all run queues. */
    std::uint64_t runnableQueued = 0;
    /** Requests waiting in service queues across all services. */
    std::uint64_t serviceQueued = 0;
    /** Busy workers across all services. */
    std::uint64_t busyWorkers = 0;
    /** Requests completed by all services in the last interval. */
    std::uint64_t completedDelta = 0;
};

/**
 * Samples every `period` once started; stop() or destruction ends the
 * series. Sampling is a background activity: it never keeps the
 * simulation alive.
 */
class TimeSeriesSampler
{
  public:
    TimeSeriesSampler(sim::Simulation &sim, cpu::ExecEngine &engine,
                      os::Kernel &kernel, svc::Mesh &mesh, Tick period);

    /** Begin sampling (first sample after one period). */
    void start();

    /** Stop sampling. */
    void stop() { periodic_.stop(); }

    const std::vector<Sample> &samples() const { return samples_; }
    Tick period() const { return period_; }

    /** Mean busy CPUs over the recorded samples. */
    double meanBusyCpus() const;

    /** Emit the series as CSV with a header row. */
    void printCsv(std::ostream &os) const;

  private:
    void takeSample();

    sim::Simulation &sim_;
    cpu::ExecEngine &engine_;
    os::Kernel &kernel_;
    svc::Mesh &mesh_;
    Tick period_;
    sim::PeriodicEvent periodic_;
    std::vector<Sample> samples_;
    double last_busy_total_ = 0.0;
    std::uint64_t last_completed_ = 0;
};

} // namespace microscale::perf

#endif // MICROSCALE_PERF_SAMPLER_HH
