#include "perf/synth.hh"

#include "base/logging.hh"
#include "os/kernel.hh"
#include "sim/simulation.hh"
#include "topo/machine.hh"

namespace microscale::perf
{

std::vector<SynthKernel>
specLikeSuite()
{
    std::vector<SynthKernel> suite;

    {
        SynthKernel k;
        k.name = "int-compute";
        k.profile.name = "int-compute";
        k.profile.ipcBase = 2.4;
        k.profile.branchMpki = 1.2;
        k.profile.icacheMpki = 0.2;
        k.profile.l3Apki = 0.3;
        k.profile.wssBytes = 0.8 * 1024 * 1024;
        k.profile.smtYield = 0.55;
        k.profile.kernelShare = 0.01;
        suite.push_back(k);
    }
    {
        SynthKernel k;
        k.name = "fp-compute";
        k.profile.name = "fp-compute";
        k.profile.ipcBase = 2.0;
        k.profile.branchMpki = 0.4;
        k.profile.icacheMpki = 0.1;
        k.profile.l3Apki = 1.5;
        k.profile.wssBytes = 4.0 * 1024 * 1024;
        k.profile.smtYield = 0.55;
        k.profile.kernelShare = 0.01;
        suite.push_back(k);
    }
    {
        SynthKernel k;
        k.name = "pointer-chase";
        k.profile.name = "pointer-chase";
        k.profile.ipcBase = 1.0;
        k.profile.branchMpki = 4.0;
        k.profile.icacheMpki = 0.3;
        k.profile.l3Apki = 18.0;
        k.profile.wssBytes = 48.0 * 1024 * 1024;
        k.profile.smtYield = 0.78;
        k.profile.kernelShare = 0.01;
        suite.push_back(k);
    }
    {
        SynthKernel k;
        k.name = "stream";
        k.profile.name = "stream";
        k.profile.ipcBase = 1.6;
        k.profile.branchMpki = 0.3;
        k.profile.icacheMpki = 0.1;
        k.profile.l3Apki = 25.0;
        k.profile.wssBytes = 96.0 * 1024 * 1024;
        k.profile.smtYield = 0.80;
        k.profile.kernelShare = 0.01;
        suite.push_back(k);
    }
    {
        SynthKernel k;
        k.name = "branchy-search";
        k.profile.name = "branchy-search";
        k.profile.ipcBase = 1.4;
        k.profile.branchMpki = 9.0;
        k.profile.icacheMpki = 0.8;
        k.profile.l3Apki = 5.0;
        k.profile.wssBytes = 12.0 * 1024 * 1024;
        k.profile.smtYield = 0.62;
        k.profile.kernelShare = 0.01;
        suite.push_back(k);
    }
    return suite;
}

PerfRow
runSynthKernel(const topo::MachineParams &machine_params,
               const SynthKernel &kernel, const SynthRunParams &params)
{
    if (params.threads == 0)
        fatal("synthetic run needs at least one thread");

    sim::Simulation sim;
    topo::Machine machine(machine_params);
    cpu::ExecEngine engine(sim, machine);
    os::SchedParams sched;
    sched.loadBalance = false; // pinned rate run
    os::Kernel kernel_os(sim, machine, engine, sched, params.seed);

    if (params.threads > machine.numCores()) {
        fatal("synthetic run wants ", params.threads,
              " threads but the machine has ", machine.numCores(),
              " cores");
    }

    // Pin one copy per physical core, SPEC-rate style; keep each
    // thread perpetually runnable by resubmitting large work chunks.
    struct Loop
    {
        os::Thread *thread;
        const cpu::WorkProfile *profile;
        double chunk;
        void
        go()
        {
            thread->run(*profile, chunk, [this] { go(); });
        }
    };
    std::vector<Loop> loops(params.threads);
    for (unsigned i = 0; i < params.threads; ++i) {
        os::Thread *t = kernel_os.createThread(
            kernel.name + "." + std::to_string(i),
            CpuMask::single(static_cast<CpuId>(i)),
            machine.nodeOf(static_cast<CpuId>(i)));
        loops[i] = Loop{t, &kernel.profile, 500e6};
    }
    kernel_os.start();
    for (auto &l : loops)
        l.go();

    sim.runUntil(params.warmup);
    engine.bankAll();
    cpu::PerfCounters at_warmup;
    for (const auto &l : loops)
        at_warmup.merge(l.thread->ec().counters());

    sim.runUntil(params.warmup + params.measure);
    engine.bankAll();
    cpu::PerfCounters at_end;
    for (const auto &l : loops)
        at_end.merge(l.thread->ec().counters());

    kernel_os.stop();
    // Per-thread metrics: divide the aggregate over thread count so the
    // row reads like a single-copy measurement.
    cpu::PerfCounters delta = at_end.delta(at_warmup);
    PerfRow row = makeRow(kernel.name, delta, params.measure);
    row.utilizationCpus /= params.threads;
    return row;
}

} // namespace microscale::perf
