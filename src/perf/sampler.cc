#include "perf/sampler.hh"

#include "base/logging.hh"

namespace microscale::perf
{

TimeSeriesSampler::TimeSeriesSampler(sim::Simulation &sim,
                                     cpu::ExecEngine &engine,
                                     os::Kernel &kernel, svc::Mesh &mesh,
                                     Tick period)
    : sim_(sim),
      engine_(engine),
      kernel_(kernel),
      mesh_(mesh),
      period_(period)
{
    if (period_ == 0)
        fatal("sampler period must be positive");
}

void
TimeSeriesSampler::start()
{
    // Establish the baseline for interval deltas.
    engine_.bankAll();
    last_busy_total_ = 0.0;
    for (CpuId c = 0; c < engine_.machine().numCpus(); ++c)
        last_busy_total_ += engine_.cpuBusyNs(c);
    last_completed_ = 0;
    for (const auto &svc : mesh_.services())
        last_completed_ += svc->requestsProcessed();
    periodic_.start(sim_, period_, [this] { takeSample(); });
}

void
TimeSeriesSampler::takeSample()
{
    engine_.bankAll();
    Sample s;
    s.at = sim_.now();

    double busy_total = 0.0;
    for (CpuId c = 0; c < engine_.machine().numCpus(); ++c)
        busy_total += engine_.cpuBusyNs(c);
    s.busyCpus =
        (busy_total - last_busy_total_) / static_cast<double>(period_);
    last_busy_total_ = busy_total;

    s.freqGhz = engine_.socketFreqGhz(0);

    for (CpuId c = 0; c < engine_.machine().numCpus(); ++c)
        s.runnableQueued += kernel_.queueDepth(c);

    std::uint64_t completed = 0;
    for (const auto &svc : mesh_.services()) {
        completed += svc->requestsProcessed();
        s.busyWorkers += svc->busyWorkers();
        s.serviceQueued += svc->queuedRequests();
    }

    s.completedDelta = completed - last_completed_;
    last_completed_ = completed;

    samples_.push_back(s);
}

double
TimeSeriesSampler::meanBusyCpus() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const Sample &s : samples_)
        sum += s.busyCpus;
    return sum / static_cast<double>(samples_.size());
}

void
TimeSeriesSampler::printCsv(std::ostream &os) const
{
    os << "time_ms,busy_cpus,freq_ghz,runnable_queued,service_queued,"
          "busy_workers,completed\n";
    for (const Sample &s : samples_) {
        os << ticksToMillis(s.at) << "," << s.busyCpus << "," << s.freqGhz
           << "," << s.runnableQueued << "," << s.serviceQueued << ","
           << s.busyWorkers << "," << s.completedDelta << "\n";
    }
}

} // namespace microscale::perf
