/**
 * @file
 * SPEC-CPU-like synthetic kernels: always-runnable compute loops with
 * conventional-workload microarchitectural profiles. Used for the
 * paper's contrast between microservices and the workloads that
 * typically drive server-CPU design.
 */

#ifndef MICROSCALE_PERF_SYNTH_HH
#define MICROSCALE_PERF_SYNTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "cpu/counters.hh"
#include "cpu/work.hh"
#include "perf/report.hh"
#include "topo/params.hh"

namespace microscale::perf
{

/** One synthetic kernel. */
struct SynthKernel
{
    std::string name;
    cpu::WorkProfile profile;
};

/**
 * A small SPEC-CPU-flavoured suite: integer compute, floating-point
 * compute, pointer-chasing, streaming, and branchy search kernels.
 */
std::vector<SynthKernel> specLikeSuite();

/** Options for a synthetic run. */
struct SynthRunParams
{
    /** Copies of the kernel, pinned one per core (rate-run style). */
    unsigned threads = 16;
    Tick warmup = 50 * kMillisecond;
    Tick measure = 200 * kMillisecond;
    std::uint64_t seed = 7;
};

/**
 * Run `kernel` on a fresh machine instance and return its metrics.
 * Threads are pinned one per physical core in id order, as SPEC rate
 * runs are.
 */
PerfRow runSynthKernel(const topo::MachineParams &machine_params,
                       const SynthKernel &kernel,
                       const SynthRunParams &params);

} // namespace microscale::perf

#endif // MICROSCALE_PERF_SYNTH_HH
