#include "perf/report.hh"

#include "base/logging.hh"

namespace microscale::perf
{

PerfRow
makeRow(std::string name, const cpu::PerfCounters &delta, Tick window_ns)
{
    if (window_ns == 0)
        MS_PANIC("makeRow with zero window");
    PerfRow r;
    r.name = std::move(name);
    const double w = static_cast<double>(window_ns);
    const double w_s = ticksToSeconds(window_ns);
    r.utilizationCpus = delta.busyNs / w;
    r.ipc = delta.ipc();
    r.ghz = delta.ghz();
    r.l3Mpki = delta.l3Mpki();
    r.l3MissRatio = delta.l3MissRatio();
    r.branchMpki = delta.branchMpki();
    r.icacheMpki = delta.icacheMpki();
    r.kernelShare = delta.kernelShare();
    r.smtShare = delta.smtShare();
    r.csPerSec = static_cast<double>(delta.contextSwitches) / w_s;
    r.migrationsPerSec = static_cast<double>(delta.migrations) / w_s;
    r.ccxMigrationsPerSec =
        static_cast<double>(delta.ccxMigrations) / w_s;
    r.mips = delta.instructions / 1e6 / w_s;
    return r;
}

TextTable
microarchTable(const std::vector<PerfRow> &rows)
{
    TextTable t({"workload", "IPC", "GHz", "L3 MPKI", "L3 miss%",
                 "br MPKI", "ic MPKI", "kernel%", "SMT%", "CS/s"});
    for (const auto &r : rows) {
        t.row()
            .cell(r.name)
            .cell(r.ipc, 2)
            .cell(r.ghz, 2)
            .cell(r.l3Mpki, 2)
            .cell(r.l3MissRatio * 100.0, 1)
            .cell(r.branchMpki, 1)
            .cell(r.icacheMpki, 1)
            .cell(r.kernelShare * 100.0, 1)
            .cell(r.smtShare * 100.0, 1)
            .cell(r.csPerSec, 0);
    }
    return t;
}

TextTable
activityTable(const std::vector<PerfRow> &rows)
{
    TextTable t({"workload", "CPUs busy", "MIPS", "CS/s", "migr/s",
                 "ccx-migr/s"});
    for (const auto &r : rows) {
        t.row()
            .cell(r.name)
            .cell(r.utilizationCpus, 2)
            .cell(r.mips, 0)
            .cell(r.csPerSec, 0)
            .cell(r.migrationsPerSec, 0)
            .cell(r.ccxMigrationsPerSec, 0);
    }
    return t;
}

} // namespace microscale::perf
