/**
 * @file
 * Relational schema of the store backing the Persistence service,
 * mirroring TeaStore's entities: categories, products, users, orders
 * and order items.
 */

#ifndef MICROSCALE_DB_SCHEMA_HH
#define MICROSCALE_DB_SCHEMA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace microscale::db
{

using CategoryId = std::uint32_t;
using ProductId = std::uint32_t;
using UserId = std::uint32_t;
using OrderId = std::uint64_t;

struct Category
{
    CategoryId id = 0;
    std::string name;
};

struct Product
{
    ProductId id = 0;
    CategoryId category = 0;
    std::string name;
    /** List price in cents. */
    std::uint32_t priceCents = 0;
    /** Size of the associated full-resolution image in bytes. */
    std::uint32_t imageBytes = 0;
};

struct User
{
    UserId id = 0;
    std::string name;
    /** Stored password hash (model value, not a real hash). */
    std::uint64_t passwordHash = 0;
};

struct OrderItem
{
    ProductId product = 0;
    std::uint16_t quantity = 0;
    std::uint32_t unitPriceCents = 0;
};

struct Order
{
    OrderId id = 0;
    UserId user = 0;
    std::uint64_t placedAtTick = 0;
    std::vector<OrderItem> items;
    std::uint64_t totalCents = 0;
};

} // namespace microscale::db

#endif // MICROSCALE_DB_SCHEMA_HH
