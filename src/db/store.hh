/**
 * @file
 * Store: the in-memory relational database behind the Persistence
 * service (standing in for TeaStore's MariaDB).
 *
 * Queries execute against real ordered indexes and report a QueryCost
 * (rows touched, index descents) from which the Persistence service
 * derives the CPU work to charge; the data volume therefore shapes the
 * service's compute demand the same way the SQL layer does in the
 * original application.
 */

#ifndef MICROSCALE_DB_STORE_HH
#define MICROSCALE_DB_STORE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/random.hh"
#include "db/schema.hh"

namespace microscale::db
{

/** Size of the seeded catalog. */
struct StoreParams
{
    unsigned categories = 15;
    unsigned productsPerCategory = 100;
    unsigned users = 500;
    /** Mean product image size (drives image-service work). */
    std::uint32_t meanImageBytes = 160 * 1024;
};

/** Execution cost of one query, in logical database operations. */
struct QueryCost
{
    std::uint64_t rowsTouched = 0;
    std::uint64_t indexDescents = 0;

    void merge(const QueryCost &o)
    {
        rowsTouched += o.rowsTouched;
        indexDescents += o.indexDescents;
    }
};

/**
 * The in-memory store. All reads are const; order placement mutates.
 */
class Store
{
  public:
    Store(StoreParams params, std::uint64_t seed);

    const StoreParams &params() const { return params_; }

    /** Number of products across all categories. */
    std::size_t productCount() const { return products_.size(); }
    std::size_t categoryCount() const { return categories_.size(); }
    std::size_t userCount() const { return users_.size(); }
    std::size_t orderCount() const { return orders_.size(); }

    /** All categories (catalog front page). */
    std::vector<CategoryId> listCategories(QueryCost &cost) const;

    /**
     * Page of products in one category.
     * @param offset first product index within the category.
     * @param limit page size.
     */
    std::vector<ProductId> productsInCategory(CategoryId cat,
                                              unsigned offset,
                                              unsigned limit,
                                              QueryCost &cost) const;

    /** Single product lookup; nullptr when absent. */
    const Product *product(ProductId id, QueryCost &cost) const;

    /** Single category lookup; nullptr when absent. */
    const Category *category(CategoryId id, QueryCost &cost) const;

    /** Look a user up by name; nullptr when absent. */
    const User *userByName(const std::string &name, QueryCost &cost) const;

    /** User lookup by id. */
    const User *user(UserId id, QueryCost &cost) const;

    /** Recent orders of a user, newest first, up to `limit`. */
    std::vector<OrderId> ordersOfUser(UserId user, unsigned limit,
                                      QueryCost &cost) const;

    /** Order lookup by id. */
    const Order *order(OrderId id, QueryCost &cost) const;

    /** Insert a new order; returns its id. */
    OrderId placeOrder(UserId user, const std::vector<OrderItem> &items,
                       std::uint64_t tick, QueryCost &cost);

    /** A deterministic pseudo-random valid product id. */
    ProductId sampleProduct(Rng &rng) const;
    /** A deterministic pseudo-random valid category id. */
    CategoryId sampleCategory(Rng &rng) const;
    /** A deterministic pseudo-random valid user id. */
    UserId sampleUser(Rng &rng) const;

    /** Password hash that authenticates the given user (for tests). */
    std::uint64_t passwordHashOf(UserId id) const;

  private:
    StoreParams params_;
    std::map<CategoryId, Category> categories_;
    std::map<ProductId, Product> products_;
    // Secondary index: category -> ordered product ids.
    std::map<CategoryId, std::vector<ProductId>> products_by_category_;
    std::map<UserId, User> users_;
    std::map<std::string, UserId> users_by_name_;
    std::map<OrderId, Order> orders_;
    std::map<UserId, std::vector<OrderId>> orders_by_user_;
    OrderId next_order_ = 1;
};

} // namespace microscale::db

#endif // MICROSCALE_DB_STORE_HH
