#include "db/store.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace microscale::db
{

namespace
{

/** log2-ish index descent cost for a map of the given size. */
std::uint64_t
descentCost(std::size_t size)
{
    std::uint64_t c = 1;
    while (size > 1) {
        size >>= 1;
        ++c;
    }
    return c;
}

} // namespace

Store::Store(StoreParams params, std::uint64_t seed) : params_(params)
{
    if (params_.categories == 0 || params_.productsPerCategory == 0)
        fatal("store needs at least one category and product");
    if (params_.users == 0)
        fatal("store needs at least one user");

    Rng rng(seed, "db.seed");

    ProductId next_product = 1;
    for (CategoryId c = 1; c <= params_.categories; ++c) {
        Category cat;
        cat.id = c;
        cat.name = "category-" + std::to_string(c);
        categories_.emplace(c, std::move(cat));

        auto &index = products_by_category_[c];
        for (unsigned i = 0; i < params_.productsPerCategory; ++i) {
            Product p;
            p.id = next_product++;
            p.category = c;
            p.name = "product-" + std::to_string(p.id);
            p.priceCents =
                static_cast<std::uint32_t>(rng.uniformInt(199, 9999));
            const double img =
                rng.lognormal(params_.meanImageBytes, 0.5);
            p.imageBytes = static_cast<std::uint32_t>(
                std::clamp(img, 8.0 * 1024, 2.0 * 1024 * 1024));
            index.push_back(p.id);
            products_.emplace(p.id, std::move(p));
        }
    }

    for (UserId u = 1; u <= params_.users; ++u) {
        User usr;
        usr.id = u;
        usr.name = "user-" + std::to_string(u);
        usr.passwordHash = rng.uniformInt(1, ~std::uint64_t(0) - 1);
        users_by_name_.emplace(usr.name, u);
        users_.emplace(u, std::move(usr));
    }
}

std::vector<CategoryId>
Store::listCategories(QueryCost &cost) const
{
    cost.indexDescents += 1;
    cost.rowsTouched += categories_.size();
    std::vector<CategoryId> out;
    out.reserve(categories_.size());
    for (const auto &[id, cat] : categories_)
        out.push_back(id);
    return out;
}

std::vector<ProductId>
Store::productsInCategory(CategoryId cat, unsigned offset, unsigned limit,
                          QueryCost &cost) const
{
    cost.indexDescents += descentCost(products_by_category_.size());
    auto it = products_by_category_.find(cat);
    if (it == products_by_category_.end())
        return {};
    const auto &ids = it->second;
    std::vector<ProductId> out;
    // An OFFSET/LIMIT scan touches offset + page rows, like SQL does.
    const std::size_t end =
        std::min<std::size_t>(ids.size(),
                              static_cast<std::size_t>(offset) + limit);
    cost.rowsTouched += end;
    for (std::size_t i = offset; i < end; ++i)
        out.push_back(ids[i]);
    return out;
}

const Product *
Store::product(ProductId id, QueryCost &cost) const
{
    cost.indexDescents += descentCost(products_.size());
    auto it = products_.find(id);
    if (it == products_.end())
        return nullptr;
    cost.rowsTouched += 1;
    return &it->second;
}

const Category *
Store::category(CategoryId id, QueryCost &cost) const
{
    cost.indexDescents += descentCost(categories_.size());
    auto it = categories_.find(id);
    if (it == categories_.end())
        return nullptr;
    cost.rowsTouched += 1;
    return &it->second;
}

const User *
Store::userByName(const std::string &name, QueryCost &cost) const
{
    cost.indexDescents += descentCost(users_by_name_.size());
    auto it = users_by_name_.find(name);
    if (it == users_by_name_.end())
        return nullptr;
    return user(it->second, cost);
}

const User *
Store::user(UserId id, QueryCost &cost) const
{
    cost.indexDescents += descentCost(users_.size());
    auto it = users_.find(id);
    if (it == users_.end())
        return nullptr;
    cost.rowsTouched += 1;
    return &it->second;
}

std::vector<OrderId>
Store::ordersOfUser(UserId user, unsigned limit, QueryCost &cost) const
{
    cost.indexDescents += descentCost(orders_by_user_.size());
    auto it = orders_by_user_.find(user);
    if (it == orders_by_user_.end())
        return {};
    const auto &ids = it->second;
    std::vector<OrderId> out;
    const std::size_t n = std::min<std::size_t>(ids.size(), limit);
    cost.rowsTouched += n;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ids[ids.size() - 1 - i]);
    return out;
}

const Order *
Store::order(OrderId id, QueryCost &cost) const
{
    cost.indexDescents += descentCost(orders_.size());
    auto it = orders_.find(id);
    if (it == orders_.end())
        return nullptr;
    cost.rowsTouched += 1;
    return &it->second;
}

OrderId
Store::placeOrder(UserId user, const std::vector<OrderItem> &items,
                  std::uint64_t tick, QueryCost &cost)
{
    if (items.empty())
        MS_PANIC("placeOrder with no items");
    Order o;
    o.id = next_order_++;
    o.user = user;
    o.placedAtTick = tick;
    o.items = items;
    for (const auto &item : items) {
        o.totalCents +=
            static_cast<std::uint64_t>(item.quantity) * item.unitPriceCents;
    }
    // Insert into the order table plus the per-user secondary index;
    // each item row is written as well.
    cost.indexDescents +=
        descentCost(orders_.size()) + descentCost(orders_by_user_.size());
    cost.rowsTouched += 1 + items.size();
    orders_by_user_[user].push_back(o.id);
    const OrderId id = o.id;
    orders_.emplace(id, std::move(o));
    return id;
}

ProductId
Store::sampleProduct(Rng &rng) const
{
    return static_cast<ProductId>(rng.uniformInt(1, products_.size()));
}

CategoryId
Store::sampleCategory(Rng &rng) const
{
    return static_cast<CategoryId>(rng.uniformInt(1, categories_.size()));
}

UserId
Store::sampleUser(Rng &rng) const
{
    return static_cast<UserId>(rng.uniformInt(1, users_.size()));
}

std::uint64_t
Store::passwordHashOf(UserId id) const
{
    auto it = users_.find(id);
    if (it == users_.end())
        MS_PANIC("passwordHashOf: unknown user ", id);
    return it->second.passwordHash;
}

} // namespace microscale::db
