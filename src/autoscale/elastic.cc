#include "autoscale/elastic.hh"

#include <map>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "cpu/exec.hh"
#include "sim/simulation.hh"

namespace microscale::autoscale
{

namespace
{

core::OpLatency
summarizeHistogram(const QuantileHistogram &h)
{
    core::OpLatency l;
    l.count = h.count();
    l.meanMs = h.mean() / static_cast<double>(kMillisecond);
    l.p50Ms = h.p50() / static_cast<double>(kMillisecond);
    l.p95Ms = h.p95() / static_cast<double>(kMillisecond);
    l.p99Ms = h.p99() / static_cast<double>(kMillisecond);
    return l;
}

os::SchedStats
schedDelta(const os::SchedStats &end, const os::SchedStats &start)
{
    os::SchedStats d;
    d.wakeups = end.wakeups - start.wakeups;
    d.contextSwitches = end.contextSwitches - start.contextSwitches;
    d.preemptions = end.preemptions - start.preemptions;
    d.migrations = end.migrations - start.migrations;
    d.ccxMigrations = end.ccxMigrations - start.ccxMigrations;
    d.balancePulls = end.balancePulls - start.balancePulls;
    d.newIdlePulls = end.newIdlePulls - start.newIdlePulls;
    return d;
}

} // namespace

loadgen::LoadSchedule
makeSchedule(const std::string &name, double baseRps, double peakRps,
             Tick warmup, Tick measure)
{
    if (name == "constant")
        return loadgen::LoadSchedule::constant(baseRps);
    if (name == "spike") {
        return loadgen::LoadSchedule::spike(
            baseRps, peakRps, warmup + measure / 3, measure / 12,
            measure / 6, measure / 24);
    }
    if (name == "diurnal") {
        return loadgen::LoadSchedule::diurnal(
            baseRps, peakRps - baseRps, measure / 2,
            warmup + 2 * measure);
    }
    fatal("unknown load schedule '", name,
          "' (try constant, spike, diurnal)");
}

core::RunResult
runElastic(const ElasticConfig &config, AutoscalerTelemetry *telemetryOut)
{
    if (config.schedule.empty())
        fatal("runElastic needs a non-empty load schedule");
    const core::ExperimentConfig &base = config.base;

    // World composition mirrors core::runExperiment.
    sim::Simulation sim;
    topo::Machine machine(base.machine);
    cpu::ExecEngine engine(sim, machine);
    os::Kernel kernel(sim, machine, engine, base.sched, base.seed);
    net::Network network(sim, base.net, base.seed);
    svc::Mesh mesh(kernel, network, base.rpc, base.seed);
    mesh.setResilience(base.resilience);
    mesh.setOverload(base.overload);
    mesh.setTrace(base.trace);

    const CpuMask budget =
        core::budgetMask(machine, base.cores, base.smt);
    CpuMask initial_budget = budget;
    if (config.initialCores != 0)
        initial_budget =
            core::budgetMask(machine, config.initialCores, base.smt);
    if (!initial_budget.subsetOf(budget))
        fatal("runElastic: initialCores exceeds the CPU budget");
    core::PlacementPlan plan = core::buildPlacement(
        base.placement, machine, initial_budget, base.demand,
        base.sizing);

    teastore::AppParams app_params = base.app;
    core::sizeAppFromPlan(app_params, plan);
    teastore::App app(mesh, app_params, base.seed);
    core::applyPlacement(app, plan);

    std::unique_ptr<svc::BrownoutController> brownout;
    if (base.overload.brownout.enabled) {
        brownout = std::make_unique<svc::BrownoutController>(
            app.webui(), base.overload.brownout);
        brownout->setAccountingWindow(base.warmup,
                                      base.warmup + base.measure);
        app.setBrownout(brownout.get());
    }

    std::unique_ptr<svc::FaultInjector> injector;
    if (!base.faults.empty()) {
        injector =
            std::make_unique<svc::FaultInjector>(mesh, base.faults);
        injector->arm();
    }

    AutoscalerParams as_params = config.autoscaler;
    if (!config.autoscale)
        as_params.policy = PolicyKind::Static;
    Autoscaler autoscaler(app, machine, budget, plan, as_params);
    autoscaler.setAccountingWindow(base.warmup,
                                   base.warmup + base.measure);
    autoscaler.recordTimeline(config.recordTimeline);

    loadgen::OpenLoopParams lp;
    lp.schedule = config.schedule;
    loadgen::OpenLoopDriver driver(app, base.mix, lp, base.seed);
    loadgen::Measurement &measurement = driver.measurement();
    measurement.setWindow(base.warmup, base.warmup + base.measure);

    kernel.start();
    app.start();
    if (brownout)
        brownout->start();
    autoscaler.start();
    driver.start();

    // Warmup, then snapshot everything (same sequence as
    // runExperiment so results are comparable).
    sim.runUntil(base.warmup);
    engine.bankAll();
    std::map<std::string, cpu::PerfCounters> at_warmup;
    for (svc::Service *s : app.services())
        at_warmup[s->name()] = s->aggregateCounters();
    const os::SchedStats sched_at_warmup = kernel.stats();
    const std::vector<double> busy_at_warmup = engine.cpuBusySnapshot();
    for (svc::Service *s : app.services())
        s->resetStats();

    sim.runUntil(base.warmup + base.measure);
    engine.bankAll();

    core::RunResult result;
    result.plan = plan;
    result.budgetCpus = budget.count();
    result.eventsProcessed = sim.eventsProcessed();

    result.throughputRps = measurement.throughputRps();
    result.latency = summarizeHistogram(measurement.latencyNs());
    for (teastore::OpType op : teastore::allOps()) {
        result.perOp[teastore::opName(op)] =
            summarizeHistogram(measurement.latencyNsFor(op));
    }

    cpu::PerfCounters total;
    for (svc::Service *s : app.services()) {
        const cpu::PerfCounters delta =
            s->aggregateCounters().delta(at_warmup[s->name()]);
        result.servicePerf[s->name()] =
            perf::makeRow(s->name(), delta, base.measure);
        total.merge(delta);
    }
    result.total = perf::makeRow("total", total, base.measure);
    result.sched = schedDelta(kernel.stats(), sched_at_warmup);
    result.avgFreqGhz = total.ghz();

    constexpr double kMs = static_cast<double>(kMillisecond);
    for (svc::Service *s : app.services()) {
        for (const auto &[op, stats] : s->opStats()) {
            core::OpBreakdown b;
            b.count = stats.requests;
            b.serviceTimeMeanMs = stats.serviceTimeNs.mean() / kMs;
            b.queueWaitMeanMs = stats.queueWaitNs.mean() / kMs;
            b.computeMeanMs = stats.computeNs.mean() / kMs;
            b.stallMeanMs = stats.stallNs.mean() / kMs;
            b.serviceTimeP99Ms = stats.serviceTimeNs.p99() / kMs;
            b.okCount =
                stats.statusCounts[svc::statusIndex(svc::Status::Ok)];
            b.timeoutCount = stats.statusCounts[svc::statusIndex(
                svc::Status::Timeout)];
            b.overloadCount = stats.statusCounts[svc::statusIndex(
                svc::Status::Overload)];
            b.unavailableCount = stats.statusCounts[svc::statusIndex(
                svc::Status::Unavailable)];
            result.breakdown[s->name()][op] = b;
        }
    }

    {
        core::ResilienceSummary &rs = result.resilience;
        rs.active = base.resilience.active() || !base.faults.empty() ||
                    app_params.degradedFallbacks ||
                    base.overload.active();
        rs.goodputRps = measurement.goodputRps();
        const std::uint64_t completed = measurement.completed();
        rs.okCount = measurement.statusCount(svc::Status::Ok);
        rs.timeoutCount = measurement.statusCount(svc::Status::Timeout);
        rs.overloadCount =
            measurement.statusCount(svc::Status::Overload);
        rs.unavailableCount =
            measurement.statusCount(svc::Status::Unavailable);
        rs.rejectedCount = measurement.statusCount(svc::Status::Rejected);
        rs.degradedCount = measurement.degradedCount();
        rs.errorRate =
            completed > 0
                ? static_cast<double>(measurement.errorCount()) /
                      static_cast<double>(completed)
                : 0.0;
        rs.degradedShare =
            rs.okCount > 0 ? static_cast<double>(rs.degradedCount) /
                                 static_cast<double>(rs.okCount)
                           : 0.0;
        rs.retries = mesh.retryStats().retries;
        rs.retriesDenied = mesh.retryStats().budgetDenied;
        rs.clientTimeouts = mesh.retryStats().clientTimeouts;
        for (svc::Service *s : app.services()) {
            const svc::ResilienceCounters &c = s->resilienceCounters();
            rs.shed += c.shed;
            rs.deadlineDrops += c.deadlineDrops;
            rs.breakerOpens += c.breakerOpens;
        }
    }

    core::harvestOverload(base, app, measurement, brownout.get(),
                          result);
    core::harvestTrace(base, mesh, base.warmup,
                       base.warmup + base.measure, result);

    const std::vector<double> busy_at_end = engine.cpuBusySnapshot();
    double busy = 0.0;
    for (CpuId c : budget)
        busy += busy_at_end[c] - busy_at_warmup[c];
    result.cpuUtilization =
        busy / (static_cast<double>(budget.count()) *
                static_cast<double>(base.measure));

    // The elastic summary on top of the standard harvest.
    {
        const AutoscalerTelemetry &t = autoscaler.telemetry();
        core::ElasticSummary &es = result.elastic;
        es.active = true;
        es.schedule = config.schedule.name();
        es.policy = policyName(as_params.policy);
        es.placer = placerName(as_params.placer);
        es.offeredMeanRps = config.schedule.meanRate(
            base.warmup, base.warmup + base.measure);
        es.offeredPeakRps = config.schedule.peakRate();
        es.sloP99Ms = as_params.sloP99Ms;
        es.sloViolationSeconds = t.sloViolationSeconds;
        es.coreSecondsGranted = t.coreSecondsGranted;
        es.steadyStateCpus = t.steadyStateCpus;
        es.scaleOuts = t.scaleOuts;
        es.scaleIns = t.scaleIns;
        if (!t.scaleOutLagMs.empty()) {
            double sum = 0.0;
            for (double v : t.scaleOutLagMs)
                sum += v;
            es.scaleOutLagMeanMs =
                sum / static_cast<double>(t.scaleOutLagMs.size());
        }
        es.peakReplicas = t.peakReplicas;
        if (telemetryOut)
            *telemetryOut = t;
    }

    driver.stopIssuing();
    autoscaler.stop();
    if (brownout) {
        app.setBrownout(nullptr);
        brownout->stop();
    }
    app.stop();
    kernel.stop();
    return result;
}

} // namespace microscale::autoscale
