#include "autoscale/placer.hh"

#include "base/logging.hh"

namespace microscale::autoscale
{

const char *
placerName(PlacerKind kind)
{
    switch (kind) {
    case PlacerKind::TopologyAware:
        return "topology-aware";
    case PlacerKind::OsDefault:
        return "os-default";
    }
    MS_PANIC("invalid PlacerKind");
}

PlacerKind
placerByName(const std::string &name)
{
    for (PlacerKind k :
         {PlacerKind::TopologyAware, PlacerKind::OsDefault}) {
        if (name == placerName(k))
            return k;
    }
    fatal("unknown placer '", name,
          "' (try topology-aware, os-default)");
}

ReplicaPlacer::ReplicaPlacer(const topo::Machine &machine,
                             const CpuMask &budget, PlacerKind kind)
    : kind_(kind), budget_(budget)
{
    if (budget.empty())
        fatal("replica placer with empty CPU budget");
    groups_ = core::ccxPlacementGroups(machine, budget);
    if (groups_.empty())
        fatal("replica placer: budget covers no CCX");
    load_.assign(groups_.size(), 0);
    quantum_cpus_ = static_cast<double>(budget.count()) /
                    static_cast<double>(groups_.size());
}

PlacerGrant
ReplicaPlacer::grant()
{
    PlacerGrant g;
    g.id = next_id_++;
    // Both flavors reserve the least-loaded CCX group (ties break
    // toward the lowest index, keeping the choice deterministic), so
    // the capacity bill is identical; they differ only in where the
    // replica's threads and memory may go.
    std::size_t best = 0;
    for (std::size_t i = 1; i < groups_.size(); ++i) {
        if (load_[i] < load_[best])
            best = i;
    }
    ++load_[best];
    g.cpus = static_cast<double>(groups_[best].mask.count());
    if (kind_ == PlacerKind::TopologyAware) {
        g.mask = groups_[best].mask;
        g.home = groups_[best].node;
    } else {
        // Unpinned across everything the app owns, first-touch memory:
        // the scheduler decides where the replica actually runs.
        g.mask = ownedMask();
        g.home = kInvalidNode;
    }
    grants_[g.id] = GrantRecord{static_cast<int>(best), g.cpus};
    granted_cpus_ += g.cpus;
    return g;
}

CpuMask
ReplicaPlacer::ownedMask() const
{
    CpuMask m;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        if (load_[i] > 0)
            m |= groups_[i].mask;
    }
    return m.empty() ? budget_ : m;
}

unsigned
ReplicaPlacer::adopt(const CpuMask &mask, NodeId home)
{
    (void)home;
    const unsigned id = next_id_++;
    GrantRecord rec;
    rec.group = -1;
    rec.cpus = quantum_cpus_;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
        if (groups_[i].mask == mask) {
            rec.group = static_cast<int>(i);
            rec.cpus = static_cast<double>(groups_[i].mask.count());
            ++load_[i];
            break;
        }
    }
    grants_[id] = rec;
    granted_cpus_ += rec.cpus;
    return id;
}

void
ReplicaPlacer::release(unsigned id)
{
    auto it = grants_.find(id);
    if (it == grants_.end())
        fatal("replica placer: unknown grant ", id);
    if (it->second.group >= 0)
        --load_[static_cast<std::size_t>(it->second.group)];
    granted_cpus_ -= it->second.cpus;
    grants_.erase(it);
}

} // namespace microscale::autoscale
