/**
 * @file
 * Autoscaler: the simulated control loop tying it all together.
 *
 * Every control period it samples the MetricsBus, lets each scaled
 * service's policy pick a desired replica count, clamps it to
 * [min, max], applies per-direction cooldowns, and actuates through
 * the Service elasticity hooks: scale-out spawns a replica via
 * addReplica() (warm-up modeled: registration delay, then a decaying
 * cold-cache compute penalty) placed through the ReplicaPlacer;
 * scale-in drains the most recently added replica and releases its
 * capacity grant when it retires.
 *
 * The loop also keeps the run's accounting: core-seconds of granted
 * capacity (integral of outstanding grant weight over the accounting
 * window), SLO-violation seconds (intervals where the front service's
 * p99 or the aggregate error rate breaches the SLO), and per-event
 * scale-out lag (decision to first observed Active sample).
 */

#ifndef MICROSCALE_AUTOSCALE_AUTOSCALER_HH
#define MICROSCALE_AUTOSCALE_AUTOSCALER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/metrics.hh"
#include "autoscale/placer.hh"
#include "autoscale/policy.hh"
#include "base/types.hh"
#include "core/placement.hh"
#include "sim/simulation.hh"
#include "teastore/app.hh"

namespace microscale::autoscale
{

/** Control-loop configuration. */
struct AutoscalerParams
{
    /** Sampling / decision period. */
    Tick period = 500 * kMillisecond;

    PolicyKind policy = PolicyKind::Threshold;
    PolicyParams policyParams;
    PlacerKind placer = PlacerKind::TopologyAware;

    /** Warm-up model for spawned replicas. */
    svc::Service::WarmupParams warmup;

    /** Per-service replica bounds (applied to every scaled service). */
    unsigned minReplicas = 1;
    unsigned maxReplicas = 12;

    /** Minimum time between scale-outs of one service. */
    Tick scaleOutCooldown = 1 * kSecond;
    /** Minimum time between scale-ins of one service. */
    Tick scaleInCooldown = 8 * kSecond;

    /** SLO: front-service interval p99 must stay below this. */
    double sloP99Ms = 50.0;
    /** SLO: aggregate failure share must stay below this. */
    double sloMaxErrorRate = 0.01;
};

/** What the control loop did and observed. */
struct AutoscalerTelemetry
{
    std::uint64_t scaleOuts = 0;
    std::uint64_t scaleIns = 0;
    /** Decision -> first Active observation, per scale-out, ms. */
    std::vector<double> scaleOutLagMs;
    /** Seconds (inside the window) spent violating the SLO. */
    double sloViolationSeconds = 0.0;
    /** Integral of granted capacity over the window, CPU-seconds. */
    double coreSecondsGranted = 0.0;
    /**
     * Lowest granted-capacity level observed inside the window, in
     * CPUs: the steady-state operating point the loop settles to at
     * base load (a static deployment holds its full grant forever).
     */
    double steadyStateCpus = 0.0;
    /** Max active+warming replicas seen, per service. */
    std::map<std::string, unsigned> peakReplicas;
    /** Replica-count / queue-depth timeline (utilization examples). */
    std::vector<std::vector<ServiceSample>> timeline;
    /** Keep per-interval samples in `timeline` (off by default). */
    bool recordTimeline = false;
};

class Autoscaler
{
  public:
    /**
     * @param plan the placement the app was built with; its replicas
     *        are adopted into the capacity accounting.
     */
    Autoscaler(teastore::App &app, const topo::Machine &machine,
               const CpuMask &budget, const core::PlacementPlan &plan,
               AutoscalerParams params);

    /** Arm the periodic control event. */
    void start();
    void stop();

    /**
     * Restrict SLO-violation and core-second accounting to samples in
     * (start, end]; outside samples still drive scaling decisions.
     */
    void setAccountingWindow(Tick start, Tick end);

    /** Enable the per-interval sample timeline. */
    void recordTimeline(bool on) { telemetry_.recordTimeline = on; }

    const AutoscalerTelemetry &telemetry() const { return telemetry_; }
    const AutoscalerParams &params() const { return params_; }
    ReplicaPlacer &placer() { return placer_; }

    /** One control iteration (exposed for unit tests). */
    void tick();

  private:
    struct ScaledService
    {
        svc::Service *service = nullptr;
        std::unique_ptr<ScalingPolicy> policy;
        /** Replicas we intend to keep (active + warming). */
        unsigned target = 0;
        /**
         * Replicas that existed before the autoscaler started (their
         * placement is the static plan's and is never touched);
         * indexes >= this were placed by us.
         */
        unsigned initialReplicas = 0;
        /** Grant id per non-retired replica index. */
        std::map<unsigned, unsigned> grantOf;
        /** Spawn tick per still-warming replica (lag tracking). */
        std::map<unsigned, Tick> spawnedAt;
        /** Replica indexes draining, grant not yet released. */
        std::vector<unsigned> draining;
        Tick lastScaleOut = 0;
        Tick lastScaleIn = 0;
    };

    void observeLifecycle(ScaledService &ss, Tick now);
    void decide(ScaledService &ss, const ServiceSample &sample, Tick now);
    void scaleOut(ScaledService &ss, unsigned count, Tick now);
    void scaleIn(ScaledService &ss, unsigned count, Tick now);
    void refreshOsPlacement();

    teastore::App &app_;
    AutoscalerParams params_;
    MetricsBus bus_;
    ReplicaPlacer placer_;
    std::vector<ScaledService> scaled_;
    sim::PeriodicEvent event_;
    AutoscalerTelemetry telemetry_;
    Tick window_start_ = 0;
    Tick window_end_ = kTickNever;
    Tick last_tick_at_ = 0;
    /** ownedMask at the last OS-default placement refresh. */
    CpuMask last_owned_;
};

} // namespace microscale::autoscale

#endif // MICROSCALE_AUTOSCALE_AUTOSCALER_HH
