#include "autoscale/policy.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace microscale::autoscale
{

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
    case PolicyKind::Static:
        return "static";
    case PolicyKind::Threshold:
        return "threshold";
    case PolicyKind::QueueLaw:
        return "queue-law";
    case PolicyKind::Predictive:
        return "predictive";
    }
    MS_PANIC("invalid PolicyKind");
}

PolicyKind
policyByName(const std::string &name)
{
    for (PolicyKind k : {PolicyKind::Static, PolicyKind::Threshold,
                         PolicyKind::QueueLaw, PolicyKind::Predictive}) {
        if (name == policyName(k))
            return k;
    }
    fatal("unknown scaling policy '", name,
          "' (try static, threshold, queue-law, predictive)");
}

namespace
{

/** Hysteresis rule shared by Threshold and Predictive. */
unsigned
thresholdRule(double utilization, const ServiceSample &sample,
              unsigned currentTarget, const PolicyParams &params)
{
    // A deep backlog means the pool is saturated even if the busy
    // fraction reads below the high-water mark (e.g. right after a
    // scale-out while the queue drains into cold replicas).
    const std::uint64_t backlog_limit =
        static_cast<std::uint64_t>(sample.activeReplicas) *
        sample.workersPerReplica;
    // Shed-rate backstop: admission control keeps utilization and the
    // queue low precisely when demand is being turned away, so
    // sustained rejections must force growth on their own.
    const bool rejection_pressure =
        params.rejectionRpsHigh > 0.0 &&
        sample.rejectionsPerSec > params.rejectionRpsHigh;
    if (utilization > params.utilHigh || rejection_pressure ||
        (backlog_limit > 0 && sample.queueDepth > backlog_limit))
        return currentTarget + params.scaleOutStep;
    if (utilization < params.utilLow && sample.queueDepth == 0 &&
        currentTarget > 0)
        return currentTarget - 1;
    return currentTarget;
}

class StaticPolicy final : public ScalingPolicy
{
  public:
    unsigned
    desiredReplicas(const ServiceSample &, unsigned currentTarget) override
    {
        return currentTarget;
    }

    PolicyKind kind() const override { return PolicyKind::Static; }
};

class ThresholdPolicy final : public ScalingPolicy
{
  public:
    explicit ThresholdPolicy(const PolicyParams &params) : params_(params)
    {
    }

    unsigned
    desiredReplicas(const ServiceSample &sample,
                    unsigned currentTarget) override
    {
        return thresholdRule(sample.utilization, sample, currentTarget,
                             params_);
    }

    PolicyKind kind() const override { return PolicyKind::Threshold; }

  private:
    PolicyParams params_;
};

class QueueLawPolicy final : public ScalingPolicy
{
  public:
    explicit QueueLawPolicy(const PolicyParams &params) : params_(params)
    {
    }

    unsigned
    desiredReplicas(const ServiceSample &sample,
                    unsigned currentTarget) override
    {
        // Offered rate includes failed/shed requests: demand the
        // service could not serve is still demand.
        const double offered =
            sample.completionsPerSec + sample.failuresPerSec;
        const double service_sec = sample.meanServiceMs / 1e3;
        if (offered <= 0.0 || service_sec <= 0.0 ||
            sample.workersPerReplica == 0)
            return currentTarget;
        // Little's law: concurrent requests in service = rate x time.
        const double workers_needed = offered * service_sec;
        const double replicas =
            workers_needed / (static_cast<double>(sample.workersPerReplica) *
                              params_.targetUtil);
        return static_cast<unsigned>(
            std::max(1.0, std::ceil(replicas)));
    }

    PolicyKind kind() const override { return PolicyKind::QueueLaw; }

  private:
    PolicyParams params_;
};

class PredictivePolicy final : public ScalingPolicy
{
  public:
    explicit PredictivePolicy(const PolicyParams &params) : params_(params)
    {
    }

    unsigned
    desiredReplicas(const ServiceSample &sample,
                    unsigned currentTarget) override
    {
        const double u = sample.utilization;
        if (!primed_) {
            level_ = u;
            trend_ = 0.0;
            primed_ = true;
        } else {
            const double prev_level = level_;
            level_ = params_.ewmaAlpha * u +
                     (1.0 - params_.ewmaAlpha) * (level_ + trend_);
            trend_ = params_.trendBeta * (level_ - prev_level) +
                     (1.0 - params_.trendBeta) * trend_;
        }
        // Forecast one warm-up horizon ahead, in units of control
        // intervals (the trend is per interval).
        double steps = 1.0;
        if (sample.intervalSec > 0.0) {
            steps = ticksToSeconds(params_.horizon) / sample.intervalSec;
        }
        const double predicted =
            std::max(0.0, level_ + trend_ * steps);
        return thresholdRule(predicted, sample, currentTarget, params_);
    }

    PolicyKind kind() const override { return PolicyKind::Predictive; }

  private:
    PolicyParams params_;
    bool primed_ = false;
    double level_ = 0.0;
    double trend_ = 0.0;
};

} // namespace

std::unique_ptr<ScalingPolicy>
makePolicy(PolicyKind kind, const PolicyParams &params)
{
    switch (kind) {
    case PolicyKind::Static:
        return std::make_unique<StaticPolicy>();
    case PolicyKind::Threshold:
        return std::make_unique<ThresholdPolicy>(params);
    case PolicyKind::QueueLaw:
        return std::make_unique<QueueLawPolicy>(params);
    case PolicyKind::Predictive:
        return std::make_unique<PredictivePolicy>(params);
    }
    MS_PANIC("invalid PolicyKind");
}

} // namespace microscale::autoscale
