/**
 * @file
 * Scaling policies: map one service's interval sample to a desired
 * replica count. Three families from the autoscaling literature:
 *
 *  - Threshold: classic reactive hysteresis on worker utilization
 *    (scale out above the high-water mark, in below the low-water
 *    mark, hold in between).
 *  - QueueLaw: sizes the pool from Little's law - offered rate times
 *    mean service time gives the worker-seconds per second the
 *    service must supply; divide by workers per replica at the target
 *    utilization.
 *  - Predictive: Holt's linear exponential smoothing on utilization;
 *    the threshold rule is applied to the utilization forecast one
 *    warm-up horizon ahead, so capacity is requested before the ramp
 *    arrives rather than after it is felt.
 *
 * Policies hold per-service smoothing state: instantiate one policy
 * object per scaled service. Cooldowns, min/max clamps and actuation
 * live in the Autoscaler, not here.
 */

#ifndef MICROSCALE_AUTOSCALE_POLICY_HH
#define MICROSCALE_AUTOSCALE_POLICY_HH

#include <memory>
#include <string>

#include "autoscale/metrics.hh"
#include "base/types.hh"

namespace microscale::autoscale
{

/** Policy families under study (Static = never scale). */
enum class PolicyKind
{
    Static,
    Threshold,
    QueueLaw,
    Predictive,
};

/** Short identifier, e.g. "queue-law". */
const char *policyName(PolicyKind kind);

/** Inverse of policyName; fatal() on an unknown name. */
PolicyKind policyByName(const std::string &name);

/** Tunables shared by the policy families. */
struct PolicyParams
{
    /** Threshold/Predictive: scale out above this utilization. */
    double utilHigh = 0.75;
    /** Threshold/Predictive: scale in below this utilization. */
    double utilLow = 0.30;
    /** Replicas added per scale-out decision. */
    unsigned scaleOutStep = 1;

    /** QueueLaw: utilization the sized pool should run at. */
    double targetUtil = 0.60;

    /** Predictive: level smoothing factor. */
    double ewmaAlpha = 0.35;
    /** Predictive: trend smoothing factor. */
    double trendBeta = 0.25;
    /** Predictive: forecast horizon (roughly the replica warm-up). */
    Tick horizon = 4 * kSecond;

    /**
     * Rejection-pressure backstop for Threshold/Predictive: when > 0
     * and the sample's rejectionsPerSec exceeds it, scale out even if
     * utilization reads calm. Load shedding keeps utilization low by
     * design, so an overload-controlled service needs this signal to
     * grow out of sustained shedding. 0 (default) disables it.
     */
    double rejectionRpsHigh = 0.0;
};

/** Per-service policy instance. */
class ScalingPolicy
{
  public:
    virtual ~ScalingPolicy() = default;

    /**
     * The replica count (active + warming) the service should have,
     * given this interval's sample and the current target. Returning
     * the current target means "hold".
     */
    virtual unsigned desiredReplicas(const ServiceSample &sample,
                                     unsigned currentTarget) = 0;

    virtual PolicyKind kind() const = 0;
};

/** Build one policy instance (call once per scaled service). */
std::unique_ptr<ScalingPolicy> makePolicy(PolicyKind kind,
                                          const PolicyParams &params);

} // namespace microscale::autoscale

#endif // MICROSCALE_AUTOSCALE_POLICY_HH
