/**
 * @file
 * ReplicaPlacer: where a runtime-spawned replica's threads and memory
 * go, and how much CPU capacity each replica is charged for.
 *
 * The machine is carved into CCX groups (core::ccxPlacementGroups).
 * Both placement flavors reserve the least-loaded group, so a grant
 * always bills the same capacity. Topology-aware placement pins the
 * new replica's workers to the reserved CCX and homes its memory on
 * the CCX's node - the runtime analogue of the paper's CcxAware
 * static partitioning. OS-default placement leaves the replica
 * unpinned across all the capacity the app owns (ownedMask) with
 * first-touch memory, so the comparison isolates placement quality
 * from capacity.
 *
 * Grants (including ones adopted for replicas that existed before the
 * autoscaler started) carry a CPU weight; the sum of outstanding
 * weights integrated over time is the run's core-seconds bill.
 */

#ifndef MICROSCALE_AUTOSCALE_PLACER_HH
#define MICROSCALE_AUTOSCALE_PLACER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/cpumask.hh"
#include "base/types.hh"
#include "core/placement.hh"
#include "topo/machine.hh"

namespace microscale::autoscale
{

/** Placement flavors compared in FIG-13. */
enum class PlacerKind
{
    TopologyAware,
    OsDefault,
};

/** Short identifier, e.g. "topology-aware". */
const char *placerName(PlacerKind kind);

/** Inverse of placerName; fatal() on an unknown name. */
PlacerKind placerByName(const std::string &name);

/** One capacity grant backing one replica. */
struct PlacerGrant
{
    unsigned id = 0;
    /** Affinity for the replica's workers. */
    CpuMask mask;
    /** Memory home (kInvalidNode = first-touch). */
    NodeId home = kInvalidNode;
    /** CPUs this grant is charged for (core-seconds accounting). */
    double cpus = 0.0;
};

class ReplicaPlacer
{
  public:
    ReplicaPlacer(const topo::Machine &machine, const CpuMask &budget,
                  PlacerKind kind);

    /** Grant capacity for one new replica (deterministic). */
    PlacerGrant grant();

    /**
     * Adopt an existing replica into the accounting: if its mask is
     * exactly one CCX group, that group is marked loaded; otherwise
     * (unpinned baseline) only the capacity quantum is charged.
     * Returns the grant id for a later release().
     */
    unsigned adopt(const CpuMask &mask, NodeId home);

    /** Return a grant's capacity (replica retired). */
    void release(unsigned id);

    /**
     * Union of all reserved groups (the capacity the app owns right
     * now); the whole budget when nothing is reserved. OS-default
     * replicas roam this mask - re-apply it when grants change.
     */
    CpuMask ownedMask() const;

    /** Sum of outstanding grant weights, in CPUs. */
    double grantedCpus() const { return granted_cpus_; }

    /** Outstanding grants. */
    unsigned outstanding() const
    {
        return static_cast<unsigned>(grants_.size());
    }

    /** CCX groups inside the budget. */
    std::size_t groupCount() const { return groups_.size(); }

    /** Capacity charged per unpinned grant, in CPUs. */
    double quantumCpus() const { return quantum_cpus_; }

    PlacerKind kind() const { return kind_; }

  private:
    struct GrantRecord
    {
        /** Owning group index, or -1 for unpinned grants. */
        int group = -1;
        double cpus = 0.0;
    };

    PlacerKind kind_;
    CpuMask budget_;
    std::vector<core::PlacementGroup> groups_;
    /** Outstanding grants per group. */
    std::vector<unsigned> load_;
    std::map<unsigned, GrantRecord> grants_;
    double granted_cpus_ = 0.0;
    double quantum_cpus_ = 0.0;
    unsigned next_id_ = 0;
};

} // namespace microscale::autoscale

#endif // MICROSCALE_AUTOSCALE_PLACER_HH
