/**
 * @file
 * runElastic: one end-to-end elasticity run.
 *
 * Composes the same world as core::runExperiment - machine, kernel,
 * mesh, TeaStore app, placement - then adds the elasticity pieces: an
 * open-loop driver following a LoadSchedule (non-homogeneous Poisson
 * arrivals) and an Autoscaler control loop actuating the Service
 * elasticity hooks. The harvest mirrors runExperiment so results are
 * directly comparable; on top it fills RunResult::elastic with the
 * FIG-13 metrics (SLO-violation seconds, core-seconds granted,
 * scale-out lag, peak replicas).
 *
 * Lives in src/autoscale (not core) so core never depends on the
 * autoscaler; the composition/harvest sequence intentionally mirrors
 * core/experiment.cc - keep the two in sync.
 */

#ifndef MICROSCALE_AUTOSCALE_ELASTIC_HH
#define MICROSCALE_AUTOSCALE_ELASTIC_HH

#include "autoscale/autoscaler.hh"
#include "core/experiment.hh"
#include "loadgen/schedule.hh"

namespace microscale::autoscale
{

/** Everything one elastic run needs. */
struct ElasticConfig
{
    /**
     * Base world configuration. The load schedule below replaces the
     * closed-loop/openLoopRps drivers; placement/sizing describe the
     * initial deployment the autoscaler starts from.
     */
    core::ExperimentConfig base;

    /** Offered load over time (must be non-empty). */
    loadgen::LoadSchedule schedule;

    /**
     * Physical cores the *initial* deployment is planned over
     * (0 = the whole base.cores budget). The autoscaler always scales
     * into the full budget; a smaller initial footprint is how a
     * deployment tuned for nominal load leaves headroom to grow.
     */
    unsigned initialCores = 0;

    /** Run the control loop (false = static deployment, but the
     * accounting - core-seconds, SLO seconds - still runs via a
     * Static-policy autoscaler). */
    bool autoscale = true;

    AutoscalerParams autoscaler;

    /** Keep the per-interval sample timeline in the telemetry. */
    bool recordTimeline = false;
};

/**
 * Run one elastic experiment. Returns the standard RunResult with
 * `elastic` filled; `telemetryOut`, when non-null, receives the raw
 * control-loop telemetry (timelines, per-event lags).
 */
core::RunResult runElastic(const ElasticConfig &config,
                           AutoscalerTelemetry *telemetryOut = nullptr);

/**
 * The canonical schedule shapes of the elasticity experiments, scaled
 * to a run's windows so FIG-13, msim --schedule and the examples all
 * agree: "constant" holds baseRps; "spike" ramps to peakRps a third
 * into the measurement window (ramp measure/12, hold measure/6, ramp
 * down measure/24); "diurnal" oscillates between baseRps and peakRps
 * with period measure/2. fatal() on any other name.
 */
loadgen::LoadSchedule makeSchedule(const std::string &name,
                                   double baseRps, double peakRps,
                                   Tick warmup, Tick measure);

} // namespace microscale::autoscale

#endif // MICROSCALE_AUTOSCALE_ELASTIC_HH
