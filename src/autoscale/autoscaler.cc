#include "autoscale/autoscaler.hh"

#include <algorithm>

#include "base/logging.hh"
#include "svc/service.hh"

namespace microscale::autoscale
{

Autoscaler::Autoscaler(teastore::App &app, const topo::Machine &machine,
                       const CpuMask &budget,
                       const core::PlacementPlan &plan,
                       AutoscalerParams params)
    : app_(app),
      params_(std::move(params)),
      bus_(app),
      placer_(machine, budget, params_.placer)
{
    if (params_.period == 0)
        fatal("autoscaler needs a positive control period");
    if (params_.minReplicas == 0)
        fatal("autoscaler: minReplicas must be >= 1");
    if (params_.maxReplicas < params_.minReplicas)
        fatal("autoscaler: maxReplicas < minReplicas");

    // Utilization is CPU busy time against the placer's grant quantum,
    // the one capacity unit both placement flavors are billed in.
    bus_.setCpusPerReplica(placer_.quantumCpus());

    for (svc::Service *svc : bus_.services()) {
        ScaledService ss;
        ss.service = svc;
        ss.policy = makePolicy(params_.policy, params_.policyParams);
        ss.target = svc->replicaCount();
        auto it = plan.services.find(svc->name());
        if (it == plan.services.end())
            fatal("autoscaler: plan has no service '", svc->name(), "'");
        const core::ServicePlan &sp = it->second;
        if (sp.replicas != svc->replicaCount())
            fatal("autoscaler: plan/app replica mismatch for '",
                  svc->name(), "'");
        ss.initialReplicas = svc->replicaCount();
        for (unsigned r = 0; r < sp.replicas; ++r)
            ss.grantOf[r] = placer_.adopt(sp.masks[r], sp.homes[r]);
        telemetry_.peakReplicas[svc->name()] = svc->replicaCount();
        scaled_.push_back(std::move(ss));
    }
}

void
Autoscaler::start()
{
    event_.start(app_.mesh().kernel().sim(), params_.period,
                 [this] { tick(); });
}

void
Autoscaler::stop()
{
    event_.stop();
}

void
Autoscaler::setAccountingWindow(Tick start, Tick end)
{
    if (end <= start)
        fatal("autoscaler: accounting window end <= start");
    window_start_ = start;
    window_end_ = end;
}

void
Autoscaler::observeLifecycle(ScaledService &ss, Tick now)
{
    // Warming replicas that became Active: record the scale-out lag
    // (decision to capacity-serving, as observed by the control loop).
    for (auto it = ss.spawnedAt.begin(); it != ss.spawnedAt.end();) {
        if (ss.service->replicaState(it->first) ==
            svc::ReplicaState::Active) {
            telemetry_.scaleOutLagMs.push_back(
                static_cast<double>(now - it->second) /
                static_cast<double>(kMillisecond));
            it = ss.spawnedAt.erase(it);
        } else {
            ++it;
        }
    }
    // Draining replicas that emptied out: hand their capacity back.
    for (auto it = ss.draining.begin(); it != ss.draining.end();) {
        const unsigned r = *it;
        if (ss.service->replicaState(r) == svc::ReplicaState::Retired) {
            auto g = ss.grantOf.find(r);
            if (g != ss.grantOf.end()) {
                placer_.release(g->second);
                ss.grantOf.erase(g);
            }
            it = ss.draining.erase(it);
        } else {
            ++it;
        }
    }
}

void
Autoscaler::tick()
{
    const Tick now = app_.mesh().kernel().sim().now();
    const double interval_sec =
        ticksToSeconds(now > last_tick_at_ ? now - last_tick_at_ : 0);
    last_tick_at_ = now;

    for (ScaledService &ss : scaled_)
        observeLifecycle(ss, now);

    std::vector<ServiceSample> samples = bus_.sample(now);

    const bool in_window = now > window_start_ && now <= window_end_;
    if (in_window) {
        telemetry_.coreSecondsGranted +=
            placer_.grantedCpus() * interval_sec;
        if (telemetry_.steadyStateCpus == 0.0 ||
            placer_.grantedCpus() < telemetry_.steadyStateCpus)
            telemetry_.steadyStateCpus = placer_.grantedCpus();
        double completions = 0.0;
        double failures = 0.0;
        double front_p99_ms = 0.0;
        for (const ServiceSample &s : samples) {
            completions += s.completionsPerSec;
            failures += s.failuresPerSec;
            if (s.service == teastore::names::kWebui)
                front_p99_ms = s.p99ServiceMs;
        }
        const double total = completions + failures;
        const double error_rate = total > 0.0 ? failures / total : 0.0;
        if (front_p99_ms > params_.sloP99Ms ||
            error_rate > params_.sloMaxErrorRate)
            telemetry_.sloViolationSeconds += interval_sec;
    }

    for (const ServiceSample &s : samples) {
        unsigned &peak = telemetry_.peakReplicas[s.service];
        peak = std::max(peak, s.activeReplicas + s.warmingReplicas);
    }
    if (telemetry_.recordTimeline)
        telemetry_.timeline.push_back(samples);

    if (params_.policy == PolicyKind::Static)
        return;
    for (std::size_t i = 0; i < scaled_.size(); ++i)
        decide(scaled_[i], samples[i], now);
    refreshOsPlacement();
}

void
Autoscaler::refreshOsPlacement()
{
    // OS-default replicas roam the capacity the app owns; when grants
    // come and go that footprint changes, so re-apply it to every
    // replica this loop placed. The plan's original replicas keep
    // their static placement in both flavors.
    if (params_.placer != PlacerKind::OsDefault)
        return;
    const CpuMask owned = placer_.ownedMask();
    if (owned == last_owned_)
        return;
    last_owned_ = owned;
    for (ScaledService &ss : scaled_) {
        const unsigned n = ss.service->replicaCount();
        for (unsigned r = ss.initialReplicas; r < n; ++r) {
            if (ss.service->replicaState(r) != svc::ReplicaState::Retired)
                ss.service->setReplicaPlacement(r, owned, kInvalidNode);
        }
    }
}

void
Autoscaler::decide(ScaledService &ss, const ServiceSample &sample,
                   Tick now)
{
    unsigned desired = ss.policy->desiredReplicas(sample, ss.target);
    desired = std::clamp(desired, params_.minReplicas,
                         params_.maxReplicas);
    if (desired > ss.target) {
        if (now - ss.lastScaleOut < params_.scaleOutCooldown)
            return;
        scaleOut(ss, desired - ss.target, now);
    } else if (desired < ss.target) {
        // Let spawned capacity settle before shrinking again, and
        // never shrink while replicas are still warming up.
        if (now - ss.lastScaleIn < params_.scaleInCooldown ||
            !ss.spawnedAt.empty())
            return;
        scaleIn(ss, ss.target - desired, now);
    }
}

void
Autoscaler::scaleOut(ScaledService &ss, unsigned count, Tick now)
{
    for (unsigned k = 0; k < count; ++k) {
        const PlacerGrant g = placer_.grant();
        const unsigned r = ss.service->addReplica(params_.warmup);
        ss.service->setReplicaPlacement(r, g.mask, g.home);
        ss.grantOf[r] = g.id;
        ss.spawnedAt[r] = now;
        ++telemetry_.scaleOuts;
    }
    ss.target += count;
    ss.lastScaleOut = now;
}

void
Autoscaler::scaleIn(ScaledService &ss, unsigned count, Tick now)
{
    for (unsigned k = 0; k < count && ss.target > params_.minReplicas;
         ++k) {
        // Prefer cancelling a still-warming replica (it has no work
        // to finish), else drain the most recently added active one.
        int victim = -1;
        const unsigned n = ss.service->replicaCount();
        for (unsigned r = n; r-- > 0;) {
            if (ss.service->replicaState(r) ==
                svc::ReplicaState::Warming) {
                victim = static_cast<int>(r);
                break;
            }
        }
        if (victim < 0) {
            for (unsigned r = n; r-- > 0;) {
                if (ss.service->replicaState(r) ==
                    svc::ReplicaState::Active) {
                    victim = static_cast<int>(r);
                    break;
                }
            }
        }
        if (victim < 0)
            break;
        const unsigned r = static_cast<unsigned>(victim);
        ss.service->drainReplica(r);
        ss.spawnedAt.erase(r);
        ss.draining.push_back(r);
        --ss.target;
        ++telemetry_.scaleIns;
    }
    ss.lastScaleIn = now;
}

} // namespace microscale::autoscale
