#include "autoscale/metrics.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "svc/service.hh"

namespace microscale::autoscale
{

MetricsBus::MetricsBus(teastore::App &app)
{
    services_ = {&app.webui(), &app.auth(), &app.persistence(),
                 &app.recommender(), &app.image()};
    state_.resize(services_.size());
    for (std::size_t i = 0; i < services_.size(); ++i) {
        state_[i].lastFailureCount = cumulativeFailures(*services_[i]);
        state_[i].lastRejectionCount =
            cumulativeRejections(*services_[i]);
        state_[i].lastBusyNs = services_[i]->aggregateCounters().busyNs;
        PerService *ps = &state_[i];
        services_[i]->addCompletionObserver(
            [ps](const std::string &, double serviceTimeNs,
                 svc::Status status) {
                ps->latenciesNs.push_back(serviceTimeNs);
                if (status != svc::Status::Ok)
                    ++ps->observedFailures;
            });
    }
}

std::uint64_t
MetricsBus::cumulativeFailures(const svc::Service &svc)
{
    std::uint64_t n = 0;
    for (const auto &[op, stats] : svc.opStats()) {
        for (unsigned s = 0; s < svc::kNumStatuses; ++s) {
            if (s != svc::statusIndex(svc::Status::Ok))
                n += stats.statusCounts[s];
        }
    }
    return n;
}

std::uint64_t
MetricsBus::cumulativeRejections(const svc::Service &svc)
{
    const svc::OverloadCounters &oc = svc.overloadCounters();
    std::uint64_t n = svc.resilienceCounters().shed + oc.codelDrops;
    for (std::uint64_t tier : oc.admissionRejects)
        n += tier;
    return n;
}

std::vector<ServiceSample>
MetricsBus::sample(Tick now)
{
    const Tick interval = now > last_sample_at_ ? now - last_sample_at_ : 0;
    const double interval_sec = ticksToSeconds(interval);
    last_sample_at_ = now;

    std::vector<ServiceSample> samples;
    samples.reserve(services_.size());
    for (std::size_t i = 0; i < services_.size(); ++i) {
        svc::Service &svc = *services_[i];
        PerService &ps = state_[i];

        ServiceSample s;
        s.service = svc.name();
        s.at = now;
        s.intervalSec = interval_sec;
        s.workersPerReplica = svc.params().workersPerReplica;
        for (unsigned r = 0; r < svc.replicaCount(); ++r) {
            switch (svc.replicaState(r)) {
            case svc::ReplicaState::Active:
                ++s.activeReplicas;
                break;
            case svc::ReplicaState::Warming:
                ++s.warmingReplicas;
                break;
            case svc::ReplicaState::Draining:
                ++s.drainingReplicas;
                break;
            case svc::ReplicaState::Retired:
                break;
            }
        }
        s.busyWorkers = svc.busyWorkers();
        // Busy time is banked when a worker's compute quantum ends, so
        // the last partial quantum of each busy worker lags the sample;
        // with control intervals far above a quantum the error is
        // negligible (and a control signal tolerates noise anyway).
        const double busy_ns = svc.aggregateCounters().busyNs;
        s.cpuBusySec =
            std::max(0.0, busy_ns - ps.lastBusyNs) / 1e9;
        ps.lastBusyNs = busy_ns;
        if (cpus_per_replica_ > 0.0 && s.activeReplicas > 0 &&
            interval_sec > 0.0) {
            s.utilization =
                s.cpuBusySec / (static_cast<double>(s.activeReplicas) *
                                cpus_per_replica_ * interval_sec);
        } else {
            const double capacity =
                static_cast<double>(s.activeReplicas) *
                static_cast<double>(s.workersPerReplica);
            s.utilization = capacity > 0.0
                                ? static_cast<double>(s.busyWorkers) /
                                      capacity
                                : 0.0;
        }
        s.queueDepth = svc.queuedRequests();

        // Failure rate from cumulative counters: it covers rejections
        // (shed, refused, deadline drops) that never reach a worker.
        // A stats reset mid-run (window boundary) makes the cumulative
        // count drop below the snapshot; resync by treating the new
        // count as this interval's delta.
        const std::uint64_t failures = cumulativeFailures(svc);
        const std::uint64_t failure_delta = failures >= ps.lastFailureCount
                                                ? failures -
                                                      ps.lastFailureCount
                                                : failures;
        ps.lastFailureCount = failures;

        // Shed-rate signal from the never-reset overload counters (no
        // resync needed: they are monotone across stats resets).
        const std::uint64_t rejections = cumulativeRejections(svc);
        const std::uint64_t rejection_delta =
            rejections - ps.lastRejectionCount;
        ps.lastRejectionCount = rejections;

        const std::size_t n = ps.latenciesNs.size();
        if (interval_sec > 0.0) {
            s.completionsPerSec =
                static_cast<double>(n) / interval_sec;
            s.failuresPerSec =
                static_cast<double>(failure_delta) / interval_sec;
            s.rejectionsPerSec =
                static_cast<double>(rejection_delta) / interval_sec;
        }
        if (n > 0) {
            double sum = 0.0;
            for (double v : ps.latenciesNs)
                sum += v;
            std::sort(ps.latenciesNs.begin(), ps.latenciesNs.end());
            const std::size_t idx = static_cast<std::size_t>(
                std::ceil(0.99 * static_cast<double>(n)));
            const double kMs = static_cast<double>(kMillisecond);
            s.meanServiceMs = sum / static_cast<double>(n) / kMs;
            s.p99ServiceMs =
                ps.latenciesNs[std::min(n - 1, idx > 0 ? idx - 1 : 0)] /
                kMs;
        }
        ps.latenciesNs.clear();
        ps.observedFailures = 0;
        samples.push_back(std::move(s));
    }
    return samples;
}

} // namespace microscale::autoscale
