/**
 * @file
 * MetricsBus: the autoscaler's view of the running application.
 *
 * Each control period the bus turns raw service state into one
 * ServiceSample per scaled service: instantaneous utilization and
 * queue depth, plus per-interval completion/failure rates and service
 * latency quantiles. Interval latencies come from a completion
 * observer installed on every scaled service (the cumulative
 * QuantileHistogram cannot yield per-interval quantiles); rejection
 * counts come from deltas of the cumulative per-op status counters,
 * since shed/refused requests never reach a worker or the observer.
 */

#ifndef MICROSCALE_AUTOSCALE_METRICS_HH
#define MICROSCALE_AUTOSCALE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "teastore/app.hh"

namespace microscale::autoscale
{

/** One control-interval observation of one service. */
struct ServiceSample
{
    std::string service;
    Tick at = 0;
    /** Length of the interval this sample summarizes, in seconds. */
    double intervalSec = 0.0;

    unsigned activeReplicas = 0;
    unsigned warmingReplicas = 0;
    unsigned drainingReplicas = 0;
    unsigned workersPerReplica = 0;
    unsigned busyWorkers = 0;
    /** CPU-seconds the service's workers consumed this interval. */
    double cpuBusySec = 0.0;
    /**
     * CPU busy share of the granted capacity when a CPU basis is set
     * (setCpusPerReplica), else the busy-worker fraction. The CPU form
     * is the useful scaling signal: worker pools are sized far above
     * the CPUs backing a replica, so the busy-worker fraction stays
     * near zero until the queue is already deep.
     */
    double utilization = 0.0;
    /** Requests queued across replicas right now. */
    std::uint64_t queueDepth = 0;

    /** Worker-served completions per second of interval. */
    double completionsPerSec = 0.0;
    /** Non-OK outcomes per second (handler failures + rejections). */
    double failuresPerSec = 0.0;
    /** Mean replica service time over the interval, ms. */
    double meanServiceMs = 0.0;
    /** p99 replica service time over the interval, ms. */
    double p99ServiceMs = 0.0;
    /**
     * Requests per second turned away by load shedding this interval:
     * bounded-queue sheds plus the overload layer's admission
     * rejections and CoDel drops. The shed-rate signal: sustained
     * rejection pressure means demand exceeds what the current
     * replica set will even admit, so policies can scale out on it
     * before latency signals catch up.
     */
    double rejectionsPerSec = 0.0;
};

/**
 * Samples the five worker services of a TeaStore app. Adds a
 * completion observer to each scaled service (observers stack, so
 * other listeners such as the brownout controller can coexist).
 */
class MetricsBus
{
  public:
    explicit MetricsBus(teastore::App &app);

    /**
     * Set the CPU capacity one replica is considered to own (the
     * placer's grant quantum). Switches `utilization` from the
     * busy-worker fraction to cpuBusySec / (active x cpus x interval).
     */
    void setCpusPerReplica(double cpus) { cpus_per_replica_ = cpus; }

    /**
     * Produce one sample per scaled service covering the interval
     * since the previous call (or since construction) and reset the
     * interval accumulators. Samples are in canonical service order.
     */
    std::vector<ServiceSample> sample(Tick now);

    /** The services being observed, in canonical order. */
    const std::vector<svc::Service *> &services() const
    {
        return services_;
    }

  private:
    struct PerService
    {
        /**
         * Replica-side service times (ns) completed this interval.
         * Ingestion is a flat append on the completion hot path (no
         * per-observation histogram work); percentiles are folded out
         * of the buffer once per control period in sample(), which
         * also clears it.
         */
        std::vector<double> latenciesNs;
        /** Non-OK observer completions this interval. */
        std::uint64_t observedFailures = 0;
        /** Cumulative non-OK status count at the last sample. */
        std::uint64_t lastFailureCount = 0;
        /** Cumulative shed/rejected count at the last sample. */
        std::uint64_t lastRejectionCount = 0;
        /** Cumulative busy nanoseconds at the last sample. */
        double lastBusyNs = 0.0;
    };

    /** Cumulative non-OK outcomes of a service (all ops, all time). */
    static std::uint64_t cumulativeFailures(const svc::Service &svc);

    /** Cumulative shed + admission-rejected + CoDel-dropped requests. */
    static std::uint64_t cumulativeRejections(const svc::Service &svc);

    std::vector<svc::Service *> services_;
    std::vector<PerService> state_;
    Tick last_sample_at_ = 0;
    double cpus_per_replica_ = 0.0;
};

} // namespace microscale::autoscale

#endif // MICROSCALE_AUTOSCALE_METRICS_HH
