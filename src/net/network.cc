#include "net/network.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "base/logging.hh"

namespace microscale::net
{

Network::Network(sim::Simulation &sim, NetParams params,
                 std::uint64_t seed)
    : sim_(sim), params_(params), rng_(seed, "net.loopback"),
      chaos_rng_(seed, "net.chaos"), fabric_rng_(seed, "net.fabric")
{
    if (params_.baseLatencyNs == 0)
        fatal("network base latency must be positive");
}

Tick
Network::sampleLatency(std::uint32_t payload_bytes)
{
    const double kib = static_cast<double>(payload_bytes) / 1024.0;
    double lat = static_cast<double>(params_.baseLatencyNs) +
                 kib * static_cast<double>(params_.perKibNs);
    // Applied before the jitter draw; at the default 1.0 this is an
    // exact identity and the draw is unchanged.
    lat *= latency_factor_;
    if (params_.jitterCv > 0.0)
        lat = rng_.lognormal(lat, params_.jitterCv);
    return std::max<Tick>(1, static_cast<Tick>(std::llround(lat)));
}

double
Network::fabricTierFactor(unsigned a, unsigned b) const
{
    if (params_.fabricRackSize == 0 || params_.fabricCoreFactor == 1.0)
        return 1.0;
    return a / params_.fabricRackSize == b / params_.fabricRackSize
               ? 1.0
               : params_.fabricCoreFactor;
}

Tick
Network::fabricLatencyNominal(std::uint32_t payload_bytes, unsigned a,
                              unsigned b) const
{
    if (!fabricConfigured())
        return 0;
    const double kib = static_cast<double>(payload_bytes) / 1024.0;
    const double lat =
        (static_cast<double>(params_.fabricBaseNs) +
         kib * static_cast<double>(params_.fabricPerKibNs)) *
        fabricTierFactor(a, b);
    return std::max<Tick>(1, static_cast<Tick>(std::llround(lat)));
}

Tick
Network::sampleFabricLatency(std::uint32_t payload_bytes, unsigned a,
                             unsigned b)
{
    const double kib = static_cast<double>(payload_bytes) / 1024.0;
    double lat = (static_cast<double>(params_.fabricBaseNs) +
                  kib * static_cast<double>(params_.fabricPerKibNs)) *
                 fabricTierFactor(a, b);
    // LatencyFactor faults inflate the fabric too (shared transport
    // substrate); exact identity at the default 1.0.
    lat *= latency_factor_;
    if (params_.fabricJitterCv > 0.0 && lat > 0.0)
        lat = fabric_rng_.lognormal(lat, params_.fabricJitterCv);
    return std::max<Tick>(0, static_cast<Tick>(std::llround(lat)));
}

void
Network::setLatencyFactor(double factor)
{
    if (factor <= 0.0)
        fatal("network latency factor must be positive");
    latency_factor_ = factor;
}

template <typename Fn>
void
Network::updateLink(const std::string &a, const std::string &b, Fn fn)
{
    const LinkKey key = linkKey(a, b);
    auto it = link_faults_.try_emplace(key).first;
    fn(it->second);
    if (it->second.clear())
        link_faults_.erase(it);
}

void
Network::setLinkLoss(const std::string &a, const std::string &b,
                     double prob)
{
    if (prob < 0.0 || prob > 1.0)
        fatal("link loss probability must be in [0,1]");
    updateLink(a, b, [prob](LinkFault &f) { f.lossProb = prob; });
}

void
Network::setLinkDup(const std::string &a, const std::string &b,
                    double prob)
{
    if (prob < 0.0 || prob > 1.0)
        fatal("link dup probability must be in [0,1]");
    updateLink(a, b, [prob](LinkFault &f) { f.dupProb = prob; });
}

void
Network::setPartition(const std::string &a, const std::string &b,
                      bool blackhole)
{
    updateLink(a, b,
               [blackhole](LinkFault &f) { f.blackhole = blackhole; });
}

LinkFault
Network::linkFault(const std::string &a, const std::string &b) const
{
    auto it = link_faults_.find(linkKey(a, b));
    return it == link_faults_.end() ? LinkFault{} : it->second;
}

void
Network::setFabricLoss(unsigned a, unsigned b, double prob)
{
    if (prob < 0.0 || prob > 1.0)
        fatal("fabric loss probability must be in [0,1]");
    const FabricKey key = fabricKey(a, b);
    auto it = fabric_faults_.try_emplace(key).first;
    it->second.lossProb = prob;
    if (it->second.clear())
        fabric_faults_.erase(it);
}

void
Network::setFabricPartition(unsigned a, unsigned b, bool blackhole)
{
    const FabricKey key = fabricKey(a, b);
    auto it = fabric_faults_.try_emplace(key).first;
    it->second.blackhole = blackhole;
    if (it->second.clear())
        fabric_faults_.erase(it);
}

LinkFault
Network::fabricFault(unsigned a, unsigned b) const
{
    auto it = fabric_faults_.find(fabricKey(a, b));
    return it == fabric_faults_.end() ? LinkFault{} : it->second;
}

void
Network::send(std::uint32_t payload_bytes, sim::EventFn deliver)
{
    ++stats_.messages;
    stats_.bytes += payload_bytes;
    sim_.scheduleAfter(sampleLatency(payload_bytes), std::move(deliver));
}

void
Network::send(std::uint32_t payload_bytes, const std::string &from,
              const std::string &to, sim::EventFn deliver)
{
    // Fast path: no link faults anywhere means no map lookup, no chaos
    // RNG consumption — byte-identical to the anonymous overload.
    if (!link_faults_.empty()) {
        auto it = link_faults_.find(linkKey(from, to));
        if (it != link_faults_.end()) {
            const LinkFault &f = it->second;
            if (f.blackhole) {
                ++stats_.messages;
                stats_.bytes += payload_bytes;
                ++stats_.blackholed;
                return;
            }
            if (f.lossProb > 0.0 &&
                chaos_rng_.uniform01() < f.lossProb) {
                ++stats_.messages;
                stats_.bytes += payload_bytes;
                ++stats_.dropped;
                return;
            }
            if (f.dupProb > 0.0 &&
                chaos_rng_.uniform01() < f.dupProb) {
                ++stats_.messages;
                stats_.bytes += payload_bytes;
                ++stats_.duplicated;
                // Deliver twice with independent latency draws. The
                // callback must tolerate a second invocation; mesh
                // delivery paths are idempotent once the call settles.
                auto shared = std::make_shared<sim::EventFn>(
                    std::move(deliver));
                sim_.scheduleAfter(sampleLatency(payload_bytes),
                                   [shared] { (*shared)(); });
                sim_.scheduleAfter(sampleLatency(payload_bytes),
                                   [shared] { (*shared)(); });
                return;
            }
        }
    }
    send(payload_bytes, std::move(deliver));
}

void
Network::sendVia(std::uint32_t payload_bytes, const std::string &from,
                 const std::string &to, unsigned src_node,
                 unsigned dst_node, sim::EventFn deliver)
{
    // Same machine: exactly the link-aware path, no fabric anything.
    if (src_node == dst_node) {
        send(payload_bytes, from, to, std::move(deliver));
        return;
    }
    // Fabric-link faults act before the service-link ones: a
    // partitioned machine pair swallows every message between the two
    // nodes regardless of which services are talking.
    if (!fabric_faults_.empty()) {
        auto it = fabric_faults_.find(fabricKey(src_node, dst_node));
        if (it != fabric_faults_.end()) {
            const LinkFault &f = it->second;
            if (f.blackhole) {
                ++stats_.messages;
                stats_.bytes += payload_bytes;
                ++stats_.blackholed;
                return;
            }
            if (f.lossProb > 0.0 &&
                chaos_rng_.uniform01() < f.lossProb) {
                ++stats_.messages;
                stats_.bytes += payload_bytes;
                ++stats_.dropped;
                return;
            }
        }
    }
    ++stats_.fabricMessages;
    stats_.fabricBytes += payload_bytes;
    const Tick extra = fabricConfigured()
                           ? sampleFabricLatency(payload_bytes,
                                                 src_node, dst_node)
                           : 0;
    if (extra == 0) {
        // Ideal fabric: cross-node costs the same as loopback.
        send(payload_bytes, from, to, std::move(deliver));
        return;
    }
    // Pay the fabric hop first, then traverse the receiving host's
    // loopback path (service-link faults included) as usual.
    sim_.scheduleAfter(extra, [this, payload_bytes, from, to,
                               deliver = std::move(deliver)]() mutable {
        send(payload_bytes, from, to, std::move(deliver));
    });
}

} // namespace microscale::net
