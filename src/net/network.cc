#include "net/network.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace microscale::net
{

Network::Network(sim::Simulation &sim, NetParams params,
                 std::uint64_t seed)
    : sim_(sim), params_(params), rng_(seed, "net.loopback")
{
    if (params_.baseLatencyNs == 0)
        fatal("network base latency must be positive");
}

Tick
Network::sampleLatency(std::uint32_t payload_bytes)
{
    const double kib = static_cast<double>(payload_bytes) / 1024.0;
    double lat = static_cast<double>(params_.baseLatencyNs) +
                 kib * static_cast<double>(params_.perKibNs);
    // Applied before the jitter draw; at the default 1.0 this is an
    // exact identity and the draw is unchanged.
    lat *= latency_factor_;
    if (params_.jitterCv > 0.0)
        lat = rng_.lognormal(lat, params_.jitterCv);
    return std::max<Tick>(1, static_cast<Tick>(std::llround(lat)));
}

void
Network::setLatencyFactor(double factor)
{
    if (factor <= 0.0)
        fatal("network latency factor must be positive");
    latency_factor_ = factor;
}

void
Network::send(std::uint32_t payload_bytes, sim::EventFn deliver)
{
    ++stats_.messages;
    stats_.bytes += payload_bytes;
    sim_.scheduleAfter(sampleLatency(payload_bytes), std::move(deliver));
}

} // namespace microscale::net
