/**
 * @file
 * Loopback network model.
 *
 * In the paper's deployment every service runs on the same host and
 * communicates over loopback TCP, so "network" cost is a small, mostly
 * constant delivery latency plus a per-byte component; the CPU cost of
 * the protocol stack (serialization, copies, syscalls) is charged to
 * the communicating threads as work, not here.
 *
 * The gray-failure layer adds per-link faults keyed by unordered
 * endpoint-name pairs: probabilistic message drop and duplication plus
 * full blackholes (partitions). Fault draws come from a dedicated
 * "net.chaos" RNG stream that is only consumed on faulted links, so a
 * run with no link faults is byte-identical to one built without them.
 */

#ifndef MICROSCALE_NET_NETWORK_HH
#define MICROSCALE_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "base/random.hh"
#include "base/types.hh"
#include "sim/simulation.hh"

namespace microscale::net
{

/** Loopback transport parameters. */
struct NetParams
{
    /** Fixed one-way delivery latency (kernel loopback path). */
    Tick baseLatencyNs = 20 * kMicrosecond;
    /** Additional latency per KiB of payload. */
    Tick perKibNs = 500;
    /** Coefficient of variation of lognormal latency jitter. */
    double jitterCv = 0.10;
    /**
     * Cluster fabric: extra one-way latency added to messages that
     * cross machine boundaries (sendVia with srcNode != dstNode).
     * 0 = ideal fabric: cross-node messages are indistinguishable
     * from loopback and consume no extra RNG draws.
     */
    Tick fabricBaseNs = 0;
    /** Serialization delay per KiB on the fabric (link bandwidth). */
    Tick fabricPerKibNs = 0;
    /** Jitter CV of the fabric component (drawn from "net.fabric"). */
    double fabricJitterCv = 0.0;
    /**
     * Leaf/core fabric tiers: machines are grouped into racks of this
     * many nodes sharing a leaf switch; traffic between racks crosses
     * the (oversubscribed) core tier and pays fabricCoreFactor times
     * the fabric latency. 0 = flat fabric, every pair one hop.
     */
    unsigned fabricRackSize = 0;
    /** Latency multiplier for inter-rack (core-tier) fabric hops. */
    double fabricCoreFactor = 1.0;
};

/** Traffic counters. */
struct NetStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    /** Messages dropped by PacketLoss link faults. */
    std::uint64_t dropped = 0;
    /** Extra copies delivered by PacketDup link faults. */
    std::uint64_t duplicated = 0;
    /** Messages swallowed by a Partition blackhole. */
    std::uint64_t blackholed = 0;
    /** Messages that crossed a machine boundary (fabric hop). */
    std::uint64_t fabricMessages = 0;
    /** Bytes carried across the fabric. */
    std::uint64_t fabricBytes = 0;
};

/** Fault state of one (unordered) link. */
struct LinkFault
{
    /** Probability a message on this link is silently dropped. */
    double lossProb = 0.0;
    /** Probability a message is delivered twice. */
    double dupProb = 0.0;
    /** Partition: every message disappears (no RNG draw). */
    bool blackhole = false;

    bool clear() const
    {
        return lossProb == 0.0 && dupProb == 0.0 && !blackhole;
    }
};

/**
 * Message transport: delivers callbacks after a modeled latency.
 */
class Network
{
  public:
    Network(sim::Simulation &sim, NetParams params, std::uint64_t seed);

    /**
     * Send a message of `payload_bytes`; `deliver` runs at the receiver
     * after the modeled latency. This overload is link-anonymous and
     * bypasses link faults (internal timers, registry chatter).
     */
    void send(std::uint32_t payload_bytes, sim::EventFn deliver);

    /**
     * Link-aware send between named endpoints: subject to any armed
     * loss/dup/partition fault on the (from, to) link. With no fault
     * on the link this is exactly the anonymous overload — same stats,
     * same RNG consumption.
     */
    void send(std::uint32_t payload_bytes, const std::string &from,
              const std::string &to, sim::EventFn deliver);

    /**
     * Node-aware send: like the link-aware overload, but when the
     * message crosses a machine boundary (srcNode != dstNode) it also
     * pays the fabric latency (base + per-KiB serialization, with its
     * own jitter stream) and is subject to any fabric-link fault
     * between the two nodes. Same-node traffic — and any traffic with
     * the fabric unconfigured — takes exactly the link-aware path.
     */
    void sendVia(std::uint32_t payload_bytes, const std::string &from,
                 const std::string &to, unsigned src_node,
                 unsigned dst_node, sim::EventFn deliver);

    /** One-way latency sample for a payload (exposed for tests). */
    Tick sampleLatency(std::uint32_t payload_bytes);

    /**
     * Deterministic (jitter-free) fabric latency for a payload between
     * two machines: base plus per-KiB serialization, times the core
     * factor when the pair spans racks. Used for trace attribution so
     * the stamp never consumes RNG; 0 when no fabric is configured.
     */
    Tick fabricLatencyNominal(std::uint32_t payload_bytes, unsigned a,
                              unsigned b) const;

    /** True when cross-node messages pay a fabric cost. */
    bool fabricConfigured() const
    {
        return params_.fabricBaseNs > 0 || params_.fabricPerKibNs > 0;
    }

    /**
     * Fault hook: multiply all latencies by `factor` (link-latency
     * spike). 1.0 restores nominal latency and is an exact identity.
     */
    void setLatencyFactor(double factor);

    double latencyFactor() const { return latency_factor_; }

    /** Drop messages between `a` and `b` with probability `prob`
     *  (both directions; 0 clears). */
    void setLinkLoss(const std::string &a, const std::string &b,
                     double prob);

    /** Duplicate messages between `a` and `b` with probability `prob`. */
    void setLinkDup(const std::string &a, const std::string &b,
                    double prob);

    /** Blackhole (or heal) the `a` <-> `b` link in both directions. */
    void setPartition(const std::string &a, const std::string &b,
                      bool blackhole);

    /** Current fault state of a link (zero-initialized when unfaulted). */
    LinkFault linkFault(const std::string &a, const std::string &b) const;

    /** Drop fabric messages between nodes `a` and `b` with probability
     *  `prob` (both directions; 0 clears). */
    void setFabricLoss(unsigned a, unsigned b, double prob);

    /** Blackhole (or heal) the fabric link between nodes `a` and `b`. */
    void setFabricPartition(unsigned a, unsigned b, bool blackhole);

    /** Current fault state of a fabric link. */
    LinkFault fabricFault(unsigned a, unsigned b) const;

    const NetParams &params() const { return params_; }
    const NetStats &stats() const { return stats_; }

  private:
    using LinkKey = std::pair<std::string, std::string>;
    using FabricKey = std::pair<unsigned, unsigned>;

    static LinkKey linkKey(const std::string &a, const std::string &b)
    {
        return a <= b ? LinkKey{a, b} : LinkKey{b, a};
    }

    static FabricKey fabricKey(unsigned a, unsigned b)
    {
        return a <= b ? FabricKey{a, b} : FabricKey{b, a};
    }

    /** Extra latency of one fabric hop (jittered when configured). */
    Tick sampleFabricLatency(std::uint32_t payload_bytes, unsigned a,
                             unsigned b);

    /** Core-tier multiplier for a machine pair (1.0 inside a rack). */
    double fabricTierFactor(unsigned a, unsigned b) const;

    /** Mutate the link's fault entry; erases it when it becomes clear
     *  so the empty-map fast path returns once faults end. */
    template <typename Fn>
    void updateLink(const std::string &a, const std::string &b, Fn fn);

    sim::Simulation &sim_;
    NetParams params_;
    Rng rng_;
    /** Consumed only for messages on faulted links. */
    Rng chaos_rng_;
    /** Consumed only for cross-node messages with fabric jitter on. */
    Rng fabric_rng_;
    NetStats stats_;
    double latency_factor_ = 1.0;
    std::map<LinkKey, LinkFault> link_faults_;
    std::map<FabricKey, LinkFault> fabric_faults_;
};

} // namespace microscale::net

#endif // MICROSCALE_NET_NETWORK_HH
