/**
 * @file
 * Loopback network model.
 *
 * In the paper's deployment every service runs on the same host and
 * communicates over loopback TCP, so "network" cost is a small, mostly
 * constant delivery latency plus a per-byte component; the CPU cost of
 * the protocol stack (serialization, copies, syscalls) is charged to
 * the communicating threads as work, not here.
 *
 * The gray-failure layer adds per-link faults keyed by unordered
 * endpoint-name pairs: probabilistic message drop and duplication plus
 * full blackholes (partitions). Fault draws come from a dedicated
 * "net.chaos" RNG stream that is only consumed on faulted links, so a
 * run with no link faults is byte-identical to one built without them.
 */

#ifndef MICROSCALE_NET_NETWORK_HH
#define MICROSCALE_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "base/random.hh"
#include "base/types.hh"
#include "sim/simulation.hh"

namespace microscale::net
{

/** Loopback transport parameters. */
struct NetParams
{
    /** Fixed one-way delivery latency (kernel loopback path). */
    Tick baseLatencyNs = 20 * kMicrosecond;
    /** Additional latency per KiB of payload. */
    Tick perKibNs = 500;
    /** Coefficient of variation of lognormal latency jitter. */
    double jitterCv = 0.10;
};

/** Traffic counters. */
struct NetStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    /** Messages dropped by PacketLoss link faults. */
    std::uint64_t dropped = 0;
    /** Extra copies delivered by PacketDup link faults. */
    std::uint64_t duplicated = 0;
    /** Messages swallowed by a Partition blackhole. */
    std::uint64_t blackholed = 0;
};

/** Fault state of one (unordered) link. */
struct LinkFault
{
    /** Probability a message on this link is silently dropped. */
    double lossProb = 0.0;
    /** Probability a message is delivered twice. */
    double dupProb = 0.0;
    /** Partition: every message disappears (no RNG draw). */
    bool blackhole = false;

    bool clear() const
    {
        return lossProb == 0.0 && dupProb == 0.0 && !blackhole;
    }
};

/**
 * Message transport: delivers callbacks after a modeled latency.
 */
class Network
{
  public:
    Network(sim::Simulation &sim, NetParams params, std::uint64_t seed);

    /**
     * Send a message of `payload_bytes`; `deliver` runs at the receiver
     * after the modeled latency. This overload is link-anonymous and
     * bypasses link faults (internal timers, registry chatter).
     */
    void send(std::uint32_t payload_bytes, sim::EventFn deliver);

    /**
     * Link-aware send between named endpoints: subject to any armed
     * loss/dup/partition fault on the (from, to) link. With no fault
     * on the link this is exactly the anonymous overload — same stats,
     * same RNG consumption.
     */
    void send(std::uint32_t payload_bytes, const std::string &from,
              const std::string &to, sim::EventFn deliver);

    /** One-way latency sample for a payload (exposed for tests). */
    Tick sampleLatency(std::uint32_t payload_bytes);

    /**
     * Fault hook: multiply all latencies by `factor` (link-latency
     * spike). 1.0 restores nominal latency and is an exact identity.
     */
    void setLatencyFactor(double factor);

    double latencyFactor() const { return latency_factor_; }

    /** Drop messages between `a` and `b` with probability `prob`
     *  (both directions; 0 clears). */
    void setLinkLoss(const std::string &a, const std::string &b,
                     double prob);

    /** Duplicate messages between `a` and `b` with probability `prob`. */
    void setLinkDup(const std::string &a, const std::string &b,
                    double prob);

    /** Blackhole (or heal) the `a` <-> `b` link in both directions. */
    void setPartition(const std::string &a, const std::string &b,
                      bool blackhole);

    /** Current fault state of a link (zero-initialized when unfaulted). */
    LinkFault linkFault(const std::string &a, const std::string &b) const;

    const NetParams &params() const { return params_; }
    const NetStats &stats() const { return stats_; }

  private:
    using LinkKey = std::pair<std::string, std::string>;

    static LinkKey linkKey(const std::string &a, const std::string &b)
    {
        return a <= b ? LinkKey{a, b} : LinkKey{b, a};
    }

    /** Mutate the link's fault entry; erases it when it becomes clear
     *  so the empty-map fast path returns once faults end. */
    template <typename Fn>
    void updateLink(const std::string &a, const std::string &b, Fn fn);

    sim::Simulation &sim_;
    NetParams params_;
    Rng rng_;
    /** Consumed only for messages on faulted links. */
    Rng chaos_rng_;
    NetStats stats_;
    double latency_factor_ = 1.0;
    std::map<LinkKey, LinkFault> link_faults_;
};

} // namespace microscale::net

#endif // MICROSCALE_NET_NETWORK_HH
