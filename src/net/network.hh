/**
 * @file
 * Loopback network model.
 *
 * In the paper's deployment every service runs on the same host and
 * communicates over loopback TCP, so "network" cost is a small, mostly
 * constant delivery latency plus a per-byte component; the CPU cost of
 * the protocol stack (serialization, copies, syscalls) is charged to
 * the communicating threads as work, not here.
 */

#ifndef MICROSCALE_NET_NETWORK_HH
#define MICROSCALE_NET_NETWORK_HH

#include <cstdint>
#include <functional>

#include "base/random.hh"
#include "base/types.hh"
#include "sim/simulation.hh"

namespace microscale::net
{

/** Loopback transport parameters. */
struct NetParams
{
    /** Fixed one-way delivery latency (kernel loopback path). */
    Tick baseLatencyNs = 20 * kMicrosecond;
    /** Additional latency per KiB of payload. */
    Tick perKibNs = 500;
    /** Coefficient of variation of lognormal latency jitter. */
    double jitterCv = 0.10;
};

/** Traffic counters. */
struct NetStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
};

/**
 * Message transport: delivers callbacks after a modeled latency.
 */
class Network
{
  public:
    Network(sim::Simulation &sim, NetParams params, std::uint64_t seed);

    /**
     * Send a message of `payload_bytes`; `deliver` runs at the receiver
     * after the modeled latency.
     */
    void send(std::uint32_t payload_bytes, sim::EventFn deliver);

    /** One-way latency sample for a payload (exposed for tests). */
    Tick sampleLatency(std::uint32_t payload_bytes);

    /**
     * Fault hook: multiply all latencies by `factor` (link-latency
     * spike). 1.0 restores nominal latency and is an exact identity.
     */
    void setLatencyFactor(double factor);

    double latencyFactor() const { return latency_factor_; }

    const NetParams &params() const { return params_; }
    const NetStats &stats() const { return stats_; }

  private:
    sim::Simulation &sim_;
    NetParams params_;
    Rng rng_;
    NetStats stats_;
    double latency_factor_ = 1.0;
};

} // namespace microscale::net

#endif // MICROSCALE_NET_NETWORK_HH
