/**
 * @file
 * Replicated data tier: quorum coordination state for the cluster's
 * persistence shards.
 *
 * With ReplicationParams::factor R > 1, buildDataTier places each
 * shard's key ranges on R distinct nodes (HashRing successor walk over
 * failure-domain groups) and the Cluster routes every data write to
 * all R owners, acking the client once W of them applied it, and every
 * read to R_q owners (one full read plus version probes), re-fetching
 * and read-repairing when the probed versions disagree. Owners that
 * are down at write time receive a bounded queue of hints replayed on
 * the down→up edge. When a node joins (scaler or script), a rebalance
 * stream migrates the moved key ranges in bounded batches over the
 * fabric while reads dual-probe old and new owners until cutover.
 *
 * The QuorumCoordinator here is the pure state machine: per-entity
 * version counters, per-shard applied-version maps, the acked-write
 * ledger hookup and every counter the run summary reports. The RPC
 * choreography lives in quorum.cc as Cluster methods so it can reuse
 * the mesh plumbing. Everything is inert at R=1: the coordinator is
 * never constructed and the FIG-17 data tier runs byte-identically.
 */

#ifndef MICROSCALE_CLUSTER_QUORUM_HH
#define MICROSCALE_CLUSTER_QUORUM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "chaos/ledger.hh"
#include "core/experiment.hh"
#include "svc/payload.hh"

namespace microscale::cluster
{

/** Replicated-data-tier knobs (part of ClusterParams). */
struct ReplicationParams
{
    /** Replicas per key range (1-3). 1 = the unreplicated FIG-17
     * tier; every quorum/hint/rebalance path below is disabled. */
    unsigned factor = 1;

    /** Write quorum W: acks required before the client sees success.
     * 0 = majority (R/2 + 1). Must be 1..R. */
    unsigned writeQuorum = 0;

    /** Read quorum R_q: owners a read must reach. 0 = R - W + 1 (the
     * smallest quorum that still intersects every write quorum). */
    unsigned readQuorum = 0;

    /** Hints buffered per down shard; overflow drops (counted). */
    unsigned hintQueueCap = 128;

    /** Keys migrated per rebalance batch. */
    unsigned rebalanceBatchEntities = 32;

    /** Wire size of one full migrate batch. */
    std::uint32_t rebalanceBatchBytes = 16 * 1024;

    /** Scripted scale-out: activate the next spare node (and start
     * the rebalance stream) at this tick. 0 = off. */
    Tick scaleAddNodeAt = 0;

    /** Scripted drain: stream shard `drainShardId`'s ranges to the
     * surviving owners starting at this tick, then retire it. 0 =
     * off. */
    Tick drainShardAt = 0;
    unsigned drainShardId = 0;
};

/** W after resolving the majority default. */
unsigned resolvedWriteQuorum(const ReplicationParams &p);

/** R_q after resolving the intersection default. */
unsigned resolvedReadQuorum(const ReplicationParams &p);

/**
 * Bounded FIFO of writes owed to one down shard. push() refuses at
 * capacity (the drop is the caller's to count); replay pops in arrival
 * order, which the chained replay RPCs preserve on the wire.
 */
class HintQueue
{
  public:
    explicit HintQueue(unsigned cap) : cap_(cap) {}

    struct Hint
    {
        std::string op;
        std::string entity;
        svc::Payload request;
        std::uint64_t version = 0;
    };

    bool push(Hint h)
    {
        if (q_.size() >= cap_)
            return false;
        q_.push_back(std::move(h));
        return true;
    }

    bool empty() const { return q_.empty(); }
    std::size_t depth() const { return q_.size(); }

    Hint pop()
    {
        Hint h = std::move(q_.front());
        q_.pop_front();
        return h;
    }

  private:
    unsigned cap_;
    std::deque<Hint> q_;
};

/**
 * The quorum state machine: versions, applied maps, hints and stats.
 * No RPC here — the Cluster drives it and owns the choreography.
 */
class QuorumCoordinator
{
  public:
    QuorumCoordinator(const ReplicationParams &params, unsigned shards,
                      chaos::RequestLedger *ledger);

    unsigned factor() const { return params_.factor; }
    unsigned writeQuorum() const { return write_quorum_; }
    unsigned readQuorum() const { return read_quorum_; }

    /** Grow per-shard state when a rebalance adds a shard. */
    void addShard();

    /** Assign the next version of `entity` (1, 2, ...). */
    std::uint64_t beginWrite(const std::string &entity);

    /** Max-merge: shard `shard` now holds `entity` at >= version. */
    void recordApplied(unsigned shard, const std::string &entity,
                       std::uint64_t version);

    std::uint64_t appliedVersion(unsigned shard,
                                 const std::string &entity) const;

    /** The write reached W acks; feeds the write-ack ledger. */
    void ackWrite(const std::string &entity, std::uint64_t version);

    std::uint64_t ackedVersion(const std::string &entity) const;

    /** A quorum read returned a version older than an acked write. */
    void recordStaleRead();

    HintQueue &hints(unsigned shard) { return hint_queues_.at(shard); }

    /** Track the high-water mark across all hint queues. */
    void noteHintDepth();

    /**
     * Post-drain invariant sweep: every acked write must still be
     * readable at quorum strength, i.e. at least R - R_q + 1 of the
     * entity's final owners hold a version >= the acked one.
     * `ownersOf` resolves an entity to its owners on the final ring;
     * lost writes are counted here and reported to the ledger.
     */
    void verifyAcked(
        const std::function<std::vector<unsigned>(const std::string &)>
            &ownersOf);

    /** Union of entities with any applied or acked version. */
    std::vector<std::string> knownEntities() const;

    /** Raw counters (Cluster folds them into the run summary). */
    struct Stats
    {
        std::uint64_t quorumWrites = 0;
        std::uint64_t writeFailures = 0;
        std::uint64_t quorumReads = 0;
        std::uint64_t readFailures = 0;
        std::uint64_t readRepairs = 0;
        std::uint64_t readRefetches = 0;
        std::uint64_t hintsQueued = 0;
        std::uint64_t hintsReplayed = 0;
        std::uint64_t hintsDropped = 0;
        std::uint64_t hintDepthPeak = 0;
        std::uint64_t rebalancesStarted = 0;
        std::uint64_t rebalancesCompleted = 0;
        std::uint64_t rebalanceBatches = 0;
        std::uint64_t rebalanceBytes = 0;
        std::uint64_t dualReads = 0;
        double rebalanceMsTotal = 0.0;
        bool consistencyChecked = false;
        std::uint64_t ackedWrites = 0;
        std::uint64_t lostAckedWrites = 0;
        std::uint64_t staleQuorumReads = 0;
    };

    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

    QuantileHistogram &writeAckNs() { return write_ack_ns_; }
    QuantileHistogram &readNs() { return read_ns_; }

    /** Fill the run summary block (active = true). */
    void harvest(core::ReplicationSummary &out) const;

  private:
    ReplicationParams params_;
    unsigned write_quorum_;
    unsigned read_quorum_;
    chaos::RequestLedger *ledger_;

    std::map<std::string, std::uint64_t> next_version_;
    std::map<std::string, std::uint64_t> acked_;
    std::vector<std::map<std::string, std::uint64_t>> applied_;
    std::vector<HintQueue> hint_queues_;

    Stats stats_;
    QuantileHistogram write_ack_ns_;
    QuantileHistogram read_ns_;
};

} // namespace microscale::cluster

#endif // MICROSCALE_CLUSTER_QUORUM_HH
