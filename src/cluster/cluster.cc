#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "base/logging.hh"
#include "core/placement.hh"
#include "teastore/profiles.hh"
#include "topo/machine.hh"

namespace microscale::cluster
{

namespace
{

/** Instruction budgets of the cache tier's own handlers. */
constexpr double kCacheHitCost = 60e3;
constexpr double kCacheFillCost = 90e3;
constexpr double kInvalidateCost = 40e3;
/** Local page assembly after a remote image fetch (the kFullHit-class
 * work the ImageProvider still does with the bytes in hand). */
constexpr double kImageAssembleCost = 350e3;
/** Size of tier control messages (keys + ids, no payload). */
constexpr std::uint32_t kCtrlBytes = 256;

/** Ops whose results the cache tier stores, in invalidation-index
 * order (Payload::arg1 of an "invalidate" request indexes this). */
constexpr const char *kEntityOps[] = {
    "categories", "products",     "product", "userByName",
    "user",       "ordersOfUser", "img",
};

const char *const kWorkerServices[] = {
    teastore::names::kWebui,       teastore::names::kAuth,
    teastore::names::kPersistence, teastore::names::kRecommender,
    teastore::names::kImage,
};

} // namespace

namespace detail
{

unsigned
entityOpIndex(const std::string &op)
{
    for (unsigned i = 0; i < std::size(kEntityOps); ++i) {
        if (op == kEntityOps[i])
            return i;
    }
    fatal("unknown cache entity op: ", op);
}

const char *
entityOpName(unsigned idx)
{
    if (idx >= std::size(kEntityOps))
        fatal("entity-op index ", idx, " out of range");
    return kEntityOps[idx];
}

unsigned
numEntityOps()
{
    return static_cast<unsigned>(std::size(kEntityOps));
}

/** All keys of one entity live under one ring point: op plus primary
 * id, so a write can invalidate every cached page of that entity with
 * a single deterministic target. */
std::string
entityOf(const std::string &op, std::uint64_t id)
{
    return op + ":" + std::to_string(id);
}

} // namespace detail

namespace
{
using detail::entityOf;
using detail::entityOpIndex;
} // namespace

void
applyFabricPreset(ClusterParams &params, const std::string &name)
{
    if (name == "ideal") {
        params.fabricBaseNs = 0;
        params.fabricPerKibNs = 0;
        params.fabricJitterCv = 0.0;
        params.fabricRackSize = 0;
        params.fabricCoreFactor = 1.0;
    } else if (name == "lan") {
        params.fabricBaseNs = 12 * kMicrosecond;
        params.fabricPerKibNs = 400;
        params.fabricJitterCv = 0.10;
        params.fabricRackSize = 0;
        params.fabricCoreFactor = 1.0;
    } else if (name == "oversub") {
        params.fabricBaseNs = 12 * kMicrosecond;
        params.fabricPerKibNs = 400;
        params.fabricJitterCv = 0.10;
        params.fabricRackSize = 4;
        params.fabricCoreFactor = 2.5;
    } else {
        fatal("unknown fabric preset: ", name,
              " (expected ideal, lan or oversub)");
    }
}

std::vector<std::string>
fabricPresetNames()
{
    return {"ideal", "lan", "oversub"};
}

topo::MachineParams
clusterMachine(const ClusterParams &params)
{
    if (params.nodes == 0)
        fatal("cluster needs at least one node");
    topo::MachineParams m = params.nodeMachine;
    m.sockets *= params.nodes;
    if (params.nodes > 1)
        m.name = params.nodeMachine.name + "-x" +
                 std::to_string(params.nodes);
    if (m.totalCpus() > kMaxCpus)
        fatal("cluster of ", params.nodes, " x ",
              params.nodeMachine.name, " needs ", m.totalCpus(),
              " CPUs, more than the ", kMaxCpus, "-CPU ceiling");
    return m;
}

// ---------------------------------------------------------------------------
// NodePlacer

NodePlacer::NodePlacer(const topo::Machine &machine,
                       const std::vector<CpuMask> &nodeBudgets,
                       autoscale::PlacerKind kind, unsigned rackSize)
    : rack_size_(rackSize)
{
    if (nodeBudgets.empty())
        fatal("NodePlacer needs at least one node budget");
    placers_.reserve(nodeBudgets.size());
    for (const CpuMask &budget : nodeBudgets) {
        placers_.push_back(std::make_unique<autoscale::ReplicaPlacer>(
            machine, budget, kind));
    }
}

double
NodePlacer::localityScore(unsigned from, unsigned to) const
{
    const autoscale::ReplicaPlacer &p = *placers_[to];
    if (p.outstanding() >= p.groupCount())
        return 0.0;
    const double free =
        static_cast<double>(p.groupCount() - p.outstanding());
    const bool sameRack = rack_size_ == 0 ||
                          from / rack_size_ == to / rack_size_;
    return free * (sameRack ? 2.0 : 1.0);
}

NodePlacer::NodeGrant
NodePlacer::grant(unsigned preferredNode)
{
    if (preferredNode >= placers_.size())
        preferredNode = 0;
    unsigned chosen = preferredNode;
    const autoscale::ReplicaPlacer &pref = *placers_[preferredNode];
    if (pref.outstanding() >= pref.groupCount()) {
        // Preferred node is full: spill to the peer with the most free
        // CCX groups, same-rack peers weighted ahead of cross-rack
        // ones; ties go to the lowest node id. When every peer is full
        // too, the preferred node's least-loaded group doubles up.
        double best_score = 0.0;
        unsigned best = preferredNode;
        for (unsigned n = 0; n < placers_.size(); ++n) {
            if (n == preferredNode)
                continue;
            const double score = localityScore(preferredNode, n);
            if (score > best_score) {
                best_score = score;
                best = n;
            }
        }
        if (best_score > 0.0) {
            chosen = best;
            ++spills_;
        }
    }
    NodeGrant g;
    g.node = chosen;
    g.grant = placers_[chosen]->grant();
    return g;
}

unsigned
NodePlacer::adopt(unsigned node, const CpuMask &mask, NodeId home)
{
    return placers_.at(node)->adopt(mask, home);
}

void
NodePlacer::release(unsigned node, unsigned id)
{
    placers_.at(node)->release(id);
}

double
NodePlacer::grantedCpus() const
{
    double total = 0.0;
    for (const auto &p : placers_)
        total += p->grantedCpus();
    return total;
}

// ---------------------------------------------------------------------------
// Router

/**
 * Routing policy: external traffic rotates over machines with active
 * WebUI replicas (the external load balancer); inter-service calls
 * stay on the caller's machine when it has an active replica of the
 * target and otherwise go to the machine with the most active
 * capacity, ties broken by a rotating cursor. No RNG is consumed, and
 * on a 1-node cluster every answer is 0 with no state change.
 */
class Cluster::Router : public svc::NodeRouter
{
  public:
    explicit Router(Cluster &owner) : owner_(owner) {}

    unsigned route(unsigned src_node, const svc::Service &target) override
    {
        const unsigned n = owner_.params_.nodes;
        if (n <= 1)
            return 0;
        if (src_node < n &&
            target.activeReplicasOnNode(static_cast<int>(src_node)) > 0)
            return src_node;
        unsigned best = src_node < n ? src_node : 0;
        unsigned best_count = 0;
        for (unsigned i = 0; i < n; ++i) {
            const unsigned cand = (spill_cursor_ + i) % n;
            const unsigned count =
                target.activeReplicasOnNode(static_cast<int>(cand));
            if (count > best_count) {
                best = cand;
                best_count = count;
            }
        }
        spill_cursor_ = (spill_cursor_ + 1) % n;
        return best;
    }

    unsigned ingress() override
    {
        const unsigned n = owner_.params_.nodes;
        if (n <= 1)
            return 0;
        const svc::Service &webui = owner_.app_.webui();
        for (unsigned i = 0; i < n; ++i) {
            const unsigned cand = (ingress_cursor_ + i) % n;
            if (webui.activeReplicasOnNode(static_cast<int>(cand)) > 0) {
                ingress_cursor_ = (cand + 1) % n;
                return cand;
            }
        }
        return 0;
    }

  private:
    Cluster &owner_;
    unsigned ingress_cursor_ = 0;
    unsigned spill_cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Cluster

Cluster::Cluster(sim::Simulation &sim, svc::Mesh &mesh,
                 teastore::App &app, const topo::Machine &machine,
                 ClusterParams params,
                 std::vector<core::PlacementPlan> plans,
                 std::vector<CpuMask> nodeBudgets,
                 autoscale::PlacerKind placerKind,
                 chaos::RequestLedger *ledger)
    : sim_(sim), mesh_(mesh), app_(app), params_(std::move(params)),
      plans_(std::move(plans)), node_budgets_(std::move(nodeBudgets)),
      cache_ring_(params_.ringVnodes), shard_ring_(params_.ringVnodes),
      ledger_(ledger)
{
    if (plans_.size() != params_.nodes ||
        node_budgets_.size() != params_.nodes)
        fatal("cluster needs one plan and budget per node (",
              params_.nodes, " nodes, ", plans_.size(), " plans, ",
              node_budgets_.size(), " budgets)");
    active_nodes_ = params_.initialNodes == 0 ? params_.nodes
                                              : params_.initialNodes;
    if (active_nodes_ > params_.nodes)
        fatal("initialNodes ", active_nodes_, " exceeds cluster size ",
              params_.nodes);

    // Tag every app replica with the machine its plan placed it on
    // (applyPlacement laid replicas out node-major), and fold those
    // grants into the cross-node placer so later node scale-outs see
    // the capacity that is already spoken for.
    placer_ = std::make_unique<NodePlacer>(machine, node_budgets_,
                                           placerKind,
                                           params_.fabricRackSize);
    for (const char *name : kWorkerServices) {
        svc::Service &s = mesh_.service(name);
        unsigned base = 0;
        for (unsigned n = 0; n < active_nodes_; ++n) {
            const core::ServicePlan &sp = plans_[n].services.at(name);
            for (unsigned r = 0; r < sp.replicas; ++r) {
                s.setReplicaClusterNode(base + r, static_cast<int>(n));
                placer_->adopt(n, sp.masks[r], sp.homes[r]);
            }
            base += sp.replicas;
        }
    }
    svc::Service &registry = mesh_.service(teastore::names::kRegistry);
    for (unsigned r = 0; r < registry.replicaCount(); ++r)
        registry.setReplicaClusterNode(r, 0);

    buildDataTier();

    router_ = std::make_unique<Router>(*this);
    mesh_.setRouter(router_.get());
}

Cluster::~Cluster() = default;

std::string
Cluster::shardName(unsigned idx) const
{
    return "shard" + std::to_string(idx);
}

std::string
Cluster::cacheName(unsigned idx) const
{
    return "cache" + std::to_string(idx);
}

void
Cluster::buildDataTier()
{
    if (params_.shards == 0) {
        if (params_.cacheNodes > 0)
            fatal("cache tier requires shards > 0");
        if (params_.replication.factor > 1)
            fatal("data replication requires shards > 0");
        return;
    }
    const unsigned factor = params_.replication.factor;
    if (factor < 1 || factor > 3)
        fatal("data replication factor must be 1-3, got ", factor);
    if (factor > 1) {
        if (factor > params_.shards)
            fatal("replication factor ", factor, " exceeds shard count ",
                  params_.shards);
        const unsigned span = std::min(params_.shards, active_nodes_);
        if (factor > span)
            fatal("replication factor ", factor,
                  " exceeds the distinct nodes hosting shards (", span,
                  ")");
        const unsigned w = resolvedWriteQuorum(params_.replication);
        const unsigned rq = resolvedReadQuorum(params_.replication);
        if (w > factor)
            fatal("write quorum ", w, " exceeds replication factor ",
                  factor);
        if (rq > factor)
            fatal("read quorum ", rq, " exceeds replication factor ",
                  factor);
        coordinator_ = std::make_unique<QuorumCoordinator>(
            params_.replication, params_.shards, ledger_);
    }
    shard_requests_.assign(params_.shards, 0);
    cache_state_.resize(params_.cacheNodes);

    // Stateful members stay pinned to the initially active machines:
    // the node scaler grows stateless app capacity; with replication
    // on, scale events instead trigger the rebalance stream.
    // Round-robin keeps shards and caches spread.
    for (unsigned j = 0; j < params_.shards; ++j) {
        const unsigned node = j % active_nodes_;
        createShard(j, node);
        shard_ring_.addNode(j);
        shard_ring_.setGroup(j, node);
    }
    for (unsigned i = 0; i < params_.cacheNodes; ++i) {
        cache_ring_.addNode(i);
        svc::ServiceParams sp;
        sp.name = cacheName(i);
        sp.profile = teastore::persistenceProfile();
        sp.replicas = 1;
        sp.workersPerReplica = params_.cacheWorkers;
        sp.batchedTiming = app_.params().batchedTiming;
        svc::Service *s = mesh_.createService(sp);
        const unsigned node = i % active_nodes_;
        s->setReplicaPlacement(0, node_budgets_[node], kInvalidNode);
        s->setReplicaClusterNode(0, static_cast<int>(node));
        caches_.push_back(s);
        installCacheOps(i);
        if (coordinator_) {
            s->addAvailabilityObserver(
                [this, i](unsigned replica, bool down) {
                    (void)replica;
                    onCacheAvailability(i, down);
                });
        }
    }
    app_.setScaleoutBackend(this);
}

svc::Service *
Cluster::createShard(unsigned idx, unsigned node)
{
    // The caller decides which ring (serving or rebalance-target)
    // the new shard joins.
    svc::ServiceParams sp;
    sp.name = shardName(idx);
    sp.profile = teastore::persistenceProfile();
    sp.replicas = 1;
    sp.workersPerReplica = params_.shardWorkers;
    sp.batchedTiming = app_.params().batchedTiming;
    svc::Service *s = mesh_.createService(sp);
    s->setReplicaPlacement(0, node_budgets_[node], kInvalidNode);
    s->setReplicaClusterNode(0, static_cast<int>(node));
    app_.installDataOps(*s, /*direct=*/true);
    app_.installImageFetchOp(*s);
    if (idx >= shard_requests_.size())
        shard_requests_.resize(idx + 1, 0);
    shards_.push_back(s);
    if (coordinator_) {
        installQuorumOps(s, idx);
        s->addAvailabilityObserver(
            [this, idx](unsigned replica, bool down) {
                (void)replica;
                onShardAvailability(idx, down);
            });
    }
    return s;
}

void
Cluster::shardCall(svc::HandlerCtx &ctx, const std::string &op,
                   const std::string &entity, svc::Payload request,
                   std::function<void(const svc::Payload &)> next)
{
    if (coordinator_) {
        quorumRead(ctx, op, entity, std::move(request),
                   std::move(next));
        return;
    }
    const unsigned shard = shard_ring_.nodeFor(entity);
    ++shard_requests_[shard];
    ctx.call(shardName(shard), op, std::move(request), std::move(next));
}

void
Cluster::cacheFill(unsigned cacheIdx, const std::string &key,
                   const svc::Payload &payload)
{
    CacheNodeState &cs = cache_state_[cacheIdx];
    auto it = cs.entries.find(key);
    if (it != cs.entries.end()) {
        // A concurrent miss for the same key already filled it.
        it->second.payload = payload;
        cs.lru.splice(cs.lru.end(), cs.lru, it->second.lruIt);
        return;
    }
    if (cs.entries.size() >= params_.cacheCapacity && !cs.lru.empty()) {
        cs.entries.erase(cs.lru.front());
        cs.lru.pop_front();
        ++cache_stats_.evictions;
    }
    cs.lru.push_back(key);
    CacheNodeState::Entry entry;
    entry.payload = payload;
    entry.lruIt = std::prev(cs.lru.end());
    cs.entries.emplace(key, std::move(entry));
}

void
Cluster::installCacheOps(unsigned cacheIdx)
{
    svc::Service *cache = caches_[cacheIdx];

    // The six data reads plus the full-image fetch: hit replays the
    // cached payload; miss fetches from the owning shard and fills,
    // unless a write invalidated the entity while the fetch was in
    // flight (epoch check) — then the stale result is served to this
    // caller but not cached.
    for (const char *op : kEntityOps) {
        const std::string op_name = op;
        const std::string shard_op =
            op_name == "img" ? "imgFetch" : op_name;
        cache->addOp(op_name, [this, cacheIdx, op_name,
                               shard_op](svc::HandlerCtx &ctx) {
            CacheNodeState &cs = cache_state_[cacheIdx];
            const svc::Payload &req = ctx.request();
            const std::string entity = entityOf(op_name, req.arg0);
            const std::string key =
                entity + ":" + std::to_string(req.arg1);
            auto it = cs.entries.find(key);
            if (it != cs.entries.end()) {
                ++cache_stats_.hits;
                cs.lru.splice(cs.lru.end(), cs.lru, it->second.lruIt);
                ctx.response() = it->second.payload;
                ctx.compute(app_.scaled(kCacheHitCost),
                            [&ctx] { ctx.done(); });
                return;
            }
            ++cache_stats_.misses;
            auto ep = cs.entityEpoch.find(entity);
            const std::uint64_t epoch0 =
                ep == cs.entityEpoch.end() ? 0 : ep->second;
            shardCall(ctx, shard_op, entity, req,
                      [this, cacheIdx, key, entity, epoch0,
                       &ctx](const svc::Payload &resp) {
                          CacheNodeState &now =
                              cache_state_[cacheIdx];
                          auto e = now.entityEpoch.find(entity);
                          const std::uint64_t epoch =
                              e == now.entityEpoch.end() ? 0
                                                         : e->second;
                          if (epoch == epoch0)
                              cacheFill(cacheIdx, key, resp);
                          else
                              ++cache_stats_.staleFills;
                          ctx.response() = resp;
                          ctx.compute(app_.scaled(kCacheFillCost),
                                      [&ctx] { ctx.done(); });
                      });
        });
    }

    cache->addOp("invalidate", [this, cacheIdx](svc::HandlerCtx &ctx) {
        CacheNodeState &cs = cache_state_[cacheIdx];
        const svc::Payload &req = ctx.request();
        if (req.arg1 >= std::size(kEntityOps))
            fatal("invalidate with bad entity-op index ", req.arg1);
        const std::string entity =
            entityOf(kEntityOps[req.arg1], req.arg0);
        ++cs.entityEpoch[entity];
        ++cache_stats_.invalidations;
        const std::string prefix = entity + ":";
        auto it = cs.entries.lower_bound(prefix);
        while (it != cs.entries.end() &&
               it->first.compare(0, prefix.size(), prefix) == 0) {
            cs.lru.erase(it->second.lruIt);
            it = cs.entries.erase(it);
        }
        ctx.response().bytes = 128;
        ctx.compute(app_.scaled(kInvalidateCost),
                    [&ctx] { ctx.done(); });
    });
}

void
Cluster::tierRead(svc::HandlerCtx &ctx, const std::string &op,
                  const std::string &entity)
{
    if (caches_.empty()) {
        // No cache tier: reads go straight to the owning shard.
        shardCall(ctx, op, entity, ctx.request(),
                  [&ctx](const svc::Payload &resp) {
                      ctx.response() = resp;
                      ctx.done();
                  });
        return;
    }
    const unsigned c = cache_ring_.nodeFor(entity);
    if (coordinator_ && caches_[c]->replicaDown(0)) {
        // Replicated tier: a dead cache node must not take its slice
        // of the keyspace down with it — bypass to a quorum read.
        const std::string shard_op = op == "img" ? "imgFetch" : op;
        quorumRead(ctx, shard_op, entity, ctx.request(),
                   [&ctx](const svc::Payload &resp) {
                       ctx.response() = resp;
                       ctx.done();
                   });
        return;
    }
    ctx.call(cacheName(c), op, ctx.request(),
             [&ctx](const svc::Payload &resp) {
                 ctx.response() = resp;
                 ctx.done();
             });
}

bool
Cluster::persistenceOp(svc::HandlerCtx &ctx, const std::string &op)
{
    if (shards_.empty())
        return false;
    const svc::Payload &req = ctx.request();
    if (op == "placeOrder") {
        // Writes go to the shard(s) owning the user's orders, then
        // invalidate that entity in its cache node so the next read
        // misses through to fresh data.
        const std::uint64_t user = req.arg0;
        const std::string entity = entityOf("ordersOfUser", user);
        auto invalidate = [this, user, entity,
                           &ctx](const svc::Payload &resp) {
            if (caches_.empty()) {
                ctx.response() = resp;
                ctx.done();
                return;
            }
            const unsigned c = cache_ring_.nodeFor(entity);
            svc::Payload inv;
            inv.bytes = kCtrlBytes;
            inv.arg0 = user;
            inv.arg1 = entityOpIndex("ordersOfUser");
            if (coordinator_) {
                // Replicated tier: a down cache node must not fail an
                // acked write. Its entries are flushed wholesale when
                // it comes back (onCacheAvailability).
                ctx.call(cacheName(c), "invalidate", inv,
                         [order = resp, &ctx](const svc::Payload &,
                                              svc::Status) {
                             ctx.response() = order;
                             ctx.done();
                         });
                return;
            }
            ctx.call(cacheName(c), "invalidate", inv,
                     [order = resp, &ctx](const svc::Payload &) {
                         ctx.response() = order;
                         ctx.done();
                     });
        };
        if (coordinator_) {
            quorumWrite(ctx, "placeOrder", entity, req,
                        std::move(invalidate));
        } else {
            shardCall(ctx, "placeOrder", entity, req,
                      std::move(invalidate));
        }
        return true;
    }
    tierRead(ctx, op, entityOf(op, req.arg0));
    return true;
}

bool
Cluster::imageMiss(svc::HandlerCtx &ctx, std::uint64_t product,
                   std::uint32_t bytes)
{
    if (shards_.empty())
        return false;
    (void)bytes; // the tier answers with the authoritative size
    const std::string entity = entityOf("img", product);
    svc::Payload req;
    req.bytes = kCtrlBytes;
    req.arg0 = product;
    auto assemble = [this, &ctx](const svc::Payload &resp) {
        ctx.response().bytes = resp.bytes;
        ctx.compute(app_.scaled(kImageAssembleCost),
                    [&ctx] { ctx.done(); });
    };
    if (caches_.empty()) {
        shardCall(ctx, "imgFetch", entity, std::move(req),
                  std::move(assemble));
        return true;
    }
    const unsigned c = cache_ring_.nodeFor(entity);
    if (coordinator_ && caches_[c]->replicaDown(0)) {
        quorumRead(ctx, "imgFetch", entity, std::move(req),
                   std::move(assemble));
        return true;
    }
    ctx.call(cacheName(c), "img", std::move(req), std::move(assemble));
    return true;
}

// ---------------------------------------------------------------------------
// Node scaler

void
Cluster::start()
{
    const ReplicationParams &rep = params_.replication;
    if (coordinator_ && rep.scaleAddNodeAt > 0) {
        if (active_nodes_ >= params_.nodes)
            fatal("scaleAddNodeAt needs a spare node (all ",
                  params_.nodes, " active)");
        sim_.scheduleAfter(
            rep.scaleAddNodeAt,
            [this] { activateNode(active_nodes_, sim_.now()); },
            /*background=*/true);
    }
    if (coordinator_ && rep.drainShardAt > 0) {
        if (rep.drainShardId >= params_.shards)
            fatal("drainShardId ", rep.drainShardId,
                  " out of range (", params_.shards, " shards)");
        sim_.scheduleAfter(
            rep.drainShardAt,
            [this] { startDrainRebalance(params_.replication.drainShardId); },
            /*background=*/true);
    }
    if (!params_.scaler.enabled)
        return;
    scaler_event_.start(sim_, params_.scaler.period,
                        [this] { scalerTick(); });
}

void
Cluster::stop()
{
    scaler_event_.stop();
}

double
Cluster::utilization() const
{
    // The bottleneck service's worker-busy fraction, not the fleet
    // mean: one saturated tier is reason enough for another machine,
    // and averaging it against idle tiers would mask exactly the
    // overload the scaler exists to absorb.
    double peak = 0.0;
    for (const char *name : kWorkerServices) {
        const svc::Service &s = mesh_.service(name);
        const double total = static_cast<double>(s.workers().size());
        if (total > 0.0)
            peak = std::max(peak, s.busyWorkers() / total);
    }
    return peak;
}

void
Cluster::scalerTick()
{
    if (active_nodes_ >= params_.nodes)
        return;
    if (utilization() > params_.scaler.hiUtilization)
        ++hot_periods_;
    else
        hot_periods_ = 0;
    if (hot_periods_ < params_.scaler.consecutive)
        return;
    if (sim_.now() < cooldown_until_)
        return;
    hot_periods_ = 0;
    cooldown_until_ = sim_.now() + params_.scaler.cooldown;
    provisionNode(active_nodes_, sim_.now());
}

void
Cluster::provisionNode(unsigned node, Tick decidedAt)
{
    Tick lag;
    if (warm_used_ < params_.scaler.warmPool) {
        ++warm_used_;
        ++warm_provisions_;
        lag = params_.scaler.warmBootDelay;
    } else {
        ++cold_provisions_;
        lag = params_.scaler.coldBootDelay;
    }
    ++provisions_;
    // Serving lag = boot + the replicas' registration delay.
    provision_lag_ms_.push_back(
        ticksToMillis(lag + params_.scaler.warmup.registrationDelay));
    sim_.scheduleAfter(
        lag, [this, node, decidedAt] { activateNode(node, decidedAt); },
        /*background=*/true);
}

void
Cluster::activateNode(unsigned node, Tick decidedAt)
{
    (void)decidedAt;
    for (const char *name : kWorkerServices) {
        const core::ServicePlan &sp = plans_[node].services.at(name);
        svc::Service &s = mesh_.service(name);
        for (unsigned r = 0; r < sp.replicas; ++r) {
            const NodePlacer::NodeGrant g = placer_->grant(node);
            const unsigned idx = s.addReplica(params_.scaler.warmup);
            s.setReplicaPlacement(idx, g.grant.mask, g.grant.home);
            s.setReplicaClusterNode(idx, static_cast<int>(g.node));
        }
    }
    active_nodes_ = std::max(active_nodes_, node + 1);
    // With replication on, a freshly joined node also takes a slice
    // of the data: spawn a shard there and stream its ranges over.
    if (coordinator_)
        startAddRebalance(node);
}

// ---------------------------------------------------------------------------
// Harvest

void
Cluster::harvest(core::RunResult &result) const
{
    core::ScaleoutSummary &so = result.scaleout;
    so.active = true;
    so.nodes = params_.nodes;
    so.activeNodesEnd = active_nodes_;
    so.shards = params_.shards;
    so.cacheNodes = params_.cacheNodes;

    const net::NetStats &net = mesh_.network().stats();
    so.fabricMessages = net.fabricMessages;
    so.fabricBytes = net.fabricBytes;
    so.fabricShare =
        net.messages > 0
            ? static_cast<double>(net.fabricMessages) /
                  static_cast<double>(net.messages)
            : 0.0;

    so.cacheHits = cache_stats_.hits;
    so.cacheMisses = cache_stats_.misses;
    so.cacheInvalidations = cache_stats_.invalidations;
    so.cacheEvictions = cache_stats_.evictions;
    const std::uint64_t lookups = cache_stats_.hits + cache_stats_.misses;
    so.cacheHitRate =
        lookups > 0 ? static_cast<double>(cache_stats_.hits) /
                          static_cast<double>(lookups)
                    : 0.0;

    std::uint64_t shard_total = 0;
    for (std::uint64_t c : shard_requests_)
        shard_total += c;
    so.shardRequests = shard_total;
    if (!shard_requests_.empty() && shard_total > 0) {
        const double mean =
            static_cast<double>(shard_total) /
            static_cast<double>(shard_requests_.size());
        double var = 0.0;
        for (std::uint64_t c : shard_requests_) {
            const double d = static_cast<double>(c) - mean;
            var += d * d;
        }
        var /= static_cast<double>(shard_requests_.size());
        so.shardLoadCv = std::sqrt(var) / mean;
    }

    so.nodesProvisioned = provisions_;
    so.warmProvisions = warm_provisions_;
    so.coldProvisions = cold_provisions_;
    if (!provision_lag_ms_.empty()) {
        double sum = 0.0;
        for (double lag : provision_lag_ms_)
            sum += lag;
        so.provisionLagMeanMs =
            sum / static_cast<double>(provision_lag_ms_.size());
    }

    if (coordinator_)
        coordinator_->harvest(result.replication);
}

void
Cluster::harvestReplication(core::RunResult &result) const
{
    if (coordinator_)
        coordinator_->harvest(result.replication);
}

// ---------------------------------------------------------------------------
// Runner

core::RunResult
runScaleout(const core::ExperimentConfig &base,
            const ClusterParams &params)
{
    if (params.nodes == 0)
        fatal("cluster needs at least one node");
    if (base.cores != 0)
        fatal("cluster runs own whole machines; scale with nodes, "
              "not cores");
    if (params.cacheNodes > 0 && params.shards == 0)
        fatal("cache tier requires shards > 0");
    const unsigned initial =
        params.initialNodes == 0 ? params.nodes : params.initialNodes;
    if (initial > params.nodes)
        fatal("initialNodes ", initial, " exceeds cluster size ",
              params.nodes);

    core::ExperimentConfig cfg = base;
    cfg.machine = clusterMachine(params);
    cfg.net.fabricBaseNs = params.fabricBaseNs;
    cfg.net.fabricPerKibNs = params.fabricPerKibNs;
    cfg.net.fabricJitterCv = params.fabricJitterCv;
    cfg.net.fabricRackSize = params.fabricRackSize;
    cfg.net.fabricCoreFactor = params.fabricCoreFactor;

    // Shared between the three hooks; kept alive by their captures
    // (cfg outlives the runExperiment call below).
    struct State
    {
        std::vector<CpuMask> budgets;
        std::vector<core::PlacementPlan> plans;
        std::unique_ptr<Cluster> cluster;
        /** Valid between harvestExtra and postDrain (the RunResult
         * lives in runExperiment's frame the whole time). */
        core::RunResult *result = nullptr;
    };
    auto state = std::make_shared<State>();

    // Per-node plans over each machine's socket group; the app is
    // built from the initially active nodes' plans concatenated
    // node-major (so replica index ranges map back to machines). The
    // registry stays a cluster singleton on node 0. Spare nodes keep
    // their plans for the scaler. On a 1-node cluster this reduces to
    // exactly buildPlacement over the whole budget.
    cfg.planOverride = [state, params, initial,
                        placement = base.placement,
                        demand = base.demand, sizing = base.sizing](
                           const topo::Machine &machine,
                           const CpuMask &budget) {
        state->budgets.clear();
        state->plans.clear();
        const unsigned spn = params.nodeMachine.sockets;
        for (unsigned n = 0; n < params.nodes; ++n) {
            CpuMask nb;
            for (unsigned s = n * spn; s < (n + 1) * spn; ++s)
                nb = nb | machine.cpusOfSocket(s);
            nb = nb & budget;
            state->budgets.push_back(nb);
            state->plans.push_back(core::buildPlacement(
                placement, machine, nb, demand, sizing));
        }
        core::PlacementPlan merged;
        merged.kind = placement;
        for (const char *name : kWorkerServices) {
            core::ServicePlan mp;
            mp.workers = state->plans[0].services.at(name).workers;
            mp.replicas = 0;
            for (unsigned n = 0; n < initial; ++n) {
                const core::ServicePlan &sp =
                    state->plans[n].services.at(name);
                mp.replicas += sp.replicas;
                mp.masks.insert(mp.masks.end(), sp.masks.begin(),
                                sp.masks.end());
                mp.homes.insert(mp.homes.end(), sp.homes.begin(),
                                sp.homes.end());
            }
            merged.services[name] = std::move(mp);
        }
        merged.services[teastore::names::kRegistry] =
            state->plans[0].services.at(teastore::names::kRegistry);
        return merged;
    };

    const autoscale::PlacerKind placer_kind =
        base.placement == core::PlacementKind::OsDefault
            ? autoscale::PlacerKind::OsDefault
            : autoscale::PlacerKind::TopologyAware;
    cfg.postBuild = [state, params, placer_kind,
                     ledger = base.ledger](sim::Simulation &sim,
                                           svc::Mesh &mesh,
                                           teastore::App &app) {
        state->cluster = std::make_unique<Cluster>(
            sim, mesh, app, mesh.kernel().machine(), params,
            state->plans, state->budgets, placer_kind, ledger);
        state->cluster->start();
    };

    cfg.harvestExtra = [state](sim::Simulation &, svc::Mesh &,
                               teastore::App &,
                               core::RunResult &result) {
        state->cluster->harvest(result);
        state->result = &result;
        // Stop the scaler while the simulation still exists; the
        // Cluster object itself outlives the run.
        state->cluster->stop();
    };

    // After the drain: sweep the acked-write ledger against the final
    // replica state and patch the verdict into the harvested summary
    // (harvest ran pre-drain). Composes with any caller postDrain.
    cfg.postDrain = [state, inner = base.postDrain](
                        sim::Simulation &sim, svc::Mesh &mesh,
                        teastore::App &app) {
        if (inner)
            inner(sim, mesh, app);
        state->cluster->verifyReplication();
        if (state->result != nullptr)
            state->cluster->harvestReplication(*state->result);
    };

    return core::runExperiment(cfg);
}

} // namespace microscale::cluster
