/**
 * @file
 * Cluster: the scale-out layer joining N machines into one deployment.
 *
 * The cluster is modeled as one super-machine: each member node is a
 * copy of a per-node topology occupying its own socket group, so one
 * Simulation / ExecEngine / Kernel / Mesh runs the whole fleet while
 * socket boundaries keep per-node scheduling, frequency and cache
 * behavior exactly what a standalone machine would see. On top of
 * that:
 *
 *  - a Fabric model (net::Network::sendVia): messages whose endpoints
 *    resolve to different machines pay base + per-KiB serialization
 *    latency with an optional oversubscribed core/leaf tier, and are
 *    subject to per-fabric-link loss/partition faults;
 *  - a NodeRouter (svc::Mesh hook): external traffic enters through a
 *    rotating ingress, inter-service calls stay on the caller's
 *    machine when a local replica exists and spill to the peer with
 *    the most active capacity otherwise;
 *  - a sharded persistence tier fronted by a consistent-hash cache
 *    tier (CacheTier): Persistence data ops and full-image fetches
 *    route hash(entity) -> cache node -> owning shard, with bounded
 *    LRU caches, epoch-checked fills and write invalidation — all as
 *    ordinary mesh calls so every hop pays transport and CPU;
 *  - a NodePlacer extending autoscale::ReplicaPlacer across machines
 *    (CCX grants within a node, locality-scored spill to peers);
 *  - a NodeScaler: whole-node provisioning with warm-pool vs
 *    cold-boot lag, actuated through the Service elasticity hooks.
 *
 * A 1-node cluster with an ideal fabric and no cache/shard tier is
 * byte-identical to the single-machine runner (pinned by a golden
 * test): the router resolves every hop to machine 0 and sendVia
 * degenerates to the link-aware loopback path.
 */

#ifndef MICROSCALE_CLUSTER_CLUSTER_HH
#define MICROSCALE_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/placer.hh"
#include "cluster/quorum.hh"
#include "cluster/ring.hh"
#include "core/experiment.hh"
#include "sim/simulation.hh"
#include "svc/mesh.hh"
#include "topo/params.hh"

namespace microscale::cluster
{

namespace detail
{
/** The cacheable entity ops shared by the cache and quorum layers
 * (defined in cluster.cc; index order is the invalidation index). */
unsigned entityOpIndex(const std::string &op);
const char *entityOpName(unsigned idx);
unsigned numEntityOps();
std::string entityOf(const std::string &op, std::uint64_t id);
} // namespace detail

/** Whole-node autoscaling configuration. */
struct NodeScalerParams
{
    bool enabled = false;

    /** Utilization sampling / decision period. */
    Tick period = 500 * kMillisecond;

    /** Provision the next node when the worker-busy fraction of the
     * app services stays above this for `consecutive` periods. */
    double hiUtilization = 0.70;
    unsigned consecutive = 2;

    /** Nodes held booted-but-idle: provisioning one costs only the
     * warm lag. Beyond the pool a node cold-boots. */
    unsigned warmPool = 1;
    Tick warmBootDelay = 250 * kMillisecond;
    Tick coldBootDelay = 3 * kSecond;

    /** Minimum time between node provisions. */
    Tick cooldown = 2 * kSecond;

    /** Warm-up model of the replicas spawned on a fresh node. */
    svc::Service::WarmupParams warmup;
};

/** Everything the scale-out layer adds on top of ExperimentConfig. */
struct ClusterParams
{
    /** Machines in the cluster. nodes * per-node CPUs must fit in
     * kMaxCpus (512): 16 x server32 is the largest stock sweep. */
    unsigned nodes = 1;

    /** Machines serving traffic from the start; the rest are spare
     * capacity for the NodeScaler. 0 = all of them. */
    unsigned initialNodes = 0;

    /** Per-node topology; the cluster machine is this with sockets
     * multiplied by `nodes`. */
    topo::MachineParams nodeMachine;

    /** Fabric latency (copied into NetParams). 0/0 = ideal fabric:
     * cross-machine messages are free (but still counted). */
    Tick fabricBaseNs = 0;
    Tick fabricPerKibNs = 0;
    double fabricJitterCv = 0.0;
    /** Leaf/core tiers: racks of this many machines; inter-rack hops
     * pay fabricCoreFactor x latency. 0 = flat fabric. */
    unsigned fabricRackSize = 0;
    double fabricCoreFactor = 1.0;

    /** Persistence shards (0 disables the shard tier and the cache
     * tier with it; data ops then execute locally as ever). */
    unsigned shards = 0;
    /** Cache nodes fronting the shards (0 with shards > 0 routes
     * data ops straight to their owning shard). */
    unsigned cacheNodes = 0;
    /** LRU entries per cache node. */
    unsigned cacheCapacity = 8192;
    /** Virtual tokens per member on the cache/shard rings. */
    unsigned ringVnodes = 64;
    unsigned shardWorkers = 24;
    unsigned cacheWorkers = 16;

    /** Replicated data tier (factor 1 = the plain sharded tier). */
    ReplicationParams replication;

    NodeScalerParams scaler;
};

/**
 * Apply a named fabric preset: "ideal" (free), "lan" (12us + 400ns/KiB,
 * 10% jitter), "oversub" (lan with racks of 4 and a 2.5x core tier).
 * fatal() on unknown names.
 */
void applyFabricPreset(ClusterParams &params, const std::string &name);

/** Names accepted by applyFabricPreset. */
std::vector<std::string> fabricPresetNames();

/**
 * The cluster super-machine: `nodeMachine` with sockets multiplied by
 * `nodes`. fatal() when the result exceeds kMaxCpus or when the
 * parameters are inconsistent.
 */
topo::MachineParams clusterMachine(const ClusterParams &params);

/**
 * Cross-machine replica placement: one autoscale::ReplicaPlacer per
 * node hands out CCX grants inside that node; when the preferred node
 * is full the grant spills to the peer with the best locality score
 * (free CCX capacity, same-rack peers ahead of cross-rack ones).
 */
class NodePlacer
{
  public:
    NodePlacer(const topo::Machine &machine,
               const std::vector<CpuMask> &nodeBudgets,
               autoscale::PlacerKind kind, unsigned rackSize);

    struct NodeGrant
    {
        /** Node that actually provided the capacity. */
        unsigned node = 0;
        autoscale::PlacerGrant grant;
    };

    /** Grant one replica's capacity, preferring `preferredNode`. */
    NodeGrant grant(unsigned preferredNode);

    /** Fold a plan-placed replica into `node`'s accounting. */
    unsigned adopt(unsigned node, const CpuMask &mask, NodeId home);

    void release(unsigned node, unsigned id);

    double grantedCpus() const;

    /** Grants that landed on a different node than preferred. */
    std::uint64_t spills() const { return spills_; }

  private:
    /** Higher is better; <= 0 means "no capacity". */
    double localityScore(unsigned from, unsigned to) const;

    std::vector<std::unique_ptr<autoscale::ReplicaPlacer>> placers_;
    unsigned rack_size_ = 0;
    std::uint64_t spills_ = 0;
};

class Cluster;

/**
 * Run one scale-out experiment: `base` describes the per-node world
 * exactly as core::runExperiment would take it (base.machine is
 * ignored; params.nodeMachine defines the node), `params` the cluster
 * on top. The result is the standard RunResult with `scaleout` filled.
 */
core::RunResult runScaleout(const core::ExperimentConfig &base,
                            const ClusterParams &params);

/**
 * The assembled cluster runtime: routing tables, cache/shard tier and
 * node scaler. Created by runScaleout inside the experiment's
 * postBuild hook; exposed for tests that drive the pieces directly.
 */
class Cluster : public teastore::ScaleoutBackend
{
  public:
    /**
     * @param plans per-node placement plans (index = node id), built
     *        over each node's socket budget; plans beyond
     *        `initialNodes` belong to spare nodes the scaler may
     *        bring up later.
     */
    Cluster(sim::Simulation &sim, svc::Mesh &mesh, teastore::App &app,
            const topo::Machine &machine, ClusterParams params,
            std::vector<core::PlacementPlan> plans,
            std::vector<CpuMask> nodeBudgets,
            autoscale::PlacerKind placerKind,
            chaos::RequestLedger *ledger = nullptr);

    ~Cluster() override;

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** ScaleoutBackend: reroute a Persistence data op through the
     * cache/shard tier. False (local execution) when shards == 0. */
    bool persistenceOp(svc::HandlerCtx &ctx,
                       const std::string &op) override;

    /** ScaleoutBackend: serve a full-image miss from the tier. */
    bool imageMiss(svc::HandlerCtx &ctx, std::uint64_t product,
                   std::uint32_t bytes) override;

    const ClusterParams &params() const { return params_; }

    /** Machines currently serving traffic. */
    unsigned activeNodes() const { return active_nodes_; }

    /** Start the node scaler's control loop (no-op when disabled). */
    void start();
    void stop();

    /** Fill the run summary (fabric, cache, shard, scaler counters). */
    void harvest(core::RunResult &result) const;

    /** Cache-tier counters (exposed for tests). */
    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t evictions = 0;
        /** Fills dropped because the entity epoch moved mid-miss. */
        std::uint64_t staleFills = 0;
    };

    const CacheStats &cacheStats() const { return cache_stats_; }

    /** Requests served by each shard (ring balance). */
    const std::vector<std::uint64_t> &shardRequests() const
    {
        return shard_requests_;
    }

    /** Node-scaler provisioning counters. */
    std::uint64_t nodesProvisioned() const { return provisions_; }

    /** One scaler decision step (exposed for tests). */
    void scalerTick();

    /** Quorum state machine (nullptr at factor 1). */
    const QuorumCoordinator *coordinator() const
    {
        return coordinator_.get();
    }

    /**
     * Post-drain verification: sweep the acked-write ledger against
     * the final ring and replica version maps (no-op at factor 1).
     * Call after the simulation drained; runScaleout wires it into
     * the experiment's postDrain hook.
     */
    void verifyReplication();

    /** Patch the post-drain counters into an already-harvested
     * summary (the harvest hook runs before the drain). */
    void harvestReplication(core::RunResult &result) const;

  private:
    class Router;

    /** One cache node's bounded LRU + entity epochs. */
    struct CacheNodeState
    {
        struct Entry
        {
            svc::Payload payload;
            /** Recency list position (back = most recent). */
            std::list<std::string>::iterator lruIt;
        };

        /** Keyed by op:arg0:arg1 (ordered, so an entity's keys form a
         * contiguous prefix range for invalidation). */
        std::map<std::string, Entry> entries;
        /** Keys, least recently used first. */
        std::list<std::string> lru;
        /** Write epoch per entity; bumped by every invalidation so a
         * fill that raced a write is detected and dropped. */
        std::map<std::string, std::uint64_t> entityEpoch;
    };

    void buildDataTier();
    void installCacheOps(unsigned cacheIdx);

    /** Insert a filled entry, evicting the LRU one at capacity. */
    void cacheFill(unsigned cacheIdx, const std::string &key,
                   const svc::Payload &payload);

    /** Route one read op through the tier (shared by the six data
     * reads and the image path). */
    void tierRead(svc::HandlerCtx &ctx, const std::string &op,
                  const std::string &entity);

    /** Forward a request to the shard owning `entity`. */
    void shardCall(svc::HandlerCtx &ctx, const std::string &op,
                   const std::string &entity, svc::Payload request,
                   std::function<void(const svc::Payload &)> next);

    std::string shardName(unsigned idx) const;
    std::string cacheName(unsigned idx) const;

    // Replicated data tier (quorum.cc). All inert at factor 1.

    /** Create one shard service on `node` and register its ops. */
    svc::Service *createShard(unsigned idx, unsigned node);

    /** Register applyWrite/versionProbe/migrate on a shard. */
    void installQuorumOps(svc::Service *s, unsigned idx);

    /** Owners of `entity` on the serving ring (factor entries). */
    std::vector<unsigned> shardOwners(const std::string &entity) const;

    bool shardUp(unsigned shard) const;

    /** Quorum write: all owners, ack at W, hints for the rest. */
    void quorumWrite(svc::HandlerCtx &ctx, const std::string &op,
                     const std::string &entity, svc::Payload request,
                     std::function<void(const svc::Payload &)> next);

    /** Quorum read: full read + R_q-1 version probes, refetch and
     * read-repair on divergence. */
    void quorumRead(svc::HandlerCtx &ctx, const std::string &op,
                    const std::string &entity, svc::Payload request,
                    std::function<void(const svc::Payload &)> next);

    /** Availability edge of shard/cache replicas (hint replay and
     * cache flush hooks). */
    void onShardAvailability(unsigned shard, bool down);
    void onCacheAvailability(unsigned cacheIdx, bool down);

    /** Replay the next queued hint for a recovered shard. */
    void replayNextHint(unsigned shard);

    /** Queue a hint for a write owed to an unreachable shard. */
    void queueHint(unsigned shard, const std::string &entity,
                   const svc::Payload &request, std::uint64_t version);

    /** Background applyWrite to one owner (async replication leg or
     * read repair), issued from cluster node `srcNode`. */
    void asyncApply(unsigned shard, const std::string &entity,
                    const svc::Payload &request, std::uint64_t version,
                    unsigned srcNode);

    /** Scale-event rebalancing: stream moved ranges to a fresh shard
     * on `node` (add) or away from a draining shard (drain). */
    void startAddRebalance(unsigned node);
    void startDrainRebalance(unsigned shard);
    void migrateNextBatch();
    void finishRebalance();
    void abortRebalance();

    /** Entities in the modeled store (rebalance volume estimate). */
    std::uint64_t storeEntityCount() const;

    /** Worker-busy fraction of the app services (scaler signal). */
    double utilization() const;

    /** Bring the next spare node into service after its boot lag. */
    void provisionNode(unsigned node, Tick decidedAt);
    void activateNode(unsigned node, Tick decidedAt);

    sim::Simulation &sim_;
    svc::Mesh &mesh_;
    teastore::App &app_;
    ClusterParams params_;
    std::vector<core::PlacementPlan> plans_;
    std::vector<CpuMask> node_budgets_;

    std::unique_ptr<Router> router_;
    std::unique_ptr<NodePlacer> placer_;

    HashRing cache_ring_;
    HashRing shard_ring_;
    std::vector<svc::Service *> shards_;
    std::vector<svc::Service *> caches_;
    std::vector<CacheNodeState> cache_state_;
    CacheStats cache_stats_;
    std::vector<std::uint64_t> shard_requests_;

    std::unique_ptr<QuorumCoordinator> coordinator_;
    chaos::RequestLedger *ledger_ = nullptr;
    /** Target ring while a rebalance stream is in flight. */
    std::unique_ptr<HashRing> next_ring_;
    /** Shard being drained (rebalance away), kNoShard otherwise. */
    static constexpr unsigned kNoShard = ~0u;
    unsigned draining_shard_ = kNoShard;
    Tick rebalance_started_ = 0;
    std::uint64_t rebalance_batches_left_ = 0;
    std::uint64_t rebalance_batch_cursor_ = 0;

    unsigned active_nodes_ = 0;
    sim::PeriodicEvent scaler_event_;
    unsigned hot_periods_ = 0;
    Tick cooldown_until_ = 0;
    unsigned warm_used_ = 0;
    std::uint64_t provisions_ = 0;
    std::uint64_t warm_provisions_ = 0;
    std::uint64_t cold_provisions_ = 0;
    std::vector<double> provision_lag_ms_;
};

} // namespace microscale::cluster

#endif // MICROSCALE_CLUSTER_CLUSTER_HH
