#include "cluster/ring.hh"

#include <algorithm>

#include "base/logging.hh"

namespace microscale::cluster
{

HashRing::HashRing(unsigned vnodes) : vnodes_(vnodes)
{
    if (vnodes_ == 0)
        fatal("hash ring needs at least one virtual token per node");
}

std::uint64_t
HashRing::hash(const std::string &key)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    // FNV-1a alone disperses short structured keys ("node:3:17")
    // poorly across the high bits, which makes vnode arcs lumpy; a
    // murmur3-style finalizer restores avalanche.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

void
HashRing::addNode(unsigned node)
{
    if (contains(node))
        return;
    members_.push_back(node);
    ring_.reserve(ring_.size() + vnodes_);
    for (unsigned v = 0; v < vnodes_; ++v) {
        const std::string token =
            "node:" + std::to_string(node) + ":" + std::to_string(v);
        ring_.push_back(Token{hash(token), node});
    }
    std::sort(ring_.begin(), ring_.end());
}

void
HashRing::removeNode(unsigned node)
{
    auto m = std::find(members_.begin(), members_.end(), node);
    if (m == members_.end())
        return;
    members_.erase(m);
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [node](const Token &t) {
                                   return t.node == node;
                               }),
                ring_.end());
}

bool
HashRing::contains(unsigned node) const
{
    return std::find(members_.begin(), members_.end(), node) !=
           members_.end();
}

unsigned
HashRing::nodeFor(const std::string &key) const
{
    if (ring_.empty())
        fatal("hash ring lookup on empty ring");
    const std::uint64_t h = hash(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Token &t, std::uint64_t point) {
            return t.point < point;
        });
    if (it == ring_.end())
        it = ring_.begin(); // wrap past the highest token
    return it->node;
}

} // namespace microscale::cluster
