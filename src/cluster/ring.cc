#include "cluster/ring.hh"

#include <algorithm>

#include "base/logging.hh"

namespace microscale::cluster
{

HashRing::HashRing(unsigned vnodes) : vnodes_(vnodes)
{
    if (vnodes_ == 0)
        fatal("hash ring needs at least one virtual token per node");
}

std::uint64_t
HashRing::hash(const std::string &key)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    // FNV-1a alone disperses short structured keys ("node:3:17")
    // poorly across the high bits, which makes vnode arcs lumpy; a
    // murmur3-style finalizer restores avalanche.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

void
HashRing::addNode(unsigned node)
{
    if (contains(node))
        return;
    members_.push_back(node);
    ring_.reserve(ring_.size() + vnodes_);
    for (unsigned v = 0; v < vnodes_; ++v) {
        const std::string token =
            "node:" + std::to_string(node) + ":" + std::to_string(v);
        ring_.push_back(Token{hash(token), node});
    }
    std::sort(ring_.begin(), ring_.end());
}

void
HashRing::removeNode(unsigned node)
{
    auto m = std::find(members_.begin(), members_.end(), node);
    if (m == members_.end())
        return;
    members_.erase(m);
    groups_.erase(std::remove_if(groups_.begin(), groups_.end(),
                                 [node](const auto &g) {
                                     return g.first == node;
                                 }),
                  groups_.end());
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [node](const Token &t) {
                                   return t.node == node;
                               }),
                ring_.end());
}

void
HashRing::setGroup(unsigned node, unsigned group)
{
    for (auto &g : groups_) {
        if (g.first == node) {
            g.second = group;
            return;
        }
    }
    groups_.emplace_back(node, group);
}

unsigned
HashRing::groupOf(unsigned node) const
{
    for (const auto &g : groups_)
        if (g.first == node)
            return g.second;
    return node;
}

std::vector<unsigned>
HashRing::ownersFor(const std::string &key, unsigned count) const
{
    if (ring_.empty())
        fatal("hash ring lookup on empty ring");
    std::vector<unsigned> owners;
    std::vector<unsigned> taken_groups;
    const std::uint64_t h = hash(key);
    auto start = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Token &t, std::uint64_t point) {
            return t.point < point;
        });
    if (start == ring_.end())
        start = ring_.begin();
    // One full lap visits every member at least once; distinct-group
    // filtering may legitimately yield fewer than `count` owners.
    auto it = start;
    do {
        const unsigned g = groupOf(it->node);
        const bool used =
            std::find(taken_groups.begin(), taken_groups.end(), g) !=
            taken_groups.end();
        if (!used) {
            owners.push_back(it->node);
            taken_groups.push_back(g);
            if (owners.size() == count)
                break;
        }
        if (++it == ring_.end())
            it = ring_.begin();
    } while (it != start);
    return owners;
}

bool
HashRing::contains(unsigned node) const
{
    return std::find(members_.begin(), members_.end(), node) !=
           members_.end();
}

unsigned
HashRing::nodeFor(const std::string &key) const
{
    if (ring_.empty())
        fatal("hash ring lookup on empty ring");
    const std::uint64_t h = hash(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Token &t, std::uint64_t point) {
            return t.point < point;
        });
    if (it == ring_.end())
        it = ring_.begin(); // wrap past the highest token
    return it->node;
}

} // namespace microscale::cluster
