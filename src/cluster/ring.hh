/**
 * @file
 * HashRing: a deterministic consistent-hash ring.
 *
 * Each member node contributes a fixed number of virtual tokens,
 * hashed from the node id, onto a 64-bit ring; a key maps to the
 * owner of the first token at or after its hash (wrapping). Virtual
 * tokens keep ownership roughly even and bound the key movement on
 * membership change to about 1/N of the key space. Everything is
 * derived from FNV-1a over strings (with a murmur-style finalizer for
 * avalanche), so two rings built from the same membership — in any
 * insertion order — are identical.
 */

#ifndef MICROSCALE_CLUSTER_RING_HH
#define MICROSCALE_CLUSTER_RING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace microscale::cluster
{

class HashRing
{
  public:
    /** @param vnodes virtual tokens per member (ownership evenness). */
    explicit HashRing(unsigned vnodes = 64);

    /** Add a member; adding an existing member is a no-op. */
    void addNode(unsigned node);

    /** Remove a member; removing a non-member is a no-op. */
    void removeNode(unsigned node);

    /** Member owning `key`; fatal() on an empty ring. */
    unsigned nodeFor(const std::string &key) const;

    /**
     * Tag a member with a failure-domain group (for the data tier: the
     * cluster node hosting the shard). ownersFor skips members whose
     * group was already taken, so replicas land on distinct nodes even
     * when successive vnodes belong to co-located members. Default
     * group is the member id itself (every member its own domain).
     */
    void setGroup(unsigned node, unsigned group);

    /** Group of `node` (the member id when never set). */
    unsigned groupOf(unsigned node) const;

    /**
     * The first `count` members whose vnodes follow `key`'s hash,
     * walking successors and skipping members that repeat either a
     * member or a group already chosen. owners[0] == nodeFor(key).
     * Returns fewer than `count` when the membership spans fewer
     * distinct groups; fatal() on an empty ring.
     */
    std::vector<unsigned> ownersFor(const std::string &key,
                                    unsigned count) const;

    bool contains(unsigned node) const;

    std::size_t nodeCount() const { return members_.size(); }
    /** Members in insertion order. */
    const std::vector<unsigned> &members() const { return members_; }
    bool empty() const { return members_.empty(); }
    unsigned vnodes() const { return vnodes_; }

    /** FNV-1a over the key string, finalized for avalanche (exposed
     * for tests). */
    static std::uint64_t hash(const std::string &key);

  private:
    struct Token
    {
        std::uint64_t point;
        unsigned node;

        bool operator<(const Token &o) const
        {
            return point != o.point ? point < o.point : node < o.node;
        }
    };

    unsigned vnodes_;
    std::vector<Token> ring_; ///< sorted by point
    std::vector<unsigned> members_;
    std::vector<std::pair<unsigned, unsigned>> groups_; ///< member, group
};

} // namespace microscale::cluster

#endif // MICROSCALE_CLUSTER_RING_HH
